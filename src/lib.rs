#![warn(missing_docs)]
//! # ANOR — an end-to-end HPC framework for dynamic power objectives
//!
//! A Rust implementation of the multi-tiered, feedback-driven power
//! management framework of *"An End-to-End HPC Framework for Dynamic
//! Power Objectives"* (Wilson et al., SC-W 2023): a **cluster tier**
//! (demand-response bidder, weighted-queue scheduler, power budgeter)
//! distributes a time-varying cluster power target to a **job tier**
//! (one power-modeling endpoint process per job driving a GEOPM-style
//! runtime) and folds online performance feedback back into its
//! decisions, recovering the performance lost to job-type
//! misclassification.
//!
//! ## Crate map
//!
//! | Module | Backing crate | Contents |
//! |---|---|---|
//! | [`types`] | `anor-types` | units, ids, power curves, job-type catalog, QoS math, wire messages |
//! | [`platform`] | `anor-platform` | simulated dual-socket nodes: MSR file, RAPL domains, synthetic NPB workloads |
//! | [`geopm`] | `anor-geopm` | signals/controls, power-governor agent, agent tree, endpoint interface |
//! | [`model`] | `anor-model` | quadratic power-performance fitting, epoch windows, the retrain state machine |
//! | [`policy`] | `anor-policy` | uniform / even-power / even-slowdown budgeters, misclassification scenarios |
//! | [`aqa`] | `anor-aqa` | regulation signals, tracking error, hourly bidding, weighted queues, Poisson schedules |
//! | [`cluster`] | `anor-cluster` | the TCP budgeter daemon, job endpoints and the emulated 16-node cluster |
//! | [`sim`] | `anor-sim` | the tabular 1000-node cluster simulator |
//! | [`experiments`] | `anor-core` | scenario runners regenerating Figs. 3–11 of the paper |
//!
//! ## Quickstart
//!
//! Run two jobs with opposite power sensitivity under a shared budget
//! and watch the performance-aware budgeter steer power to the job that
//! needs it:
//!
//! ```
//! use anor::cluster::{BudgetPolicy, EmulatedCluster, EmulatorConfig, JobSetup};
//! use anor::types::Watts;
//!
//! let cluster = EmulatedCluster::new(EmulatorConfig::paper(
//!     BudgetPolicy::EvenSlowdown,
//!     /* feedback = */ false,
//! ));
//! let report = cluster
//!     .run_static(
//!         &[JobSetup::known("bt.D.81"), JobSetup::known("sp.D.81")],
//!         Watts(840.0), // 75% of TDP over 4 nodes
//!     )
//!     .unwrap();
//! let bt = report.mean_slowdown("bt.D.81").unwrap();
//! let sp = report.mean_slowdown("sp.D.81").unwrap();
//! assert!(bt < 1.5 && sp < 1.5);
//! ```
//!
//! See `examples/` for demand-response tracking, misclassification
//! recovery, the 1000-node simulator and the head-node file formats.

pub use anor_core::experiments;
pub use anor_core::render;

pub use anor_aqa as aqa;
pub use anor_cluster as cluster;
pub use anor_geopm as geopm;
pub use anor_model as model;
pub use anor_platform as platform;
pub use anor_policy as policy;
pub use anor_sim as sim;
pub use anor_types as types;
