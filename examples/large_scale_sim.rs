//! Large-scale simulation: the paper's Section 6.4 scenario scaled to a
//! 200-node tabular simulation — per-node performance variation versus
//! 90th-percentile QoS degradation.
//!
//! ```text
//! cargo run --release --example large_scale_sim
//! ```

use anor::aqa::{poisson_schedule, PowerTarget, RegulationSignal};
use anor::platform::PerformanceVariation;
use anor::sim::{SimConfig, SimPowerPolicy, TabularSim};
use anor::types::{standard_catalog, QosDegradation, Seconds, Watts};

fn main() {
    let nodes = 200u32;
    let horizon = Seconds(2400.0);
    let catalog = standard_catalog().scale_nodes(5);
    let types = catalog.long_running();
    println!("tabular simulation: {nodes} nodes, 6 job types, 75% utilization\n");
    println!(
        "{:>12} {:>14} {:>12} {:>12}",
        "variation", "p90 QoS", "jobs done", "trk p90"
    );
    for level in [0.0, 15.0, 30.0] {
        let cfg = SimConfig {
            total_nodes: nodes,
            idle_power: Watts(90.0),
            catalog: catalog.clone(),
            types: types.clone(),
            tick: Seconds(1.0),
            policy: SimPowerPolicy::Uniform,
            qos: Default::default(),
            qos_risk_threshold: 0.8,
        };
        let variation = PerformanceVariation::with_level_percent(nodes as usize, level, 7);
        let schedule = poisson_schedule(&catalog, &types, 0.75, nodes, horizon, 3);
        let target = PowerTarget {
            avg: Watts(nodes as f64 * 210.0),
            reserve: Watts(nodes as f64 * 25.0),
            signal: RegulationSignal::random_walk(Seconds(4.0), 0.35, horizon * 3.0, 5),
        };
        let mut sim = TabularSim::new(cfg.clone(), target, &variation, schedule, None);
        sim.run(horizon, horizon * 2.0);
        let out = sim.outcome();
        let all: Vec<QosDegradation> = out
            .qos_by_type
            .iter()
            .flat_map(|(_, v)| v.iter().copied())
            .collect();
        let p90 = cfg.qos.percentile_degradation(&all).unwrap_or(0.0);
        println!(
            "{:>10.1}% {:>14.2} {:>12} {:>11.0}%",
            level,
            p90,
            out.completed,
            out.tracking_p90 * 100.0
        );
    }
    println!(
        "\nGreater per-node performance variation -> slower stragglers gate\n\
         multi-node jobs -> longer occupancy -> longer queues -> higher QoS\n\
         degradation (the paper's Fig. 11 trend). QoS target is Q = 5."
    );
}
