//! The hourly demand-response bidding loop (Section 4.4.1): once per
//! hour, search (average power, reserve) candidates by simulating the
//! expected submission scenario and pick the cheapest bid that satisfies
//! the QoS and power-tracking constraints.
//!
//! ```text
//! cargo run --release --example hourly_bidding
//! ```

use anor::aqa::CostModel;
use anor::sim::{SimConfig, SimPowerPolicy};
use anor::types::{standard_catalog, Seconds, Watts};
use anor_core::bidding::{choose_hourly_bid, evaluate_bid, BiddingConfig};

fn main() {
    let catalog = standard_catalog();
    let types = catalog.long_running();
    let sim = SimConfig {
        total_nodes: 48,
        idle_power: Watts(90.0),
        catalog,
        types,
        tick: Seconds(1.0),
        policy: SimPowerPolicy::Uniform,
        qos: Default::default(),
        qos_risk_threshold: 0.8,
    };
    println!("hourly bidding for a 48-node cluster\n");
    println!(
        "{:>6} {:>12} {:>12} {:>12} {:>10}",
        "hour", "util", "avg_bid_w", "reserve_w", "cost_$/h"
    );
    let cost = CostModel::default();
    // Three consecutive hours with different forecast utilizations.
    for (hour, util) in [(9, 0.55), (10, 0.70), (11, 0.85)] {
        let mut cfg = BiddingConfig::new(sim.clone(), util, hour as u64 * 31);
        cfg.horizon = Seconds(900.0);
        cfg.grid_steps = 4;
        cfg.tracking.probability = 0.75; // small-cluster granularity
        match choose_hourly_bid(&cfg).expect("simulation failed") {
            Some(bid) => {
                let e = evaluate_bid(&cfg, &bid).expect("re-evaluation failed");
                assert!(e.feasible());
                println!(
                    "{hour:>6} {util:>12.2} {:>12.0} {:>12.0} {:>10.3}",
                    bid.avg_power.value(),
                    bid.reserve.value(),
                    cost.hourly_cost(&bid)
                );
            }
            None => println!(
                "{hour:>6} {util:>12.2} {:>12} {:>12} {:>10}",
                "-", "-", "decline"
            ),
        }
    }
    println!(
        "\nHigher forecast utilization pushes the average-power request up;\n\
         the reserve offer is bounded by what the cluster can track while\n\
         keeping every queue inside Q <= 5 with 90% probability."
    );
}
