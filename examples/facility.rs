//! Facility-level coordination (Section 8): an old and a new cluster
//! share one facility power envelope that cannot feed both at peak. The
//! facility water-fills the envelope by weight; as the old cluster
//! drains, its headroom flows to the new one.
//!
//! ```text
//! cargo run --release --example facility
//! ```

use anor::aqa::{poisson_schedule, PowerTarget, RegulationSignal};
use anor::platform::PerformanceVariation;
use anor::policy::{ClusterView, FacilityBudgeter};
use anor::sim::{SimConfig, SimPowerPolicy, TabularSim};
use anor::types::{standard_catalog, Seconds, Watts};

fn cluster(nodes: u32, utilization: f64, horizon: f64, seed: u64) -> TabularSim {
    // The initial target is a placeholder; the facility drives it below.
    let catalog = standard_catalog();
    let types = catalog.long_running();
    let cfg = SimConfig {
        total_nodes: nodes,
        idle_power: Watts(90.0),
        catalog: catalog.clone(),
        types: types.clone(),
        tick: Seconds(1.0),
        policy: SimPowerPolicy::EvenSlowdown,
        qos: Default::default(),
        qos_risk_threshold: 0.8,
    };
    let schedule = poisson_schedule(&catalog, &types, utilization, nodes, Seconds(horizon), seed);
    let target = PowerTarget {
        avg: Watts(nodes as f64 * 200.0),
        reserve: Watts(nodes as f64 * 50.0),
        signal: RegulationSignal::Constant(0.0),
    };
    TabularSim::new(
        cfg,
        target,
        &PerformanceVariation::none(nodes as usize),
        schedule,
        None,
    )
}

fn main() {
    // Old cluster: winding down (arrivals stop after 10 minutes).
    // New cluster: fully loaded for the whole hour.
    let mut old = cluster(32, 0.7, 600.0, 3);
    let mut new = cluster(32, 0.9, 3600.0, 5);
    let envelope = Watts(13_000.0); // < 2 × 32 × 280 W peak demand
    let facility = FacilityBudgeter;
    println!("shared envelope {envelope:.0} for two 32-node clusters (peak demand 17.9 kW)\n");
    println!(
        "{:>8} {:>12} {:>12} {:>12} {:>12}",
        "time_s", "old_alloc_w", "new_alloc_w", "old_meas_w", "new_meas_w"
    );
    for tick in 0..3600 {
        let views = [
            ClusterView {
                name: "old".into(),
                floor: Watts(32.0 * 90.0),
                capacity: Watts(32.0 * 280.0),
                demand: old.measured_power() + Watts(500.0),
                weight: 1.0,
            },
            ClusterView {
                name: "new".into(),
                floor: Watts(32.0 * 90.0),
                capacity: Watts(32.0 * 280.0),
                demand: new.measured_power() + Watts(500.0),
                weight: 2.0,
            },
        ];
        let alloc = facility.allocate(envelope, &views);
        // Close the loop: each cluster's power objective *is* its
        // facility allocation.
        old.set_target(PowerTarget {
            avg: alloc[0],
            reserve: Watts(300.0),
            signal: RegulationSignal::Constant(0.0),
        });
        new.set_target(PowerTarget {
            avg: alloc[1],
            reserve: Watts(300.0),
            signal: RegulationSignal::Constant(0.0),
        });
        if tick % 400 == 0 {
            println!(
                "{:>8} {:>12.0} {:>12.0} {:>12.0} {:>12.0}",
                tick,
                alloc[0].value(),
                alloc[1].value(),
                old.measured_power().value(),
                new.measured_power().value()
            );
        }
        old.step();
        new.step();
    }
    println!(
        "\nThe old cluster's demand collapses once its queue drains; the\n\
         facility recycles that headroom into the bring-up cluster without\n\
         ever exceeding the shared envelope — the Section 8 scenario."
    );
}
