//! Misclassification and recovery: run BT labelled as IS (its power
//! sensitivity under-predicted) next to SP, with and without job-tier
//! feedback — the Fig. 6 story in miniature.
//!
//! ```text
//! cargo run --release --example misclassification
//! ```

use anor::cluster::{BudgetPolicy, EmulatedCluster, EmulatorConfig, JobSetup};
use anor::types::Watts;

fn run(label: &str, jobs: &[JobSetup], feedback: bool) -> f64 {
    let cluster = EmulatedCluster::new(EmulatorConfig::paper(BudgetPolicy::EvenSlowdown, feedback));
    let report = cluster.run_static(jobs, Watts(840.0)).expect("run failed");
    let bt = (report.mean_slowdown("bt.D.81").unwrap() - 1.0) * 100.0;
    println!("{label:<42} BT slowdown {bt:>5.1}%");
    bt
}

fn main() {
    println!("BT + SP under a shared 840 W budget (even-slowdown budgeter)\n");
    let known = [JobSetup::known("bt.D.81"), JobSetup::known("sp.D.81")];
    let mislabeled = [
        JobSetup::misclassified("bt.D.81", "is.D.32"),
        JobSetup::known("sp.D.81"),
    ];
    let ideal = run("correctly classified", &known, false);
    let hurt = run("BT misclassified as IS (no feedback)", &mislabeled, false);
    let fixed = run("BT misclassified as IS (with feedback)", &mislabeled, true);
    println!();
    println!(
        "misclassification cost {:.1} points of slowdown; online epoch\n\
         feedback recovered {:.0}% of it.",
        hurt - ideal,
        ((hurt - fixed) / (hurt - ideal).max(1e-9) * 100.0).clamp(0.0, 100.0)
    );
    println!(
        "\nHow it works: the job-tier modeler watches epoch completion times\n\
         under (slightly dithered) caps, refits T = A*P^2 + B*P + C after 10\n\
         new epochs, and pushes the model to the cluster budgeter over TCP,\n\
         which re-balances the shared budget."
    );
}
