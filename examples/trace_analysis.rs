//! Automatic epoch detection from a GEOPM trace (Section 8): run an
//! *uninstrumented* view of a job — only its power telemetry — and
//! recover the epoch period from the trace's periodic signature.
//!
//! ```text
//! cargo run --release --example trace_analysis
//! ```

use anor::geopm::{parse_trace, PlatformIo, TraceWriter};
use anor::model::detect_period;
use anor::platform::Node;
use anor::types::{standard_catalog, JobId, NodeId, Seconds};
use std::io::BufReader;

fn main() {
    let spec = standard_catalog().find("cg.D.32").unwrap().clone();
    let true_period = spec.epoch_time_uncapped().value();
    println!(
        "running {} (true epoch period {:.2} s) and tracing power only\n",
        spec.name, true_period
    );

    // Run the job under a mild cap, sampling a trace at 10 Hz. The
    // workload's sync dips come from epoch-boundary noise resampling; to
    // make the periodic signature visible in *power* (draw is flat in
    // the simple model), we modulate the cap per epoch the way a
    // phase-aware agent would — which is exactly the periodic usage
    // Section 8 proposes detecting.
    let mut node = Node::paper(NodeId(0));
    node.launch(JobId(1), spec.clone(), 17).unwrap();
    let mut io = PlatformIo::new(node);
    let mut tracer = TraceWriter::new(Vec::new(), "monitor").unwrap();
    let dt = Seconds(0.1);
    let mut last_epochs = 0u64;
    let mut phase_high = true;
    while io.node().workload().map(|w| !w.is_done()).unwrap_or(false) {
        let epochs = io.read_signal(anor::geopm::Signal::EpochCount) as u64;
        if epochs != last_epochs {
            // Epoch boundary: the application alternates compute/sync
            // power levels (emulated with the cap).
            phase_high = !phase_high;
            last_epochs = epochs;
        }
        let cap = if phase_high { 260.0 } else { 190.0 };
        io.write_control(anor::geopm::Control::CpuPowerLimit, cap)
            .unwrap();
        io.advance(dt);
        tracer.sample(&io).unwrap();
    }
    let raw = tracer.finish().unwrap();
    let rows = parse_trace(BufReader::new(&raw[..])).unwrap();
    println!("trace rows: {}", rows.len());

    let powers: Vec<f64> = rows.iter().map(|r| r.power).collect();
    match detect_period(&powers, 0.1, 0.5, 20.0, 0.2) {
        Some(period) => {
            // The alternation flips each epoch, so the power period is
            // two epochs.
            let detected_epoch = period / 2.0;
            println!(
                "detected power period {period:.2} s -> epoch period {detected_epoch:.2} s \
                 (truth {true_period:.2} s, error {:.0}%)",
                (detected_epoch - true_period).abs() / true_period * 100.0
            );
        }
        None => println!("no confident period found"),
    }
}
