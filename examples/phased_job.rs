//! Phase changes and drift detection (Section 8): a job whose power
//! sensitivity shifts mid-run, watched by a modeler with drift detection
//! enabled — the fitted model follows the phases.
//!
//! ```text
//! cargo run --release --example phased_job
//! ```

use anor::model::{DriftDetector, ModelerConfig, PowerModeler};
use anor::platform::{Phase, PhasedWorkload};
use anor::types::{standard_catalog, CapRange, PowerCurve, Seconds, Watts};

fn main() {
    let base = standard_catalog().find("bt").unwrap().clone();
    let phases = [
        Phase {
            fraction: 0.5,
            sensitivity: 0.10, // memory-bound setup: capping is nearly free
            max_draw: Watts(225.0),
        },
        Phase {
            fraction: 0.5,
            sensitivity: 0.80, // compute-bound solve: capping hurts
            max_draw: Watts(278.0),
        },
    ];
    let mut workload = PhasedWorkload::new(base.clone(), &phases, 1.0, 7);
    let default = PowerCurve::from_anchor(Seconds(2.4), 0.4, CapRange::paper_node());
    let mut modeler = PowerModeler::with_default(ModelerConfig::paper(), default)
        .with_drift_detection(DriftDetector::paper());

    println!("two-phase job under a 200 W cap, modeler watching epochs\n");
    println!(
        "{:>8} {:>7} {:>8} {:>22} {:>8}",
        "time_s", "phase", "epochs", "learned slowdown@140W", "refits"
    );
    let mut t = 0.0;
    let mut epochs = 0u64;
    let mut refits = 0u64;
    let mut last_phase = 0;
    while !workload.is_done() {
        // The budgeter holds 200 W; the modeler dithers around it.
        let cap = modeler.recommend_cap(Watts(200.0));
        let crossed = workload.step(cap, Seconds(1.0));
        t += 1.0;
        epochs += crossed;
        if modeler.observe(epochs, Seconds(t), cap) {
            refits += 1;
        }
        let phase = workload.current_phase();
        if phase != last_phase || (t as u64).is_multiple_of(120) {
            let learned = modeler.curve().slowdown_at(Watts(140.0), Watts(280.0));
            println!("{t:>8.0} {phase:>7} {epochs:>8} {learned:>22.2} {refits:>8}");
            last_phase = phase;
        }
    }
    let learned = modeler.curve().slowdown_at(Watts(140.0), Watts(280.0));
    println!(
        "\nfinal learned slowdown at min cap: {learned:.2} (phase 2 truth: 1.80)\n\
         phase changes detected: {}",
        modeler.phase_changes()
    );
}
