//! The head-node file formats: Section 4.1's budgeter "reads power
//! targets and a job submission schedule from files". This example
//! generates both files, parses them back, and replays the schedule on
//! the emulated cluster against the file-driven targets.
//!
//! ```text
//! cargo run --release --example daemon_files
//! ```

use anor::aqa::schedule::{
    parse_power_targets, parse_schedule, write_power_targets, write_schedule,
};
use anor::aqa::{poisson_schedule, PowerTarget, RegulationSignal};
use anor::cluster::{BudgetPolicy, EmulatedCluster, EmulatorConfig, JobSetup};
use anor::types::{standard_catalog, Seconds, Watts};
use std::io::BufReader;

fn main() {
    let catalog = standard_catalog();
    let types = catalog.long_running();
    let horizon = Seconds(300.0);

    // 1. Generate the two input files, exactly as an operator would.
    let submissions = poisson_schedule(&catalog, &types, 0.7, 16, horizon, 77);
    let mut schedule_file = Vec::new();
    write_schedule(&mut schedule_file, &catalog, &submissions).unwrap();

    let signal = RegulationSignal::random_walk(Seconds(4.0), 0.35, horizon * 4.0, 5);
    let targets: Vec<(Seconds, Watts)> = (0..(horizon.value() as usize / 4))
        .map(|k| {
            let t = Seconds(4.0 * k as f64);
            (t, Watts(3000.0) + Watts(700.0) * signal.value(t))
        })
        .collect();
    let mut target_file = Vec::new();
    write_power_targets(&mut target_file, &targets).unwrap();

    println!("--- job schedule file (head) ---");
    for line in String::from_utf8_lossy(&schedule_file).lines().take(6) {
        println!("{line}");
    }
    println!("--- power target file (head) ---");
    for line in String::from_utf8_lossy(&target_file).lines().take(6) {
        println!("{line}");
    }

    // 2. Parse them back, as the budgeter daemon does at startup.
    let parsed_schedule = parse_schedule(BufReader::new(&schedule_file[..]), &catalog).unwrap();
    let parsed_targets = parse_power_targets(BufReader::new(&target_file[..])).unwrap();
    assert_eq!(parsed_schedule.len(), submissions.len());
    assert_eq!(parsed_targets.len(), targets.len());

    // 3. Replay on the emulated cluster: the parsed target trace becomes
    // the regulation signal.
    let values: Vec<f64> = parsed_targets
        .iter()
        .map(|(_, w)| (w.value() - 3000.0) / 700.0)
        .collect();
    let target = PowerTarget {
        avg: Watts(3000.0),
        reserve: Watts(700.0),
        signal: RegulationSignal::Trace {
            values,
            update_period: Seconds(4.0),
        },
    };
    let jobs: Vec<JobSetup> = parsed_schedule
        .iter()
        .map(|s| JobSetup::known(&catalog[s.type_id].name).at(s.time))
        .collect();
    let cluster = EmulatedCluster::new(EmulatorConfig::paper(BudgetPolicy::EvenSlowdown, false));
    let report = cluster
        .run_demand_response(&jobs, target, false)
        .expect("run failed");
    println!();
    println!(
        "replayed {} file-scheduled jobs; p90 tracking error {:.1}% of reserve",
        report.jobs.len(),
        report.tracking_p90.unwrap_or(0.0) * 100.0
    );
}
