//! Demand response: track a moving cluster power target through a
//! 10-minute burst of job arrivals, printing the target/measured series
//! and the AQA tracking-error verdict.
//!
//! ```text
//! cargo run --release --example demand_response
//! ```

use anor::aqa::{
    poisson_schedule, PowerTarget, RegulationSignal, TrackingConstraint, TrackingRecorder,
};
use anor::cluster::{BudgetPolicy, EmulatedCluster, EmulatorConfig, JobSetup};
use anor::types::{standard_catalog, Seconds, Watts};

fn main() {
    let catalog = standard_catalog();
    let types = catalog.long_running();
    let horizon = Seconds(600.0);
    let submissions = poisson_schedule(&catalog, &types, 0.95, 16, horizon, 21);
    let jobs: Vec<JobSetup> = submissions
        .iter()
        .map(|s| JobSetup::known(&catalog[s.type_id].name).at(s.time))
        .collect();
    println!(
        "submitting {} jobs over {horizon:.0} at 95% target utilization\n",
        jobs.len()
    );

    let reserve = Watts(900.0);
    let target = PowerTarget {
        avg: Watts(3200.0),
        reserve,
        signal: RegulationSignal::random_walk(Seconds(4.0), 0.35, Seconds(7200.0), 9),
    };
    let cluster = EmulatedCluster::new(EmulatorConfig::paper(BudgetPolicy::EvenSlowdown, false));
    let report = cluster
        .run_demand_response(&jobs, target, true)
        .expect("run failed");

    println!("{:>8} {:>10} {:>10}", "time_s", "target_w", "meas_w");
    for (t, target, measured) in report.power_trace.iter().step_by(60) {
        println!(
            "{:>8.0} {:>10.0} {:>10.0}",
            t.value(),
            target.value(),
            measured.value()
        );
    }

    let mut recorder = TrackingRecorder::new(reserve);
    for &(t, target, measured) in &report.power_trace {
        if t.value() <= horizon.value() {
            recorder.push(target, measured);
        }
    }
    let constraint = TrackingConstraint::default();
    println!();
    println!(
        "p90 tracking error: {:.1}% of reserve; within-30% fraction: {:.1}%",
        recorder.percentile_error(90.0) * 100.0,
        recorder.fraction_within(constraint.limit) * 100.0
    );
    println!(
        "AQA constraint (<=30% error for >=90% of time): {}",
        if recorder.satisfies(&constraint) {
            "SATISFIED"
        } else {
            "violated (short window includes cold start)"
        }
    );
}
