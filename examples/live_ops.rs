//! The live ops plane, end to end in one process: a budgeter publishing
//! status snapshots every pump, the dependency-free HTTP introspection
//! endpoint serving them, and the continuous invariant auditor watching
//! the books — everything `anord --status-addr` wires up, plus the
//! polling side `anor-top` performs.
//!
//! ```text
//! cargo run --release --example live_ops
//! ```

use anor::cluster::budgeter::{BudgeterConfig, ClusterBudgeter};
use anor::cluster::{parse_json, BudgetPolicy, FramedStream, Json, StatusBoard, StreamOptions};
use anor::types::msg::JobToCluster;
use anor::types::{JobId, Watts};
use anor_telemetry::ops::{http_get, OpsServer, StatusProvider};
use anor_telemetry::Telemetry;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    // 1. The daemon side: a budgeter that publishes to a status board,
    //    and an ops server handing the board + metrics out over HTTP.
    let telemetry = Telemetry::new();
    let board = StatusBoard::new();
    let (mut budgeter, addr) =
        ClusterBudgeter::builder(BudgeterConfig::new(BudgetPolicy::EvenSlowdown, true))
            .telemetry(telemetry.clone())
            .status(board.clone())
            .bind()
            .expect("bind budgeter");
    let provider: StatusProvider = Arc::new(move || board.render_json());
    let ops = OpsServer::bind("127.0.0.1:0", telemetry.clone(), provider).expect("bind ops");
    let status_addr = ops.local_addr().to_string();
    println!("budgeter on {addr}, ops endpoint on {status_addr}");

    // 2. The job side: two sessions announce themselves over TCP.
    let mut sessions = Vec::new();
    for (job, type_name, nodes) in [(1u64, "bt.D.81", 2u32), (2, "sp.D.81", 2)] {
        let mut s = FramedStream::new(
            std::net::TcpStream::connect(addr).expect("connect"),
            StreamOptions::default(),
        )
        .expect("framed stream");
        s.send(
            JobToCluster::Hello {
                job: JobId(job),
                type_name: type_name.into(),
                nodes,
            }
            .encode(),
        )
        .expect("hello");
        sessions.push(s);
    }

    // 3. Pump until both sessions hold capped leases; the auditor runs
    //    (and the board re-publishes) on every pass.
    for _ in 0..1000 {
        budgeter.pump(Watts(840.0)).expect("pump");
        if budgeter.status_snapshot().active_jobs == 2 {
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
    }

    // 4. The anor-top side: poll the endpoint like the dashboard does.
    let timeout = Duration::from_secs(2);
    let (code, body) = http_get(&status_addr, "/health", timeout).expect("GET /health");
    println!("GET /health -> {code}: {}", body.trim());

    let (_, metrics) = http_get(&status_addr, "/metrics", timeout).expect("GET /metrics");
    println!(
        "GET /metrics -> {} line(s), including:",
        metrics.lines().count()
    );
    for line in metrics.lines().filter(|l| {
        l.starts_with("budgeter_active_jobs") || l.starts_with("anor_invariant_violations")
    }) {
        println!("  {line}");
    }

    let (_, status) = http_get(&status_addr, "/status", timeout).expect("GET /status");
    let v = parse_json(&status).expect("well-formed /status JSON");
    let u = |k: &str| v.get(k).and_then(Json::as_u64).unwrap_or(0);
    let f = |k: &str| v.get(k).and_then(Json::as_f64).unwrap_or(0.0);
    println!(
        "GET /status -> budget {:.0} W, allocated {:.0} W, {} pump(s), {} active job(s), \
         {} invariant violation(s)",
        f("budget"),
        f("allocated_watts"),
        u("pumps"),
        u("active_jobs"),
        u("invariant_violations"),
    );
    for row in v.get("jobs").and_then(Json::as_array).unwrap_or(&[]) {
        println!(
            "  job {}: {} at {:.1} W/node x {} node(s)",
            row.get("job").and_then(Json::as_u64).unwrap_or(0),
            row.get("state").and_then(Json::as_str).unwrap_or("?"),
            row.get("cap").and_then(Json::as_f64).unwrap_or(0.0),
            row.get("nodes").and_then(Json::as_u64).unwrap_or(0),
        );
    }
    assert_eq!(u("invariant_violations"), 0, "healthy run must audit clean");
    println!("auditor verdict: clean (4 invariant checks/pump)");
}
