//! Quickstart: co-schedule a power-sensitive job (BT) and an insensitive
//! one (SP) under a shared 840 W budget on the emulated 16-node cluster,
//! and compare the performance-agnostic and performance-aware budgeters.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use anor::cluster::{BudgetPolicy, EmulatedCluster, EmulatorConfig, JobSetup};
use anor::types::Watts;

fn main() {
    let jobs = [JobSetup::known("bt.D.81"), JobSetup::known("sp.D.81")];
    let budget = Watts(840.0); // 75% of TDP across the 4 busy nodes

    println!("ANOR quickstart: BT + SP sharing {budget:.0}\n");
    for (label, policy) in [
        ("performance-agnostic (uniform caps)", BudgetPolicy::Uniform),
        (
            "performance-aware (even slowdown)",
            BudgetPolicy::EvenSlowdown,
        ),
    ] {
        let cluster = EmulatedCluster::new(EmulatorConfig::paper(policy, false));
        let report = cluster.run_static(&jobs, budget).expect("run failed");
        println!("{label}:");
        for job in &report.jobs {
            println!(
                "  {:<9} ran {:>7.1}  -> slowdown {:>5.1}% vs uncapped",
                job.true_type,
                job.elapsed,
                (job.slowdown - 1.0) * 100.0
            );
        }
        println!();
    }
    println!(
        "The even-slowdown budgeter steers watts toward BT (which converts\n\
         them into speed) and away from SP (which cannot use them),\n\
         equalizing the damage — the core idea behind the paper's Fig. 4."
    );
}
