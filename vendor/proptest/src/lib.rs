//! Offline vendored subset of the `proptest` API.
//!
//! Supports the subset the workspace's property tests use: the
//! `proptest!` macro over `arg in strategy` parameter lists, numeric
//! range strategies, tuple strategies, `any::<T>()`, a small
//! character-class regex subset for `String` strategies, and
//! `proptest::collection::vec`. Cases are generated from a seed derived
//! deterministically from the test name, so failures reproduce exactly.
//! There is no shrinking: a failing case panics with the standard
//! assert message (plus the case index via the panic location).

pub mod test_runner {
    /// Deterministic xoshiro256++ source for case generation.
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        pub fn new(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            TestRng {
                s: [next(), next(), next(), next()],
            }
        }

        /// Seed from the test's name (FNV-1a) so each test gets an
        /// independent but reproducible stream.
        pub fn from_name(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng::new(h)
        }

        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform integer in `[0, bound)`; `bound == 0` means the full
        /// 64-bit domain.
        pub fn below(&mut self, bound: u64) -> u64 {
            if bound == 0 {
                self.next_u64()
            } else {
                ((self.next_u64() as u128 * bound as u128) >> 64) as u64
            }
        }
    }

    /// Number of cases per property (`PROPTEST_CASES` overrides).
    pub fn cases() -> usize {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(256)
    }
}

pub mod strategy {
    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A generator of values of type `Value`.
    pub trait Strategy {
        type Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! float_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty float strategy range");
                    let v = self.start
                        + (self.end - self.start) * rng.unit_f64() as $t;
                    if v < self.end { v } else { self.start }
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty float strategy range");
                    lo + (hi - lo) * rng.unit_f64() as $t
                }
            }
        )*};
    }
    float_strategy!(f64, f32);

    macro_rules! int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty integer strategy range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = if span > u64::MAX as u128 {
                        rng.next_u64()
                    } else {
                        rng.below(span as u64)
                    };
                    (self.start as i128 + off as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty integer strategy range");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let off = if span > u64::MAX as u128 {
                        rng.next_u64()
                    } else {
                        rng.below(span as u64)
                    };
                    (lo as i128 + off as i128) as $t
                }
            }
        )*};
    }
    int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($(($($n:ident $idx:tt),+);)*) => {$(
            impl<$($n: Strategy),+> Strategy for ($($n,)+) {
                type Value = ($($n::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A 0, B 1);
        (A 0, B 1, C 2);
        (A 0, B 1, C 2, D 3);
        (A 0, B 1, C 2, D 3, E 4);
        (A 0, B 1, C 2, D 3, E 4, F 5);
    }

    /// `any::<T>()` — the full domain of `T`.
    pub struct Any<T>(std::marker::PhantomData<T>);

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.unit_f64() * 2e9 - 1e9
        }
    }

    /// String strategy from a character-class regex subset:
    /// sequences of `[class]`, escaped, or literal atoms, each with an
    /// optional `{n}`, `{lo,hi}`, `*`, `+`, or `?` quantifier.
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            generate_pattern(self, rng)
        }
    }

    fn generate_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            let alphabet: Vec<char> = match chars[i] {
                '[' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == ']')
                        .map(|p| i + p)
                        .unwrap_or_else(|| panic!("unterminated [ in pattern {pattern:?}"));
                    let class = parse_class(&chars[i + 1..close], pattern);
                    i = close + 1;
                    class
                }
                '\\' => {
                    let c = *chars
                        .get(i + 1)
                        .unwrap_or_else(|| panic!("trailing \\ in pattern {pattern:?}"));
                    i += 2;
                    vec![unescape(c)]
                }
                c => {
                    i += 1;
                    vec![c]
                }
            };
            let (lo, hi) = match chars.get(i) {
                Some('{') => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == '}')
                        .map(|p| i + p)
                        .unwrap_or_else(|| panic!("unterminated {{ in pattern {pattern:?}"));
                    let spec: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    match spec.split_once(',') {
                        Some((a, b)) => (
                            a.trim().parse().expect("bad {lo,hi} quantifier"),
                            b.trim().parse().expect("bad {lo,hi} quantifier"),
                        ),
                        None => {
                            let n: usize = spec.trim().parse().expect("bad {n} quantifier");
                            (n, n)
                        }
                    }
                }
                Some('*') => {
                    i += 1;
                    (0, 8)
                }
                Some('+') => {
                    i += 1;
                    (1, 8)
                }
                Some('?') => {
                    i += 1;
                    (0, 1)
                }
                _ => (1, 1),
            };
            let count = lo + rng.below((hi - lo + 1) as u64) as usize;
            for _ in 0..count {
                out.push(alphabet[rng.below(alphabet.len() as u64) as usize]);
            }
        }
        out
    }

    fn parse_class(body: &[char], pattern: &str) -> Vec<char> {
        let mut set = Vec::new();
        let mut i = 0;
        while i < body.len() {
            if body[i] == '\\' {
                let c = *body
                    .get(i + 1)
                    .unwrap_or_else(|| panic!("trailing \\ in class of {pattern:?}"));
                set.push(unescape(c));
                i += 2;
            } else if i + 2 < body.len() && body[i + 1] == '-' {
                let (lo, hi) = (body[i] as u32, body[i + 2] as u32);
                assert!(lo <= hi, "inverted range in class of {pattern:?}");
                for c in lo..=hi {
                    set.push(char::from_u32(c).unwrap());
                }
                i += 3;
            } else {
                set.push(body[i]);
                i += 1;
            }
        }
        assert!(!set.is_empty(), "empty character class in {pattern:?}");
        set
    }

    fn unescape(c: char) -> char {
        match c {
            'n' => '\n',
            't' => '\t',
            'r' => '\r',
            other => other,
        }
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// `vec(strategy, lo..hi)` — a Vec with uniform length in `[lo, hi)`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty vec length range");
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{any, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Expands each `fn name(arg in strategy, ...) { body }` into a
/// `#[test]` that runs `cases()` deterministic iterations. Attributes
/// (including `#[test]` and doc comments) pass through unchanged.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cases = $crate::test_runner::cases();
                let mut __rng = $crate::test_runner::TestRng::from_name(stringify!($name));
                for __case in 0..__cases {
                    $(
                        let $arg =
                            $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                    )+
                    $body
                }
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        /// The regex-subset string strategy respects class and bounds.
        #[test]
        fn string_strategy_respects_class(s in "[a-zA-Z0-9._\\-]{0,64}") {
            prop_assert!(s.len() <= 64);
            prop_assert!(s
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || ".-_".contains(c)));
        }

        /// Ranges and vec lengths stay in bounds.
        #[test]
        fn ranges_in_bounds(
            x in 1.5f64..2.5,
            n in 3u64..9,
            xs in crate::collection::vec(any::<u8>(), 2..5),
        ) {
            prop_assert!((1.5..2.5).contains(&x));
            prop_assert!((3..9).contains(&n));
            prop_assert!((2..5).contains(&xs.len()));
        }
    }
}
