//! Offline vendored subset of the `rand` 0.8 API.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the narrow slice of `rand` it actually uses:
//! `StdRng` (seeded deterministically), the `Rng`/`RngCore`/`SeedableRng`
//! traits, `gen::<f64>()`, and `gen_range` over float and integer ranges.
//! The generator is xoshiro256++ seeded via splitmix64 — high quality,
//! deterministic, and dependency-free. Streams differ from upstream
//! `StdRng` (ChaCha12), which is fine: nothing in the workspace depends
//! on the exact upstream stream, only on determinism per seed.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            let n = rem.len();
            rem.copy_from_slice(&bytes[..n]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction; `seed_from_u64` is the only entry point the
/// workspace uses.
pub trait SeedableRng: Sized {
    type Seed;

    fn from_seed(seed: Self::Seed) -> Self;
    fn seed_from_u64(state: u64) -> Self;
}

/// Values drawable from the "standard" distribution via `rng.gen()`.
pub trait StandardValue: Sized {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardValue for f64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl StandardValue for f32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64()) as f32
    }
}

impl StandardValue for bool {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl StandardValue for $t {
            fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges samplable by `gen_range`.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(
                    self.start < self.end,
                    "gen_range: empty float range {:?}..{:?}",
                    self.start,
                    self.end
                );
                let u = unit_f64(rng.next_u64()) as $t;
                let v = self.start + (self.end - self.start) * u;
                // Guard the half-open contract against rounding at the top.
                if v < self.end { v } else { self.start }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range: empty float range");
                lo + (hi - lo) * unit_f64(rng.next_u64()) as $t
            }
        }
    )*};
}
range_float!(f64, f32);

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(
                    self.start < self.end,
                    "gen_range: empty integer range"
                );
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = mult_bound(rng.next_u64(), span);
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range: empty integer range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = mult_bound(rng.next_u64(), span);
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// User-facing sampling methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    fn gen<T: StandardValue>(&mut self) -> T {
        T::standard(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Map a `u64` to `[0, 1)` with 53 bits of precision.
#[inline]
fn unit_f64(x: u64) -> f64 {
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Lemire's multiply-shift bounded sampler; `span == 0` means the full
/// 64-bit domain (from an inclusive range covering every value).
#[inline]
fn mult_bound(x: u64, span: u128) -> u64 {
    if span == 0 || span > u64::MAX as u128 {
        x
    } else {
        ((x as u128 * span) >> 64) as u64
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for `StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(b);
            }
            if s == [0; 4] {
                s[0] = 0x9e37_79b9_7f4a_7c15;
            }
            StdRng { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }
}

pub use rngs::StdRng;

pub mod prelude {
    pub use super::{rngs::StdRng, Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn float_range_half_open() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            assert!(v >= f64::MIN_POSITIVE && v < 1.0);
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn int_range_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            let i: usize = rng.gen_range(0..8usize);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets should be hit");
    }
}
