//! Offline vendored subset of the `criterion` API.
//!
//! Provides just enough surface for the workspace's `harness = false`
//! benches to compile and produce useful numbers offline: per-bench
//! mean wall time over a fixed warmup + measurement loop, printed as
//! `name ... mean time/iter`. No statistics, plots, or baselines.

use std::time::{Duration, Instant};

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }

    pub fn iter_batched_ref<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(&mut I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let mut input = setup();
            let start = Instant::now();
            black_box(routine(&mut input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl AsRef<str>,
        f: F,
    ) -> &mut Self {
        run_bench(name.as_ref(), self.sample_size, f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _parent: std::marker::PhantomData,
        }
    }

    pub fn final_summary(&self) {}
}

pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: std::marker::PhantomData<&'a ()>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl AsRef<str>,
        f: F,
    ) -> &mut Self {
        run_bench(
            &format!("{}/{}", self.name, id.as_ref()),
            self.sample_size,
            f,
        );
        self
    }

    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, samples: usize, mut f: F) {
    // Calibrate the per-sample iteration count so a sample takes ~2 ms.
    let mut bench = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut bench);
    let per_iter = bench.elapsed.max(Duration::from_nanos(1));
    let iters = (Duration::from_millis(2).as_nanos() / per_iter.as_nanos()).clamp(1, 10_000) as u64;

    let mut total = Duration::ZERO;
    let mut count = 0u64;
    for _ in 0..samples {
        let mut bench = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut bench);
        total += bench.elapsed;
        count += iters;
    }
    let mean_ns = total.as_nanos() as f64 / count.max(1) as f64;
    println!("{name:<50} {:>12}/iter", format_ns(mean_ns));
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
