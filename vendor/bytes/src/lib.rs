//! Offline vendored subset of the `bytes` crate.
//!
//! `Bytes`/`BytesMut` here are plain `Vec<u8>`s with a logical start
//! offset, which keeps `advance`/`get_*` O(1) amortized (the buffer
//! compacts lazily) while preserving the upstream API shape the
//! workspace codec uses: big-endian `get_*`/`put_*`, `split_to`,
//! `freeze`, `extend_from_slice`, and slice deref.

use std::ops::{Deref, DerefMut};

/// Read cursor over a contiguous byte buffer (upstream `bytes::Buf`).
///
/// `get_*` methods panic when fewer than the required bytes remain,
/// matching upstream semantics; callers bounds-check via `remaining()`.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, cnt: usize);

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(
            self.remaining() >= dst.len(),
            "Buf::copy_to_slice: {} bytes needed, {} remaining",
            dst.len(),
            self.remaining()
        );
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }

    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }

    fn get_i64(&mut self) -> i64 {
        self.get_u64() as i64
    }

    fn get_f64(&mut self) -> f64 {
        f64::from_bits(self.get_u64())
    }
}

/// Append-only writer (upstream `bytes::BufMut`), big-endian `put_*`.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_i64(&mut self, v: i64) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }
}

/// Immutable byte buffer. Unlike upstream there is no refcounted
/// sharing; `Clone` copies, which is fine at frame sizes (< 64 KiB).
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Vec<u8>,
    off: usize,
}

impl Bytes {
    pub const fn new() -> Self {
        Bytes {
            data: Vec::new(),
            off: 0,
        }
    }

    pub fn copy_from_slice(src: &[u8]) -> Self {
        Bytes {
            data: src.to_vec(),
            off: 0,
        }
    }

    /// Split off and return the first `at` bytes, leaving the rest.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.remaining(), "Bytes::split_to out of bounds");
        let head = Bytes::copy_from_slice(&self.chunk()[..at]);
        self.off += at;
        head
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.data.len() - self.off
    }

    fn chunk(&self) -> &[u8] {
        &self.data[self.off..]
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.remaining(), "Bytes::advance out of bounds");
        self.off += cnt;
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.chunk()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.chunk()
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.chunk() {
            write!(f, "{}", std::ascii::escape_default(b))?;
        }
        write!(f, "\"")
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data, off: 0 }
    }
}

impl From<&[u8]> for Bytes {
    fn from(src: &[u8]) -> Self {
        Bytes::copy_from_slice(src)
    }
}

impl From<BytesMut> for Bytes {
    fn from(src: BytesMut) -> Self {
        src.freeze()
    }
}

/// Growable byte buffer with a read cursor at the front.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
    off: usize,
}

impl BytesMut {
    pub const fn new() -> Self {
        BytesMut {
            data: Vec::new(),
            off: 0,
        }
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
            off: 0,
        }
    }

    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    pub fn reserve(&mut self, additional: usize) {
        self.data.reserve(additional);
    }

    pub fn clear(&mut self) {
        self.data.clear();
        self.off = 0;
    }

    /// Split off and return the first `at` bytes, leaving the rest.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        assert!(at <= self.remaining(), "BytesMut::split_to out of bounds");
        let head = BytesMut {
            data: self.chunk()[..at].to_vec(),
            off: 0,
        };
        self.advance(at);
        head
    }

    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            off: self.off,
        }
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.data.len() - self.off
    }

    fn chunk(&self) -> &[u8] {
        &self.data[self.off..]
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.remaining(), "BytesMut::advance out of bounds");
        self.off += cnt;
        // Lazy compaction keeps long-lived socket buffers bounded.
        if self.off == self.data.len() {
            self.data.clear();
            self.off = 0;
        } else if self.off >= 4096 && self.off * 2 >= self.data.len() {
            self.data.drain(..self.off);
            self.off = 0;
        }
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.chunk()
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        let off = self.off;
        &mut self.data[off..]
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        self.chunk()
    }
}

impl std::fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.chunk() {
            write!(f, "{}", std::ascii::escape_default(b))?;
        }
        write!(f, "\"")
    }
}

impl From<&[u8]> for BytesMut {
    fn from(src: &[u8]) -> Self {
        BytesMut {
            data: src.to_vec(),
            off: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_be() {
        let mut buf = BytesMut::new();
        buf.put_u8(7);
        buf.put_u16(0x0102);
        buf.put_u32(0xdead_beef);
        buf.put_u64(42);
        buf.put_f64(3.5);
        buf.put_slice(b"ok");
        let mut b = buf.freeze();
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u16(), 0x0102);
        assert_eq!(b.get_u32(), 0xdead_beef);
        assert_eq!(b.get_u64(), 42);
        assert_eq!(b.get_f64(), 3.5);
        assert_eq!(&b[..], b"ok");
    }

    #[test]
    fn split_and_compact() {
        let mut buf = BytesMut::from(&b"hello world"[..]);
        let head = buf.split_to(6);
        assert_eq!(&head[..], b"hello ");
        assert_eq!(&buf[..], b"world");
        buf.advance(5);
        assert!(buf.is_empty());
        assert_eq!(buf.data.len(), 0, "fully-drained buffer compacts");
    }
}
