//! Offline vendored subset of the `parking_lot` API.
//!
//! Wraps `std::sync` primitives behind parking_lot's panic-free
//! signatures (`lock()` returns the guard directly; a poisoned lock is
//! recovered rather than propagated, matching parking_lot's lack of
//! poisoning). Performance is std's — acceptable for the workspace's
//! coarse-grained mailboxes and registries.

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.inner.try_read() {
            Ok(g) => f.debug_struct("RwLock").field("data", &&*g).finish(),
            Err(_) => f.debug_struct("RwLock").field("data", &"<locked>").finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
