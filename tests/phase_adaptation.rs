//! Integration test for the Section 8 extension chain: a multi-phase
//! workload (anor-platform) feeding the drift-detecting power modeler
//! (anor-model) through realistic epoch streams, with recommendations
//! that keep the dithered cap identifiable.

use anor::model::{DriftDetector, ModelerConfig, PowerModeler};
use anor::platform::{Phase, PhasedWorkload};
use anor::types::{standard_catalog, CapRange, PowerCurve, Seconds, Watts};

fn phases() -> [Phase; 2] {
    [
        Phase {
            fraction: 0.5,
            sensitivity: 0.10,
            max_draw: Watts(225.0),
        },
        Phase {
            fraction: 0.5,
            sensitivity: 0.80,
            max_draw: Watts(278.0),
        },
    ]
}

/// Run workload + modeler coupled at a fixed budget; return the learned
/// slowdown at min cap once each phase has been absorbed.
fn learn_through_phases(seed: u64) -> (f64, f64, u64) {
    let base = standard_catalog().find("bt").unwrap().clone();
    let mut workload = PhasedWorkload::new(base, &phases(), 1.0, seed);
    let default = PowerCurve::from_anchor(Seconds(2.4), 0.4, CapRange::paper_node());
    let mut modeler = PowerModeler::with_default(ModelerConfig::paper(), default)
        .with_drift_detection(DriftDetector::paper());
    let mut t = 0.0;
    let mut epochs = 0u64;
    let mut learned_phase1 = None;
    while !workload.is_done() {
        let cap = modeler.recommend_cap(Watts(200.0));
        epochs += workload.step(cap, Seconds(1.0));
        t += 1.0;
        modeler.observe(epochs, Seconds(t), cap);
        if workload.current_phase() == 0 && modeler.is_fitted() {
            learned_phase1 = Some(modeler.curve().slowdown_at(Watts(140.0), Watts(280.0)));
        }
    }
    let learned_phase2 = modeler.curve().slowdown_at(Watts(140.0), Watts(280.0));
    (
        learned_phase1.expect("phase 1 was fitted"),
        learned_phase2,
        modeler.phase_changes(),
    )
}

#[test]
fn modeler_follows_the_job_through_a_phase_change() {
    // Seed chosen for a representative run under the vendored
    // deterministic RNG stream (see vendor/rand).
    let (p1, p2, changes) = learn_through_phases(14);
    // Phase 1 truth: 1.10; phase 2 truth: 1.80.
    assert!((p1 - 1.10).abs() < 0.12, "phase 1 learned {p1}");
    assert!((p2 - 1.80).abs() < 0.25, "phase 2 learned {p2}");
    assert!(changes >= 1, "drift must have fired at the transition");
}

#[test]
fn without_drift_detection_the_model_goes_stale() {
    let base = standard_catalog().find("bt").unwrap().clone();
    let mut workload = PhasedWorkload::new(base, &phases(), 1.0, 9);
    let default = PowerCurve::from_anchor(Seconds(2.4), 0.4, CapRange::paper_node());
    // Same setup, no drift detection.
    let mut modeler = PowerModeler::with_default(ModelerConfig::paper(), default);
    let mut t = 0.0;
    let mut epochs = 0u64;
    while !workload.is_done() {
        let cap = modeler.recommend_cap(Watts(200.0));
        epochs += workload.step(cap, Seconds(1.0));
        t += 1.0;
        modeler.observe(epochs, Seconds(t), cap);
    }
    let learned = modeler.curve().slowdown_at(Watts(140.0), Watts(280.0));
    // The fit blends both phases (observations from phase 1 linger in
    // the buffer), landing well below the phase-2 truth of 1.8.
    assert!(
        learned < 1.7,
        "stale model should underestimate phase 2: {learned}"
    );
}

#[test]
fn phased_workload_total_time_matches_phase_mix() {
    // Under a hard 140 W cap, phase 1 (sens 0.1) costs 1.1x and phase 2
    // (sens 0.8) costs 1.8x, so the whole job costs ~1.45x its uncapped
    // time.
    let base = standard_catalog().find("bt").unwrap().clone();
    let uncapped = base.time_uncapped.value();
    let mut w = PhasedWorkload::new(base, &phases(), 1.0, 11);
    let mut t = 0.0;
    while !w.is_done() {
        w.step(Watts(140.0), Seconds(0.5));
        t += 0.5;
        assert!(t < 10_000.0);
    }
    let ratio = t / uncapped;
    assert!(
        (ratio - 1.45).abs() < 0.12,
        "capped phase mix ratio {ratio}"
    );
}
