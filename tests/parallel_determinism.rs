//! The executor's determinism contract, enforced end to end: every
//! experiment runner that fans out over `anor-exec` must produce output
//! identical to serial execution for any worker count. Trial seeds are
//! pure functions of grid position and the pool returns results in
//! submission order, so `--jobs` may only change wall-clock time.

use anor::experiments::{fig11, fig4, fig6};
use anor::types::Seconds;
use anor_telemetry::Telemetry;

/// A fig11 configuration small enough for debug-mode test runs but
/// still exercising the full level × trial grid and the hourly-bid
/// search embedded in the runner.
fn fig11_small(jobs: usize) -> fig11::Fig11Config {
    fig11::Fig11Config {
        nodes: 40,
        trials: 2,
        levels: vec![0.0, 30.0],
        horizon: Seconds(600.0),
        jobs,
        ..fig11::Fig11Config::default()
    }
}

#[test]
fn fig11_output_is_identical_across_worker_counts() {
    let serial = fig11::run(&fig11_small(1)).expect("serial run");
    for jobs in [4, 8] {
        let parallel = fig11::run(&fig11_small(jobs)).expect("parallel run");
        assert_eq!(
            serial.series, parallel.series,
            "fig11 series diverged at --jobs {jobs}"
        );
        assert_eq!(
            serial.tracking_ok_fraction, parallel.tracking_ok_fraction,
            "fig11 tracking fractions diverged at --jobs {jobs}"
        );
    }
}

#[test]
fn fig4_output_is_identical_across_worker_counts() {
    let serial = fig4::run_pooled(1);
    for jobs in [4, 8] {
        let parallel = fig4::run_pooled(jobs);
        assert_eq!(
            serial.even_slowdown, parallel.even_slowdown,
            "fig4 even-slowdown series diverged at --jobs {jobs}"
        );
        assert_eq!(
            serial.even_power, parallel.even_power,
            "fig4 even-power series diverged at --jobs {jobs}"
        );
    }
}

#[test]
fn emulated_trial_grid_is_identical_across_worker_counts() {
    // One emulated-hardware runner trial grid (fig6's six configs), one
    // trial each: full TCP cluster emulations running concurrently must
    // still aggregate to byte-identical bars.
    let run =
        |jobs: usize| fig6::run_pooled(1, 6, &Telemetry::new(), None, jobs).expect("emulated run");
    let serial = run(1);
    let parallel = run(4);
    assert_eq!(serial.len(), parallel.len());
    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(s.label, p.label);
        assert_eq!(s.jobs, p.jobs, "bars diverged at --jobs 4 for {}", s.label);
    }
}
