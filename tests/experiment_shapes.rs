//! Cross-crate smoke tests: quick versions of each figure's experiment
//! must reproduce the paper's qualitative shape. (The `fig*` binaries in
//! `anor-bench` run the full-scale versions.)

use anor::experiments::{fig11, fig3, fig4, fig5, fig6, hw};
use anor::types::Seconds;

#[test]
fn fig3_curves_have_paper_shape() {
    let series = fig3::run(2, 1);
    assert_eq!(series.len(), 8);
    for s in &series {
        let top = s.y_at(280.0).unwrap();
        let bottom = s.y_at(140.0).unwrap();
        assert!((top - 1.0).abs() < 0.15, "{}: {top}", s.label);
        assert!(bottom >= top - 0.1 && bottom < 2.0, "{}: {bottom}", s.label);
    }
}

#[test]
fn fig4_even_slowdown_beats_even_power_midrange() {
    let out = fig4::run();
    let worst = |series: &[anor::render::Series], budget: f64| {
        series
            .iter()
            .map(|s| s.y_at(budget).unwrap())
            .fold(0.0, f64::max)
    };
    assert!(worst(&out.even_slowdown, 2100.0) < worst(&out.even_power, 2100.0));
}

#[test]
fn fig5_misclassification_asymmetry() {
    let q = fig5::quadrant(fig5::Direction::Underpredict, fig5::UnknownSize::Small);
    // 9 series (3 jobs × 3 budgeters), all covering the sweep.
    assert_eq!(q.series.len(), 9);
    let ft_mis = q
        .series
        .iter()
        .find(|s| s.label == "ft.D.x (unknown)/Mischaracterized")
        .unwrap();
    let ft_ideal = q
        .series
        .iter()
        .find(|s| s.label == "ft.D.x (unknown)/Ideal")
        .unwrap();
    assert!(ft_mis.y_at(1800.0).unwrap() > ft_ideal.y_at(1800.0).unwrap());
}

#[test]
fn fig6_single_trial_ordering() {
    let bars = fig6::run(1, 99).unwrap();
    let bt = |label: &str| hw::job_slowdown(hw::bar(&bars, label), "bt");
    assert!(bt("Performance Aware") < bt("Performance Agnostic"));
    assert!(bt("Under-estimate bt") > bt("Performance Aware"));
    assert!(bt("Under-estimate bt, with feedback") < bt("Under-estimate bt"));
}

#[test]
fn fig11_quick_sweep_trends_up() {
    let mut cfg = fig11::Fig11Config::quick();
    cfg.horizon = Seconds(1200.0);
    let out = fig11::run(&cfg).unwrap();
    let mean_at = |x: f64| {
        let ys: Vec<f64> = out.series.iter().filter_map(|s| s.y_at(x)).collect();
        ys.iter().sum::<f64>() / ys.len() as f64
    };
    assert!(mean_at(30.0) > mean_at(0.0));
}
