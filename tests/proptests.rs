//! Property-based tests over the core data structures and invariants.

use anor::model::{fit_anchored, fit_quadratic};
use anor::policy::{Budgeter, EvenPowerBudgeter, EvenSlowdownBudgeter, JobView, UniformBudgeter};
use anor::types::msg::{take_frame, ClusterToJob, EpochSample, JobToCluster};
use anor::types::stats::OnlineStats;
use anor::types::{CapRange, JobId, Joules, PowerCurve, Seconds, Watts};
use bytes::BytesMut;
use proptest::prelude::*;

fn range() -> CapRange {
    CapRange::paper_node()
}

proptest! {
    // ------------------------------------------------------------------
    // PowerCurve
    // ------------------------------------------------------------------

    /// Anchored curves are monotone decreasing for any sensitivity and
    /// invert exactly within the cap range.
    #[test]
    fn curve_inversion_round_trips(
        t0 in 1.0f64..1000.0,
        sens in 0.0f64..2.0,
        p in 140.0f64..280.0,
    ) {
        let c = PowerCurve::from_anchor(Seconds(t0), sens, range());
        prop_assert!(c.is_monotone_decreasing_on(range()));
        let t = c.time_at(Watts(p));
        let p_back = c.power_for_time(t, range());
        // Flat curves (sens ~ 0) invert to an arbitrary in-range point;
        // only check round-trip when the curve is meaningfully sloped.
        if sens > 1e-3 {
            prop_assert!((p_back.value() - p).abs() < 1e-3,
                "invert({t:?}) = {p_back}, expected {p}");
        }
        prop_assert!(range().contains(p_back));
    }

    /// Slowdown at the min cap equals 1 + sensitivity by construction.
    #[test]
    fn curve_sensitivity_definition(t0 in 1.0f64..500.0, sens in 0.0f64..2.0) {
        let c = PowerCurve::from_anchor(Seconds(t0), sens, range());
        let slow = c.slowdown_at(Watts(140.0), Watts(280.0));
        prop_assert!((slow - (1.0 + sens)).abs() < 1e-9);
    }

    // ------------------------------------------------------------------
    // Wire protocol
    // ------------------------------------------------------------------

    /// Every ClusterToJob message round-trips through the codec.
    #[test]
    fn cluster_to_job_round_trips(cap in 0.0f64..10_000.0, cause in 0u64..u64::MAX, tag in 0u8..3) {
        let msg = match tag {
            0 => ClusterToJob::SetPowerCap { cap: Watts(cap), cause },
            1 => ClusterToJob::RequestSample,
            _ => ClusterToJob::Shutdown,
        };
        let frame = msg.encode();
        let mut buf = BytesMut::from(&frame[..]);
        let body = take_frame(&mut buf).unwrap().unwrap();
        prop_assert_eq!(ClusterToJob::decode(body).unwrap(), msg);
        prop_assert!(buf.is_empty());
    }

    /// Every JobToCluster message round-trips, including arbitrary
    /// UTF-8 type names.
    #[test]
    fn job_to_cluster_round_trips(
        job in 0u64..u64::MAX,
        name in "[a-zA-Z0-9._\\-]{0,64}",
        nodes in 0u32..100_000,
        epochs in 0u64..u64::MAX,
        energy in 0.0f64..1e12,
        power in 0.0f64..1e6,
        ts in 0.0f64..1e9,
        cause in 0u64..u64::MAX,
    ) {
        let msgs = [
            JobToCluster::Hello { job: JobId(job), type_name: name.clone(), nodes },
            JobToCluster::Sample(EpochSample {
                job: JobId(job),
                epoch_count: epochs,
                energy: Joules(energy),
                avg_power: Watts(power),
                avg_cap: Watts(power),
                timestamp: Seconds(ts),
                cause,
            }),
            JobToCluster::Done { job: JobId(job), elapsed: Seconds(ts) },
        ];
        for msg in msgs {
            let frame = msg.encode();
            let mut buf = BytesMut::from(&frame[..]);
            let body = take_frame(&mut buf).unwrap().unwrap();
            prop_assert_eq!(JobToCluster::decode(body).unwrap(), msg);
        }
    }

    /// Arbitrary byte noise never panics the frame splitter; it either
    /// yields frames, waits for more, or reports a protocol error.
    #[test]
    fn frame_splitter_tolerates_garbage(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        let mut buf = BytesMut::from(&data[..]);
        for _ in 0..16 {
            match take_frame(&mut buf) {
                Ok(Some(body)) => {
                    // Body decoding may fail, but must not panic.
                    let _ = ClusterToJob::decode(body);
                }
                Ok(None) => break,
                Err(_) => break,
            }
        }
    }

    // ------------------------------------------------------------------
    // Budgeters
    // ------------------------------------------------------------------

    /// All three budgeters stay within each job's platform cap range and
    /// (for in-window budgets) spend the budget.
    #[test]
    fn budgeters_respect_windows(
        budget in 100.0f64..10_000.0,
        picks in proptest::collection::vec(0usize..8, 1..6),
    ) {
        let catalog = anor::types::standard_catalog();
        let specs: Vec<_> = catalog.iter().collect();
        let jobs: Vec<JobView> = picks
            .iter()
            .enumerate()
            .map(|(i, &k)| JobView::from_spec(JobId(i as u64), specs[k]))
            .collect();
        for budgeter in [
            &UniformBudgeter as &dyn Budgeter,
            &EvenPowerBudgeter,
            &EvenSlowdownBudgeter::default(),
        ] {
            let caps = budgeter.assign(Watts(budget), &jobs);
            prop_assert_eq!(caps.len(), jobs.len());
            for (cap, job) in caps.iter().zip(&jobs) {
                prop_assert!(job.cap_range.contains(*cap),
                    "{}: cap {cap} outside platform range", budgeter.name());
            }
            // Feasibility: if the budget lies strictly inside the
            // aggregate achievable window, it must be (nearly) spent.
            let min: f64 = jobs.iter().map(|j| j.p_min().value() * j.nodes as f64).sum();
            let max: f64 = jobs.iter().map(|j| j.p_max().value() * j.nodes as f64).sum();
            if budgeter.name() != "uniform" && budget > min + 1.0 && budget < max - 1.0 {
                let total: f64 = caps
                    .iter()
                    .zip(&jobs)
                    .map(|(c, j)| c.value() * j.nodes as f64)
                    .sum();
                prop_assert!((total - budget).abs() < 2.0,
                    "{}: spent {total} of {budget}", budgeter.name());
            }
        }
    }

    /// Even-slowdown is monotone: a bigger budget never slows any job.
    #[test]
    fn even_slowdown_monotone_in_budget(
        b1 in 500.0f64..5000.0,
        extra in 1.0f64..2000.0,
    ) {
        let catalog = anor::types::standard_catalog();
        let jobs: Vec<JobView> = catalog
            .iter()
            .take(4)
            .enumerate()
            .map(|(i, s)| JobView::from_spec(JobId(i as u64), s))
            .collect();
        let budgeter = EvenSlowdownBudgeter::default();
        let small = budgeter.assign(Watts(b1), &jobs);
        let large = budgeter.assign(Watts(b1 + extra), &jobs);
        for (job, (s, l)) in jobs.iter().zip(small.iter().zip(&large)) {
            let slow_s = job.believed_slowdown(*s);
            let slow_l = job.believed_slowdown(*l);
            prop_assert!(slow_l <= slow_s + 1e-6,
                "{}: slowdown rose {slow_s} -> {slow_l} with more budget",
                job.job);
        }
    }

    // ------------------------------------------------------------------
    // Model fitting
    // ------------------------------------------------------------------

    /// Fitting clean data from any anchored curve recovers its
    /// predictions across the range.
    #[test]
    fn fits_recover_clean_curves(t0 in 0.1f64..100.0, sens in 0.05f64..1.5) {
        let truth = PowerCurve::from_anchor(Seconds(t0), sens, range());
        let pts: Vec<(Watts, Seconds)> = (0..8)
            .map(|i| {
                let p = 140.0 + 20.0 * i as f64;
                (Watts(p), truth.time_at(Watts(p)))
            })
            .collect();
        for fit in [fit_quadratic(&pts).unwrap(), fit_anchored(&pts, range()).unwrap()] {
            for p in [150.0, 210.0, 270.0] {
                let got = fit.curve.time_at(Watts(p)).value();
                let want = truth.time_at(Watts(p)).value();
                prop_assert!((got - want).abs() / want < 0.01,
                    "at {p} W: {got} vs {want}");
            }
        }
    }

    // ------------------------------------------------------------------
    // Statistics
    // ------------------------------------------------------------------

    /// Welford merge is equivalent to sequential accumulation.
    #[test]
    fn online_stats_merge_associative(
        xs in proptest::collection::vec(-1e6f64..1e6, 0..200),
        split in 0usize..200,
    ) {
        let split = split.min(xs.len());
        let mut whole = OnlineStats::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &xs[..split] {
            a.push(x);
        }
        for &x in &xs[split..] {
            b.push(x);
        }
        a.merge(&b);
        prop_assert_eq!(a.count(), whole.count());
        if !xs.is_empty() {
            prop_assert!((a.mean() - whole.mean()).abs() < 1e-6);
            prop_assert!((a.variance() - whole.variance()).abs()
                <= 1e-6 * (1.0 + whole.variance()));
        }
    }
}
