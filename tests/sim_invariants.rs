//! Integration tests over the tabular simulator: conservation and
//! lifecycle invariants that must hold for any schedule, policy and
//! variation level.

use anor::aqa::{poisson_schedule, PowerTarget, RegulationSignal};
use anor::platform::PerformanceVariation;
use anor::sim::{SimConfig, SimPowerPolicy, TabularSim};
use anor::types::{standard_catalog, QosConstraint, Seconds, Watts};

fn config(nodes: u32, policy: SimPowerPolicy) -> SimConfig {
    let catalog = standard_catalog();
    let types = catalog.long_running();
    SimConfig {
        total_nodes: nodes,
        idle_power: Watts(90.0),
        catalog,
        types,
        tick: Seconds(1.0),
        policy,
        qos: QosConstraint::default(),
        qos_risk_threshold: 0.8,
    }
}

fn target(nodes: u32) -> PowerTarget {
    PowerTarget {
        avg: Watts(nodes as f64 * 215.0),
        reserve: Watts(nodes as f64 * 25.0),
        signal: RegulationSignal::random_walk(Seconds(4.0), 0.35, Seconds(20_000.0), 5),
    }
}

fn run_sim(nodes: u32, policy: SimPowerPolicy, sigma: f64, seed: u64) -> TabularSim {
    let cfg = config(nodes, policy);
    let schedule = poisson_schedule(&cfg.catalog, &cfg.types, 0.75, nodes, Seconds(1500.0), seed);
    let variation = PerformanceVariation::with_sigma(nodes as usize, sigma, seed ^ 0xabc);
    let mut sim = TabularSim::new(cfg, target(nodes), &variation, schedule, None);
    sim.record_history(true);
    sim.run(Seconds(1500.0), Seconds(4000.0));
    sim
}

#[test]
fn every_policy_preserves_job_and_node_accounting() {
    for policy in [
        SimPowerPolicy::Uniform,
        SimPowerPolicy::EvenPower,
        SimPowerPolicy::EvenSlowdown,
        SimPowerPolicy::EvenSlowdownQosAware,
    ] {
        let sim = run_sim(24, policy, 0.1, 7);
        // Every node is either idle or assigned to exactly one running job.
        let mut node_refs = vec![0u32; sim.nodes().len()];
        for row in sim.jobs().iter().filter(|j| j.is_running()) {
            for n in &row.nodes {
                node_refs[n.index()] += 1;
            }
        }
        for (i, count) in node_refs.iter().enumerate() {
            assert!(*count <= 1, "{policy:?}: node {i} assigned {count} times");
            let node_job = sim.nodes()[i].job;
            if *count == 0 {
                assert!(
                    node_job.is_none() || sim.jobs()[node_job.unwrap().0 as usize].is_done(),
                    "{policy:?}: node {i} references a non-running job"
                );
            }
        }
        // Job lifecycle timestamps are ordered.
        for job in sim.jobs() {
            if let Some(start) = job.start {
                assert!(
                    start.value() >= job.submit.value(),
                    "{policy:?}: start < submit"
                );
                if let Some(end) = job.end {
                    assert!(end.value() > start.value(), "{policy:?}: end <= start");
                }
            }
        }
    }
}

#[test]
fn power_never_below_idle_floor_or_above_tdp_ceiling() {
    let sim = run_sim(24, SimPowerPolicy::Uniform, 0.1, 3);
    let n = sim.nodes().len() as f64;
    for row in sim.history() {
        assert!(
            row.measured.value() >= 90.0 * n - 1e-6,
            "measured below idle floor at t={}",
            row.time
        );
        assert!(
            row.measured.value() <= 280.0 * n + 1e-6,
            "measured above TDP ceiling at t={}",
            row.time
        );
    }
}

#[test]
fn history_counters_are_consistent() {
    let sim = run_sim(24, SimPowerPolicy::EvenSlowdown, 0.0, 11);
    let mut prev_completed = 0;
    for row in sim.history() {
        // Completed never decreases.
        assert!(row.completed_jobs >= prev_completed);
        prev_completed = row.completed_jobs;
        // Busy nodes can't exceed the cluster.
        assert!(row.busy_nodes <= 24);
    }
    // Final state: all jobs accounted for.
    let last = sim.history().back().unwrap();
    assert_eq!(
        last.completed_jobs as usize + last.pending_jobs as usize + last.running_jobs as usize,
        sim.jobs().len()
    );
}

#[test]
fn drain_completes_all_jobs_without_variation() {
    let sim = run_sim(24, SimPowerPolicy::Uniform, 0.0, 13);
    let out = sim.outcome();
    assert_eq!(
        out.unfinished, 0,
        "all jobs must finish within the drain window"
    );
    assert!(out.completed > 0);
}

#[test]
fn qos_aware_policy_is_no_worse_for_at_risk_jobs() {
    // Compare the plain and QoS-aware even-slowdown policies on an
    // identical scenario; the QoS-aware one must not raise the overall
    // 90th-percentile degradation by much (it shifts power toward
    // stragglers).
    let q90 = |policy| {
        let sim = run_sim(24, policy, 0.2, 17);
        let out = sim.outcome();
        let all: Vec<_> = out
            .qos_by_type
            .iter()
            .flat_map(|(_, v)| v.iter().copied())
            .collect();
        QosConstraint::default()
            .percentile_degradation(&all)
            .unwrap_or(0.0)
    };
    let plain = q90(SimPowerPolicy::EvenSlowdown);
    let aware = q90(SimPowerPolicy::EvenSlowdownQosAware);
    assert!(
        aware <= plain * 1.5 + 0.5,
        "qos-aware {aware} much worse than plain {plain}"
    );
}

#[test]
fn tracking_error_definition_matches_recorder() {
    let sim = run_sim(24, SimPowerPolicy::Uniform, 0.05, 19);
    // Recompute the mean error from history and compare against the
    // recorder-backed outcome path.
    let reserve = 24.0 * 25.0;
    let errors: Vec<f64> = sim
        .history()
        .iter()
        .map(|r| (r.measured.value() - r.target.value()).abs() / reserve)
        .collect();
    let mut sorted = errors.clone();
    sorted.sort_by(f64::total_cmp);
    let p90_manual = anor::types::stats::percentile_sorted(&sorted, 90.0);
    let p90_recorder = sim.tracking().percentile_error(90.0);
    assert!(
        (p90_manual - p90_recorder).abs() < 1e-9,
        "manual {p90_manual} vs recorder {p90_recorder}"
    );
}
