//! End-to-end integration tests: the full ANOR stack — simulated nodes,
//! GEOPM runtimes, job-tier endpoint processes, the TCP budgeter daemon —
//! wired together through the emulated cluster.

use anor::aqa::{PowerTarget, RegulationSignal};
use anor::cluster::{BudgetPolicy, EmulatedCluster, EmulatorConfig, JobSetup};
use anor::types::{Seconds, Watts};

fn cluster(policy: BudgetPolicy, feedback: bool) -> EmulatedCluster {
    EmulatedCluster::new(EmulatorConfig::paper(policy, feedback))
}

#[test]
fn uncapped_jobs_finish_at_nominal_time() {
    let report = cluster(BudgetPolicy::Uniform, false)
        .run_static(
            &[JobSetup::known("mg.D.32"), JobSetup::known("cg.D.32")],
            Watts(100_000.0),
        )
        .unwrap();
    for job in &report.jobs {
        assert!(
            (0.9..1.15).contains(&job.slowdown),
            "{}: uncapped slowdown {}",
            job.true_type,
            job.slowdown
        );
    }
}

#[test]
fn paper_figure_6_ordering_end_to_end() {
    // The core result chain of the paper, on the real code path:
    // characterized-aware < agnostic for the sensitive job; misclassified
    // worse; feedback in between.
    let jobs_known = [JobSetup::known("bt.D.81"), JobSetup::known("sp.D.81")];
    let jobs_mis = [
        JobSetup::misclassified("bt.D.81", "is.D.32"),
        JobSetup::known("sp.D.81"),
    ];
    let bt = |policy, feedback, jobs: &[JobSetup]| {
        cluster(policy, feedback)
            .run_static(jobs, Watts(840.0))
            .unwrap()
            .mean_slowdown("bt.D.81")
            .unwrap()
    };
    let agnostic = bt(BudgetPolicy::Uniform, false, &jobs_known);
    let aware = bt(BudgetPolicy::EvenSlowdown, false, &jobs_known);
    let misclassified = bt(BudgetPolicy::EvenSlowdown, false, &jobs_mis);
    let adjusted = bt(BudgetPolicy::EvenSlowdown, true, &jobs_mis);
    assert!(aware < agnostic, "aware {aware} vs agnostic {agnostic}");
    assert!(
        misclassified > aware,
        "misclassified {misclassified} vs aware {aware}"
    );
    assert!(
        adjusted < misclassified,
        "adjusted {adjusted} vs misclassified {misclassified}"
    );
    // Feedback recovers *most* of the gap (paper: "recover much of the
    // lost performance").
    let recovered = (misclassified - adjusted) / (misclassified - aware);
    assert!(recovered > 0.5, "only {recovered:.2} of the gap recovered");
}

#[test]
fn even_power_budgeter_also_works_end_to_end() {
    let report = cluster(BudgetPolicy::EvenPower, false)
        .run_static(
            &[JobSetup::known("bt.D.81"), JobSetup::known("is.D.32")],
            Watts(700.0),
        )
        .unwrap();
    assert_eq!(report.jobs.len(), 2);
    for job in &report.jobs {
        assert!(job.slowdown >= 0.9 && job.slowdown < 2.2);
    }
}

#[test]
fn moving_target_is_tracked_through_the_daemon() {
    let jobs = [
        JobSetup::known("bt.D.81"),
        JobSetup::known("bt.D.81"),
        JobSetup::known("lu.D.42").at(Seconds(5.0)),
    ];
    let target = PowerTarget {
        avg: Watts(1950.0),
        reserve: Watts(250.0),
        signal: RegulationSignal::Sinusoid {
            period: Seconds(100.0),
            amplitude: 0.7,
        },
    };
    let report = cluster(BudgetPolicy::EvenSlowdown, false)
        .run_demand_response(&jobs, target, true)
        .unwrap();
    let within = report.tracking_within_30.unwrap();
    assert!(within > 0.55, "within-30 fraction {within}");
    // The measured power must actually *move* with the target (not flat).
    let measured: Vec<f64> = report
        .power_trace
        .iter()
        .map(|(_, _, m)| m.value())
        .collect();
    let min = measured.iter().cloned().fold(f64::MAX, f64::min);
    let max = measured.iter().cloned().fold(0.0f64, f64::max);
    assert!(
        max - min > 150.0,
        "measured power never moved: {min}..{max}"
    );
}

#[test]
fn staggered_arrivals_queue_and_complete() {
    // More work than the cluster fits at once, arriving over time.
    let mut jobs = Vec::new();
    for k in 0..10 {
        jobs.push(JobSetup::known("ft.D.64").at(Seconds(10.0 * k as f64)));
    }
    let report = cluster(BudgetPolicy::EvenSlowdown, false)
        .run_static(&jobs, Watts(4000.0))
        .unwrap();
    assert_eq!(report.jobs.len(), 10);
    // All complete, in-order bookkeeping intact.
    for (i, job) in report.jobs.iter().enumerate() {
        assert_eq!(job.job.0, i as u64);
        assert!(job.start.value() >= job.submit.value() - 1.0);
        assert!(job.elapsed.value() > 0.0);
    }
}

#[test]
fn unknown_announced_type_hits_default_rule_and_still_completes() {
    // Announce a name the budgeter's catalog does not contain: the
    // configured default (least-sensitive) applies, the job still runs.
    let jobs = [
        JobSetup::misclassified("bt.D.81", "proprietary-app-7"),
        JobSetup::known("sp.D.81"),
    ];
    let report = cluster(BudgetPolicy::EvenSlowdown, false)
        .run_static(&jobs, Watts(840.0))
        .unwrap();
    assert_eq!(report.jobs.len(), 2);
    let bt = report.mean_slowdown("bt.D.81").unwrap();
    // Treated as least-sensitive -> starved -> visibly slowed.
    assert!(bt > 1.05, "unknown-typed BT should be starved: {bt}");
}

#[test]
fn feedback_also_corrects_overprediction() {
    // SP misclassified as EP steals power from BT; feedback hands it back.
    let jobs = [
        JobSetup::known("bt.D.81"),
        JobSetup::misclassified("sp.D.81", "ep.D.43"),
    ];
    let bt_over = cluster(BudgetPolicy::EvenSlowdown, false)
        .run_static(&jobs, Watts(840.0))
        .unwrap()
        .mean_slowdown("bt.D.81")
        .unwrap();
    let bt_fed = cluster(BudgetPolicy::EvenSlowdown, true)
        .run_static(&jobs, Watts(840.0))
        .unwrap()
        .mean_slowdown("bt.D.81")
        .unwrap();
    assert!(
        bt_fed < bt_over + 1e-9,
        "feedback must not hurt BT: {bt_fed} vs {bt_over}"
    );
}

#[test]
fn deterministic_given_seed() {
    let jobs = [JobSetup::known("mg.D.32"), JobSetup::known("cg.D.32")];
    let run = |seed: u64| {
        let mut cfg = EmulatorConfig::paper(BudgetPolicy::EvenSlowdown, true);
        cfg.seed = seed;
        EmulatedCluster::new(cfg)
            .run_static(&jobs, Watts(700.0))
            .unwrap()
            .jobs
            .iter()
            .map(|j| j.elapsed.value())
            .collect::<Vec<f64>>()
    };
    assert_eq!(run(5), run(5), "same seed, same result");
}
