//! Integration test for the Section 8 facility tier: two simulated
//! clusters share one facility power envelope; the facility budgeter's
//! allocation becomes each cluster's power target, and freed headroom
//! from the draining old cluster flows to the new one.

use anor::aqa::{poisson_schedule, PowerTarget, RegulationSignal};
use anor::platform::PerformanceVariation;
use anor::policy::{ClusterView, FacilityBudgeter};
use anor::sim::{SimConfig, SimPowerPolicy, TabularSim};
use anor::types::{standard_catalog, Seconds, Watts};

fn make_cluster(nodes: u32, utilization: f64, horizon: f64, seed: u64) -> TabularSim {
    let catalog = standard_catalog();
    let types = catalog.long_running();
    let cfg = SimConfig {
        total_nodes: nodes,
        idle_power: Watts(90.0),
        catalog: catalog.clone(),
        types: types.clone(),
        tick: Seconds(1.0),
        policy: SimPowerPolicy::EvenSlowdown,
        qos: Default::default(),
        qos_risk_threshold: 0.8,
    };
    let schedule = poisson_schedule(&catalog, &types, utilization, nodes, Seconds(horizon), seed);
    // The facility drives per-cluster targets; give each sim a wide flat
    // self-target that the facility allocation will override via caps.
    let target = PowerTarget {
        avg: Watts(nodes as f64 * 200.0),
        reserve: Watts(nodes as f64 * 50.0),
        signal: RegulationSignal::Constant(0.0),
    };
    TabularSim::new(
        cfg,
        target,
        &PerformanceVariation::none(nodes as usize),
        schedule,
        None,
    )
}

#[test]
fn facility_shares_one_envelope_between_two_clusters() {
    // "Old" cluster drains (short schedule); "new" cluster stays loaded.
    let mut old = make_cluster(16, 0.6, 300.0, 3);
    let mut new = make_cluster(16, 0.9, 1800.0, 5);
    let facility = FacilityBudgeter;
    // The shared envelope cannot power both clusters at peak
    // (2 × 16 × 280 = 8960 W); grant 6400 W.
    let envelope = Watts(6400.0);
    let mut old_allocs = Vec::new();
    let mut new_allocs = Vec::new();
    for _ in 0..1800 {
        let views = [
            ClusterView {
                name: "old".into(),
                floor: Watts(16.0 * 90.0),
                capacity: Watts(16.0 * 280.0),
                demand: old.measured_power() + Watts(300.0),
                weight: 1.0,
            },
            ClusterView {
                name: "new".into(),
                floor: Watts(16.0 * 90.0),
                capacity: Watts(16.0 * 280.0),
                demand: new.measured_power() + Watts(300.0),
                weight: 2.0, // the bring-up cluster gets priority
            },
        ];
        let alloc = facility.allocate(envelope, &views);
        // The allocation never exceeds the envelope.
        let total: f64 = alloc.iter().map(|w| w.value()).sum();
        assert!(total <= envelope.value() + 1e-6, "over-allocated: {total}");
        old_allocs.push(alloc[0].value());
        new_allocs.push(alloc[1].value());
        old.step();
        new.step();
    }
    // Early on, both clusters hold allocations above their floors.
    let early_old: f64 = old_allocs[60..120].iter().sum::<f64>() / 60.0;
    assert!(
        early_old > 16.0 * 90.0 + 50.0,
        "old early alloc {early_old}"
    );
    // After the old cluster drains, its demand collapses to ~idle and the
    // freed headroom flows to the new cluster.
    let late_old: f64 = old_allocs[1500..].iter().sum::<f64>() / 300.0;
    let late_new: f64 = new_allocs[1500..].iter().sum::<f64>() / 300.0;
    assert!(
        late_old < early_old,
        "old cluster should release power: {late_old} vs {early_old}"
    );
    let early_new: f64 = new_allocs[60..120].iter().sum::<f64>() / 60.0;
    assert!(
        late_new >= early_new - 1.0,
        "new cluster must not lose power as old drains: {late_new} vs {early_new}"
    );
    // The busy new cluster ran meaningful work throughout.
    assert!(new.outcome().completed > 0);
}
