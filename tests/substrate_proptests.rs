//! Property-based tests over the substrate crates: energy conservation
//! in the node model, workload progress invariants, regulation-signal
//! bounds, facility allocation conservation, epoch-window weighting and
//! catalog-file round-trips.

use anor::aqa::{RegulationSignal, TrackingRecorder};
use anor::model::EpochWindow;
use anor::platform::{Node, NodeConfig};
use anor::policy::{ClusterView, FacilityBudgeter};
use anor::types::catalog::{parse_catalog, write_catalog};
use anor::types::{standard_catalog, Catalog, JobId, JobTypeSpec, NodeId, Seconds, Watts};
use proptest::prelude::*;

proptest! {
    // ------------------------------------------------------------------
    // Platform: energy conservation and cap enforcement
    // ------------------------------------------------------------------

    /// Over any sequence of caps and step lengths, the node's unwrapped
    /// energy equals the integral of its reported power, and power never
    /// exceeds the enforced cap (or idle power when no job runs).
    #[test]
    fn node_energy_is_integral_of_power(
        steps in proptest::collection::vec((140.0f64..280.0, 0.1f64..5.0), 1..60),
        job_idx in 0usize..8,
    ) {
        let catalog = standard_catalog();
        let spec = catalog.iter().nth(job_idx).unwrap().clone();
        let mut node = Node::new(NodeId(0), NodeConfig::paper(), 1.0);
        node.launch(JobId(1), spec, 42).unwrap();
        let mut integral = 0.0;
        for (cap, dt) in steps {
            node.set_power_cap(Watts(cap)).unwrap();
            let r = node.step(Seconds(dt));
            // Enforcement: never above the cap (within MSR quantization),
            // never below zero.
            prop_assert!(r.power.value() <= node.power_cap().value() + 0.5);
            prop_assert!(r.power.value() >= 0.0);
            integral += r.power.value() * dt;
        }
        let total = node.cpu_energy_total().value();
        prop_assert!(
            (total - integral).abs() < 1.0 + integral * 1e-6,
            "energy {total} J vs ∫P dt = {integral} J"
        );
    }

    /// Workload progress is monotone and epochs never exceed the spec's
    /// count, for any interleaving of caps and step sizes.
    #[test]
    fn workload_progress_monotone(
        steps in proptest::collection::vec((140.0f64..280.0, 0.05f64..3.0), 1..100),
        seed in 0u64..1000,
    ) {
        let spec = standard_catalog().find("is.D.32").unwrap().clone();
        let mut w = anor::platform::SyntheticWorkload::new(spec.clone(), 1.0, seed);
        let mut prev = 0.0;
        for (cap, dt) in steps {
            w.step(Watts(cap), Seconds(dt));
            let p = w.progress();
            prop_assert!(p >= prev && p <= 1.0);
            prev = p;
            prop_assert!(w.epochs_done() <= spec.epochs);
        }
    }

    // ------------------------------------------------------------------
    // AQA: regulation bounds and tracking-error algebra
    // ------------------------------------------------------------------

    /// Every regulation signal stays within [-1, 1] at all times.
    #[test]
    fn regulation_signals_bounded(
        t in 0.0f64..100_000.0,
        amplitude in 0.0f64..3.0,
        level in -3.0f64..3.0,
        seed in 0u64..500,
    ) {
        let signals = [
            RegulationSignal::Constant(level),
            RegulationSignal::Sinusoid { period: Seconds(97.0), amplitude },
            RegulationSignal::random_walk(Seconds(4.0), 0.4, Seconds(2000.0), seed),
        ];
        for s in signals {
            let y = s.value(Seconds(t));
            prop_assert!((-1.0..=1.0).contains(&y), "y = {y}");
        }
    }

    /// Tracking error scales inversely with reserve and is symmetric.
    #[test]
    fn tracking_error_algebra(
        target in 100.0f64..100_000.0,
        miss in -5_000.0f64..5_000.0,
        reserve in 10.0f64..10_000.0,
    ) {
        let mut r = TrackingRecorder::new(Watts(reserve));
        let e = r.push(Watts(target), Watts(target + miss));
        prop_assert!((e - miss.abs() / reserve).abs() < 1e-9);
        let mut r2 = TrackingRecorder::new(Watts(reserve));
        let e2 = r2.push(Watts(target), Watts(target - miss));
        prop_assert!((e - e2).abs() < 1e-12, "asymmetric error");
    }

    // ------------------------------------------------------------------
    // Facility allocation
    // ------------------------------------------------------------------

    /// Facility allocations always grant each cluster at least its floor,
    /// never exceed its useful maximum, and never over-spend the budget
    /// beyond the sum of floors.
    #[test]
    fn facility_allocation_invariants(
        budget in 0.0f64..100_000.0,
        specs in proptest::collection::vec(
            (10.0f64..1000.0, 0.0f64..3000.0, 0.0f64..5000.0, 0.0f64..10.0),
            1..8,
        ),
    ) {
        let clusters: Vec<ClusterView> = specs
            .iter()
            .enumerate()
            .map(|(i, &(floor, extra_cap, demand, weight))| ClusterView {
                name: format!("c{i}"),
                floor: Watts(floor),
                capacity: Watts(floor + extra_cap),
                demand: Watts(demand),
                weight,
            })
            .collect();
        let alloc = FacilityBudgeter.allocate(Watts(budget), &clusters);
        prop_assert_eq!(alloc.len(), clusters.len());
        let floors: f64 = clusters.iter().map(|c| c.floor.value()).sum();
        let total: f64 = alloc.iter().map(|w| w.value()).sum();
        for (a, c) in alloc.iter().zip(&clusters) {
            prop_assert!(a.value() >= c.floor.value() - 1e-9, "{} under floor", c.name);
            prop_assert!(
                a.value() <= c.useful_max().value() + 1e-6,
                "{} over useful max",
                c.name
            );
        }
        prop_assert!(
            total <= budget.max(floors) + 1e-6,
            "over-spent: {total} vs budget {budget} (floors {floors})"
        );
    }

    // ------------------------------------------------------------------
    // Epoch window
    // ------------------------------------------------------------------

    /// The time-weighted average cap always lies within the min/max cap
    /// observed during the window, and elapsed time adds up.
    #[test]
    fn epoch_window_weighted_average_bounded(
        samples in proptest::collection::vec((0.1f64..10.0, 140.0f64..280.0), 2..40),
    ) {
        let mut w = EpochWindow::new();
        let mut t = 0.0;
        w.push(0, Seconds(0.0), Watts(samples[0].1));
        let mut lo = f64::MAX;
        let mut hi = f64::MIN;
        for (dt, cap) in &samples {
            t += dt;
            lo = lo.min(*cap);
            hi = hi.max(*cap);
            // No epochs yet: pure exposure accumulation.
            prop_assert!(w.push(0, Seconds(t), Watts(*cap)).is_none());
        }
        // One epoch completes now.
        t += 1.0;
        lo = lo.min(200.0);
        hi = hi.max(200.0);
        let obs = w.push(1, Seconds(t), Watts(200.0)).unwrap();
        prop_assert!((obs.elapsed.value() - t).abs() < 1e-9);
        prop_assert!(
            obs.avg_cap.value() >= lo - 1e-9 && obs.avg_cap.value() <= hi + 1e-9,
            "avg {} outside [{lo}, {hi}]",
            obs.avg_cap
        );
    }

    // ------------------------------------------------------------------
    // Catalog file format
    // ------------------------------------------------------------------

    /// Any well-formed catalog survives a write/parse round trip.
    #[test]
    fn catalog_round_trips(
        rows in proptest::collection::vec(
            (1u32..100, 1u64..10_000, 1.0f64..100_000.0, 0.0f64..3.0, 150.0f64..280.0),
            1..10,
        ),
    ) {
        let mut catalog = Catalog::new();
        for (i, &(nodes, epochs, time, sens, draw)) in rows.iter().enumerate() {
            catalog.push(JobTypeSpec {
                id: anor::types::JobTypeId(0),
                name: format!("app{i}.D.{nodes}"),
                nodes,
                epochs,
                time_uncapped: Seconds(time),
                sensitivity: sens,
                cap_range: anor::types::CapRange::paper_node(),
                max_draw: Watts(draw),
                noise_sigma: 0.02,
                qos_limit: 5.0,
            });
        }
        let mut buf = Vec::new();
        write_catalog(&mut buf, &catalog).unwrap();
        let parsed = parse_catalog(std::io::BufReader::new(&buf[..])).unwrap();
        prop_assert_eq!(parsed.len(), catalog.len());
        for (a, b) in catalog.iter().zip(parsed.iter()) {
            prop_assert_eq!(&a.name, &b.name);
            prop_assert_eq!(a.nodes, b.nodes);
            prop_assert!((a.time_uncapped.value() - b.time_uncapped.value()).abs()
                < 1e-9 * (1.0 + a.time_uncapped.value()));
            prop_assert!((a.sensitivity - b.sensitivity).abs() < 1e-9);
        }
    }
}
