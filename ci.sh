#!/usr/bin/env bash
# Tier-1 CI gate: build, test, format and lint the whole workspace.
# Run from the repository root. Fails fast on the first broken step.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release --workspace

# Static analysis runs before the (slower) test suite: a hot-path panic
# site or codec-invariant break should fail CI in seconds, not minutes.
echo "==> anor-lint --deny"
./target/release/anor-lint --deny

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test --workspace"
cargo test --workspace -q

# The lint crate's own test suite (fixtures, property tests, repo
# self-check) must stay quick enough to run on every edit-compile loop.
# Binaries are already built by the workspace test step, so this times
# test execution, not compilation.
echo "==> lint test timing budget (<5 s)"
LINT_T0="$(date +%s%N)"
cargo test -p anor-lint -q >/dev/null
LINT_ELAPSED_MS=$(( ($(date +%s%N) - LINT_T0) / 1000000 ))
echo "    anor-lint tests ran in ${LINT_ELAPSED_MS} ms"
[ "$LINT_ELAPSED_MS" -lt 5000 ] \
    || { echo "lint timing budget: anor-lint tests took ${LINT_ELAPSED_MS} ms (budget 5000 ms)"; exit 1; }

# Advisory UB pass over the unsafe-adjacent parsing hot spots: the wire
# codec and the lint lexer. Miri (or cargo-careful as a fallback) is not
# part of the pinned toolchain everywhere, so absence is a skip and
# findings are reported without failing the gate.
echo "==> miri/careful advisory (codec + lexer unit tests)"
if cargo miri --version >/dev/null 2>&1; then
    MIRIFLAGS="${MIRIFLAGS:-}" cargo miri test -p anor-cluster codec -q \
        && cargo miri test -p anor-lint lexer -q \
        || echo "    ADVISORY: miri reported findings (not failing the gate)"
elif cargo careful --version >/dev/null 2>&1; then
    cargo careful test -p anor-cluster codec -q \
        && cargo careful test -p anor-lint lexer -q \
        || echo "    ADVISORY: cargo-careful reported findings (not failing the gate)"
else
    echo "    skipped: neither cargo-miri nor cargo-careful is installed"
fi

echo "==> cargo fmt --check"
cargo fmt --check

SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR"' EXIT

echo "==> perf smoke: perfsuite --quick"
PERF_JSON="$SMOKE_DIR/bench.json"
PERF_OUT="$(./target/release/perfsuite --quick --runs 1 --out "$PERF_JSON" \
    --baseline BENCH_PR10.json)"
grep -q '"bench"' "$PERF_JSON" && grep -q '"median_s"' "$PERF_JSON" \
    || { echo "perf smoke: $PERF_JSON is missing bench results"; cat "$PERF_JSON"; exit 1; }
# Advisory regression table: perfsuite compares the quick run against the
# checked-in baseline and prints one PERF REGRESSION line per bench whose
# median is >10% over baseline. Wall-clock on shared runners is noisy
# (quick scenarios are also smaller than the baseline's full runs), so
# the table is a warning surface, never a gate — this step always exits 0.
PERF_REGRESSIONS="$(echo "$PERF_OUT" | grep '^PERF REGRESSION' || true)"
if [ -n "$PERF_REGRESSIONS" ]; then
    echo "    WARN: perf smoke flagged >10% median regressions (advisory only):"
    echo "$PERF_REGRESSIONS" | sed 's/^/    /'
else
    echo "    no >10% median regressions vs checked-in baseline"
fi

echo "==> trace smoke: fig6 --trace + anor-trace"
TRACE_DIR="$SMOKE_DIR/trace"
mkdir "$TRACE_DIR"
ANOR_QUICK=1 ./target/release/fig6 --trace "$TRACE_DIR" >/dev/null
REPORT="$(./target/release/anor-trace "$TRACE_DIR")"
echo "$REPORT" | grep -E "complete chains: [1-9][0-9]*" >/dev/null \
    || { echo "trace smoke: no complete decision->actuation->observation chain"; \
         echo "$REPORT"; exit 1; }
echo "$REPORT" | grep -E ", 0 malformed," >/dev/null \
    || { echo "trace smoke: malformed trace events"; echo "$REPORT"; exit 1; }

echo "==> chaos smoke: fig6 --faults drop@17,corrupt@42 --record"
CHAOS_OUT="$SMOKE_DIR/chaos.txt"
REC_DIR="$SMOKE_DIR/rec"
ANOR_QUICK=1 ./target/release/fig6 --faults drop@17,corrupt@42 --record "$REC_DIR" \
    > "$CHAOS_OUT" \
    || { echo "chaos smoke: fig6 failed under fault injection"; cat "$CHAOS_OUT"; exit 1; }
grep -E "chaos: reconnects=[1-9][0-9]*" "$CHAOS_OUT" >/dev/null \
    || { echo "chaos smoke: no reconnect recovered from the injected faults"; \
         grep "chaos:" "$CHAOS_OUT" || true; exit 1; }

echo "==> replay smoke: anor-replay --verify on the recorded chaos run"
REC_COUNT=0
for REC in "$REC_DIR"/*.rec; do
    [ -e "$REC" ] || break
    REPLAY_OUT="$(./target/release/anor-replay --rec "$REC" --verify)" \
        || { echo "replay smoke: verify failed for $REC"; echo "$REPLAY_OUT"; exit 1; }
    echo "$REPLAY_OUT" | grep -q "zero invariant violations" \
        || { echo "replay smoke: invariant violations replaying $REC"; \
             echo "$REPLAY_OUT"; exit 1; }
    REC_COUNT=$((REC_COUNT + 1))
done
[ "$REC_COUNT" -gt 0 ] \
    || { echo "replay smoke: fig6 --record produced no recordings"; exit 1; }
echo "    verified $REC_COUNT recording(s) byte-identical"

# The connection-plane gate: a reconnect storm with seeded chaos against
# the sharded reactor must register every endpoint, survive the storm,
# and close with a clean invariant audit (anor-load exits non-zero on
# any stalled stage, lost session, or auditor violation).
echo "==> load smoke: anor-load --endpoints 256 --storms 3 --faults drop@17,corrupt@42"
LOAD_OUT="$SMOKE_DIR/load.txt"
./target/release/anor-load --endpoints 256 --storms 3 --faults drop@17,corrupt@42 \
    > "$LOAD_OUT" \
    || { echo "load smoke: anor-load failed"; cat "$LOAD_OUT"; exit 1; }
grep -q "invariant violations: 0" "$LOAD_OUT" \
    || { echo "load smoke: auditor flagged violations"; cat "$LOAD_OUT"; exit 1; }
sed 's/^/    /' "$LOAD_OUT"

echo "==> ops smoke: anord --status-addr + anor-top --fetch"
OPS_OUT="$SMOKE_DIR/anord.txt"
./target/release/anord --listen 127.0.0.1:0 --status-addr 127.0.0.1:0 \
    --budget 400 --duration-secs 20 > "$OPS_OUT" &
ANORD_PID=$!
STATUS_ADDR=""
for _ in $(seq 1 100); do
    STATUS_ADDR="$(sed -n 's/^anord status on //p' "$OPS_OUT")"
    [ -n "$STATUS_ADDR" ] && break
    kill -0 "$ANORD_PID" 2>/dev/null \
        || { echo "ops smoke: anord exited early"; cat "$OPS_OUT"; exit 1; }
    sleep 0.1
done
[ -n "$STATUS_ADDR" ] \
    || { echo "ops smoke: anord never announced its status endpoint"; cat "$OPS_OUT"; exit 1; }
HEALTH="$(./target/release/anor-top --addr "$STATUS_ADDR" --fetch /health)" \
    || { echo "ops smoke: GET /health failed"; kill "$ANORD_PID"; exit 1; }
[ "$HEALTH" = "ok" ] \
    || { echo "ops smoke: /health said '$HEALTH', expected 'ok'"; kill "$ANORD_PID"; exit 1; }
./target/release/anor-top --addr "$STATUS_ADDR" --fetch /metrics | grep -q '# TYPE' \
    || { echo "ops smoke: /metrics served no Prometheus type lines"; kill "$ANORD_PID"; exit 1; }
./target/release/anor-top --addr "$STATUS_ADDR" --fetch /status | grep -q '"pumps"' \
    || { echo "ops smoke: /status served no snapshot"; kill "$ANORD_PID"; exit 1; }
kill "$ANORD_PID" 2>/dev/null || true
wait "$ANORD_PID" 2>/dev/null || true

# The builder API redesign keeps the old constructors alive as
# deprecated delegation shims for one release. New call sites must not
# appear: the only files allowed to mention them are the ones defining
# (and unit-testing) the shims themselves.
echo "==> deprecated constructor check"
STALE="$(grep -rnE \
    'ClusterBudgeter::(bind|bind_addr|bind_with|bind_addr_with)\(|JobEndpoint::(connect|connect_with)\(|FramedStream::with_metrics\(' \
    crates --include='*.rs' \
    | grep -vE 'crates/cluster/src/(budgeter|endpoint|codec)\.rs' || true)"
[ -z "$STALE" ] \
    || { echo "deprecated constructor check: migrate these call sites to the builder API:"; \
         echo "$STALE"; exit 1; }

echo "CI OK"
