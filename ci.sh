#!/usr/bin/env bash
# Tier-1 CI gate: build, test, format and lint the whole workspace.
# Run from the repository root. Fails fast on the first broken step.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test --workspace"
cargo test --workspace -q

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "CI OK"
