/root/repo/target/release/examples/quickstart-336bfe624b6a1b4d.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-336bfe624b6a1b4d: examples/quickstart.rs

examples/quickstart.rs:
