/root/repo/target/release/deps/anor_cluster-f43c43a7f5e82192.d: crates/cluster/src/lib.rs crates/cluster/src/budgeter.rs crates/cluster/src/cli.rs crates/cluster/src/codec.rs crates/cluster/src/emulator.rs crates/cluster/src/endpoint.rs

/root/repo/target/release/deps/libanor_cluster-f43c43a7f5e82192.rlib: crates/cluster/src/lib.rs crates/cluster/src/budgeter.rs crates/cluster/src/cli.rs crates/cluster/src/codec.rs crates/cluster/src/emulator.rs crates/cluster/src/endpoint.rs

/root/repo/target/release/deps/libanor_cluster-f43c43a7f5e82192.rmeta: crates/cluster/src/lib.rs crates/cluster/src/budgeter.rs crates/cluster/src/cli.rs crates/cluster/src/codec.rs crates/cluster/src/emulator.rs crates/cluster/src/endpoint.rs

crates/cluster/src/lib.rs:
crates/cluster/src/budgeter.rs:
crates/cluster/src/cli.rs:
crates/cluster/src/codec.rs:
crates/cluster/src/emulator.rs:
crates/cluster/src/endpoint.rs:
