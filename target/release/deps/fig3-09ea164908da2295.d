/root/repo/target/release/deps/fig3-09ea164908da2295.d: crates/bench/src/bin/fig3.rs

/root/repo/target/release/deps/fig3-09ea164908da2295: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
