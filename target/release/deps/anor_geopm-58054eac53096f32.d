/root/repo/target/release/deps/anor_geopm-58054eac53096f32.d: crates/geopm/src/lib.rs crates/geopm/src/agent.rs crates/geopm/src/endpoint.rs crates/geopm/src/platformio.rs crates/geopm/src/report.rs crates/geopm/src/runtime.rs crates/geopm/src/trace.rs crates/geopm/src/tree.rs

/root/repo/target/release/deps/libanor_geopm-58054eac53096f32.rlib: crates/geopm/src/lib.rs crates/geopm/src/agent.rs crates/geopm/src/endpoint.rs crates/geopm/src/platformio.rs crates/geopm/src/report.rs crates/geopm/src/runtime.rs crates/geopm/src/trace.rs crates/geopm/src/tree.rs

/root/repo/target/release/deps/libanor_geopm-58054eac53096f32.rmeta: crates/geopm/src/lib.rs crates/geopm/src/agent.rs crates/geopm/src/endpoint.rs crates/geopm/src/platformio.rs crates/geopm/src/report.rs crates/geopm/src/runtime.rs crates/geopm/src/trace.rs crates/geopm/src/tree.rs

crates/geopm/src/lib.rs:
crates/geopm/src/agent.rs:
crates/geopm/src/endpoint.rs:
crates/geopm/src/platformio.rs:
crates/geopm/src/report.rs:
crates/geopm/src/runtime.rs:
crates/geopm/src/trace.rs:
crates/geopm/src/tree.rs:
