/root/repo/target/release/deps/anor_geopm-f43852300808fd9f.d: crates/geopm/src/lib.rs crates/geopm/src/agent.rs crates/geopm/src/endpoint.rs crates/geopm/src/platformio.rs crates/geopm/src/report.rs crates/geopm/src/runtime.rs crates/geopm/src/trace.rs crates/geopm/src/tree.rs

/root/repo/target/release/deps/libanor_geopm-f43852300808fd9f.rlib: crates/geopm/src/lib.rs crates/geopm/src/agent.rs crates/geopm/src/endpoint.rs crates/geopm/src/platformio.rs crates/geopm/src/report.rs crates/geopm/src/runtime.rs crates/geopm/src/trace.rs crates/geopm/src/tree.rs

/root/repo/target/release/deps/libanor_geopm-f43852300808fd9f.rmeta: crates/geopm/src/lib.rs crates/geopm/src/agent.rs crates/geopm/src/endpoint.rs crates/geopm/src/platformio.rs crates/geopm/src/report.rs crates/geopm/src/runtime.rs crates/geopm/src/trace.rs crates/geopm/src/tree.rs

crates/geopm/src/lib.rs:
crates/geopm/src/agent.rs:
crates/geopm/src/endpoint.rs:
crates/geopm/src/platformio.rs:
crates/geopm/src/report.rs:
crates/geopm/src/runtime.rs:
crates/geopm/src/trace.rs:
crates/geopm/src/tree.rs:
