/root/repo/target/release/deps/anor_types-b9c22d9965a6635a.d: crates/types/src/lib.rs crates/types/src/catalog.rs crates/types/src/curve.rs crates/types/src/error.rs crates/types/src/ids.rs crates/types/src/jobtype.rs crates/types/src/msg.rs crates/types/src/qos.rs crates/types/src/stats.rs crates/types/src/units.rs

/root/repo/target/release/deps/libanor_types-b9c22d9965a6635a.rlib: crates/types/src/lib.rs crates/types/src/catalog.rs crates/types/src/curve.rs crates/types/src/error.rs crates/types/src/ids.rs crates/types/src/jobtype.rs crates/types/src/msg.rs crates/types/src/qos.rs crates/types/src/stats.rs crates/types/src/units.rs

/root/repo/target/release/deps/libanor_types-b9c22d9965a6635a.rmeta: crates/types/src/lib.rs crates/types/src/catalog.rs crates/types/src/curve.rs crates/types/src/error.rs crates/types/src/ids.rs crates/types/src/jobtype.rs crates/types/src/msg.rs crates/types/src/qos.rs crates/types/src/stats.rs crates/types/src/units.rs

crates/types/src/lib.rs:
crates/types/src/catalog.rs:
crates/types/src/curve.rs:
crates/types/src/error.rs:
crates/types/src/ids.rs:
crates/types/src/jobtype.rs:
crates/types/src/msg.rs:
crates/types/src/qos.rs:
crates/types/src/stats.rs:
crates/types/src/units.rs:
