/root/repo/target/release/deps/fig7-e48119bf6cee561b.d: crates/bench/src/bin/fig7.rs

/root/repo/target/release/deps/fig7-e48119bf6cee561b: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
