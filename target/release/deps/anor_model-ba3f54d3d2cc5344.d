/root/repo/target/release/deps/anor_model-ba3f54d3d2cc5344.d: crates/model/src/lib.rs crates/model/src/drift.rs crates/model/src/epoch_detect.rs crates/model/src/fit.rs crates/model/src/modeler.rs crates/model/src/window.rs

/root/repo/target/release/deps/libanor_model-ba3f54d3d2cc5344.rlib: crates/model/src/lib.rs crates/model/src/drift.rs crates/model/src/epoch_detect.rs crates/model/src/fit.rs crates/model/src/modeler.rs crates/model/src/window.rs

/root/repo/target/release/deps/libanor_model-ba3f54d3d2cc5344.rmeta: crates/model/src/lib.rs crates/model/src/drift.rs crates/model/src/epoch_detect.rs crates/model/src/fit.rs crates/model/src/modeler.rs crates/model/src/window.rs

crates/model/src/lib.rs:
crates/model/src/drift.rs:
crates/model/src/epoch_detect.rs:
crates/model/src/fit.rs:
crates/model/src/modeler.rs:
crates/model/src/window.rs:
