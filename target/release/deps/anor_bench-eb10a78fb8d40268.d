/root/repo/target/release/deps/anor_bench-eb10a78fb8d40268.d: crates/bench/src/lib.rs crates/bench/src/analyze.rs

/root/repo/target/release/deps/libanor_bench-eb10a78fb8d40268.rlib: crates/bench/src/lib.rs crates/bench/src/analyze.rs

/root/repo/target/release/deps/libanor_bench-eb10a78fb8d40268.rmeta: crates/bench/src/lib.rs crates/bench/src/analyze.rs

crates/bench/src/lib.rs:
crates/bench/src/analyze.rs:
