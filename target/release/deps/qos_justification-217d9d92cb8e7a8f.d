/root/repo/target/release/deps/qos_justification-217d9d92cb8e7a8f.d: crates/bench/src/bin/qos_justification.rs

/root/repo/target/release/deps/qos_justification-217d9d92cb8e7a8f: crates/bench/src/bin/qos_justification.rs

crates/bench/src/bin/qos_justification.rs:
