/root/repo/target/release/deps/anor_platform-4c6cd5c7e2fcb15d.d: crates/platform/src/lib.rs crates/platform/src/msr.rs crates/platform/src/node.rs crates/platform/src/phases.rs crates/platform/src/rapl.rs crates/platform/src/variation.rs crates/platform/src/workload.rs

/root/repo/target/release/deps/libanor_platform-4c6cd5c7e2fcb15d.rlib: crates/platform/src/lib.rs crates/platform/src/msr.rs crates/platform/src/node.rs crates/platform/src/phases.rs crates/platform/src/rapl.rs crates/platform/src/variation.rs crates/platform/src/workload.rs

/root/repo/target/release/deps/libanor_platform-4c6cd5c7e2fcb15d.rmeta: crates/platform/src/lib.rs crates/platform/src/msr.rs crates/platform/src/node.rs crates/platform/src/phases.rs crates/platform/src/rapl.rs crates/platform/src/variation.rs crates/platform/src/workload.rs

crates/platform/src/lib.rs:
crates/platform/src/msr.rs:
crates/platform/src/node.rs:
crates/platform/src/phases.rs:
crates/platform/src/rapl.rs:
crates/platform/src/variation.rs:
crates/platform/src/workload.rs:
