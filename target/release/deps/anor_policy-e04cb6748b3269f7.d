/root/repo/target/release/deps/anor_policy-e04cb6748b3269f7.d: crates/policy/src/lib.rs crates/policy/src/budgeter.rs crates/policy/src/facility.rs crates/policy/src/job_view.rs crates/policy/src/misclassify.rs crates/policy/src/slowdown.rs

/root/repo/target/release/deps/libanor_policy-e04cb6748b3269f7.rlib: crates/policy/src/lib.rs crates/policy/src/budgeter.rs crates/policy/src/facility.rs crates/policy/src/job_view.rs crates/policy/src/misclassify.rs crates/policy/src/slowdown.rs

/root/repo/target/release/deps/libanor_policy-e04cb6748b3269f7.rmeta: crates/policy/src/lib.rs crates/policy/src/budgeter.rs crates/policy/src/facility.rs crates/policy/src/job_view.rs crates/policy/src/misclassify.rs crates/policy/src/slowdown.rs

crates/policy/src/lib.rs:
crates/policy/src/budgeter.rs:
crates/policy/src/facility.rs:
crates/policy/src/job_view.rs:
crates/policy/src/misclassify.rs:
crates/policy/src/slowdown.rs:
