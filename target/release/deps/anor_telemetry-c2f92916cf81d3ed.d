/root/repo/target/release/deps/anor_telemetry-c2f92916cf81d3ed.d: crates/telemetry/src/lib.rs crates/telemetry/src/registry.rs crates/telemetry/src/render.rs crates/telemetry/src/sink.rs crates/telemetry/src/span.rs crates/telemetry/src/trace.rs

/root/repo/target/release/deps/libanor_telemetry-c2f92916cf81d3ed.rlib: crates/telemetry/src/lib.rs crates/telemetry/src/registry.rs crates/telemetry/src/render.rs crates/telemetry/src/sink.rs crates/telemetry/src/span.rs crates/telemetry/src/trace.rs

/root/repo/target/release/deps/libanor_telemetry-c2f92916cf81d3ed.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/registry.rs crates/telemetry/src/render.rs crates/telemetry/src/sink.rs crates/telemetry/src/span.rs crates/telemetry/src/trace.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/registry.rs:
crates/telemetry/src/render.rs:
crates/telemetry/src/sink.rs:
crates/telemetry/src/span.rs:
crates/telemetry/src/trace.rs:
