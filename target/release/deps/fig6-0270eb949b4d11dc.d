/root/repo/target/release/deps/fig6-0270eb949b4d11dc.d: crates/bench/src/bin/fig6.rs

/root/repo/target/release/deps/fig6-0270eb949b4d11dc: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
