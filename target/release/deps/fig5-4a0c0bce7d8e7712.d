/root/repo/target/release/deps/fig5-4a0c0bce7d8e7712.d: crates/bench/src/bin/fig5.rs

/root/repo/target/release/deps/fig5-4a0c0bce7d8e7712: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
