/root/repo/target/release/deps/anor_trace-a2f2897b930ea0fd.d: crates/bench/src/bin/anor_trace.rs

/root/repo/target/release/deps/anor_trace-a2f2897b930ea0fd: crates/bench/src/bin/anor_trace.rs

crates/bench/src/bin/anor_trace.rs:
