/root/repo/target/release/deps/anor_model-d574ef242ae219b5.d: crates/model/src/lib.rs crates/model/src/drift.rs crates/model/src/epoch_detect.rs crates/model/src/fit.rs crates/model/src/modeler.rs crates/model/src/window.rs

/root/repo/target/release/deps/libanor_model-d574ef242ae219b5.rlib: crates/model/src/lib.rs crates/model/src/drift.rs crates/model/src/epoch_detect.rs crates/model/src/fit.rs crates/model/src/modeler.rs crates/model/src/window.rs

/root/repo/target/release/deps/libanor_model-d574ef242ae219b5.rmeta: crates/model/src/lib.rs crates/model/src/drift.rs crates/model/src/epoch_detect.rs crates/model/src/fit.rs crates/model/src/modeler.rs crates/model/src/window.rs

crates/model/src/lib.rs:
crates/model/src/drift.rs:
crates/model/src/epoch_detect.rs:
crates/model/src/fit.rs:
crates/model/src/modeler.rs:
crates/model/src/window.rs:
