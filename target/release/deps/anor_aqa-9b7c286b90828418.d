/root/repo/target/release/deps/anor_aqa-9b7c286b90828418.d: crates/aqa/src/lib.rs crates/aqa/src/bid.rs crates/aqa/src/queue.rs crates/aqa/src/regulation.rs crates/aqa/src/schedule.rs crates/aqa/src/tracking.rs crates/aqa/src/train.rs

/root/repo/target/release/deps/libanor_aqa-9b7c286b90828418.rlib: crates/aqa/src/lib.rs crates/aqa/src/bid.rs crates/aqa/src/queue.rs crates/aqa/src/regulation.rs crates/aqa/src/schedule.rs crates/aqa/src/tracking.rs crates/aqa/src/train.rs

/root/repo/target/release/deps/libanor_aqa-9b7c286b90828418.rmeta: crates/aqa/src/lib.rs crates/aqa/src/bid.rs crates/aqa/src/queue.rs crates/aqa/src/regulation.rs crates/aqa/src/schedule.rs crates/aqa/src/tracking.rs crates/aqa/src/train.rs

crates/aqa/src/lib.rs:
crates/aqa/src/bid.rs:
crates/aqa/src/queue.rs:
crates/aqa/src/regulation.rs:
crates/aqa/src/schedule.rs:
crates/aqa/src/tracking.rs:
crates/aqa/src/train.rs:
