/root/repo/target/release/deps/anor_cluster-d5495abd5db0fc2e.d: crates/cluster/src/lib.rs crates/cluster/src/budgeter.rs crates/cluster/src/cli.rs crates/cluster/src/codec.rs crates/cluster/src/emulator.rs crates/cluster/src/endpoint.rs

/root/repo/target/release/deps/libanor_cluster-d5495abd5db0fc2e.rlib: crates/cluster/src/lib.rs crates/cluster/src/budgeter.rs crates/cluster/src/cli.rs crates/cluster/src/codec.rs crates/cluster/src/emulator.rs crates/cluster/src/endpoint.rs

/root/repo/target/release/deps/libanor_cluster-d5495abd5db0fc2e.rmeta: crates/cluster/src/lib.rs crates/cluster/src/budgeter.rs crates/cluster/src/cli.rs crates/cluster/src/codec.rs crates/cluster/src/emulator.rs crates/cluster/src/endpoint.rs

crates/cluster/src/lib.rs:
crates/cluster/src/budgeter.rs:
crates/cluster/src/cli.rs:
crates/cluster/src/codec.rs:
crates/cluster/src/emulator.rs:
crates/cluster/src/endpoint.rs:
