/root/repo/target/release/deps/anor_sim-5da3a6f61d8dd10f.d: crates/sim/src/lib.rs crates/sim/src/history.rs crates/sim/src/policy.rs crates/sim/src/sim.rs crates/sim/src/table.rs

/root/repo/target/release/deps/libanor_sim-5da3a6f61d8dd10f.rlib: crates/sim/src/lib.rs crates/sim/src/history.rs crates/sim/src/policy.rs crates/sim/src/sim.rs crates/sim/src/table.rs

/root/repo/target/release/deps/libanor_sim-5da3a6f61d8dd10f.rmeta: crates/sim/src/lib.rs crates/sim/src/history.rs crates/sim/src/policy.rs crates/sim/src/sim.rs crates/sim/src/table.rs

crates/sim/src/lib.rs:
crates/sim/src/history.rs:
crates/sim/src/policy.rs:
crates/sim/src/sim.rs:
crates/sim/src/table.rs:
