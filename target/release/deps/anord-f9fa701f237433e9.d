/root/repo/target/release/deps/anord-f9fa701f237433e9.d: crates/cluster/src/bin/anord.rs

/root/repo/target/release/deps/anord-f9fa701f237433e9: crates/cluster/src/bin/anord.rs

crates/cluster/src/bin/anord.rs:
