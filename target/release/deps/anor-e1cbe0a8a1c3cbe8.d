/root/repo/target/release/deps/anor-e1cbe0a8a1c3cbe8.d: src/lib.rs

/root/repo/target/release/deps/libanor-e1cbe0a8a1c3cbe8.rlib: src/lib.rs

/root/repo/target/release/deps/libanor-e1cbe0a8a1c3cbe8.rmeta: src/lib.rs

src/lib.rs:
