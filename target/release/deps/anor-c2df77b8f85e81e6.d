/root/repo/target/release/deps/anor-c2df77b8f85e81e6.d: src/lib.rs

/root/repo/target/release/deps/libanor-c2df77b8f85e81e6.rlib: src/lib.rs

/root/repo/target/release/deps/libanor-c2df77b8f85e81e6.rmeta: src/lib.rs

src/lib.rs:
