/root/repo/target/release/deps/fig8-c9f6ff7551e77b04.d: crates/bench/src/bin/fig8.rs

/root/repo/target/release/deps/fig8-c9f6ff7551e77b04: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
