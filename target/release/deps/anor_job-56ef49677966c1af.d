/root/repo/target/release/deps/anor_job-56ef49677966c1af.d: crates/cluster/src/bin/anor_job.rs

/root/repo/target/release/deps/anor_job-56ef49677966c1af: crates/cluster/src/bin/anor_job.rs

crates/cluster/src/bin/anor_job.rs:
