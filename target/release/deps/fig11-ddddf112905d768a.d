/root/repo/target/release/deps/fig11-ddddf112905d768a.d: crates/bench/src/bin/fig11.rs

/root/repo/target/release/deps/fig11-ddddf112905d768a: crates/bench/src/bin/fig11.rs

crates/bench/src/bin/fig11.rs:
