/root/repo/target/release/deps/fig10-158f90736693e712.d: crates/bench/src/bin/fig10.rs

/root/repo/target/release/deps/fig10-158f90736693e712: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
