/root/repo/target/release/deps/anor_sim-e2b7966c81d68565.d: crates/sim/src/lib.rs crates/sim/src/history.rs crates/sim/src/policy.rs crates/sim/src/sim.rs crates/sim/src/table.rs

/root/repo/target/release/deps/libanor_sim-e2b7966c81d68565.rlib: crates/sim/src/lib.rs crates/sim/src/history.rs crates/sim/src/policy.rs crates/sim/src/sim.rs crates/sim/src/table.rs

/root/repo/target/release/deps/libanor_sim-e2b7966c81d68565.rmeta: crates/sim/src/lib.rs crates/sim/src/history.rs crates/sim/src/policy.rs crates/sim/src/sim.rs crates/sim/src/table.rs

crates/sim/src/lib.rs:
crates/sim/src/history.rs:
crates/sim/src/policy.rs:
crates/sim/src/sim.rs:
crates/sim/src/table.rs:
