/root/repo/target/release/deps/anorsim-05035842ee6a7281.d: crates/sim/src/bin/anorsim.rs

/root/repo/target/release/deps/anorsim-05035842ee6a7281: crates/sim/src/bin/anorsim.rs

crates/sim/src/bin/anorsim.rs:
