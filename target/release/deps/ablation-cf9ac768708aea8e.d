/root/repo/target/release/deps/ablation-cf9ac768708aea8e.d: crates/bench/src/bin/ablation.rs

/root/repo/target/release/deps/ablation-cf9ac768708aea8e: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
