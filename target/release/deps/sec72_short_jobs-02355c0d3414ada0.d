/root/repo/target/release/deps/sec72_short_jobs-02355c0d3414ada0.d: crates/bench/src/bin/sec72_short_jobs.rs

/root/repo/target/release/deps/sec72_short_jobs-02355c0d3414ada0: crates/bench/src/bin/sec72_short_jobs.rs

crates/bench/src/bin/sec72_short_jobs.rs:
