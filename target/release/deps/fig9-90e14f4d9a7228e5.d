/root/repo/target/release/deps/fig9-90e14f4d9a7228e5.d: crates/bench/src/bin/fig9.rs

/root/repo/target/release/deps/fig9-90e14f4d9a7228e5: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
