/root/repo/target/release/deps/fig4-8dc50998c33886d3.d: crates/bench/src/bin/fig4.rs

/root/repo/target/release/deps/fig4-8dc50998c33886d3: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
