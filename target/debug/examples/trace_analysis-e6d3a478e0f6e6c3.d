/root/repo/target/debug/examples/trace_analysis-e6d3a478e0f6e6c3.d: examples/trace_analysis.rs

/root/repo/target/debug/examples/trace_analysis-e6d3a478e0f6e6c3: examples/trace_analysis.rs

examples/trace_analysis.rs:
