/root/repo/target/debug/examples/daemon_files-ae9976f3135f7888.d: examples/daemon_files.rs

/root/repo/target/debug/examples/daemon_files-ae9976f3135f7888: examples/daemon_files.rs

examples/daemon_files.rs:
