/root/repo/target/debug/examples/quickstart-f4b575fecb2589f5.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-f4b575fecb2589f5: examples/quickstart.rs

examples/quickstart.rs:
