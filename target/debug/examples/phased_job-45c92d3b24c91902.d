/root/repo/target/debug/examples/phased_job-45c92d3b24c91902.d: examples/phased_job.rs

/root/repo/target/debug/examples/phased_job-45c92d3b24c91902: examples/phased_job.rs

examples/phased_job.rs:
