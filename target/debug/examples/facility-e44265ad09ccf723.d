/root/repo/target/debug/examples/facility-e44265ad09ccf723.d: examples/facility.rs Cargo.toml

/root/repo/target/debug/examples/libfacility-e44265ad09ccf723.rmeta: examples/facility.rs Cargo.toml

examples/facility.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
