/root/repo/target/debug/examples/misclassification-e7667bad1cfd6957.d: examples/misclassification.rs

/root/repo/target/debug/examples/misclassification-e7667bad1cfd6957: examples/misclassification.rs

examples/misclassification.rs:
