/root/repo/target/debug/examples/facility-ff056c06b8dc0bd6.d: examples/facility.rs

/root/repo/target/debug/examples/facility-ff056c06b8dc0bd6: examples/facility.rs

examples/facility.rs:
