/root/repo/target/debug/examples/hourly_bidding-ff5540b2e7fe9f4c.d: examples/hourly_bidding.rs

/root/repo/target/debug/examples/hourly_bidding-ff5540b2e7fe9f4c: examples/hourly_bidding.rs

examples/hourly_bidding.rs:
