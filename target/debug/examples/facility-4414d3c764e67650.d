/root/repo/target/debug/examples/facility-4414d3c764e67650.d: examples/facility.rs

/root/repo/target/debug/examples/facility-4414d3c764e67650: examples/facility.rs

examples/facility.rs:
