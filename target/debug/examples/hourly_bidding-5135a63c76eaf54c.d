/root/repo/target/debug/examples/hourly_bidding-5135a63c76eaf54c.d: examples/hourly_bidding.rs Cargo.toml

/root/repo/target/debug/examples/libhourly_bidding-5135a63c76eaf54c.rmeta: examples/hourly_bidding.rs Cargo.toml

examples/hourly_bidding.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
