/root/repo/target/debug/examples/demand_response-e6c5ba191705707f.d: examples/demand_response.rs Cargo.toml

/root/repo/target/debug/examples/libdemand_response-e6c5ba191705707f.rmeta: examples/demand_response.rs Cargo.toml

examples/demand_response.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
