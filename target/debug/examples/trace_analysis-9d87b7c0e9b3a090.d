/root/repo/target/debug/examples/trace_analysis-9d87b7c0e9b3a090.d: examples/trace_analysis.rs

/root/repo/target/debug/examples/trace_analysis-9d87b7c0e9b3a090: examples/trace_analysis.rs

examples/trace_analysis.rs:
