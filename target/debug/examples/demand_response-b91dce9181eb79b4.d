/root/repo/target/debug/examples/demand_response-b91dce9181eb79b4.d: examples/demand_response.rs

/root/repo/target/debug/examples/demand_response-b91dce9181eb79b4: examples/demand_response.rs

examples/demand_response.rs:
