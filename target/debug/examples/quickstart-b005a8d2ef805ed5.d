/root/repo/target/debug/examples/quickstart-b005a8d2ef805ed5.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-b005a8d2ef805ed5: examples/quickstart.rs

examples/quickstart.rs:
