/root/repo/target/debug/examples/phased_job-fab42282b1469a63.d: examples/phased_job.rs

/root/repo/target/debug/examples/phased_job-fab42282b1469a63: examples/phased_job.rs

examples/phased_job.rs:
