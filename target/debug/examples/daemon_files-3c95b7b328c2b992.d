/root/repo/target/debug/examples/daemon_files-3c95b7b328c2b992.d: examples/daemon_files.rs Cargo.toml

/root/repo/target/debug/examples/libdaemon_files-3c95b7b328c2b992.rmeta: examples/daemon_files.rs Cargo.toml

examples/daemon_files.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
