/root/repo/target/debug/examples/misclassification-92a7d941bbfbbdcd.d: examples/misclassification.rs

/root/repo/target/debug/examples/misclassification-92a7d941bbfbbdcd: examples/misclassification.rs

examples/misclassification.rs:
