/root/repo/target/debug/examples/demand_response-e05d29a01bc0dfc4.d: examples/demand_response.rs

/root/repo/target/debug/examples/demand_response-e05d29a01bc0dfc4: examples/demand_response.rs

examples/demand_response.rs:
