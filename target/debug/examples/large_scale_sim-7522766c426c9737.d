/root/repo/target/debug/examples/large_scale_sim-7522766c426c9737.d: examples/large_scale_sim.rs

/root/repo/target/debug/examples/large_scale_sim-7522766c426c9737: examples/large_scale_sim.rs

examples/large_scale_sim.rs:
