/root/repo/target/debug/examples/misclassification-62fda9ce3c2ea620.d: examples/misclassification.rs Cargo.toml

/root/repo/target/debug/examples/libmisclassification-62fda9ce3c2ea620.rmeta: examples/misclassification.rs Cargo.toml

examples/misclassification.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
