/root/repo/target/debug/examples/large_scale_sim-64bf3aa0440aa03d.d: examples/large_scale_sim.rs Cargo.toml

/root/repo/target/debug/examples/liblarge_scale_sim-64bf3aa0440aa03d.rmeta: examples/large_scale_sim.rs Cargo.toml

examples/large_scale_sim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
