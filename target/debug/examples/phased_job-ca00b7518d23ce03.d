/root/repo/target/debug/examples/phased_job-ca00b7518d23ce03.d: examples/phased_job.rs Cargo.toml

/root/repo/target/debug/examples/libphased_job-ca00b7518d23ce03.rmeta: examples/phased_job.rs Cargo.toml

examples/phased_job.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
