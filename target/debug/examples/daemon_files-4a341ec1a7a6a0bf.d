/root/repo/target/debug/examples/daemon_files-4a341ec1a7a6a0bf.d: examples/daemon_files.rs

/root/repo/target/debug/examples/daemon_files-4a341ec1a7a6a0bf: examples/daemon_files.rs

examples/daemon_files.rs:
