/root/repo/target/debug/examples/hourly_bidding-b4c2a6c699096511.d: examples/hourly_bidding.rs

/root/repo/target/debug/examples/hourly_bidding-b4c2a6c699096511: examples/hourly_bidding.rs

examples/hourly_bidding.rs:
