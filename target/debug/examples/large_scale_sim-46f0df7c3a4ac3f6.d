/root/repo/target/debug/examples/large_scale_sim-46f0df7c3a4ac3f6.d: examples/large_scale_sim.rs

/root/repo/target/debug/examples/large_scale_sim-46f0df7c3a4ac3f6: examples/large_scale_sim.rs

examples/large_scale_sim.rs:
