/root/repo/target/debug/deps/trace_postmortem-519e2aaad854cdbd.d: crates/cluster/tests/trace_postmortem.rs

/root/repo/target/debug/deps/trace_postmortem-519e2aaad854cdbd: crates/cluster/tests/trace_postmortem.rs

crates/cluster/tests/trace_postmortem.rs:
