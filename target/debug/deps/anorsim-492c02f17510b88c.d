/root/repo/target/debug/deps/anorsim-492c02f17510b88c.d: crates/sim/src/bin/anorsim.rs Cargo.toml

/root/repo/target/debug/deps/libanorsim-492c02f17510b88c.rmeta: crates/sim/src/bin/anorsim.rs Cargo.toml

crates/sim/src/bin/anorsim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
