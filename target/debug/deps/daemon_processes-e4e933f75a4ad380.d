/root/repo/target/debug/deps/daemon_processes-e4e933f75a4ad380.d: crates/cluster/tests/daemon_processes.rs

/root/repo/target/debug/deps/daemon_processes-e4e933f75a4ad380: crates/cluster/tests/daemon_processes.rs

crates/cluster/tests/daemon_processes.rs:

# env-dep:CARGO_BIN_EXE_anor-job=/root/repo/target/debug/anor-job
# env-dep:CARGO_BIN_EXE_anord=/root/repo/target/debug/anord
