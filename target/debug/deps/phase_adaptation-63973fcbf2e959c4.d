/root/repo/target/debug/deps/phase_adaptation-63973fcbf2e959c4.d: tests/phase_adaptation.rs

/root/repo/target/debug/deps/phase_adaptation-63973fcbf2e959c4: tests/phase_adaptation.rs

tests/phase_adaptation.rs:
