/root/repo/target/debug/deps/anor_geopm-7aadab03560831cd.d: crates/geopm/src/lib.rs crates/geopm/src/agent.rs crates/geopm/src/endpoint.rs crates/geopm/src/platformio.rs crates/geopm/src/report.rs crates/geopm/src/runtime.rs crates/geopm/src/trace.rs crates/geopm/src/tree.rs

/root/repo/target/debug/deps/anor_geopm-7aadab03560831cd: crates/geopm/src/lib.rs crates/geopm/src/agent.rs crates/geopm/src/endpoint.rs crates/geopm/src/platformio.rs crates/geopm/src/report.rs crates/geopm/src/runtime.rs crates/geopm/src/trace.rs crates/geopm/src/tree.rs

crates/geopm/src/lib.rs:
crates/geopm/src/agent.rs:
crates/geopm/src/endpoint.rs:
crates/geopm/src/platformio.rs:
crates/geopm/src/report.rs:
crates/geopm/src/runtime.rs:
crates/geopm/src/trace.rs:
crates/geopm/src/tree.rs:
