/root/repo/target/debug/deps/sec72_short_jobs-d8f11e840390e1ca.d: crates/bench/src/bin/sec72_short_jobs.rs Cargo.toml

/root/repo/target/debug/deps/libsec72_short_jobs-d8f11e840390e1ca.rmeta: crates/bench/src/bin/sec72_short_jobs.rs Cargo.toml

crates/bench/src/bin/sec72_short_jobs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
