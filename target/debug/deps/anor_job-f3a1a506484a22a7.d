/root/repo/target/debug/deps/anor_job-f3a1a506484a22a7.d: crates/cluster/src/bin/anor_job.rs

/root/repo/target/debug/deps/anor_job-f3a1a506484a22a7: crates/cluster/src/bin/anor_job.rs

crates/cluster/src/bin/anor_job.rs:
