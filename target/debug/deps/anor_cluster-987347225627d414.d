/root/repo/target/debug/deps/anor_cluster-987347225627d414.d: crates/cluster/src/lib.rs crates/cluster/src/budgeter.rs crates/cluster/src/cli.rs crates/cluster/src/codec.rs crates/cluster/src/emulator.rs crates/cluster/src/endpoint.rs

/root/repo/target/debug/deps/libanor_cluster-987347225627d414.rlib: crates/cluster/src/lib.rs crates/cluster/src/budgeter.rs crates/cluster/src/cli.rs crates/cluster/src/codec.rs crates/cluster/src/emulator.rs crates/cluster/src/endpoint.rs

/root/repo/target/debug/deps/libanor_cluster-987347225627d414.rmeta: crates/cluster/src/lib.rs crates/cluster/src/budgeter.rs crates/cluster/src/cli.rs crates/cluster/src/codec.rs crates/cluster/src/emulator.rs crates/cluster/src/endpoint.rs

crates/cluster/src/lib.rs:
crates/cluster/src/budgeter.rs:
crates/cluster/src/cli.rs:
crates/cluster/src/codec.rs:
crates/cluster/src/emulator.rs:
crates/cluster/src/endpoint.rs:
