/root/repo/target/debug/deps/qos_justification-1faf2bd9f4650772.d: crates/bench/src/bin/qos_justification.rs

/root/repo/target/debug/deps/qos_justification-1faf2bd9f4650772: crates/bench/src/bin/qos_justification.rs

crates/bench/src/bin/qos_justification.rs:
