/root/repo/target/debug/deps/sim_tick-535425d03c6caf12.d: crates/bench/benches/sim_tick.rs Cargo.toml

/root/repo/target/debug/deps/libsim_tick-535425d03c6caf12.rmeta: crates/bench/benches/sim_tick.rs Cargo.toml

crates/bench/benches/sim_tick.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
