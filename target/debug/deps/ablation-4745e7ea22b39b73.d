/root/repo/target/debug/deps/ablation-4745e7ea22b39b73.d: crates/bench/src/bin/ablation.rs

/root/repo/target/debug/deps/ablation-4745e7ea22b39b73: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
