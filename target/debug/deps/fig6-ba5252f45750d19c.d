/root/repo/target/debug/deps/fig6-ba5252f45750d19c.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-ba5252f45750d19c: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
