/root/repo/target/debug/deps/fig4_budgeters-fa619043c7019f27.d: crates/bench/benches/fig4_budgeters.rs

/root/repo/target/debug/deps/fig4_budgeters-fa619043c7019f27: crates/bench/benches/fig4_budgeters.rs

crates/bench/benches/fig4_budgeters.rs:
