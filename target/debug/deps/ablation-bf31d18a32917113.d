/root/repo/target/debug/deps/ablation-bf31d18a32917113.d: crates/bench/src/bin/ablation.rs

/root/repo/target/debug/deps/ablation-bf31d18a32917113: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
