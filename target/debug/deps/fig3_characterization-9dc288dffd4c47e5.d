/root/repo/target/debug/deps/fig3_characterization-9dc288dffd4c47e5.d: crates/bench/benches/fig3_characterization.rs Cargo.toml

/root/repo/target/debug/deps/libfig3_characterization-9dc288dffd4c47e5.rmeta: crates/bench/benches/fig3_characterization.rs Cargo.toml

crates/bench/benches/fig3_characterization.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
