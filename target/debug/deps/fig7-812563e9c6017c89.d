/root/repo/target/debug/deps/fig7-812563e9c6017c89.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-812563e9c6017c89: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
