/root/repo/target/debug/deps/fig9-6425ea81b43daa4a.d: crates/bench/src/bin/fig9.rs

/root/repo/target/debug/deps/fig9-6425ea81b43daa4a: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
