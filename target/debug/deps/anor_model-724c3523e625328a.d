/root/repo/target/debug/deps/anor_model-724c3523e625328a.d: crates/model/src/lib.rs crates/model/src/drift.rs crates/model/src/epoch_detect.rs crates/model/src/fit.rs crates/model/src/modeler.rs crates/model/src/window.rs

/root/repo/target/debug/deps/libanor_model-724c3523e625328a.rlib: crates/model/src/lib.rs crates/model/src/drift.rs crates/model/src/epoch_detect.rs crates/model/src/fit.rs crates/model/src/modeler.rs crates/model/src/window.rs

/root/repo/target/debug/deps/libanor_model-724c3523e625328a.rmeta: crates/model/src/lib.rs crates/model/src/drift.rs crates/model/src/epoch_detect.rs crates/model/src/fit.rs crates/model/src/modeler.rs crates/model/src/window.rs

crates/model/src/lib.rs:
crates/model/src/drift.rs:
crates/model/src/epoch_detect.rs:
crates/model/src/fit.rs:
crates/model/src/modeler.rs:
crates/model/src/window.rs:
