/root/repo/target/debug/deps/experiment_shapes-c622498f30e7b8e7.d: tests/experiment_shapes.rs

/root/repo/target/debug/deps/experiment_shapes-c622498f30e7b8e7: tests/experiment_shapes.rs

tests/experiment_shapes.rs:
