/root/repo/target/debug/deps/anor_model-012171166a4a2d90.d: crates/model/src/lib.rs crates/model/src/drift.rs crates/model/src/epoch_detect.rs crates/model/src/fit.rs crates/model/src/modeler.rs crates/model/src/window.rs

/root/repo/target/debug/deps/anor_model-012171166a4a2d90: crates/model/src/lib.rs crates/model/src/drift.rs crates/model/src/epoch_detect.rs crates/model/src/fit.rs crates/model/src/modeler.rs crates/model/src/window.rs

crates/model/src/lib.rs:
crates/model/src/drift.rs:
crates/model/src/epoch_detect.rs:
crates/model/src/fit.rs:
crates/model/src/modeler.rs:
crates/model/src/window.rs:
