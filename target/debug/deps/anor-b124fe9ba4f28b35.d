/root/repo/target/debug/deps/anor-b124fe9ba4f28b35.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libanor-b124fe9ba4f28b35.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
