/root/repo/target/debug/deps/qos_justification-470fc836e8811e56.d: crates/bench/src/bin/qos_justification.rs

/root/repo/target/debug/deps/qos_justification-470fc836e8811e56: crates/bench/src/bin/qos_justification.rs

crates/bench/src/bin/qos_justification.rs:
