/root/repo/target/debug/deps/facility_coordination-f3bc7e1bed229755.d: tests/facility_coordination.rs

/root/repo/target/debug/deps/facility_coordination-f3bc7e1bed229755: tests/facility_coordination.rs

tests/facility_coordination.rs:
