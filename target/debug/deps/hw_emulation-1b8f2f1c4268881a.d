/root/repo/target/debug/deps/hw_emulation-1b8f2f1c4268881a.d: crates/bench/benches/hw_emulation.rs

/root/repo/target/debug/deps/hw_emulation-1b8f2f1c4268881a: crates/bench/benches/hw_emulation.rs

crates/bench/benches/hw_emulation.rs:
