/root/repo/target/debug/deps/fig10-8a97956024dde246.d: crates/bench/src/bin/fig10.rs

/root/repo/target/debug/deps/fig10-8a97956024dde246: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
