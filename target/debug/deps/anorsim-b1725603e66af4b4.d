/root/repo/target/debug/deps/anorsim-b1725603e66af4b4.d: crates/sim/src/bin/anorsim.rs

/root/repo/target/debug/deps/anorsim-b1725603e66af4b4: crates/sim/src/bin/anorsim.rs

crates/sim/src/bin/anorsim.rs:
