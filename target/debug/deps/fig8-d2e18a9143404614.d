/root/repo/target/debug/deps/fig8-d2e18a9143404614.d: crates/bench/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-d2e18a9143404614: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
