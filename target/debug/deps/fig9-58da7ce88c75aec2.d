/root/repo/target/debug/deps/fig9-58da7ce88c75aec2.d: crates/bench/src/bin/fig9.rs

/root/repo/target/debug/deps/fig9-58da7ce88c75aec2: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
