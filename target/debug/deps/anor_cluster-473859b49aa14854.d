/root/repo/target/debug/deps/anor_cluster-473859b49aa14854.d: crates/cluster/src/lib.rs crates/cluster/src/budgeter.rs crates/cluster/src/cli.rs crates/cluster/src/codec.rs crates/cluster/src/emulator.rs crates/cluster/src/endpoint.rs

/root/repo/target/debug/deps/anor_cluster-473859b49aa14854: crates/cluster/src/lib.rs crates/cluster/src/budgeter.rs crates/cluster/src/cli.rs crates/cluster/src/codec.rs crates/cluster/src/emulator.rs crates/cluster/src/endpoint.rs

crates/cluster/src/lib.rs:
crates/cluster/src/budgeter.rs:
crates/cluster/src/cli.rs:
crates/cluster/src/codec.rs:
crates/cluster/src/emulator.rs:
crates/cluster/src/endpoint.rs:
