/root/repo/target/debug/deps/fig11-0c1ff51b2a24d530.d: crates/bench/src/bin/fig11.rs

/root/repo/target/debug/deps/fig11-0c1ff51b2a24d530: crates/bench/src/bin/fig11.rs

crates/bench/src/bin/fig11.rs:
