/root/repo/target/debug/deps/anord-2c063661cd5ae604.d: crates/cluster/src/bin/anord.rs

/root/repo/target/debug/deps/anord-2c063661cd5ae604: crates/cluster/src/bin/anord.rs

crates/cluster/src/bin/anord.rs:
