/root/repo/target/debug/deps/sim_invariants-809c4611e84698e0.d: tests/sim_invariants.rs

/root/repo/target/debug/deps/sim_invariants-809c4611e84698e0: tests/sim_invariants.rs

tests/sim_invariants.rs:
