/root/repo/target/debug/deps/anord-368af01bc274746c.d: crates/cluster/src/bin/anord.rs

/root/repo/target/debug/deps/anord-368af01bc274746c: crates/cluster/src/bin/anord.rs

crates/cluster/src/bin/anord.rs:
