/root/repo/target/debug/deps/anor_sim-6f547400e505e728.d: crates/sim/src/lib.rs crates/sim/src/history.rs crates/sim/src/policy.rs crates/sim/src/sim.rs crates/sim/src/table.rs

/root/repo/target/debug/deps/anor_sim-6f547400e505e728: crates/sim/src/lib.rs crates/sim/src/history.rs crates/sim/src/policy.rs crates/sim/src/sim.rs crates/sim/src/table.rs

crates/sim/src/lib.rs:
crates/sim/src/history.rs:
crates/sim/src/policy.rs:
crates/sim/src/sim.rs:
crates/sim/src/table.rs:
