/root/repo/target/debug/deps/fig3-808ad320d7289387.d: crates/bench/src/bin/fig3.rs Cargo.toml

/root/repo/target/debug/deps/libfig3-808ad320d7289387.rmeta: crates/bench/src/bin/fig3.rs Cargo.toml

crates/bench/src/bin/fig3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
