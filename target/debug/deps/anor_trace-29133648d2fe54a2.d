/root/repo/target/debug/deps/anor_trace-29133648d2fe54a2.d: crates/bench/src/bin/anor_trace.rs Cargo.toml

/root/repo/target/debug/deps/libanor_trace-29133648d2fe54a2.rmeta: crates/bench/src/bin/anor_trace.rs Cargo.toml

crates/bench/src/bin/anor_trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
