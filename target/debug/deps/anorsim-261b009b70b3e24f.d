/root/repo/target/debug/deps/anorsim-261b009b70b3e24f.d: crates/sim/src/bin/anorsim.rs

/root/repo/target/debug/deps/anorsim-261b009b70b3e24f: crates/sim/src/bin/anorsim.rs

crates/sim/src/bin/anorsim.rs:
