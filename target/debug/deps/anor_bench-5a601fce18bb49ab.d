/root/repo/target/debug/deps/anor_bench-5a601fce18bb49ab.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libanor_bench-5a601fce18bb49ab.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libanor_bench-5a601fce18bb49ab.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
