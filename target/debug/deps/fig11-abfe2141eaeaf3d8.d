/root/repo/target/debug/deps/fig11-abfe2141eaeaf3d8.d: crates/bench/src/bin/fig11.rs

/root/repo/target/debug/deps/fig11-abfe2141eaeaf3d8: crates/bench/src/bin/fig11.rs

crates/bench/src/bin/fig11.rs:
