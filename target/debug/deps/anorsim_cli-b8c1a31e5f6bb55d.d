/root/repo/target/debug/deps/anorsim_cli-b8c1a31e5f6bb55d.d: crates/sim/tests/anorsim_cli.rs Cargo.toml

/root/repo/target/debug/deps/libanorsim_cli-b8c1a31e5f6bb55d.rmeta: crates/sim/tests/anorsim_cli.rs Cargo.toml

crates/sim/tests/anorsim_cli.rs:
Cargo.toml:

# env-dep:CARGO_BIN_EXE_anorsim=placeholder:anorsim
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
