/root/repo/target/debug/deps/anor_job-6f4e5dcbb9495fe8.d: crates/cluster/src/bin/anor_job.rs

/root/repo/target/debug/deps/anor_job-6f4e5dcbb9495fe8: crates/cluster/src/bin/anor_job.rs

crates/cluster/src/bin/anor_job.rs:
