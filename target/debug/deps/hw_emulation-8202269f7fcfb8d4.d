/root/repo/target/debug/deps/hw_emulation-8202269f7fcfb8d4.d: crates/bench/benches/hw_emulation.rs

/root/repo/target/debug/deps/hw_emulation-8202269f7fcfb8d4: crates/bench/benches/hw_emulation.rs

crates/bench/benches/hw_emulation.rs:
