/root/repo/target/debug/deps/anor_bench-6e369a036eb5b77d.d: crates/bench/src/lib.rs crates/bench/src/analyze.rs Cargo.toml

/root/repo/target/debug/deps/libanor_bench-6e369a036eb5b77d.rmeta: crates/bench/src/lib.rs crates/bench/src/analyze.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/analyze.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
