/root/repo/target/debug/deps/fig8-4f5ec9e932d805f3.d: crates/bench/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-4f5ec9e932d805f3: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
