/root/repo/target/debug/deps/phase_adaptation-307a52e7bf34887a.d: tests/phase_adaptation.rs

/root/repo/target/debug/deps/phase_adaptation-307a52e7bf34887a: tests/phase_adaptation.rs

tests/phase_adaptation.rs:
