/root/repo/target/debug/deps/anor_job-e238476c7425f333.d: crates/cluster/src/bin/anor_job.rs Cargo.toml

/root/repo/target/debug/deps/libanor_job-e238476c7425f333.rmeta: crates/cluster/src/bin/anor_job.rs Cargo.toml

crates/cluster/src/bin/anor_job.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
