/root/repo/target/debug/deps/runtime_components-c33496ca4306ce0a.d: crates/bench/benches/runtime_components.rs

/root/repo/target/debug/deps/runtime_components-c33496ca4306ce0a: crates/bench/benches/runtime_components.rs

crates/bench/benches/runtime_components.rs:
