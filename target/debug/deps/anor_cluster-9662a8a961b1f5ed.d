/root/repo/target/debug/deps/anor_cluster-9662a8a961b1f5ed.d: crates/cluster/src/lib.rs crates/cluster/src/budgeter.rs crates/cluster/src/cli.rs crates/cluster/src/codec.rs crates/cluster/src/emulator.rs crates/cluster/src/endpoint.rs Cargo.toml

/root/repo/target/debug/deps/libanor_cluster-9662a8a961b1f5ed.rmeta: crates/cluster/src/lib.rs crates/cluster/src/budgeter.rs crates/cluster/src/cli.rs crates/cluster/src/codec.rs crates/cluster/src/emulator.rs crates/cluster/src/endpoint.rs Cargo.toml

crates/cluster/src/lib.rs:
crates/cluster/src/budgeter.rs:
crates/cluster/src/cli.rs:
crates/cluster/src/codec.rs:
crates/cluster/src/emulator.rs:
crates/cluster/src/endpoint.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
