/root/repo/target/debug/deps/anor_sim-85955082020a258e.d: crates/sim/src/lib.rs crates/sim/src/history.rs crates/sim/src/policy.rs crates/sim/src/sim.rs crates/sim/src/table.rs

/root/repo/target/debug/deps/libanor_sim-85955082020a258e.rlib: crates/sim/src/lib.rs crates/sim/src/history.rs crates/sim/src/policy.rs crates/sim/src/sim.rs crates/sim/src/table.rs

/root/repo/target/debug/deps/libanor_sim-85955082020a258e.rmeta: crates/sim/src/lib.rs crates/sim/src/history.rs crates/sim/src/policy.rs crates/sim/src/sim.rs crates/sim/src/table.rs

crates/sim/src/lib.rs:
crates/sim/src/history.rs:
crates/sim/src/policy.rs:
crates/sim/src/sim.rs:
crates/sim/src/table.rs:
