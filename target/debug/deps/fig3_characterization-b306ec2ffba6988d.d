/root/repo/target/debug/deps/fig3_characterization-b306ec2ffba6988d.d: crates/bench/benches/fig3_characterization.rs

/root/repo/target/debug/deps/fig3_characterization-b306ec2ffba6988d: crates/bench/benches/fig3_characterization.rs

crates/bench/benches/fig3_characterization.rs:
