/root/repo/target/debug/deps/fig3-030d0edc2efa4dde.d: crates/bench/src/bin/fig3.rs

/root/repo/target/debug/deps/fig3-030d0edc2efa4dde: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
