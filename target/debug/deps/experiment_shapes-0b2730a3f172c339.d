/root/repo/target/debug/deps/experiment_shapes-0b2730a3f172c339.d: tests/experiment_shapes.rs

/root/repo/target/debug/deps/experiment_shapes-0b2730a3f172c339: tests/experiment_shapes.rs

tests/experiment_shapes.rs:
