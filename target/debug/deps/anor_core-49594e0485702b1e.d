/root/repo/target/debug/deps/anor_core-49594e0485702b1e.d: crates/anor/src/lib.rs crates/anor/src/bidding.rs crates/anor/src/experiments/mod.rs crates/anor/src/experiments/ablation.rs crates/anor/src/experiments/fig10.rs crates/anor/src/experiments/fig11.rs crates/anor/src/experiments/fig3.rs crates/anor/src/experiments/fig4.rs crates/anor/src/experiments/fig5.rs crates/anor/src/experiments/fig6.rs crates/anor/src/experiments/fig7.rs crates/anor/src/experiments/fig8.rs crates/anor/src/experiments/fig9.rs crates/anor/src/experiments/hw.rs crates/anor/src/experiments/multihour.rs crates/anor/src/render.rs crates/anor/src/training.rs Cargo.toml

/root/repo/target/debug/deps/libanor_core-49594e0485702b1e.rmeta: crates/anor/src/lib.rs crates/anor/src/bidding.rs crates/anor/src/experiments/mod.rs crates/anor/src/experiments/ablation.rs crates/anor/src/experiments/fig10.rs crates/anor/src/experiments/fig11.rs crates/anor/src/experiments/fig3.rs crates/anor/src/experiments/fig4.rs crates/anor/src/experiments/fig5.rs crates/anor/src/experiments/fig6.rs crates/anor/src/experiments/fig7.rs crates/anor/src/experiments/fig8.rs crates/anor/src/experiments/fig9.rs crates/anor/src/experiments/hw.rs crates/anor/src/experiments/multihour.rs crates/anor/src/render.rs crates/anor/src/training.rs Cargo.toml

crates/anor/src/lib.rs:
crates/anor/src/bidding.rs:
crates/anor/src/experiments/mod.rs:
crates/anor/src/experiments/ablation.rs:
crates/anor/src/experiments/fig10.rs:
crates/anor/src/experiments/fig11.rs:
crates/anor/src/experiments/fig3.rs:
crates/anor/src/experiments/fig4.rs:
crates/anor/src/experiments/fig5.rs:
crates/anor/src/experiments/fig6.rs:
crates/anor/src/experiments/fig7.rs:
crates/anor/src/experiments/fig8.rs:
crates/anor/src/experiments/fig9.rs:
crates/anor/src/experiments/hw.rs:
crates/anor/src/experiments/multihour.rs:
crates/anor/src/render.rs:
crates/anor/src/training.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
