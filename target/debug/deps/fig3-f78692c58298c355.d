/root/repo/target/debug/deps/fig3-f78692c58298c355.d: crates/bench/src/bin/fig3.rs

/root/repo/target/debug/deps/fig3-f78692c58298c355: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
