/root/repo/target/debug/deps/fig8-5c3ea974844f0a90.d: crates/bench/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-5c3ea974844f0a90: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
