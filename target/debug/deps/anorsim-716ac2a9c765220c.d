/root/repo/target/debug/deps/anorsim-716ac2a9c765220c.d: crates/sim/src/bin/anorsim.rs

/root/repo/target/debug/deps/anorsim-716ac2a9c765220c: crates/sim/src/bin/anorsim.rs

crates/sim/src/bin/anorsim.rs:
