/root/repo/target/debug/deps/anor_platform-8e1c5f88cb6f2ab5.d: crates/platform/src/lib.rs crates/platform/src/msr.rs crates/platform/src/node.rs crates/platform/src/phases.rs crates/platform/src/rapl.rs crates/platform/src/variation.rs crates/platform/src/workload.rs

/root/repo/target/debug/deps/anor_platform-8e1c5f88cb6f2ab5: crates/platform/src/lib.rs crates/platform/src/msr.rs crates/platform/src/node.rs crates/platform/src/phases.rs crates/platform/src/rapl.rs crates/platform/src/variation.rs crates/platform/src/workload.rs

crates/platform/src/lib.rs:
crates/platform/src/msr.rs:
crates/platform/src/node.rs:
crates/platform/src/phases.rs:
crates/platform/src/rapl.rs:
crates/platform/src/variation.rs:
crates/platform/src/workload.rs:
