/root/repo/target/debug/deps/runtime_components-d0d724c31535926f.d: crates/bench/benches/runtime_components.rs

/root/repo/target/debug/deps/runtime_components-d0d724c31535926f: crates/bench/benches/runtime_components.rs

crates/bench/benches/runtime_components.rs:
