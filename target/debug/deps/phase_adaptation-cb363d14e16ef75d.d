/root/repo/target/debug/deps/phase_adaptation-cb363d14e16ef75d.d: tests/phase_adaptation.rs Cargo.toml

/root/repo/target/debug/deps/libphase_adaptation-cb363d14e16ef75d.rmeta: tests/phase_adaptation.rs Cargo.toml

tests/phase_adaptation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
