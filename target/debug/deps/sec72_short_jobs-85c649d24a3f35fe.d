/root/repo/target/debug/deps/sec72_short_jobs-85c649d24a3f35fe.d: crates/bench/src/bin/sec72_short_jobs.rs

/root/repo/target/debug/deps/sec72_short_jobs-85c649d24a3f35fe: crates/bench/src/bin/sec72_short_jobs.rs

crates/bench/src/bin/sec72_short_jobs.rs:
