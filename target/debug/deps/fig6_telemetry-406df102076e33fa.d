/root/repo/target/debug/deps/fig6_telemetry-406df102076e33fa.d: crates/bench/tests/fig6_telemetry.rs Cargo.toml

/root/repo/target/debug/deps/libfig6_telemetry-406df102076e33fa.rmeta: crates/bench/tests/fig6_telemetry.rs Cargo.toml

crates/bench/tests/fig6_telemetry.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
