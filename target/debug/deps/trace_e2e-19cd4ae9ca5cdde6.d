/root/repo/target/debug/deps/trace_e2e-19cd4ae9ca5cdde6.d: crates/bench/tests/trace_e2e.rs

/root/repo/target/debug/deps/trace_e2e-19cd4ae9ca5cdde6: crates/bench/tests/trace_e2e.rs

crates/bench/tests/trace_e2e.rs:
