/root/repo/target/debug/deps/anor_geopm-97bfa418ab1943db.d: crates/geopm/src/lib.rs crates/geopm/src/agent.rs crates/geopm/src/endpoint.rs crates/geopm/src/platformio.rs crates/geopm/src/report.rs crates/geopm/src/runtime.rs crates/geopm/src/trace.rs crates/geopm/src/tree.rs Cargo.toml

/root/repo/target/debug/deps/libanor_geopm-97bfa418ab1943db.rmeta: crates/geopm/src/lib.rs crates/geopm/src/agent.rs crates/geopm/src/endpoint.rs crates/geopm/src/platformio.rs crates/geopm/src/report.rs crates/geopm/src/runtime.rs crates/geopm/src/trace.rs crates/geopm/src/tree.rs Cargo.toml

crates/geopm/src/lib.rs:
crates/geopm/src/agent.rs:
crates/geopm/src/endpoint.rs:
crates/geopm/src/platformio.rs:
crates/geopm/src/report.rs:
crates/geopm/src/runtime.rs:
crates/geopm/src/trace.rs:
crates/geopm/src/tree.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
