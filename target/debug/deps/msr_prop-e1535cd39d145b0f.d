/root/repo/target/debug/deps/msr_prop-e1535cd39d145b0f.d: crates/platform/tests/msr_prop.rs

/root/repo/target/debug/deps/msr_prop-e1535cd39d145b0f: crates/platform/tests/msr_prop.rs

crates/platform/tests/msr_prop.rs:
