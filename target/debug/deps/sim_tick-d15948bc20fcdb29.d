/root/repo/target/debug/deps/sim_tick-d15948bc20fcdb29.d: crates/bench/benches/sim_tick.rs

/root/repo/target/debug/deps/sim_tick-d15948bc20fcdb29: crates/bench/benches/sim_tick.rs

crates/bench/benches/sim_tick.rs:
