/root/repo/target/debug/deps/fig5_misclassify-fdd57295b6531201.d: crates/bench/benches/fig5_misclassify.rs Cargo.toml

/root/repo/target/debug/deps/libfig5_misclassify-fdd57295b6531201.rmeta: crates/bench/benches/fig5_misclassify.rs Cargo.toml

crates/bench/benches/fig5_misclassify.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
