/root/repo/target/debug/deps/fig5-e3a4816716e233e4.d: crates/bench/src/bin/fig5.rs

/root/repo/target/debug/deps/fig5-e3a4816716e233e4: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
