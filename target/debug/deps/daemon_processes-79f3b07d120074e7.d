/root/repo/target/debug/deps/daemon_processes-79f3b07d120074e7.d: crates/cluster/tests/daemon_processes.rs Cargo.toml

/root/repo/target/debug/deps/libdaemon_processes-79f3b07d120074e7.rmeta: crates/cluster/tests/daemon_processes.rs Cargo.toml

crates/cluster/tests/daemon_processes.rs:
Cargo.toml:

# env-dep:CARGO_BIN_EXE_anor-job=placeholder:anor-job
# env-dep:CARGO_BIN_EXE_anord=placeholder:anord
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
