/root/repo/target/debug/deps/anorsim_cli-860222d1b09d7db9.d: crates/sim/tests/anorsim_cli.rs

/root/repo/target/debug/deps/anorsim_cli-860222d1b09d7db9: crates/sim/tests/anorsim_cli.rs

crates/sim/tests/anorsim_cli.rs:

# env-dep:CARGO_BIN_EXE_anorsim=/root/repo/target/debug/anorsim
