/root/repo/target/debug/deps/fig3_characterization-f29acf34f2bf23bb.d: crates/bench/benches/fig3_characterization.rs

/root/repo/target/debug/deps/fig3_characterization-f29acf34f2bf23bb: crates/bench/benches/fig3_characterization.rs

crates/bench/benches/fig3_characterization.rs:
