/root/repo/target/debug/deps/proptests-acef6dcdf1c4411f.d: tests/proptests.rs

/root/repo/target/debug/deps/proptests-acef6dcdf1c4411f: tests/proptests.rs

tests/proptests.rs:
