/root/repo/target/debug/deps/facility_coordination-bafe823e6fb27027.d: tests/facility_coordination.rs

/root/repo/target/debug/deps/facility_coordination-bafe823e6fb27027: tests/facility_coordination.rs

tests/facility_coordination.rs:
