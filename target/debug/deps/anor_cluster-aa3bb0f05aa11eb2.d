/root/repo/target/debug/deps/anor_cluster-aa3bb0f05aa11eb2.d: crates/cluster/src/lib.rs crates/cluster/src/budgeter.rs crates/cluster/src/cli.rs crates/cluster/src/codec.rs crates/cluster/src/emulator.rs crates/cluster/src/endpoint.rs

/root/repo/target/debug/deps/libanor_cluster-aa3bb0f05aa11eb2.rlib: crates/cluster/src/lib.rs crates/cluster/src/budgeter.rs crates/cluster/src/cli.rs crates/cluster/src/codec.rs crates/cluster/src/emulator.rs crates/cluster/src/endpoint.rs

/root/repo/target/debug/deps/libanor_cluster-aa3bb0f05aa11eb2.rmeta: crates/cluster/src/lib.rs crates/cluster/src/budgeter.rs crates/cluster/src/cli.rs crates/cluster/src/codec.rs crates/cluster/src/emulator.rs crates/cluster/src/endpoint.rs

crates/cluster/src/lib.rs:
crates/cluster/src/budgeter.rs:
crates/cluster/src/cli.rs:
crates/cluster/src/codec.rs:
crates/cluster/src/emulator.rs:
crates/cluster/src/endpoint.rs:
