/root/repo/target/debug/deps/anor_sim-b1f9331822da182e.d: crates/sim/src/lib.rs crates/sim/src/history.rs crates/sim/src/policy.rs crates/sim/src/sim.rs crates/sim/src/table.rs Cargo.toml

/root/repo/target/debug/deps/libanor_sim-b1f9331822da182e.rmeta: crates/sim/src/lib.rs crates/sim/src/history.rs crates/sim/src/policy.rs crates/sim/src/sim.rs crates/sim/src/table.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/history.rs:
crates/sim/src/policy.rs:
crates/sim/src/sim.rs:
crates/sim/src/table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
