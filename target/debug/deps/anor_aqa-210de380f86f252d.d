/root/repo/target/debug/deps/anor_aqa-210de380f86f252d.d: crates/aqa/src/lib.rs crates/aqa/src/bid.rs crates/aqa/src/queue.rs crates/aqa/src/regulation.rs crates/aqa/src/schedule.rs crates/aqa/src/tracking.rs crates/aqa/src/train.rs Cargo.toml

/root/repo/target/debug/deps/libanor_aqa-210de380f86f252d.rmeta: crates/aqa/src/lib.rs crates/aqa/src/bid.rs crates/aqa/src/queue.rs crates/aqa/src/regulation.rs crates/aqa/src/schedule.rs crates/aqa/src/tracking.rs crates/aqa/src/train.rs Cargo.toml

crates/aqa/src/lib.rs:
crates/aqa/src/bid.rs:
crates/aqa/src/queue.rs:
crates/aqa/src/regulation.rs:
crates/aqa/src/schedule.rs:
crates/aqa/src/tracking.rs:
crates/aqa/src/train.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
