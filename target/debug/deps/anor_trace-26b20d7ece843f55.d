/root/repo/target/debug/deps/anor_trace-26b20d7ece843f55.d: crates/bench/src/bin/anor_trace.rs

/root/repo/target/debug/deps/anor_trace-26b20d7ece843f55: crates/bench/src/bin/anor_trace.rs

crates/bench/src/bin/anor_trace.rs:
