/root/repo/target/debug/deps/anor_cluster-608fc6db55d86c67.d: crates/cluster/src/lib.rs crates/cluster/src/budgeter.rs crates/cluster/src/cli.rs crates/cluster/src/codec.rs crates/cluster/src/emulator.rs crates/cluster/src/endpoint.rs

/root/repo/target/debug/deps/libanor_cluster-608fc6db55d86c67.rlib: crates/cluster/src/lib.rs crates/cluster/src/budgeter.rs crates/cluster/src/cli.rs crates/cluster/src/codec.rs crates/cluster/src/emulator.rs crates/cluster/src/endpoint.rs

/root/repo/target/debug/deps/libanor_cluster-608fc6db55d86c67.rmeta: crates/cluster/src/lib.rs crates/cluster/src/budgeter.rs crates/cluster/src/cli.rs crates/cluster/src/codec.rs crates/cluster/src/emulator.rs crates/cluster/src/endpoint.rs

crates/cluster/src/lib.rs:
crates/cluster/src/budgeter.rs:
crates/cluster/src/cli.rs:
crates/cluster/src/codec.rs:
crates/cluster/src/emulator.rs:
crates/cluster/src/endpoint.rs:
