/root/repo/target/debug/deps/proptests-d812123e26525427.d: tests/proptests.rs

/root/repo/target/debug/deps/proptests-d812123e26525427: tests/proptests.rs

tests/proptests.rs:
