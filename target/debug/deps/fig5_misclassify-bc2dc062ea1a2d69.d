/root/repo/target/debug/deps/fig5_misclassify-bc2dc062ea1a2d69.d: crates/bench/benches/fig5_misclassify.rs

/root/repo/target/debug/deps/fig5_misclassify-bc2dc062ea1a2d69: crates/bench/benches/fig5_misclassify.rs

crates/bench/benches/fig5_misclassify.rs:
