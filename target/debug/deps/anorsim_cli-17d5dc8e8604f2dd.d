/root/repo/target/debug/deps/anorsim_cli-17d5dc8e8604f2dd.d: crates/sim/tests/anorsim_cli.rs

/root/repo/target/debug/deps/anorsim_cli-17d5dc8e8604f2dd: crates/sim/tests/anorsim_cli.rs

crates/sim/tests/anorsim_cli.rs:

# env-dep:CARGO_BIN_EXE_anorsim=/root/repo/target/debug/anorsim
