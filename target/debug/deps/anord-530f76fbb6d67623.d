/root/repo/target/debug/deps/anord-530f76fbb6d67623.d: crates/cluster/src/bin/anord.rs Cargo.toml

/root/repo/target/debug/deps/libanord-530f76fbb6d67623.rmeta: crates/cluster/src/bin/anord.rs Cargo.toml

crates/cluster/src/bin/anord.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
