/root/repo/target/debug/deps/facility_coordination-abbf51715b4e6624.d: tests/facility_coordination.rs Cargo.toml

/root/repo/target/debug/deps/libfacility_coordination-abbf51715b4e6624.rmeta: tests/facility_coordination.rs Cargo.toml

tests/facility_coordination.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
