/root/repo/target/debug/deps/anor-451f5663a45e3b1b.d: src/lib.rs

/root/repo/target/debug/deps/libanor-451f5663a45e3b1b.rlib: src/lib.rs

/root/repo/target/debug/deps/libanor-451f5663a45e3b1b.rmeta: src/lib.rs

src/lib.rs:
