/root/repo/target/debug/deps/fig5-d7d6c25eaffee255.d: crates/bench/src/bin/fig5.rs

/root/repo/target/debug/deps/fig5-d7d6c25eaffee255: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
