/root/repo/target/debug/deps/anord-d0d236c70d792980.d: crates/cluster/src/bin/anord.rs

/root/repo/target/debug/deps/anord-d0d236c70d792980: crates/cluster/src/bin/anord.rs

crates/cluster/src/bin/anord.rs:
