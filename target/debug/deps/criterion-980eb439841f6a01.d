/root/repo/target/debug/deps/criterion-980eb439841f6a01.d: vendor/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-980eb439841f6a01.rmeta: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
