/root/repo/target/debug/deps/anor_job-5b7babe091ad483f.d: crates/cluster/src/bin/anor_job.rs Cargo.toml

/root/repo/target/debug/deps/libanor_job-5b7babe091ad483f.rmeta: crates/cluster/src/bin/anor_job.rs Cargo.toml

crates/cluster/src/bin/anor_job.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
