/root/repo/target/debug/deps/hw_emulation-b8edba318b463ae0.d: crates/bench/benches/hw_emulation.rs Cargo.toml

/root/repo/target/debug/deps/libhw_emulation-b8edba318b463ae0.rmeta: crates/bench/benches/hw_emulation.rs Cargo.toml

crates/bench/benches/hw_emulation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
