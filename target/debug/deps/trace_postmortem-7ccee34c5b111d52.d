/root/repo/target/debug/deps/trace_postmortem-7ccee34c5b111d52.d: crates/cluster/tests/trace_postmortem.rs Cargo.toml

/root/repo/target/debug/deps/libtrace_postmortem-7ccee34c5b111d52.rmeta: crates/cluster/tests/trace_postmortem.rs Cargo.toml

crates/cluster/tests/trace_postmortem.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
