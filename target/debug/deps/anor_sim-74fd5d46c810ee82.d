/root/repo/target/debug/deps/anor_sim-74fd5d46c810ee82.d: crates/sim/src/lib.rs crates/sim/src/history.rs crates/sim/src/policy.rs crates/sim/src/sim.rs crates/sim/src/table.rs

/root/repo/target/debug/deps/anor_sim-74fd5d46c810ee82: crates/sim/src/lib.rs crates/sim/src/history.rs crates/sim/src/policy.rs crates/sim/src/sim.rs crates/sim/src/table.rs

crates/sim/src/lib.rs:
crates/sim/src/history.rs:
crates/sim/src/policy.rs:
crates/sim/src/sim.rs:
crates/sim/src/table.rs:
