/root/repo/target/debug/deps/substrate_proptests-0c56e50611e00247.d: tests/substrate_proptests.rs

/root/repo/target/debug/deps/substrate_proptests-0c56e50611e00247: tests/substrate_proptests.rs

tests/substrate_proptests.rs:
