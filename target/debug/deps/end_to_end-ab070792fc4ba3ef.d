/root/repo/target/debug/deps/end_to_end-ab070792fc4ba3ef.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-ab070792fc4ba3ef: tests/end_to_end.rs

tests/end_to_end.rs:
