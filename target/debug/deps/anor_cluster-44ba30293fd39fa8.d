/root/repo/target/debug/deps/anor_cluster-44ba30293fd39fa8.d: crates/cluster/src/lib.rs crates/cluster/src/budgeter.rs crates/cluster/src/cli.rs crates/cluster/src/codec.rs crates/cluster/src/emulator.rs crates/cluster/src/endpoint.rs

/root/repo/target/debug/deps/anor_cluster-44ba30293fd39fa8: crates/cluster/src/lib.rs crates/cluster/src/budgeter.rs crates/cluster/src/cli.rs crates/cluster/src/codec.rs crates/cluster/src/emulator.rs crates/cluster/src/endpoint.rs

crates/cluster/src/lib.rs:
crates/cluster/src/budgeter.rs:
crates/cluster/src/cli.rs:
crates/cluster/src/codec.rs:
crates/cluster/src/emulator.rs:
crates/cluster/src/endpoint.rs:
