/root/repo/target/debug/deps/anorsim-b7ddbb09d5046e09.d: crates/sim/src/bin/anorsim.rs

/root/repo/target/debug/deps/anorsim-b7ddbb09d5046e09: crates/sim/src/bin/anorsim.rs

crates/sim/src/bin/anorsim.rs:
