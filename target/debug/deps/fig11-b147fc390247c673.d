/root/repo/target/debug/deps/fig11-b147fc390247c673.d: crates/bench/src/bin/fig11.rs

/root/repo/target/debug/deps/fig11-b147fc390247c673: crates/bench/src/bin/fig11.rs

crates/bench/src/bin/fig11.rs:
