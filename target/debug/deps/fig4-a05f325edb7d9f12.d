/root/repo/target/debug/deps/fig4-a05f325edb7d9f12.d: crates/bench/src/bin/fig4.rs

/root/repo/target/debug/deps/fig4-a05f325edb7d9f12: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
