/root/repo/target/debug/deps/sec72_short_jobs-fd5f6e33a0e58af0.d: crates/bench/src/bin/sec72_short_jobs.rs

/root/repo/target/debug/deps/sec72_short_jobs-fd5f6e33a0e58af0: crates/bench/src/bin/sec72_short_jobs.rs

crates/bench/src/bin/sec72_short_jobs.rs:
