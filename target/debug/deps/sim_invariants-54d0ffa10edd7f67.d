/root/repo/target/debug/deps/sim_invariants-54d0ffa10edd7f67.d: tests/sim_invariants.rs Cargo.toml

/root/repo/target/debug/deps/libsim_invariants-54d0ffa10edd7f67.rmeta: tests/sim_invariants.rs Cargo.toml

tests/sim_invariants.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
