/root/repo/target/debug/deps/trace_e2e-03bef1a9cf26d3b6.d: crates/bench/tests/trace_e2e.rs Cargo.toml

/root/repo/target/debug/deps/libtrace_e2e-03bef1a9cf26d3b6.rmeta: crates/bench/tests/trace_e2e.rs Cargo.toml

crates/bench/tests/trace_e2e.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
