/root/repo/target/debug/deps/anor-618ae6757802db13.d: src/lib.rs

/root/repo/target/debug/deps/anor-618ae6757802db13: src/lib.rs

src/lib.rs:
