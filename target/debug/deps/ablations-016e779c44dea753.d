/root/repo/target/debug/deps/ablations-016e779c44dea753.d: crates/bench/benches/ablations.rs

/root/repo/target/debug/deps/ablations-016e779c44dea753: crates/bench/benches/ablations.rs

crates/bench/benches/ablations.rs:
