/root/repo/target/debug/deps/fig7-9f40cc2f2d0f53d0.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-9f40cc2f2d0f53d0: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
