/root/repo/target/debug/deps/fig6-f0d8181c64e268d6.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-f0d8181c64e268d6: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
