/root/repo/target/debug/deps/anor_model-75c7ca34e6cf9fa7.d: crates/model/src/lib.rs crates/model/src/drift.rs crates/model/src/epoch_detect.rs crates/model/src/fit.rs crates/model/src/modeler.rs crates/model/src/window.rs

/root/repo/target/debug/deps/anor_model-75c7ca34e6cf9fa7: crates/model/src/lib.rs crates/model/src/drift.rs crates/model/src/epoch_detect.rs crates/model/src/fit.rs crates/model/src/modeler.rs crates/model/src/window.rs

crates/model/src/lib.rs:
crates/model/src/drift.rs:
crates/model/src/epoch_detect.rs:
crates/model/src/fit.rs:
crates/model/src/modeler.rs:
crates/model/src/window.rs:
