/root/repo/target/debug/deps/anor_job-d481b84d03f26d6a.d: crates/cluster/src/bin/anor_job.rs

/root/repo/target/debug/deps/anor_job-d481b84d03f26d6a: crates/cluster/src/bin/anor_job.rs

crates/cluster/src/bin/anor_job.rs:
