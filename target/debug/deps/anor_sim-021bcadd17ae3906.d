/root/repo/target/debug/deps/anor_sim-021bcadd17ae3906.d: crates/sim/src/lib.rs crates/sim/src/history.rs crates/sim/src/policy.rs crates/sim/src/sim.rs crates/sim/src/table.rs

/root/repo/target/debug/deps/libanor_sim-021bcadd17ae3906.rlib: crates/sim/src/lib.rs crates/sim/src/history.rs crates/sim/src/policy.rs crates/sim/src/sim.rs crates/sim/src/table.rs

/root/repo/target/debug/deps/libanor_sim-021bcadd17ae3906.rmeta: crates/sim/src/lib.rs crates/sim/src/history.rs crates/sim/src/policy.rs crates/sim/src/sim.rs crates/sim/src/table.rs

crates/sim/src/lib.rs:
crates/sim/src/history.rs:
crates/sim/src/policy.rs:
crates/sim/src/sim.rs:
crates/sim/src/table.rs:
