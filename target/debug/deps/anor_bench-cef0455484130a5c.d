/root/repo/target/debug/deps/anor_bench-cef0455484130a5c.d: crates/bench/src/lib.rs crates/bench/src/analyze.rs

/root/repo/target/debug/deps/libanor_bench-cef0455484130a5c.rlib: crates/bench/src/lib.rs crates/bench/src/analyze.rs

/root/repo/target/debug/deps/libanor_bench-cef0455484130a5c.rmeta: crates/bench/src/lib.rs crates/bench/src/analyze.rs

crates/bench/src/lib.rs:
crates/bench/src/analyze.rs:
