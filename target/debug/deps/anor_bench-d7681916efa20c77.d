/root/repo/target/debug/deps/anor_bench-d7681916efa20c77.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/anor_bench-d7681916efa20c77: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
