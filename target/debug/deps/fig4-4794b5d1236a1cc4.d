/root/repo/target/debug/deps/fig4-4794b5d1236a1cc4.d: crates/bench/src/bin/fig4.rs

/root/repo/target/debug/deps/fig4-4794b5d1236a1cc4: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
