/root/repo/target/debug/deps/sec72_short_jobs-06434f3bf2225fc1.d: crates/bench/src/bin/sec72_short_jobs.rs

/root/repo/target/debug/deps/sec72_short_jobs-06434f3bf2225fc1: crates/bench/src/bin/sec72_short_jobs.rs

crates/bench/src/bin/sec72_short_jobs.rs:
