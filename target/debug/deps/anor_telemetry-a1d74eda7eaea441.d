/root/repo/target/debug/deps/anor_telemetry-a1d74eda7eaea441.d: crates/telemetry/src/lib.rs crates/telemetry/src/registry.rs crates/telemetry/src/render.rs crates/telemetry/src/sink.rs crates/telemetry/src/span.rs crates/telemetry/src/trace.rs

/root/repo/target/debug/deps/libanor_telemetry-a1d74eda7eaea441.rlib: crates/telemetry/src/lib.rs crates/telemetry/src/registry.rs crates/telemetry/src/render.rs crates/telemetry/src/sink.rs crates/telemetry/src/span.rs crates/telemetry/src/trace.rs

/root/repo/target/debug/deps/libanor_telemetry-a1d74eda7eaea441.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/registry.rs crates/telemetry/src/render.rs crates/telemetry/src/sink.rs crates/telemetry/src/span.rs crates/telemetry/src/trace.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/registry.rs:
crates/telemetry/src/render.rs:
crates/telemetry/src/sink.rs:
crates/telemetry/src/span.rs:
crates/telemetry/src/trace.rs:
