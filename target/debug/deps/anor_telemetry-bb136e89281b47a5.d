/root/repo/target/debug/deps/anor_telemetry-bb136e89281b47a5.d: crates/telemetry/src/lib.rs crates/telemetry/src/registry.rs crates/telemetry/src/render.rs crates/telemetry/src/sink.rs crates/telemetry/src/span.rs crates/telemetry/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libanor_telemetry-bb136e89281b47a5.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/registry.rs crates/telemetry/src/render.rs crates/telemetry/src/sink.rs crates/telemetry/src/span.rs crates/telemetry/src/trace.rs Cargo.toml

crates/telemetry/src/lib.rs:
crates/telemetry/src/registry.rs:
crates/telemetry/src/render.rs:
crates/telemetry/src/sink.rs:
crates/telemetry/src/span.rs:
crates/telemetry/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
