/root/repo/target/debug/deps/fig6_telemetry-a5ce813789e13def.d: crates/bench/tests/fig6_telemetry.rs

/root/repo/target/debug/deps/fig6_telemetry-a5ce813789e13def: crates/bench/tests/fig6_telemetry.rs

crates/bench/tests/fig6_telemetry.rs:
