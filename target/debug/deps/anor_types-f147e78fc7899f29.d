/root/repo/target/debug/deps/anor_types-f147e78fc7899f29.d: crates/types/src/lib.rs crates/types/src/catalog.rs crates/types/src/curve.rs crates/types/src/error.rs crates/types/src/ids.rs crates/types/src/jobtype.rs crates/types/src/msg.rs crates/types/src/qos.rs crates/types/src/stats.rs crates/types/src/units.rs

/root/repo/target/debug/deps/libanor_types-f147e78fc7899f29.rlib: crates/types/src/lib.rs crates/types/src/catalog.rs crates/types/src/curve.rs crates/types/src/error.rs crates/types/src/ids.rs crates/types/src/jobtype.rs crates/types/src/msg.rs crates/types/src/qos.rs crates/types/src/stats.rs crates/types/src/units.rs

/root/repo/target/debug/deps/libanor_types-f147e78fc7899f29.rmeta: crates/types/src/lib.rs crates/types/src/catalog.rs crates/types/src/curve.rs crates/types/src/error.rs crates/types/src/ids.rs crates/types/src/jobtype.rs crates/types/src/msg.rs crates/types/src/qos.rs crates/types/src/stats.rs crates/types/src/units.rs

crates/types/src/lib.rs:
crates/types/src/catalog.rs:
crates/types/src/curve.rs:
crates/types/src/error.rs:
crates/types/src/ids.rs:
crates/types/src/jobtype.rs:
crates/types/src/msg.rs:
crates/types/src/qos.rs:
crates/types/src/stats.rs:
crates/types/src/units.rs:
