/root/repo/target/debug/deps/fig5-e8610be4b6c2a09c.d: crates/bench/src/bin/fig5.rs

/root/repo/target/debug/deps/fig5-e8610be4b6c2a09c: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
