/root/repo/target/debug/deps/proptests-2f828fb1cdda264b.d: tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-2f828fb1cdda264b.rmeta: tests/proptests.rs Cargo.toml

tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
