/root/repo/target/debug/deps/anor_platform-50e8464ff9a5e419.d: crates/platform/src/lib.rs crates/platform/src/msr.rs crates/platform/src/node.rs crates/platform/src/phases.rs crates/platform/src/rapl.rs crates/platform/src/variation.rs crates/platform/src/workload.rs

/root/repo/target/debug/deps/libanor_platform-50e8464ff9a5e419.rlib: crates/platform/src/lib.rs crates/platform/src/msr.rs crates/platform/src/node.rs crates/platform/src/phases.rs crates/platform/src/rapl.rs crates/platform/src/variation.rs crates/platform/src/workload.rs

/root/repo/target/debug/deps/libanor_platform-50e8464ff9a5e419.rmeta: crates/platform/src/lib.rs crates/platform/src/msr.rs crates/platform/src/node.rs crates/platform/src/phases.rs crates/platform/src/rapl.rs crates/platform/src/variation.rs crates/platform/src/workload.rs

crates/platform/src/lib.rs:
crates/platform/src/msr.rs:
crates/platform/src/node.rs:
crates/platform/src/phases.rs:
crates/platform/src/rapl.rs:
crates/platform/src/variation.rs:
crates/platform/src/workload.rs:
