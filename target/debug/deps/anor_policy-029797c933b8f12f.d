/root/repo/target/debug/deps/anor_policy-029797c933b8f12f.d: crates/policy/src/lib.rs crates/policy/src/budgeter.rs crates/policy/src/facility.rs crates/policy/src/job_view.rs crates/policy/src/misclassify.rs crates/policy/src/slowdown.rs

/root/repo/target/debug/deps/anor_policy-029797c933b8f12f: crates/policy/src/lib.rs crates/policy/src/budgeter.rs crates/policy/src/facility.rs crates/policy/src/job_view.rs crates/policy/src/misclassify.rs crates/policy/src/slowdown.rs

crates/policy/src/lib.rs:
crates/policy/src/budgeter.rs:
crates/policy/src/facility.rs:
crates/policy/src/job_view.rs:
crates/policy/src/misclassify.rs:
crates/policy/src/slowdown.rs:
