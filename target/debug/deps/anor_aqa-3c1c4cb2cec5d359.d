/root/repo/target/debug/deps/anor_aqa-3c1c4cb2cec5d359.d: crates/aqa/src/lib.rs crates/aqa/src/bid.rs crates/aqa/src/queue.rs crates/aqa/src/regulation.rs crates/aqa/src/schedule.rs crates/aqa/src/tracking.rs crates/aqa/src/train.rs

/root/repo/target/debug/deps/libanor_aqa-3c1c4cb2cec5d359.rlib: crates/aqa/src/lib.rs crates/aqa/src/bid.rs crates/aqa/src/queue.rs crates/aqa/src/regulation.rs crates/aqa/src/schedule.rs crates/aqa/src/tracking.rs crates/aqa/src/train.rs

/root/repo/target/debug/deps/libanor_aqa-3c1c4cb2cec5d359.rmeta: crates/aqa/src/lib.rs crates/aqa/src/bid.rs crates/aqa/src/queue.rs crates/aqa/src/regulation.rs crates/aqa/src/schedule.rs crates/aqa/src/tracking.rs crates/aqa/src/train.rs

crates/aqa/src/lib.rs:
crates/aqa/src/bid.rs:
crates/aqa/src/queue.rs:
crates/aqa/src/regulation.rs:
crates/aqa/src/schedule.rs:
crates/aqa/src/tracking.rs:
crates/aqa/src/train.rs:
