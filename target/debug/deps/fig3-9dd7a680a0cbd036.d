/root/repo/target/debug/deps/fig3-9dd7a680a0cbd036.d: crates/bench/src/bin/fig3.rs

/root/repo/target/debug/deps/fig3-9dd7a680a0cbd036: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
