/root/repo/target/debug/deps/anor_policy-47434aa8a6d74b0c.d: crates/policy/src/lib.rs crates/policy/src/budgeter.rs crates/policy/src/facility.rs crates/policy/src/job_view.rs crates/policy/src/misclassify.rs crates/policy/src/slowdown.rs Cargo.toml

/root/repo/target/debug/deps/libanor_policy-47434aa8a6d74b0c.rmeta: crates/policy/src/lib.rs crates/policy/src/budgeter.rs crates/policy/src/facility.rs crates/policy/src/job_view.rs crates/policy/src/misclassify.rs crates/policy/src/slowdown.rs Cargo.toml

crates/policy/src/lib.rs:
crates/policy/src/budgeter.rs:
crates/policy/src/facility.rs:
crates/policy/src/job_view.rs:
crates/policy/src/misclassify.rs:
crates/policy/src/slowdown.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
