/root/repo/target/debug/deps/ablations-a28f17c02353e516.d: crates/bench/benches/ablations.rs

/root/repo/target/debug/deps/ablations-a28f17c02353e516: crates/bench/benches/ablations.rs

crates/bench/benches/ablations.rs:
