/root/repo/target/debug/deps/anord-0a8da750aa187726.d: crates/cluster/src/bin/anord.rs

/root/repo/target/debug/deps/anord-0a8da750aa187726: crates/cluster/src/bin/anord.rs

crates/cluster/src/bin/anord.rs:
