/root/repo/target/debug/deps/fig6_telemetry-43d5e49d77bf2f68.d: crates/bench/tests/fig6_telemetry.rs

/root/repo/target/debug/deps/fig6_telemetry-43d5e49d77bf2f68: crates/bench/tests/fig6_telemetry.rs

crates/bench/tests/fig6_telemetry.rs:
