/root/repo/target/debug/deps/anor_trace-474a64db97fff2a8.d: crates/bench/src/bin/anor_trace.rs Cargo.toml

/root/repo/target/debug/deps/libanor_trace-474a64db97fff2a8.rmeta: crates/bench/src/bin/anor_trace.rs Cargo.toml

crates/bench/src/bin/anor_trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
