/root/repo/target/debug/deps/fig4-c3f3e910e173fd3a.d: crates/bench/src/bin/fig4.rs

/root/repo/target/debug/deps/fig4-c3f3e910e173fd3a: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
