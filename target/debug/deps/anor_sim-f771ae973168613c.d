/root/repo/target/debug/deps/anor_sim-f771ae973168613c.d: crates/sim/src/lib.rs crates/sim/src/history.rs crates/sim/src/policy.rs crates/sim/src/sim.rs crates/sim/src/table.rs Cargo.toml

/root/repo/target/debug/deps/libanor_sim-f771ae973168613c.rmeta: crates/sim/src/lib.rs crates/sim/src/history.rs crates/sim/src/policy.rs crates/sim/src/sim.rs crates/sim/src/table.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/history.rs:
crates/sim/src/policy.rs:
crates/sim/src/sim.rs:
crates/sim/src/table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
