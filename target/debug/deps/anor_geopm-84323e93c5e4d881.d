/root/repo/target/debug/deps/anor_geopm-84323e93c5e4d881.d: crates/geopm/src/lib.rs crates/geopm/src/agent.rs crates/geopm/src/endpoint.rs crates/geopm/src/platformio.rs crates/geopm/src/report.rs crates/geopm/src/runtime.rs crates/geopm/src/trace.rs crates/geopm/src/tree.rs

/root/repo/target/debug/deps/anor_geopm-84323e93c5e4d881: crates/geopm/src/lib.rs crates/geopm/src/agent.rs crates/geopm/src/endpoint.rs crates/geopm/src/platformio.rs crates/geopm/src/report.rs crates/geopm/src/runtime.rs crates/geopm/src/trace.rs crates/geopm/src/tree.rs

crates/geopm/src/lib.rs:
crates/geopm/src/agent.rs:
crates/geopm/src/endpoint.rs:
crates/geopm/src/platformio.rs:
crates/geopm/src/report.rs:
crates/geopm/src/runtime.rs:
crates/geopm/src/trace.rs:
crates/geopm/src/tree.rs:
