/root/repo/target/debug/deps/substrate_proptests-7d0b26f5501acb07.d: tests/substrate_proptests.rs Cargo.toml

/root/repo/target/debug/deps/libsubstrate_proptests-7d0b26f5501acb07.rmeta: tests/substrate_proptests.rs Cargo.toml

tests/substrate_proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
