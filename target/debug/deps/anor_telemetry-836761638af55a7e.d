/root/repo/target/debug/deps/anor_telemetry-836761638af55a7e.d: crates/telemetry/src/lib.rs crates/telemetry/src/registry.rs crates/telemetry/src/render.rs crates/telemetry/src/sink.rs crates/telemetry/src/span.rs crates/telemetry/src/trace.rs

/root/repo/target/debug/deps/anor_telemetry-836761638af55a7e: crates/telemetry/src/lib.rs crates/telemetry/src/registry.rs crates/telemetry/src/render.rs crates/telemetry/src/sink.rs crates/telemetry/src/span.rs crates/telemetry/src/trace.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/registry.rs:
crates/telemetry/src/render.rs:
crates/telemetry/src/sink.rs:
crates/telemetry/src/span.rs:
crates/telemetry/src/trace.rs:
