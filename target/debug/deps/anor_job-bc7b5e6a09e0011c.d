/root/repo/target/debug/deps/anor_job-bc7b5e6a09e0011c.d: crates/cluster/src/bin/anor_job.rs

/root/repo/target/debug/deps/anor_job-bc7b5e6a09e0011c: crates/cluster/src/bin/anor_job.rs

crates/cluster/src/bin/anor_job.rs:
