/root/repo/target/debug/deps/qos_justification-32baf6d197f4afb9.d: crates/bench/src/bin/qos_justification.rs

/root/repo/target/debug/deps/qos_justification-32baf6d197f4afb9: crates/bench/src/bin/qos_justification.rs

crates/bench/src/bin/qos_justification.rs:
