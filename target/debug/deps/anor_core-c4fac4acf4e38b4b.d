/root/repo/target/debug/deps/anor_core-c4fac4acf4e38b4b.d: crates/anor/src/lib.rs crates/anor/src/bidding.rs crates/anor/src/experiments/mod.rs crates/anor/src/experiments/ablation.rs crates/anor/src/experiments/fig10.rs crates/anor/src/experiments/fig11.rs crates/anor/src/experiments/fig3.rs crates/anor/src/experiments/fig4.rs crates/anor/src/experiments/fig5.rs crates/anor/src/experiments/fig6.rs crates/anor/src/experiments/fig7.rs crates/anor/src/experiments/fig8.rs crates/anor/src/experiments/fig9.rs crates/anor/src/experiments/hw.rs crates/anor/src/experiments/multihour.rs crates/anor/src/render.rs crates/anor/src/training.rs

/root/repo/target/debug/deps/anor_core-c4fac4acf4e38b4b: crates/anor/src/lib.rs crates/anor/src/bidding.rs crates/anor/src/experiments/mod.rs crates/anor/src/experiments/ablation.rs crates/anor/src/experiments/fig10.rs crates/anor/src/experiments/fig11.rs crates/anor/src/experiments/fig3.rs crates/anor/src/experiments/fig4.rs crates/anor/src/experiments/fig5.rs crates/anor/src/experiments/fig6.rs crates/anor/src/experiments/fig7.rs crates/anor/src/experiments/fig8.rs crates/anor/src/experiments/fig9.rs crates/anor/src/experiments/hw.rs crates/anor/src/experiments/multihour.rs crates/anor/src/render.rs crates/anor/src/training.rs

crates/anor/src/lib.rs:
crates/anor/src/bidding.rs:
crates/anor/src/experiments/mod.rs:
crates/anor/src/experiments/ablation.rs:
crates/anor/src/experiments/fig10.rs:
crates/anor/src/experiments/fig11.rs:
crates/anor/src/experiments/fig3.rs:
crates/anor/src/experiments/fig4.rs:
crates/anor/src/experiments/fig5.rs:
crates/anor/src/experiments/fig6.rs:
crates/anor/src/experiments/fig7.rs:
crates/anor/src/experiments/fig8.rs:
crates/anor/src/experiments/fig9.rs:
crates/anor/src/experiments/hw.rs:
crates/anor/src/experiments/multihour.rs:
crates/anor/src/render.rs:
crates/anor/src/training.rs:
