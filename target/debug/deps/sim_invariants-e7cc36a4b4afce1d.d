/root/repo/target/debug/deps/sim_invariants-e7cc36a4b4afce1d.d: tests/sim_invariants.rs

/root/repo/target/debug/deps/sim_invariants-e7cc36a4b4afce1d: tests/sim_invariants.rs

tests/sim_invariants.rs:
