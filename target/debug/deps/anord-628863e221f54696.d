/root/repo/target/debug/deps/anord-628863e221f54696.d: crates/cluster/src/bin/anord.rs Cargo.toml

/root/repo/target/debug/deps/libanord-628863e221f54696.rmeta: crates/cluster/src/bin/anord.rs Cargo.toml

crates/cluster/src/bin/anord.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
