/root/repo/target/debug/deps/anor_platform-6b3937c89f7faf72.d: crates/platform/src/lib.rs crates/platform/src/msr.rs crates/platform/src/node.rs crates/platform/src/phases.rs crates/platform/src/rapl.rs crates/platform/src/variation.rs crates/platform/src/workload.rs Cargo.toml

/root/repo/target/debug/deps/libanor_platform-6b3937c89f7faf72.rmeta: crates/platform/src/lib.rs crates/platform/src/msr.rs crates/platform/src/node.rs crates/platform/src/phases.rs crates/platform/src/rapl.rs crates/platform/src/variation.rs crates/platform/src/workload.rs Cargo.toml

crates/platform/src/lib.rs:
crates/platform/src/msr.rs:
crates/platform/src/node.rs:
crates/platform/src/phases.rs:
crates/platform/src/rapl.rs:
crates/platform/src/variation.rs:
crates/platform/src/workload.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
