/root/repo/target/debug/deps/daemon_processes-2ed04f790f38b84d.d: crates/cluster/tests/daemon_processes.rs

/root/repo/target/debug/deps/daemon_processes-2ed04f790f38b84d: crates/cluster/tests/daemon_processes.rs

crates/cluster/tests/daemon_processes.rs:

# env-dep:CARGO_BIN_EXE_anor-job=/root/repo/target/debug/anor-job
# env-dep:CARGO_BIN_EXE_anord=/root/repo/target/debug/anord
