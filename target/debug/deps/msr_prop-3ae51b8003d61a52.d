/root/repo/target/debug/deps/msr_prop-3ae51b8003d61a52.d: crates/platform/tests/msr_prop.rs Cargo.toml

/root/repo/target/debug/deps/libmsr_prop-3ae51b8003d61a52.rmeta: crates/platform/tests/msr_prop.rs Cargo.toml

crates/platform/tests/msr_prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
