/root/repo/target/debug/deps/fig6-9b6eaf83fafe3e2c.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-9b6eaf83fafe3e2c: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
