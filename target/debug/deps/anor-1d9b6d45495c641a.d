/root/repo/target/debug/deps/anor-1d9b6d45495c641a.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libanor-1d9b6d45495c641a.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
