/root/repo/target/debug/deps/fig4_budgeters-b3d13ed6b8c00315.d: crates/bench/benches/fig4_budgeters.rs Cargo.toml

/root/repo/target/debug/deps/libfig4_budgeters-b3d13ed6b8c00315.rmeta: crates/bench/benches/fig4_budgeters.rs Cargo.toml

crates/bench/benches/fig4_budgeters.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
