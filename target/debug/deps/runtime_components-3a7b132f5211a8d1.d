/root/repo/target/debug/deps/runtime_components-3a7b132f5211a8d1.d: crates/bench/benches/runtime_components.rs Cargo.toml

/root/repo/target/debug/deps/libruntime_components-3a7b132f5211a8d1.rmeta: crates/bench/benches/runtime_components.rs Cargo.toml

crates/bench/benches/runtime_components.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
