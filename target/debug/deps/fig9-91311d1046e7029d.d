/root/repo/target/debug/deps/fig9-91311d1046e7029d.d: crates/bench/src/bin/fig9.rs

/root/repo/target/debug/deps/fig9-91311d1046e7029d: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
