/root/repo/target/debug/deps/anor_aqa-1eb0e6aad251a6a4.d: crates/aqa/src/lib.rs crates/aqa/src/bid.rs crates/aqa/src/queue.rs crates/aqa/src/regulation.rs crates/aqa/src/schedule.rs crates/aqa/src/tracking.rs crates/aqa/src/train.rs Cargo.toml

/root/repo/target/debug/deps/libanor_aqa-1eb0e6aad251a6a4.rmeta: crates/aqa/src/lib.rs crates/aqa/src/bid.rs crates/aqa/src/queue.rs crates/aqa/src/regulation.rs crates/aqa/src/schedule.rs crates/aqa/src/tracking.rs crates/aqa/src/train.rs Cargo.toml

crates/aqa/src/lib.rs:
crates/aqa/src/bid.rs:
crates/aqa/src/queue.rs:
crates/aqa/src/regulation.rs:
crates/aqa/src/schedule.rs:
crates/aqa/src/tracking.rs:
crates/aqa/src/train.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
