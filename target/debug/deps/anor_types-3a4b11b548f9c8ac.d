/root/repo/target/debug/deps/anor_types-3a4b11b548f9c8ac.d: crates/types/src/lib.rs crates/types/src/catalog.rs crates/types/src/curve.rs crates/types/src/error.rs crates/types/src/ids.rs crates/types/src/jobtype.rs crates/types/src/msg.rs crates/types/src/qos.rs crates/types/src/stats.rs crates/types/src/units.rs Cargo.toml

/root/repo/target/debug/deps/libanor_types-3a4b11b548f9c8ac.rmeta: crates/types/src/lib.rs crates/types/src/catalog.rs crates/types/src/curve.rs crates/types/src/error.rs crates/types/src/ids.rs crates/types/src/jobtype.rs crates/types/src/msg.rs crates/types/src/qos.rs crates/types/src/stats.rs crates/types/src/units.rs Cargo.toml

crates/types/src/lib.rs:
crates/types/src/catalog.rs:
crates/types/src/curve.rs:
crates/types/src/error.rs:
crates/types/src/ids.rs:
crates/types/src/jobtype.rs:
crates/types/src/msg.rs:
crates/types/src/qos.rs:
crates/types/src/stats.rs:
crates/types/src/units.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
