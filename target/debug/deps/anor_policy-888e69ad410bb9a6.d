/root/repo/target/debug/deps/anor_policy-888e69ad410bb9a6.d: crates/policy/src/lib.rs crates/policy/src/budgeter.rs crates/policy/src/facility.rs crates/policy/src/job_view.rs crates/policy/src/misclassify.rs crates/policy/src/slowdown.rs

/root/repo/target/debug/deps/libanor_policy-888e69ad410bb9a6.rlib: crates/policy/src/lib.rs crates/policy/src/budgeter.rs crates/policy/src/facility.rs crates/policy/src/job_view.rs crates/policy/src/misclassify.rs crates/policy/src/slowdown.rs

/root/repo/target/debug/deps/libanor_policy-888e69ad410bb9a6.rmeta: crates/policy/src/lib.rs crates/policy/src/budgeter.rs crates/policy/src/facility.rs crates/policy/src/job_view.rs crates/policy/src/misclassify.rs crates/policy/src/slowdown.rs

crates/policy/src/lib.rs:
crates/policy/src/budgeter.rs:
crates/policy/src/facility.rs:
crates/policy/src/job_view.rs:
crates/policy/src/misclassify.rs:
crates/policy/src/slowdown.rs:
