/root/repo/target/debug/deps/anor_trace-b73a6f594183c7ab.d: crates/bench/src/bin/anor_trace.rs

/root/repo/target/debug/deps/anor_trace-b73a6f594183c7ab: crates/bench/src/bin/anor_trace.rs

crates/bench/src/bin/anor_trace.rs:
