/root/repo/target/debug/deps/ablation-31e3198ab5233ec3.d: crates/bench/src/bin/ablation.rs

/root/repo/target/debug/deps/ablation-31e3198ab5233ec3: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
