/root/repo/target/debug/deps/fig5_misclassify-464bed7368274de3.d: crates/bench/benches/fig5_misclassify.rs

/root/repo/target/debug/deps/fig5_misclassify-464bed7368274de3: crates/bench/benches/fig5_misclassify.rs

crates/bench/benches/fig5_misclassify.rs:
