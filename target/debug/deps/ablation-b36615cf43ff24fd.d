/root/repo/target/debug/deps/ablation-b36615cf43ff24fd.d: crates/bench/src/bin/ablation.rs Cargo.toml

/root/repo/target/debug/deps/libablation-b36615cf43ff24fd.rmeta: crates/bench/src/bin/ablation.rs Cargo.toml

crates/bench/src/bin/ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
