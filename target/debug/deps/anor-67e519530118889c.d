/root/repo/target/debug/deps/anor-67e519530118889c.d: src/lib.rs

/root/repo/target/debug/deps/anor-67e519530118889c: src/lib.rs

src/lib.rs:
