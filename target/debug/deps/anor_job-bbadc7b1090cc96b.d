/root/repo/target/debug/deps/anor_job-bbadc7b1090cc96b.d: crates/cluster/src/bin/anor_job.rs

/root/repo/target/debug/deps/anor_job-bbadc7b1090cc96b: crates/cluster/src/bin/anor_job.rs

crates/cluster/src/bin/anor_job.rs:
