/root/repo/target/debug/deps/anor_model-2e3ea077d80995e3.d: crates/model/src/lib.rs crates/model/src/drift.rs crates/model/src/epoch_detect.rs crates/model/src/fit.rs crates/model/src/modeler.rs crates/model/src/window.rs Cargo.toml

/root/repo/target/debug/deps/libanor_model-2e3ea077d80995e3.rmeta: crates/model/src/lib.rs crates/model/src/drift.rs crates/model/src/epoch_detect.rs crates/model/src/fit.rs crates/model/src/modeler.rs crates/model/src/window.rs Cargo.toml

crates/model/src/lib.rs:
crates/model/src/drift.rs:
crates/model/src/epoch_detect.rs:
crates/model/src/fit.rs:
crates/model/src/modeler.rs:
crates/model/src/window.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
