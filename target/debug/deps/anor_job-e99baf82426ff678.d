/root/repo/target/debug/deps/anor_job-e99baf82426ff678.d: crates/cluster/src/bin/anor_job.rs

/root/repo/target/debug/deps/anor_job-e99baf82426ff678: crates/cluster/src/bin/anor_job.rs

crates/cluster/src/bin/anor_job.rs:
