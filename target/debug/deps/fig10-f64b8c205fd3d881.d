/root/repo/target/debug/deps/fig10-f64b8c205fd3d881.d: crates/bench/src/bin/fig10.rs

/root/repo/target/debug/deps/fig10-f64b8c205fd3d881: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
