/root/repo/target/debug/deps/fig10-8f9769b49e19dda3.d: crates/bench/src/bin/fig10.rs

/root/repo/target/debug/deps/fig10-8f9769b49e19dda3: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
