/root/repo/target/debug/deps/anor_cluster-d940f5dcd0987315.d: crates/cluster/src/lib.rs crates/cluster/src/budgeter.rs crates/cluster/src/cli.rs crates/cluster/src/codec.rs crates/cluster/src/emulator.rs crates/cluster/src/endpoint.rs

/root/repo/target/debug/deps/anor_cluster-d940f5dcd0987315: crates/cluster/src/lib.rs crates/cluster/src/budgeter.rs crates/cluster/src/cli.rs crates/cluster/src/codec.rs crates/cluster/src/emulator.rs crates/cluster/src/endpoint.rs

crates/cluster/src/lib.rs:
crates/cluster/src/budgeter.rs:
crates/cluster/src/cli.rs:
crates/cluster/src/codec.rs:
crates/cluster/src/emulator.rs:
crates/cluster/src/endpoint.rs:
