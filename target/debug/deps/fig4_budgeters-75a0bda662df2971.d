/root/repo/target/debug/deps/fig4_budgeters-75a0bda662df2971.d: crates/bench/benches/fig4_budgeters.rs

/root/repo/target/debug/deps/fig4_budgeters-75a0bda662df2971: crates/bench/benches/fig4_budgeters.rs

crates/bench/benches/fig4_budgeters.rs:
