/root/repo/target/debug/deps/qos_justification-97dd6023cd973e96.d: crates/bench/src/bin/qos_justification.rs Cargo.toml

/root/repo/target/debug/deps/libqos_justification-97dd6023cd973e96.rmeta: crates/bench/src/bin/qos_justification.rs Cargo.toml

crates/bench/src/bin/qos_justification.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
