/root/repo/target/debug/deps/substrate_proptests-bec9374d66e60aca.d: tests/substrate_proptests.rs

/root/repo/target/debug/deps/substrate_proptests-bec9374d66e60aca: tests/substrate_proptests.rs

tests/substrate_proptests.rs:
