/root/repo/target/debug/deps/anorsim-a55b2f2393e58b1f.d: crates/sim/src/bin/anorsim.rs Cargo.toml

/root/repo/target/debug/deps/libanorsim-a55b2f2393e58b1f.rmeta: crates/sim/src/bin/anorsim.rs Cargo.toml

crates/sim/src/bin/anorsim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
