/root/repo/target/debug/deps/anor_aqa-da34b366d158aecc.d: crates/aqa/src/lib.rs crates/aqa/src/bid.rs crates/aqa/src/queue.rs crates/aqa/src/regulation.rs crates/aqa/src/schedule.rs crates/aqa/src/tracking.rs crates/aqa/src/train.rs

/root/repo/target/debug/deps/anor_aqa-da34b366d158aecc: crates/aqa/src/lib.rs crates/aqa/src/bid.rs crates/aqa/src/queue.rs crates/aqa/src/regulation.rs crates/aqa/src/schedule.rs crates/aqa/src/tracking.rs crates/aqa/src/train.rs

crates/aqa/src/lib.rs:
crates/aqa/src/bid.rs:
crates/aqa/src/queue.rs:
crates/aqa/src/regulation.rs:
crates/aqa/src/schedule.rs:
crates/aqa/src/tracking.rs:
crates/aqa/src/train.rs:
