/root/repo/target/debug/deps/sim_tick-99a3a0b1a004ffcc.d: crates/bench/benches/sim_tick.rs

/root/repo/target/debug/deps/sim_tick-99a3a0b1a004ffcc: crates/bench/benches/sim_tick.rs

crates/bench/benches/sim_tick.rs:
