/root/repo/target/debug/deps/anor_bench-c79275dcaf4242e3.d: crates/bench/src/lib.rs crates/bench/src/analyze.rs

/root/repo/target/debug/deps/anor_bench-c79275dcaf4242e3: crates/bench/src/lib.rs crates/bench/src/analyze.rs

crates/bench/src/lib.rs:
crates/bench/src/analyze.rs:
