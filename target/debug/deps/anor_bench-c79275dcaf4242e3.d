/root/repo/target/debug/deps/anor_bench-c79275dcaf4242e3.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/anor_bench-c79275dcaf4242e3: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
