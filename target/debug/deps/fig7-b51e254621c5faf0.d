/root/repo/target/debug/deps/fig7-b51e254621c5faf0.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-b51e254621c5faf0: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
