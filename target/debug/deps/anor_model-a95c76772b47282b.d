/root/repo/target/debug/deps/anor_model-a95c76772b47282b.d: crates/model/src/lib.rs crates/model/src/drift.rs crates/model/src/epoch_detect.rs crates/model/src/fit.rs crates/model/src/modeler.rs crates/model/src/window.rs

/root/repo/target/debug/deps/libanor_model-a95c76772b47282b.rlib: crates/model/src/lib.rs crates/model/src/drift.rs crates/model/src/epoch_detect.rs crates/model/src/fit.rs crates/model/src/modeler.rs crates/model/src/window.rs

/root/repo/target/debug/deps/libanor_model-a95c76772b47282b.rmeta: crates/model/src/lib.rs crates/model/src/drift.rs crates/model/src/epoch_detect.rs crates/model/src/fit.rs crates/model/src/modeler.rs crates/model/src/window.rs

crates/model/src/lib.rs:
crates/model/src/drift.rs:
crates/model/src/epoch_detect.rs:
crates/model/src/fit.rs:
crates/model/src/modeler.rs:
crates/model/src/window.rs:
