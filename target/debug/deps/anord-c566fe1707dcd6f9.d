/root/repo/target/debug/deps/anord-c566fe1707dcd6f9.d: crates/cluster/src/bin/anord.rs

/root/repo/target/debug/deps/anord-c566fe1707dcd6f9: crates/cluster/src/bin/anord.rs

crates/cluster/src/bin/anord.rs:
