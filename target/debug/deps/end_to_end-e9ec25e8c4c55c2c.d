/root/repo/target/debug/deps/end_to_end-e9ec25e8c4c55c2c.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-e9ec25e8c4c55c2c: tests/end_to_end.rs

tests/end_to_end.rs:
