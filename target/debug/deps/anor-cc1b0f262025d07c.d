/root/repo/target/debug/deps/anor-cc1b0f262025d07c.d: src/lib.rs

/root/repo/target/debug/deps/libanor-cc1b0f262025d07c.rlib: src/lib.rs

/root/repo/target/debug/deps/libanor-cc1b0f262025d07c.rmeta: src/lib.rs

src/lib.rs:
