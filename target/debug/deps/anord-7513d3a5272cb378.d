/root/repo/target/debug/deps/anord-7513d3a5272cb378.d: crates/cluster/src/bin/anord.rs

/root/repo/target/debug/deps/anord-7513d3a5272cb378: crates/cluster/src/bin/anord.rs

crates/cluster/src/bin/anord.rs:
