//! Misclassification scenarios (paper Section 6.1.2, Figs. 5–8).
//!
//! "Some jobs may execute before they are characterized, or may be
//! misclassified as a job type with different characteristics." A
//! [`MisclassifyScenario`] pairs the *true* job views with the views the
//! budgeter *believes* (one or more jobs carrying another type's power
//! identity), assigns caps from the believed views, and evaluates the
//! true slowdowns that result.

use crate::budgeter::Budgeter;
use crate::job_view::JobView;
use crate::slowdown::slowdowns_under_caps;
use anor_types::{JobId, JobTypeSpec, Watts};

/// A co-scheduled job set where belief may diverge from truth.
#[derive(Debug, Clone)]
pub struct MisclassifyScenario {
    /// Ground-truth views (what the jobs actually are).
    pub truths: Vec<JobView>,
    /// What the budgeter believes about each job, same order.
    pub believed: Vec<JobView>,
}

/// The result of running a budgeter over a scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioOutcome {
    /// Assigned per-node caps, in job order.
    pub caps: Vec<Watts>,
    /// True slowdown each job experiences under those caps.
    pub slowdowns: Vec<f64>,
}

impl ScenarioOutcome {
    /// The worst (largest) slowdown across jobs.
    pub fn worst(&self) -> f64 {
        self.slowdowns.iter().copied().fold(1.0, f64::max)
    }
}

impl MisclassifyScenario {
    /// All jobs correctly characterized. `jobs` supplies the spec and the
    /// node count for each instance (node counts may differ from the
    /// spec's default — Fig. 5 varies them).
    pub fn fully_known(jobs: &[(&JobTypeSpec, u32)]) -> Self {
        let truths: Vec<JobView> = jobs
            .iter()
            .enumerate()
            .map(|(i, &(spec, nodes))| {
                let mut v = JobView::from_spec(JobId(i as u64), spec);
                v.nodes = nodes;
                v
            })
            .collect();
        MisclassifyScenario {
            believed: truths.clone(),
            truths,
        }
    }

    /// Like [`MisclassifyScenario::fully_known`], but job `unknown_idx` is
    /// believed to be `assumed` (carrying the assumed type's curve and
    /// power window) while actually behaving as its true spec.
    pub fn with_unknown(
        jobs: &[(&JobTypeSpec, u32)],
        unknown_idx: usize,
        assumed: &JobTypeSpec,
    ) -> Self {
        let mut s = Self::fully_known(jobs);
        assert!(unknown_idx < s.truths.len(), "unknown index out of range");
        let (true_spec, nodes) = jobs[unknown_idx];
        let mut mis = JobView::misclassified(JobId(unknown_idx as u64), true_spec, assumed);
        mis.nodes = nodes;
        s.believed[unknown_idx] = mis;
        s
    }

    /// Feedback applied: the unknown job's believed curve is replaced by
    /// the true curve (as an online fit converges to), while its believed
    /// power window stays learned-from-observation (we use the true one —
    /// observed draw converges to it too).
    pub fn with_feedback(mut self, job_idx: usize) -> Self {
        assert!(job_idx < self.truths.len(), "job index out of range");
        self.believed[job_idx] = self.truths[job_idx].clone();
        self
    }

    /// Assign caps from the believed views; evaluate slowdowns from truth.
    pub fn evaluate(&self, budgeter: &dyn Budgeter, budget: Watts) -> ScenarioOutcome {
        let caps = budgeter.assign(budget, &self.believed);
        let slowdowns = slowdowns_under_caps(&self.truths, &caps);
        ScenarioOutcome { caps, slowdowns }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budgeter::{EvenPowerBudgeter, EvenSlowdownBudgeter};
    use anor_types::standard_catalog;

    /// Fig. 5's cast: EP (high sensitivity), FT (medium, the unknown), IS
    /// (low sensitivity).
    fn fig5_jobs(
        cat: &anor_types::Catalog,
        ft_nodes: u32,
        known_nodes: u32,
    ) -> MisclassifyScenario {
        let ep = cat.find("ep").unwrap();
        let ft = cat.find("ft").unwrap();
        let is = cat.find("is").unwrap();
        MisclassifyScenario::fully_known(&[(ep, known_nodes), (ft, ft_nodes), (is, known_nodes)])
    }

    #[test]
    fn ideal_scenario_has_equal_belief_and_truth() {
        let cat = standard_catalog();
        let s = fig5_jobs(&cat, 2, 4);
        assert_eq!(s.truths.len(), 3);
        for (t, b) in s.truths.iter().zip(&s.believed) {
            assert_eq!(t, b);
        }
    }

    #[test]
    fn underprediction_slows_the_unknown_job() {
        // Believe FT is IS (insensitive) -> FT gets starved -> FT slows
        // down vs the ideal budgeter. First takeaway of Section 6.1.2.
        let cat = standard_catalog();
        let ep = cat.find("ep").unwrap();
        let ft = cat.find("ft").unwrap();
        let is = cat.find("is").unwrap();
        let jobs = [(ep, 4u32), (ft, 2u32), (is, 4u32)];
        let budget = Watts(2000.0);
        let budgeter = EvenSlowdownBudgeter::default();
        let ideal = MisclassifyScenario::fully_known(&jobs).evaluate(&budgeter, budget);
        let under = MisclassifyScenario::with_unknown(&jobs, 1, is).evaluate(&budgeter, budget);
        assert!(
            under.slowdowns[1] > ideal.slowdowns[1] + 0.02,
            "underprediction must hurt FT: {} vs ideal {}",
            under.slowdowns[1],
            ideal.slowdowns[1]
        );
    }

    #[test]
    fn overprediction_slows_the_sensitive_coscheduled_job() {
        // Believe FT is EP (highly sensitive) -> FT hoards power -> the
        // truly sensitive EP loses power and slows down.
        let cat = standard_catalog();
        let ep = cat.find("ep").unwrap();
        let ft = cat.find("ft").unwrap();
        let is = cat.find("is").unwrap();
        let jobs = [(ep, 1u32), (ft, 8u32), (is, 1u32)];
        let budget = Watts(1800.0);
        let budgeter = EvenSlowdownBudgeter::default();
        let ideal = MisclassifyScenario::fully_known(&jobs).evaluate(&budgeter, budget);
        let over = MisclassifyScenario::with_unknown(&jobs, 1, ep).evaluate(&budgeter, budget);
        assert!(
            over.slowdowns[0] > ideal.slowdowns[0] + 0.01,
            "overprediction must hurt EP: {} vs ideal {}",
            over.slowdowns[0],
            ideal.slowdowns[0]
        );
    }

    #[test]
    fn large_unknown_job_amplifies_misclassification() {
        // Second takeaway: the impact scales with the relative size of the
        // misclassified job.
        let cat = standard_catalog();
        let ep = cat.find("ep").unwrap();
        let ft = cat.find("ft").unwrap();
        let is = cat.find("is").unwrap();
        let budgeter = EvenSlowdownBudgeter::default();
        let harm = |ft_nodes: u32, known_nodes: u32, budget: f64| -> f64 {
            let jobs = [(ep, known_nodes), (ft, ft_nodes), (is, known_nodes)];
            let ideal = MisclassifyScenario::fully_known(&jobs).evaluate(&budgeter, Watts(budget));
            let over =
                MisclassifyScenario::with_unknown(&jobs, 1, ep).evaluate(&budgeter, Watts(budget));
            over.slowdowns[0] - ideal.slowdowns[0]
        };
        // Equal total node counts at the same per-node budget level.
        let small = harm(2, 4, 2000.0); // unknown is 2 of 10 nodes
        let large = harm(8, 1, 2000.0); // unknown is 8 of 10 nodes
        assert!(
            large > small,
            "8-node unknown harm {large} should exceed 2-node harm {small}"
        );
    }

    #[test]
    fn feedback_restores_ideal_assignment() {
        let cat = standard_catalog();
        let ep = cat.find("ep").unwrap();
        let ft = cat.find("ft").unwrap();
        let is = cat.find("is").unwrap();
        let jobs = [(ep, 4u32), (ft, 2u32), (is, 4u32)];
        let budgeter = EvenSlowdownBudgeter::default();
        let ideal = MisclassifyScenario::fully_known(&jobs).evaluate(&budgeter, Watts(2000.0));
        let fixed = MisclassifyScenario::with_unknown(&jobs, 1, is)
            .with_feedback(1)
            .evaluate(&budgeter, Watts(2000.0));
        for (a, b) in ideal.slowdowns.iter().zip(&fixed.slowdowns) {
            assert!((a - b).abs() < 1e-9, "feedback should equal ideal");
        }
    }

    #[test]
    fn outcome_worst_is_max() {
        let o = ScenarioOutcome {
            caps: vec![Watts(1.0); 3],
            slowdowns: vec![1.1, 1.6, 1.2],
        };
        assert_eq!(o.worst(), 1.6);
    }

    #[test]
    fn even_power_is_immune_to_curve_misclassification_but_not_ideal() {
        // The performance-agnostic policy ignores curves, so curve
        // misclassification only enters through the believed power window.
        let cat = standard_catalog();
        let ep = cat.find("ep").unwrap();
        let ft = cat.find("ft").unwrap();
        let is = cat.find("is").unwrap();
        let jobs = [(ep, 4u32), (ft, 2u32), (is, 4u32)];
        let b = EvenPowerBudgeter;
        let ideal = MisclassifyScenario::fully_known(&jobs).evaluate(&b, Watts(2000.0));
        let mis = MisclassifyScenario::with_unknown(&jobs, 1, is).evaluate(&b, Watts(2000.0));
        // Caps differ only because IS's power window differs from FT's.
        for (i, (a, c)) in ideal.caps.iter().zip(&mis.caps).enumerate() {
            if i != 1 {
                assert!((a.value() - c.value()).abs() < 30.0, "job {i} cap shift");
            }
        }
    }
}
