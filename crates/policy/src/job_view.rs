//! What the cluster-tier budgeter believes about each running job.
//!
//! The budgeter never sees the application itself — only a power model
//! delegated up from the job tier (Section 4.4: "We achieve that goal by
//! delegating power-performance modeling to the job tier"). A [`JobView`]
//! is that belief: it may come from the true precharacterization, from a
//! *misclassified* type's curve, or from an online fit.

use anor_types::{CapRange, JobId, JobTypeSpec, PowerCurve, Watts};

/// The budgeter's view of one running job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobView {
    /// Which job this view describes.
    pub job: JobId,
    /// Compute nodes the job occupies.
    pub nodes: u32,
    /// Believed execution-time model (total or per-epoch — the budgeters
    /// only use time *ratios*, which are scale-invariant).
    pub curve: PowerCurve,
    /// Platform cap range per node.
    pub cap_range: CapRange,
    /// Believed maximum per-node power the job can draw. Caps above this
    /// are wasted headroom.
    pub max_draw: Watts,
}

impl JobView {
    /// Build the *true* view of a job from its type spec.
    pub fn from_spec(job: JobId, spec: &JobTypeSpec) -> Self {
        JobView {
            job,
            nodes: spec.nodes,
            curve: spec.curve(),
            cap_range: spec.cap_range,
            max_draw: spec.max_draw,
        }
    }

    /// Build a *misclassified* view: job dimensions (id, node count) of
    /// `job_spec` but the power-performance identity of `assumed_spec` —
    /// the scenario of Section 6.1.2.
    pub fn misclassified(job: JobId, job_spec: &JobTypeSpec, assumed_spec: &JobTypeSpec) -> Self {
        JobView {
            job,
            nodes: job_spec.nodes,
            curve: assumed_spec.curve(),
            cap_range: job_spec.cap_range,
            max_draw: assumed_spec.max_draw,
        }
    }

    /// Replace the believed curve with a freshly fitted one (the feedback
    /// path: a `JobToCluster::Model` message updates the view). The
    /// believed `max_draw` is retained; only the time model changes.
    pub fn with_curve(mut self, curve: PowerCurve) -> Self {
        self.curve = curve;
        self
    }

    /// Highest useful per-node cap: the smaller of the platform max and
    /// the job's believed draw.
    pub fn p_max(&self) -> Watts {
        self.max_draw
            .min(self.cap_range.max)
            .max(self.cap_range.min)
    }

    /// Lowest enforceable per-node cap.
    pub fn p_min(&self) -> Watts {
        self.cap_range.min
    }

    /// The believed achievable power window per node.
    pub fn power_window(&self) -> CapRange {
        CapRange::new(self.p_min(), self.p_max())
    }

    /// Believed execution time at the job's maximum useful cap — the
    /// reference for slowdown calculations.
    pub fn t_ref(&self) -> f64 {
        self.curve.time_at(self.p_max()).value()
    }

    /// Believed slowdown factor if this job's nodes are capped at `cap`.
    pub fn believed_slowdown(&self, cap: Watts) -> f64 {
        let eff = cap.clamp(self.p_min(), self.p_max());
        self.curve.time_at(eff).value() / self.t_ref()
    }

    /// The per-node cap that holds believed slowdown to exactly `s`,
    /// saturating at the achievable window's edges.
    pub fn cap_for_slowdown(&self, s: f64) -> Watts {
        debug_assert!(s >= 1.0, "slowdown below 1 is not achievable");
        let target = anor_types::Seconds(self.t_ref() * s);
        self.curve.power_for_time(target, self.power_window())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anor_types::standard_catalog;

    fn view(name: &str) -> JobView {
        let cat = standard_catalog();
        JobView::from_spec(JobId(1), cat.find(name).unwrap())
    }

    #[test]
    fn from_spec_carries_dimensions() {
        let v = view("bt.D.81");
        assert_eq!(v.nodes, 2);
        assert_eq!(v.max_draw, Watts(272.0));
        assert_eq!(v.p_min(), Watts(140.0));
        assert_eq!(v.p_max(), Watts(272.0));
    }

    #[test]
    fn misclassified_mixes_identities() {
        let cat = standard_catalog();
        let v = JobView::misclassified(
            JobId(2),
            cat.find("ft.D.64").unwrap(),
            cat.find("is.D.32").unwrap(),
        );
        // FT's node footprint, IS's power identity.
        assert_eq!(v.nodes, 2);
        assert_eq!(v.max_draw, cat.find("is").unwrap().max_draw);
        let is_curve = cat.find("is").unwrap().curve();
        assert_eq!(v.curve, is_curve);
    }

    #[test]
    fn believed_slowdown_is_one_at_pmax() {
        let v = view("lu.D.42");
        assert!((v.believed_slowdown(v.p_max()) - 1.0).abs() < 1e-12);
        // Caps above p_max don't speed the job up.
        assert!((v.believed_slowdown(Watts(280.0)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cap_for_slowdown_round_trips() {
        let v = view("bt.D.81");
        for s in [1.05, 1.2, 1.4] {
            let cap = v.cap_for_slowdown(s);
            let achieved = v.believed_slowdown(cap);
            assert!(
                (achieved - s).abs() < 1e-6,
                "s={s}: cap {cap} gives {achieved}"
            );
        }
    }

    #[test]
    fn cap_for_slowdown_saturates_for_insensitive_jobs() {
        // IS can barely slow down: big requested slowdowns hit p_min.
        let v = view("is.D.32");
        assert_eq!(v.cap_for_slowdown(2.0), v.p_min());
        // And s = 1 needs full power.
        assert_eq!(v.cap_for_slowdown(1.0), v.p_max());
    }

    #[test]
    fn with_curve_swaps_model_only() {
        let v = view("sp.D.81");
        let new_curve = view("bt.D.81").curve;
        let updated = v.clone().with_curve(new_curve);
        assert_eq!(updated.nodes, v.nodes);
        assert_eq!(updated.max_draw, v.max_draw);
        assert_eq!(updated.curve, new_curve);
    }
}
