//! Facility-level power coordination across clusters.
//!
//! Section 8: "a facility with multiple clusters may wish to coordinate
//! power demand across those clusters. Our proposed framework may be
//! extended by treating the facility as a power provider to each member
//! of the cluster tier... particularly useful for facilities that are
//! bringing up next-generation clusters while previous-generation
//! clusters are still operating under a shared power infrastructure that
//! may not have the capacity to use both clusters at peak power demand
//! concurrently."
//!
//! [`FacilityBudgeter`] distributes a facility budget across clusters by
//! weighted water-filling: every cluster receives at least its floor
//! (idle/infrastructure power), the remainder is split in weight
//! proportion, and clusters cap out at the smaller of their capacity and
//! their current demand — freed headroom recirculates to the others.

use anor_types::Watts;

/// What the facility knows about one member cluster.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterView {
    /// Display name.
    pub name: String,
    /// Power the cluster needs even when fully throttled.
    pub floor: Watts,
    /// Maximum power the cluster's hardware can draw.
    pub capacity: Watts,
    /// Power the cluster currently wants (its bid / forecast demand).
    pub demand: Watts,
    /// Allocation weight (relative priority).
    pub weight: f64,
}

impl ClusterView {
    /// The most power this cluster can usefully take right now.
    pub fn useful_max(&self) -> Watts {
        self.capacity.min(self.demand).max(self.floor)
    }
}

/// The facility-tier allocator.
///
/// ```
/// use anor_policy::{ClusterView, FacilityBudgeter};
/// use anor_types::Watts;
///
/// let clusters = [
///     ClusterView { name: "old".into(), floor: Watts(100.0),
///         capacity: Watts(1000.0), demand: Watts(200.0), weight: 1.0 },
///     ClusterView { name: "new".into(), floor: Watts(100.0),
///         capacity: Watts(2000.0), demand: Watts(2000.0), weight: 1.0 },
/// ];
/// let alloc = FacilityBudgeter.allocate(Watts(1800.0), &clusters);
/// assert_eq!(alloc[0], Watts(200.0));  // old caps at its demand
/// assert_eq!(alloc[1], Watts(1600.0)); // freed headroom flows to new
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct FacilityBudgeter;

impl FacilityBudgeter {
    /// Split `budget` across `clusters`. Floors are always granted (the
    /// facility cannot brown out a cluster); the surplus is water-filled
    /// by weight up to each cluster's useful maximum.
    pub fn allocate(&self, budget: Watts, clusters: &[ClusterView]) -> Vec<Watts> {
        if clusters.is_empty() {
            return Vec::new();
        }
        for c in clusters {
            assert!(
                c.floor.value() <= c.capacity.value(),
                "{}: floor above capacity",
                c.name
            );
            assert!(c.weight >= 0.0, "{}: negative weight", c.name);
        }
        let mut alloc: Vec<Watts> = clusters.iter().map(|c| c.floor).collect();
        let floors: Watts = alloc.iter().copied().sum();
        let mut surplus = (budget - floors).max(Watts::ZERO);
        // Water-fill: distribute surplus among unsaturated clusters in
        // weight proportion; iterate as clusters saturate.
        let mut open: Vec<usize> = (0..clusters.len())
            .filter(|&i| clusters[i].useful_max().value() > clusters[i].floor.value())
            .collect();
        for _ in 0..clusters.len() + 1 {
            if surplus.value() <= 1e-9 || open.is_empty() {
                break;
            }
            let total_w: f64 = open.iter().map(|&i| clusters[i].weight).sum();
            if total_w <= 0.0 {
                break;
            }
            let mut next_open = Vec::with_capacity(open.len());
            let mut returned = Watts::ZERO;
            for &i in &open {
                let share = surplus * (clusters[i].weight / total_w);
                let headroom = clusters[i].useful_max() - alloc[i];
                if share.value() >= headroom.value() {
                    alloc[i] += headroom;
                    returned += share - headroom;
                } else {
                    alloc[i] += share;
                    next_open.push(i);
                }
            }
            surplus = returned;
            open = next_open;
        }
        alloc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster(name: &str, floor: f64, capacity: f64, demand: f64, weight: f64) -> ClusterView {
        ClusterView {
            name: name.into(),
            floor: Watts(floor),
            capacity: Watts(capacity),
            demand: Watts(demand),
            weight,
        }
    }

    fn total(alloc: &[Watts]) -> f64 {
        alloc.iter().map(|w| w.value()).sum()
    }

    #[test]
    fn equal_weights_split_surplus_evenly() {
        let clusters = [
            cluster("old", 100.0, 1000.0, 1000.0, 1.0),
            cluster("new", 100.0, 1000.0, 1000.0, 1.0),
        ];
        let alloc = FacilityBudgeter.allocate(Watts(1200.0), &clusters);
        assert_eq!(alloc[0], Watts(600.0));
        assert_eq!(alloc[1], Watts(600.0));
    }

    #[test]
    fn budget_is_conserved_when_demand_exceeds_it() {
        let clusters = [
            cluster("a", 50.0, 800.0, 800.0, 1.0),
            cluster("b", 50.0, 800.0, 800.0, 3.0),
        ];
        let alloc = FacilityBudgeter.allocate(Watts(1000.0), &clusters);
        assert!((total(&alloc) - 1000.0).abs() < 1e-6);
        // Weight-3 cluster gets 3x the surplus.
        let (sa, sb) = (alloc[0].value() - 50.0, alloc[1].value() - 50.0);
        assert!((sb / sa - 3.0).abs() < 1e-6, "{sa} vs {sb}");
    }

    #[test]
    fn saturated_cluster_frees_headroom() {
        // Cluster "old" only demands 200 W; its unused share must flow to
        // "new" — the paper's bring-up scenario.
        let clusters = [
            cluster("old", 100.0, 1500.0, 200.0, 1.0),
            cluster("new", 100.0, 2000.0, 2000.0, 1.0),
        ];
        let alloc = FacilityBudgeter.allocate(Watts(1800.0), &clusters);
        assert_eq!(alloc[0], Watts(200.0), "old capped at its demand");
        assert!(
            (alloc[1].value() - 1600.0).abs() < 1e-6,
            "new gets the rest"
        );
    }

    #[test]
    fn floors_always_granted_even_over_budget() {
        let clusters = [
            cluster("a", 300.0, 1000.0, 1000.0, 1.0),
            cluster("b", 300.0, 1000.0, 1000.0, 1.0),
        ];
        // Budget below the sum of floors: floors still granted (the
        // facility must shed load elsewhere).
        let alloc = FacilityBudgeter.allocate(Watts(400.0), &clusters);
        assert_eq!(alloc[0], Watts(300.0));
        assert_eq!(alloc[1], Watts(300.0));
    }

    #[test]
    fn abundant_budget_caps_at_capacity() {
        let clusters = [
            cluster("a", 100.0, 900.0, 5000.0, 1.0),
            cluster("b", 100.0, 700.0, 5000.0, 1.0),
        ];
        let alloc = FacilityBudgeter.allocate(Watts(10_000.0), &clusters);
        assert_eq!(alloc[0], Watts(900.0));
        assert_eq!(alloc[1], Watts(700.0));
    }

    #[test]
    fn zero_weight_cluster_gets_only_its_floor() {
        let clusters = [
            cluster("background", 100.0, 1000.0, 1000.0, 0.0),
            cluster("production", 100.0, 1000.0, 1000.0, 1.0),
        ];
        let alloc = FacilityBudgeter.allocate(Watts(1000.0), &clusters);
        assert_eq!(alloc[0], Watts(100.0));
        assert!((alloc[1].value() - 900.0).abs() < 1e-6);
    }

    #[test]
    fn empty_facility() {
        assert!(FacilityBudgeter.allocate(Watts(1000.0), &[]).is_empty());
    }

    #[test]
    fn three_way_cascading_saturation() {
        let clusters = [
            cluster("tiny", 10.0, 100.0, 100.0, 1.0),
            cluster("mid", 10.0, 500.0, 500.0, 1.0),
            cluster("big", 10.0, 5000.0, 5000.0, 1.0),
        ];
        let alloc = FacilityBudgeter.allocate(Watts(3030.0), &clusters);
        assert!((total(&alloc) - 3030.0).abs() < 1e-6);
        assert_eq!(alloc[0], Watts(100.0), "tiny saturates");
        assert_eq!(alloc[1], Watts(500.0), "mid saturates");
        assert!((alloc[2].value() - 2430.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "floor above capacity")]
    fn inverted_cluster_rejected() {
        FacilityBudgeter.allocate(Watts(100.0), &[cluster("bad", 500.0, 100.0, 100.0, 1.0)]);
    }
}
