//! The three power-budgeting policies of Section 4.4.3.
//!
//! All budgeters answer the same question: given a total power budget for
//! the active jobs' nodes and a view of each job, what per-node cap does
//! each job get? Budgets outside the feasible window saturate at the
//! platform limits — "neither policy has flexibility to assign power caps
//! beyond the range allowed by the power-capping interface"
//! (Section 6.1.1).

use crate::job_view::JobView;
use anor_types::Watts;

/// A cluster-tier power-budget distribution policy.
pub trait Budgeter {
    /// Split `budget` (total CPU watts for all listed jobs' nodes) into a
    /// per-node cap for each job, in input order.
    fn assign(&self, budget: Watts, jobs: &[JobView]) -> Vec<Watts>;

    /// Human-readable policy name for reports.
    fn name(&self) -> &'static str;
}

/// Total nodes across views.
fn total_nodes(jobs: &[JobView]) -> f64 {
    jobs.iter().map(|j| j.nodes as f64).sum()
}

/// Total power if every job runs at the given per-job caps.
fn total_power(jobs: &[JobView], caps: &[Watts]) -> Watts {
    jobs.iter()
        .zip(caps)
        .map(|(j, &c)| c * j.nodes as f64)
        .sum()
}

// ---------------------------------------------------------------------------

/// The performance-agnostic baseline: the same cap on every active node,
/// clamped to the platform range (AQA's uniform capping).
#[derive(Debug, Clone, Copy, Default)]
pub struct UniformBudgeter;

impl Budgeter for UniformBudgeter {
    fn assign(&self, budget: Watts, jobs: &[JobView]) -> Vec<Watts> {
        if jobs.is_empty() {
            return Vec::new();
        }
        let per_node = budget / total_nodes(jobs);
        jobs.iter().map(|j| j.cap_range.clamp(per_node)).collect()
    }

    fn name(&self) -> &'static str {
        "uniform"
    }
}

// ---------------------------------------------------------------------------

/// The performance-unaware balancer: a single γ places every job at the
/// same fraction of its achievable power window,
/// `p_cap = γ·(p_max − p_min) + p_min` (Section 4.4.3).
#[derive(Debug, Clone, Copy, Default)]
pub struct EvenPowerBudgeter;

impl Budgeter for EvenPowerBudgeter {
    fn assign(&self, budget: Watts, jobs: &[JobView]) -> Vec<Watts> {
        if jobs.is_empty() {
            return Vec::new();
        }
        // Σ nodes·(γ·(pmax−pmin) + pmin) = budget  →  γ closed form.
        let base: f64 = jobs
            .iter()
            .map(|j| j.p_min().value() * j.nodes as f64)
            .sum();
        let span: f64 = jobs
            .iter()
            .map(|j| (j.p_max() - j.p_min()).value() * j.nodes as f64)
            .sum();
        let gamma = if span <= 0.0 {
            1.0
        } else {
            ((budget.value() - base) / span).clamp(0.0, 1.0)
        };
        jobs.iter()
            .map(|j| j.p_min() + (j.p_max() - j.p_min()) * gamma)
            .collect()
    }

    fn name(&self) -> &'static str {
        "even-power"
    }
}

// ---------------------------------------------------------------------------

/// The performance-aware balancer: a single expected slowdown `s` is
/// imposed on every job through its believed model,
/// `p_cap = P_j(s·T_j(p_max))`, found by bisection on `s` (Section 4.4.3).
///
/// ```
/// use anor_policy::{Budgeter, EvenSlowdownBudgeter, JobView};
/// use anor_types::{standard_catalog, JobId, Watts};
///
/// let cat = standard_catalog();
/// let jobs = vec![
///     JobView::from_spec(JobId(0), cat.find("bt").unwrap()), // sensitive
///     JobView::from_spec(JobId(1), cat.find("sp").unwrap()), // insensitive
/// ];
/// let caps = EvenSlowdownBudgeter::default().assign(Watts(840.0), &jobs);
/// // Power is steered toward the job that converts it into speed.
/// assert!(caps[0].value() > caps[1].value());
/// ```
#[derive(Debug, Clone, Copy)]
pub struct EvenSlowdownBudgeter {
    /// Bisection convergence tolerance on total watts.
    pub tolerance: Watts,
    /// Bisection iteration bound.
    pub max_iters: u32,
}

impl Default for EvenSlowdownBudgeter {
    fn default() -> Self {
        EvenSlowdownBudgeter {
            tolerance: Watts(0.5),
            max_iters: 64,
        }
    }
}

impl EvenSlowdownBudgeter {
    fn caps_at(&self, s: f64, jobs: &[JobView]) -> Vec<Watts> {
        jobs.iter().map(|j| j.cap_for_slowdown(s)).collect()
    }

    /// [`Self::caps_at`] into an existing buffer: the bisection loop
    /// re-evaluates caps up to `max_iters` times per assignment and this
    /// is the budgeter's per-pump (and the simulator's per-tick) hot
    /// path, so it must not allocate per iteration.
    fn fill_caps(&self, s: f64, jobs: &[JobView], caps: &mut [Watts]) {
        for (j, c) in jobs.iter().zip(caps.iter_mut()) {
            *c = j.cap_for_slowdown(s);
        }
    }
}

impl Budgeter for EvenSlowdownBudgeter {
    fn assign(&self, budget: Watts, jobs: &[JobView]) -> Vec<Watts> {
        if jobs.is_empty() {
            return Vec::new();
        }
        // Feasible window.
        let at_max = self.caps_at(1.0, jobs);
        if total_power(jobs, &at_max).value() <= budget.value() {
            return at_max;
        }
        // Upper bound on useful s: the worst believed slowdown any job
        // reaches at its minimum cap (beyond that everyone saturates).
        let s_hi = jobs
            .iter()
            .map(|j| j.believed_slowdown(j.p_min()))
            .fold(1.0f64, f64::max)
            .max(1.0 + 1e-9);
        let at_min = self.caps_at(s_hi, jobs);
        if total_power(jobs, &at_min).value() >= budget.value() {
            return at_min;
        }
        // Bisect: total power is non-increasing in s.
        let (mut lo, mut hi) = (1.0, s_hi);
        let mut caps = at_min;
        for _ in 0..self.max_iters {
            let mid = 0.5 * (lo + hi);
            self.fill_caps(mid, jobs, &mut caps);
            let total = total_power(jobs, &caps);
            if (total - budget).abs().value() <= self.tolerance.value() {
                return caps;
            }
            if total.value() > budget.value() {
                lo = mid; // too much power -> allow more slowdown
            } else {
                hi = mid;
            }
            // Once the bracket is a ULP wide the midpoint reproduces an
            // endpoint and further iterations re-evaluate the same s
            // forever; stop refining.
            if hi - lo <= hi * f64::EPSILON {
                break;
            }
        }
        // A believed curve with flat spans makes total power
        // discontinuous in s, so the budget crossing can sit inside a
        // jump the tolerance never meets and the final midpoint may land
        // on the over-budget side. Take the under-budget side (`hi` only
        // ever adopts midpoints whose total fit) — the budgeter must
        // never assign more watts than it was given — then spend the
        // stranded gap performance-agnostically: jobs whose flat spans
        // caused the jump are belief-indifferent across it, so the only
        // defensible split of the leftover watts is uniform per node.
        if total_power(jobs, &caps).value() > budget.value() + self.tolerance.value() {
            caps = self.caps_at(hi, jobs);
        }
        let mut spare = (budget - total_power(jobs, &caps)).value();
        // Equal watts per node among every job still below its p_max,
        // saturating and redistributing until the gap is spent. Each
        // round saturates at least one job, so the loop is bounded.
        for _ in 0..=jobs.len() {
            if spare <= 1e-9 {
                break;
            }
            let taker_nodes: f64 = jobs
                .iter()
                .zip(&caps)
                .filter(|&(j, &c)| c < j.p_max())
                .map(|(j, _)| f64::from(j.nodes))
                .sum();
            if taker_nodes <= 0.0 {
                break;
            }
            let per_node = Watts(spare / taker_nodes);
            for (j, c) in jobs.iter().zip(caps.iter_mut()) {
                let grant = per_node.min(j.p_max() - *c).max(Watts::ZERO);
                spare -= grant.value() * f64::from(j.nodes);
                *c += grant;
            }
        }
        caps
    }

    fn name(&self) -> &'static str {
        "even-slowdown"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anor_types::{standard_catalog, JobId};

    fn views(names: &[&str]) -> Vec<JobView> {
        let cat = standard_catalog();
        names
            .iter()
            .enumerate()
            .map(|(i, n)| JobView::from_spec(JobId(i as u64), cat.find(n).unwrap()))
            .collect()
    }

    fn total(jobs: &[JobView], caps: &[Watts]) -> f64 {
        total_power(jobs, caps).value()
    }

    #[test]
    fn empty_job_list_is_empty_assignment() {
        for b in [
            &UniformBudgeter as &dyn Budgeter,
            &EvenPowerBudgeter,
            &EvenSlowdownBudgeter::default(),
        ] {
            assert!(b.assign(Watts(1000.0), &[]).is_empty());
        }
    }

    #[test]
    fn uniform_gives_same_cap_everywhere() {
        let jobs = views(&["bt.D.81", "sp.D.81"]); // 2 + 2 nodes
        let caps = UniformBudgeter.assign(Watts(840.0), &jobs);
        assert_eq!(caps[0], Watts(210.0));
        assert_eq!(caps[1], Watts(210.0));
    }

    #[test]
    fn uniform_clamps_to_platform_range() {
        let jobs = views(&["bt.D.81"]);
        let caps = UniformBudgeter.assign(Watts(100.0), &jobs);
        assert_eq!(caps[0], Watts(140.0), "clamped up to platform min");
        let caps = UniformBudgeter.assign(Watts(2000.0), &jobs);
        assert_eq!(caps[0], Watts(280.0), "clamped down to platform max");
    }

    #[test]
    fn even_power_meets_budget_in_window() {
        let jobs = views(&["bt.D.81", "is.D.32", "ep.D.43"]); // 2+1+1 nodes
        let budget = Watts(800.0);
        let caps = EvenPowerBudgeter.assign(budget, &jobs);
        assert!((total(&jobs, &caps) - 800.0).abs() < 1e-6);
        // All jobs sit at the same fraction of their window.
        let f0 = jobs[0].power_window().fraction(caps[0]);
        let f1 = jobs[1].power_window().fraction(caps[1]);
        let f2 = jobs[2].power_window().fraction(caps[2]);
        assert!((f0 - f1).abs() < 1e-9 && (f1 - f2).abs() < 1e-9);
    }

    #[test]
    fn even_power_saturates_outside_window() {
        let jobs = views(&["bt.D.81", "sp.D.81"]);
        // Below everyone's floor.
        let caps = EvenPowerBudgeter.assign(Watts(100.0), &jobs);
        assert!(caps.iter().zip(&jobs).all(|(c, j)| *c == j.p_min()));
        // Above everyone's ceiling (gamma = 1 -> p_max per job).
        let caps = EvenPowerBudgeter.assign(Watts(5000.0), &jobs);
        assert_eq!(caps[0], jobs[0].p_max());
        assert_eq!(caps[1], jobs[1].p_max());
    }

    #[test]
    fn even_slowdown_meets_budget_and_equalizes() {
        let jobs = views(&["bt.D.81", "ep.D.43"]); // both sensitive
        let budget = Watts(650.0);
        let caps = EvenSlowdownBudgeter::default().assign(budget, &jobs);
        assert!(
            (total(&jobs, &caps) - 650.0).abs() < 1.0,
            "total {}",
            total(&jobs, &caps)
        );
        let s0 = jobs[0].believed_slowdown(caps[0]);
        let s1 = jobs[1].believed_slowdown(caps[1]);
        assert!((s0 - s1).abs() < 0.01, "slowdowns {s0} vs {s1}");
        assert!(s0 > 1.0);
    }

    #[test]
    fn even_slowdown_steers_power_to_sensitive_jobs() {
        // BT (sensitive) + SP (insensitive) at a tight shared budget:
        // BT must receive a higher cap than SP.
        let jobs = views(&["bt.D.81", "sp.D.81"]);
        let budget = Watts(840.0); // 210 W/node average over 4 nodes
        let caps = EvenSlowdownBudgeter::default().assign(budget, &jobs);
        assert!(
            caps[0].value() > caps[1].value() + 10.0,
            "bt {} vs sp {}",
            caps[0],
            caps[1]
        );
        // Compare with even-power: the gap between policies is the Fig. 4
        // mid-range opportunity.
        let ep_caps = EvenPowerBudgeter.assign(budget, &jobs);
        let worst_aware = jobs
            .iter()
            .zip(&caps)
            .map(|(j, &c)| j.believed_slowdown(c))
            .fold(0.0f64, f64::max);
        let worst_unaware = jobs
            .iter()
            .zip(&ep_caps)
            .map(|(j, &c)| j.believed_slowdown(c))
            .fold(0.0f64, f64::max);
        assert!(
            worst_aware < worst_unaware,
            "even-slowdown should improve the worst job: {worst_aware} vs {worst_unaware}"
        );
    }

    #[test]
    fn even_slowdown_low_sensitivity_jobs_level_off() {
        // At a very tight budget, IS saturates at the minimum cap while
        // EP keeps more power (Section 6.1.1's "level off").
        let jobs = views(&["is.D.32", "ep.D.43"]);
        let budget = Watts(360.0);
        let caps = EvenSlowdownBudgeter::default().assign(budget, &jobs);
        assert_eq!(caps[0], jobs[0].p_min(), "IS pinned at min cap");
        assert!(caps[1].value() > jobs[1].p_min().value() + 20.0);
    }

    #[test]
    fn even_slowdown_saturates_at_budget_extremes() {
        let jobs = views(&["bt.D.81", "cg.D.32"]);
        let caps = EvenSlowdownBudgeter::default().assign(Watts(10_000.0), &jobs);
        assert_eq!(caps[0], jobs[0].p_max());
        assert_eq!(caps[1], jobs[1].p_max());
        let caps = EvenSlowdownBudgeter::default().assign(Watts(10.0), &jobs);
        assert_eq!(caps[0], jobs[0].p_min());
        assert_eq!(caps[1], jobs[1].p_min());
    }

    #[test]
    fn even_slowdown_never_over_allocates_on_flat_curves() {
        use anor_types::{CapRange, PowerCurve, Seconds};
        // A feedback-retrained believed curve can be perfectly flat
        // (zero sensitivity): total power is then discontinuous in s and
        // the bisection tolerance can never be met at the crossing. The
        // assignment must exit on the under-budget side — handing out
        // more watts than the budget breaks cluster conservation.
        let mut jobs = views(&["bt.D.81", "sp.D.81"]); // 2 + 2 nodes
        let flat = PowerCurve::from_anchor(Seconds(100.0), 0.0, CapRange::paper_node());
        jobs[1] = jobs[1].clone().with_curve(flat);
        let floor: f64 = jobs
            .iter()
            .map(|j| j.p_min().value() * j.nodes as f64)
            .sum();
        for budget in [600.0, 700.0, 840.0, 900.0, 1000.0] {
            let caps = EvenSlowdownBudgeter::default().assign(Watts(budget), &jobs);
            let spent = total(&jobs, &caps);
            assert!(
                spent <= budget.max(floor) + 1.0,
                "budget {budget}: assigned {spent}"
            );
        }
    }

    #[test]
    fn budgeter_names() {
        assert_eq!(UniformBudgeter.name(), "uniform");
        assert_eq!(EvenPowerBudgeter.name(), "even-power");
        assert_eq!(EvenSlowdownBudgeter::default().name(), "even-slowdown");
    }

    #[test]
    fn node_counts_weight_the_budget() {
        // A 2-node job consumes twice its cap from the budget.
        let jobs = views(&["ft.D.64", "mg.D.32"]); // 2 + 1 nodes
        let caps = EvenPowerBudgeter.assign(Watts(600.0), &jobs);
        let spent = caps[0].value() * 2.0 + caps[1].value();
        assert!((spent - 600.0).abs() < 1e-6, "spent {spent}");
    }
}
