//! Ground-truth slowdown evaluation.
//!
//! Budgeters pick caps from *believed* models; the paper's figures report
//! the slowdown each job *actually* experiences, i.e. evaluated against
//! the true power-performance curve. These helpers compute that, relative
//! to each job's uncapped execution time (the reference in Figs. 4–8, 10).

use crate::job_view::JobView;
use anor_types::Watts;

/// True slowdown a job suffers under a per-node cap, relative to its
/// uncapped time. `truth` must be the job's true view.
pub fn slowdown_under_cap(truth: &JobView, cap: Watts) -> f64 {
    truth.believed_slowdown(cap)
}

/// True slowdowns for a whole assignment, in job order.
pub fn slowdowns_under_caps(truths: &[JobView], caps: &[Watts]) -> Vec<f64> {
    assert_eq!(truths.len(), caps.len(), "caps/jobs length mismatch");
    truths
        .iter()
        .zip(caps)
        .map(|(t, &c)| slowdown_under_cap(t, c))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use anor_types::{standard_catalog, JobId};

    #[test]
    fn uncapped_slowdown_is_one() {
        let cat = standard_catalog();
        let v = JobView::from_spec(JobId(1), cat.find("bt").unwrap());
        assert!((slowdown_under_cap(&v, Watts(280.0)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn slowdown_increases_as_cap_decreases() {
        let cat = standard_catalog();
        let v = JobView::from_spec(JobId(1), cat.find("lu").unwrap());
        let mut prev = 0.0;
        for cap in [280.0, 240.0, 200.0, 160.0, 140.0] {
            let s = slowdown_under_cap(&v, Watts(cap));
            assert!(s >= prev, "slowdown not monotone at {cap}");
            prev = s;
        }
        // LU's sensitivity is 0.70 -> ~1.7 at min cap.
        assert!((prev - 1.70).abs() < 0.02, "lu min-cap slowdown {prev}");
    }

    #[test]
    fn vector_form_matches_scalar() {
        let cat = standard_catalog();
        let truths: Vec<JobView> = ["bt", "sp"]
            .iter()
            .enumerate()
            .map(|(i, n)| JobView::from_spec(JobId(i as u64), cat.find(n).unwrap()))
            .collect();
        let caps = [Watts(200.0), Watts(180.0)];
        let v = slowdowns_under_caps(&truths, &caps);
        assert_eq!(v.len(), 2);
        assert_eq!(v[0], slowdown_under_cap(&truths[0], caps[0]));
        assert_eq!(v[1], slowdown_under_cap(&truths[1], caps[1]));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        slowdowns_under_caps(&[], &[Watts(1.0)]);
    }
}
