#![warn(missing_docs)]
//! # anor-policy
//!
//! Cluster-tier power-budgeting policies (paper Sections 4.1, 4.4.3).
//!
//! A *power budgeter* decides how a cluster-wide power budget is split
//! into per-node power caps for the currently running jobs. The paper
//! evaluates:
//!
//! * a **uniform** baseline — the same cap on every active node (AQA's
//!   rule: "power caps are applied uniformly across active nodes");
//! * the **performance-unaware (even power caps)** balancer — one γ scales
//!   every job between its achievable min and max power:
//!   `p_cap = γ·(p_max − p_min) + p_min`;
//! * the **performance-aware (even slowdown)** balancer — one expected
//!   slowdown `s` is applied to every job through its power model:
//!   `p_cap = P_j(s·T_j(p_max))`, with saturation at the platform's
//!   minimum cap (the "level off" of Section 6.1.1).
//!
//! [`misclassify`] builds the Fig. 5/6 scenarios in which the budgeter's
//! *believed* model for a job differs from its true behaviour, and
//! evaluates the resulting slowdowns against ground truth.

pub mod budgeter;
pub mod facility;
pub mod job_view;
pub mod misclassify;
pub mod slowdown;

pub use budgeter::{Budgeter, EvenPowerBudgeter, EvenSlowdownBudgeter, UniformBudgeter};
pub use facility::{ClusterView, FacilityBudgeter};
pub use job_view::JobView;
pub use misclassify::{MisclassifyScenario, ScenarioOutcome};
pub use slowdown::{slowdown_under_cap, slowdowns_under_caps};
