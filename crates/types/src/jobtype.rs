//! Job-type descriptors.
//!
//! The paper's evaluation treats each NAS Parallel Benchmark as a *job
//! type* — a named class of work with a precharacterized power-performance
//! relationship, a node count, and a QoS constraint. A [`JobTypeSpec`]
//! carries everything both tiers need to know about a type; the concrete
//! set used in the paper lives in [`crate::catalog`].

use crate::curve::{CapRange, PowerCurve};
use crate::units::{Seconds, Watts};
use std::fmt;

/// Index of a job type within a [`crate::catalog::Catalog`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct JobTypeId(pub u16);

impl JobTypeId {
    /// Usable as a vector index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for JobTypeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "type-{}", self.0)
    }
}

/// Coarse power-sensitivity class, used when discussing misclassification
/// scenarios (Section 6.1.2: "low, medium, and high power sensitivity").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SensitivityClass {
    /// Performance barely responds to the cap (IS, SP in the paper).
    Low,
    /// Moderate response (FT, CG, MG).
    Medium,
    /// Strong response (EP, BT, LU).
    High,
}

impl fmt::Display for SensitivityClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SensitivityClass::Low => write!(f, "low"),
            SensitivityClass::Medium => write!(f, "medium"),
            SensitivityClass::High => write!(f, "high"),
        }
    }
}

/// Everything the framework knows about one job type.
#[derive(Debug, Clone, PartialEq)]
pub struct JobTypeSpec {
    /// Catalog index.
    pub id: JobTypeId,
    /// Display name in the paper's `benchmark.class.ranks` format,
    /// e.g. `bt.D.81`.
    pub name: String,
    /// Compute nodes one instance occupies in the 16-node cluster
    /// experiments (scaled 25× for the 1000-node simulations).
    pub nodes: u32,
    /// Number of `geopm_prof_epoch()` calls (outer-loop iterations) one
    /// run performs.
    pub epochs: u64,
    /// Total execution time with no power cap (per-node cap at TDP).
    pub time_uncapped: Seconds,
    /// Dimensionless power sensitivity: the fractional slowdown at the
    /// minimum cap, i.e. `T(min)/T(max) − 1`.
    pub sensitivity: f64,
    /// Achievable per-node cap range (platform property).
    pub cap_range: CapRange,
    /// Per-node power the job actually draws when uncapped. Memory-bound
    /// codes never reach TDP.
    pub max_draw: Watts,
    /// Relative standard deviation of per-epoch time measurements; tuned
    /// per type so the offline fit R² matches the paper (IS 0.92, MG 0.94,
    /// SP 0.84, others ≥ 0.97).
    pub noise_sigma: f64,
    /// QoS degradation limit `Q` for this type (paper: 5 for all types,
    /// with 90% probability).
    pub qos_limit: f64,
}

impl JobTypeSpec {
    /// Ground-truth total-execution-time model for this type.
    pub fn curve(&self) -> PowerCurve {
        PowerCurve::from_anchor(self.time_uncapped, self.sensitivity, self.cap_range)
    }

    /// Ground-truth seconds-per-epoch model (the quantity the job-tier
    /// modeler estimates from epoch feedback).
    pub fn epoch_curve(&self) -> PowerCurve {
        self.curve().scale_time(1.0 / self.epochs as f64)
    }

    /// Execution time at a given per-node cap, per the ground-truth model.
    pub fn time_at(&self, cap: Watts) -> Seconds {
        self.curve().time_at(self.effective_cap(cap))
    }

    /// The cap value that actually constrains the job: caps above its
    /// natural draw have no effect.
    #[inline]
    pub fn effective_cap(&self, cap: Watts) -> Watts {
        self.cap_range.clamp(cap).min(self.max_draw)
    }

    /// Per-node power the job draws under `cap`: the smaller of the cap
    /// and its natural uncapped draw.
    #[inline]
    pub fn draw_at(&self, cap: Watts) -> Watts {
        self.effective_cap(cap)
    }

    /// Lowest per-node power the job can be driven to (the platform's
    /// minimum cap).
    #[inline]
    pub fn min_draw(&self) -> Watts {
        self.cap_range.min.min(self.max_draw)
    }

    /// Classify by sensitivity with the thresholds used throughout the
    /// experiment discussion.
    pub fn sensitivity_class(&self) -> SensitivityClass {
        if self.sensitivity < 0.30 {
            SensitivityClass::Low
        } else if self.sensitivity < 0.60 {
            SensitivityClass::Medium
        } else {
            SensitivityClass::High
        }
    }

    /// Seconds per epoch with no power cap.
    pub fn epoch_time_uncapped(&self) -> Seconds {
        self.time_uncapped / self.epochs as f64
    }

    /// Is this one of the short (< 30 s) setup-dominated types the paper
    /// excludes from the final schedules (Section 7.2)?
    pub fn is_short(&self) -> bool {
        self.time_uncapped.value() < 30.0
    }
}

impl fmt::Display for JobTypeSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} nodes, {:.0}, sens {:.2})",
            self.name, self.nodes, self.time_uncapped, self.sensitivity
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(sens: f64) -> JobTypeSpec {
        JobTypeSpec {
            id: JobTypeId(0),
            name: "xx.D.1".into(),
            nodes: 2,
            epochs: 100,
            time_uncapped: Seconds(200.0),
            sensitivity: sens,
            cap_range: CapRange::paper_node(),
            max_draw: Watts(260.0),
            noise_sigma: 0.02,
            qos_limit: 5.0,
        }
    }

    #[test]
    fn curve_matches_anchors() {
        let s = spec(0.5);
        let c = s.curve();
        assert!((c.time_at(Watts(280.0)).value() - 200.0).abs() < 1e-9);
        assert!((c.time_at(Watts(140.0)).value() - 300.0).abs() < 1e-9);
    }

    #[test]
    fn epoch_curve_is_scaled_total() {
        let s = spec(0.5);
        let total = s.curve().time_at(Watts(200.0)).value();
        let per_epoch = s.epoch_curve().time_at(Watts(200.0)).value();
        assert!((per_epoch * 100.0 - total).abs() < 1e-9);
    }

    #[test]
    fn effective_cap_respects_natural_draw() {
        let s = spec(0.5);
        // Cap above the job's draw does not constrain it.
        assert_eq!(s.effective_cap(Watts(280.0)), Watts(260.0));
        assert_eq!(s.draw_at(Watts(280.0)), Watts(260.0));
        // Cap below the draw binds.
        assert_eq!(s.effective_cap(Watts(180.0)), Watts(180.0));
        // Cap below the platform range clamps up.
        assert_eq!(s.effective_cap(Watts(100.0)), Watts(140.0));
    }

    #[test]
    fn sensitivity_classes() {
        assert_eq!(spec(0.1).sensitivity_class(), SensitivityClass::Low);
        assert_eq!(spec(0.45).sensitivity_class(), SensitivityClass::Medium);
        assert_eq!(spec(0.75).sensitivity_class(), SensitivityClass::High);
    }

    #[test]
    fn short_job_detection() {
        let mut s = spec(0.2);
        assert!(!s.is_short());
        s.time_uncapped = Seconds(20.0);
        assert!(s.is_short());
    }

    #[test]
    fn time_at_uses_effective_cap() {
        let s = spec(0.5);
        // Asking for time at TDP equals time at the job's natural draw,
        // because the extra headroom is unusable.
        assert_eq!(s.time_at(Watts(280.0)), s.time_at(Watts(260.0)));
    }
}
