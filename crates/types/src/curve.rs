//! The quadratic power-performance model shared between tiers.
//!
//! Section 4.2 of the paper fits `T = A·P² + B·P + C` where `T` is seconds
//! per epoch and `P` is the CPU power cap in watts (below TDP). The model
//! is what the job tier sends up to the cluster tier, and what the cluster
//! tier inverts to pick caps for the even-slowdown budgeter
//! (`p_cap = P_j(s · T_j(p_max))`, Section 4.4.3).

use crate::units::{Seconds, Watts};
use std::fmt;

/// An inclusive range of achievable power caps `[min, max]` for one node.
///
/// In the paper's test platform this is 140 W – 280 W per node (two 70 W –
/// 140 W TDP packages).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CapRange {
    /// Lowest cap the platform will enforce.
    pub min: Watts,
    /// Highest cap (TDP); equivalent to running uncapped.
    pub max: Watts,
}

impl CapRange {
    /// Construct a range, panicking on inverted bounds.
    pub fn new(min: Watts, max: Watts) -> Self {
        assert!(
            min.value() <= max.value(),
            "inverted cap range: {min} > {max}"
        );
        CapRange { min, max }
    }

    /// The paper's evaluation platform: dual 70–140 W TDP packages.
    pub fn paper_node() -> Self {
        CapRange::new(Watts(140.0), Watts(280.0))
    }

    /// Width of the range in watts.
    #[inline]
    pub fn span(&self) -> Watts {
        self.max - self.min
    }

    /// Clamp a requested cap into the achievable range.
    #[inline]
    pub fn clamp(&self, cap: Watts) -> Watts {
        cap.clamp(self.min, self.max)
    }

    /// Linear interpolation: `gamma = 0` gives `min`, `gamma = 1` gives `max`.
    ///
    /// This is the even-power-caps rule from Section 4.4.3:
    /// `p_cap = γ·(p_max − p_min) + p_min`.
    #[inline]
    pub fn lerp(&self, gamma: f64) -> Watts {
        self.min + self.span() * gamma
    }

    /// Inverse of [`CapRange::lerp`]: where does `cap` sit in `[0, 1]`?
    #[inline]
    pub fn fraction(&self, cap: Watts) -> f64 {
        if self.span().value() <= 0.0 {
            return 1.0;
        }
        (cap - self.min) / self.span()
    }

    /// True when `cap` lies within the range (inclusive, with tolerance).
    #[inline]
    pub fn contains(&self, cap: Watts) -> bool {
        cap.value() >= self.min.value() - 1e-9 && cap.value() <= self.max.value() + 1e-9
    }
}

/// Quadratic execution-time model `T(P) = A·P² + B·P + C`.
///
/// `T` may be seconds per epoch (job tier) or total execution time
/// (cluster tier estimates); the algebra is identical because the two
/// differ by the constant epoch count.
///
/// ```
/// use anor_types::{CapRange, PowerCurve, Seconds, Watts};
///
/// // A job that takes 100 s uncapped and 1.75x as long at the 140 W floor.
/// let range = CapRange::paper_node();
/// let curve = PowerCurve::from_anchor(Seconds(100.0), 0.75, range);
/// assert!((curve.time_at(Watts(280.0)).value() - 100.0).abs() < 1e-9);
/// assert!((curve.time_at(Watts(140.0)).value() - 175.0).abs() < 1e-9);
/// // Invert: which cap holds the job to 120 s?
/// let cap = curve.power_for_time(Seconds(120.0), range);
/// assert!((curve.time_at(cap).value() - 120.0).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerCurve {
    /// Quadratic coefficient (s/W²).
    pub a: f64,
    /// Linear coefficient (s/W).
    pub b: f64,
    /// Constant term (s).
    pub c: f64,
}

impl PowerCurve {
    /// Construct directly from coefficients.
    pub const fn new(a: f64, b: f64, c: f64) -> Self {
        PowerCurve { a, b, c }
    }

    /// Construct a curve anchored on physical intuition: execution takes
    /// `t_max_cap` at the top of `range` and degrades by the dimensionless
    /// `sensitivity` factor at the bottom, i.e.
    /// `T(P) = t_max_cap · (1 + sensitivity · ((max−P)/(max−min))²)`.
    ///
    /// The resulting polynomial is exactly quadratic in `P`, has zero slope
    /// at `P = max` (capping at TDP costs nothing) and is monotonically
    /// decreasing on `[min, max]` for positive sensitivity — matching the
    /// Fig. 3 curve shapes.
    pub fn from_anchor(t_max_cap: Seconds, sensitivity: f64, range: CapRange) -> Self {
        let t0 = t_max_cap.value();
        let pmax = range.max.value();
        let span = range.span().value();
        assert!(span > 0.0, "degenerate cap range");
        let k = t0 * sensitivity / (span * span);
        // T(P) = t0 + k (pmax - P)^2 = k P^2 - 2 k pmax P + (t0 + k pmax^2)
        PowerCurve {
            a: k,
            b: -2.0 * k * pmax,
            c: t0 + k * pmax * pmax,
        }
    }

    /// Predicted execution time at power cap `p`.
    #[inline]
    pub fn time_at(&self, p: Watts) -> Seconds {
        let x = p.value();
        Seconds(self.a * x * x + self.b * x + self.c)
    }

    /// `dT/dP` at power cap `p` (s/W). Negative where more power helps.
    #[inline]
    pub fn slope_at(&self, p: Watts) -> f64 {
        2.0 * self.a * p.value() + self.b
    }

    /// Slowdown factor at `p` relative to the time at `reference`:
    /// `T(p) / T(reference)`.
    #[inline]
    pub fn slowdown_at(&self, p: Watts, reference: Watts) -> f64 {
        self.time_at(p).value() / self.time_at(reference).value()
    }

    /// Invert the model on a cap range: find `P ∈ [range.min, range.max]`
    /// with `T(P) = t`. Returns the clamped boundary when `t` is outside
    /// the achievable window, which is the saturation behaviour the
    /// even-slowdown budgeter relies on (low-sensitivity jobs "level off"
    /// at the minimum allowed cap, Section 6.1.1).
    pub fn power_for_time(&self, t: Seconds, range: CapRange) -> Watts {
        let t_at_max = self.time_at(range.max).value();
        let t_at_min = self.time_at(range.min).value();
        let target = t.value();
        // Monotone decreasing in P on the range: fastest at max cap.
        if target <= t_at_max {
            return range.max;
        }
        if target >= t_at_min {
            return range.min;
        }
        if self.a.abs() < 1e-18 {
            // Linear model fallback: b P + c = t.
            if self.b.abs() < 1e-18 {
                return range.max;
            }
            return range.clamp(Watts((target - self.c) / self.b));
        }
        // Solve a P^2 + b P + (c - t) = 0; pick the root inside the range.
        let disc = self.b * self.b - 4.0 * self.a * (self.c - target);
        if disc < 0.0 {
            // No real solution (should not happen after the boundary checks
            // above for a monotone curve); fall back to bisection.
            return self.bisect_power(target, range);
        }
        let sq = disc.sqrt();
        let r1 = (-self.b + sq) / (2.0 * self.a);
        let r2 = (-self.b - sq) / (2.0 * self.a);
        for r in [r1, r2] {
            if range.contains(Watts(r)) {
                return Watts(r);
            }
        }
        self.bisect_power(target, range)
    }

    /// Robust fallback inversion by bisection (assumes monotone decreasing
    /// `T` on the range, which [`PowerCurve::is_monotone_decreasing_on`]
    /// validates for well-formed models).
    fn bisect_power(&self, target: f64, range: CapRange) -> Watts {
        let mut lo = range.min.value();
        let mut hi = range.max.value();
        for _ in 0..64 {
            let mid = 0.5 * (lo + hi);
            if self.time_at(Watts(mid)).value() > target {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Watts(0.5 * (lo + hi))
    }

    /// True when the curve is non-increasing across the whole cap range,
    /// i.e. giving a job more power never slows it down. Models violating
    /// this are rejected by the budgeter and replaced with a default.
    pub fn is_monotone_decreasing_on(&self, range: CapRange) -> bool {
        self.slope_at(range.min) <= 1e-12 && self.slope_at(range.max) <= 1e-12
    }

    /// Scale the whole curve by a time factor (e.g. convert per-epoch time
    /// to total time with the epoch count, or apply a per-node performance
    /// variation multiplier).
    pub fn scale_time(&self, factor: f64) -> PowerCurve {
        PowerCurve {
            a: self.a * factor,
            b: self.b * factor,
            c: self.c * factor,
        }
    }
}

impl fmt::Display for PowerCurve {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "T(P) = {:.3e}·P² + {:.3e}·P + {:.3e}",
            self.a, self.b, self.c
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn range() -> CapRange {
        CapRange::paper_node()
    }

    #[test]
    fn anchor_curve_hits_endpoints() {
        let c = PowerCurve::from_anchor(Seconds(100.0), 0.8, range());
        assert!((c.time_at(Watts(280.0)).value() - 100.0).abs() < 1e-9);
        assert!((c.time_at(Watts(140.0)).value() - 180.0).abs() < 1e-9);
    }

    #[test]
    fn anchor_curve_is_monotone() {
        let c = PowerCurve::from_anchor(Seconds(50.0), 0.5, range());
        assert!(c.is_monotone_decreasing_on(range()));
        let mut prev = f64::INFINITY;
        for w in (140..=280).step_by(10) {
            let t = c.time_at(Watts(w as f64)).value();
            assert!(t <= prev + 1e-12, "not monotone at {w} W");
            prev = t;
        }
    }

    #[test]
    fn zero_sensitivity_is_flat() {
        let c = PowerCurve::from_anchor(Seconds(30.0), 0.0, range());
        assert!((c.time_at(Watts(140.0)).value() - 30.0).abs() < 1e-9);
        assert!((c.time_at(Watts(280.0)).value() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn inversion_round_trips() {
        let c = PowerCurve::from_anchor(Seconds(100.0), 0.7, range());
        for w in [150.0, 180.0, 210.0, 250.0, 279.0] {
            let t = c.time_at(Watts(w));
            let p = c.power_for_time(t, range());
            assert!(
                (p.value() - w).abs() < 1e-6,
                "invert({t}) = {p}, expected {w} W"
            );
        }
    }

    #[test]
    fn inversion_saturates_at_bounds() {
        let c = PowerCurve::from_anchor(Seconds(100.0), 0.7, range());
        // Faster than achievable -> max cap.
        assert_eq!(c.power_for_time(Seconds(10.0), range()), Watts(280.0));
        // Slower than the worst case -> min cap (the "level off" behaviour).
        assert_eq!(c.power_for_time(Seconds(1000.0), range()), Watts(140.0));
    }

    #[test]
    fn linear_model_inversion() {
        // a == 0: T = -0.5 P + 240 -> T(200) = 140.
        let c = PowerCurve::new(0.0, -0.5, 240.0);
        let p = c.power_for_time(Seconds(140.0), range());
        assert!((p.value() - 200.0).abs() < 1e-9);
    }

    #[test]
    fn slowdown_reference() {
        let c = PowerCurve::from_anchor(Seconds(100.0), 1.0, range());
        assert!((c.slowdown_at(Watts(140.0), Watts(280.0)) - 2.0).abs() < 1e-9);
        assert!((c.slowdown_at(Watts(280.0), Watts(280.0)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cap_range_lerp_fraction_inverse() {
        let r = range();
        for gamma in [0.0, 0.25, 0.5, 1.0] {
            let cap = r.lerp(gamma);
            assert!((r.fraction(cap) - gamma).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "inverted cap range")]
    fn inverted_range_panics() {
        CapRange::new(Watts(280.0), Watts(140.0));
    }

    #[test]
    fn scale_time_scales_predictions() {
        let c = PowerCurve::from_anchor(Seconds(10.0), 0.5, range());
        let s = c.scale_time(3.0);
        for w in [140.0, 200.0, 280.0] {
            let t1 = c.time_at(Watts(w)).value();
            let t2 = s.time_at(Watts(w)).value();
            assert!((t2 - 3.0 * t1).abs() < 1e-9);
        }
    }

    #[test]
    fn degenerate_range_fraction() {
        let r = CapRange::new(Watts(200.0), Watts(200.0));
        assert_eq!(r.fraction(Watts(200.0)), 1.0);
        assert_eq!(r.clamp(Watts(500.0)), Watts(200.0));
    }
}
