//! The standard job-type catalog used in the paper's evaluation.
//!
//! Eight NAS Parallel Benchmark (class D) job types, named in the paper's
//! `benchmark.class.ranks` format (Fig. 3). We encode for each type the
//! properties the paper measured on its 16-node Xeon Gold 6152 cluster:
//! node footprint (81 ranks ≈ 2 nodes of 44 cores, etc.), uncapped
//! execution time (EP and IS run under half a minute, Section 7.2), power
//! sensitivity ordering (EP/BT/LU/FT high → CG/MG/SP/IS low, Figs. 3, 5,
//! 6, 10) and measurement-noise levels that reproduce the reported model
//! R² values (Section 5.1).

use crate::curve::CapRange;
use crate::jobtype::{JobTypeId, JobTypeSpec};
use crate::units::{Seconds, Watts};

/// An ordered collection of job types, indexed by [`JobTypeId`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Catalog {
    types: Vec<JobTypeSpec>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Append a spec, assigning it the next [`JobTypeId`]. Returns the id.
    pub fn push(&mut self, mut spec: JobTypeSpec) -> JobTypeId {
        let id = JobTypeId(self.types.len() as u16);
        spec.id = id;
        self.types.push(spec);
        id
    }

    /// Look up by id. Panics on an id from a different catalog.
    pub fn get(&self, id: JobTypeId) -> &JobTypeSpec {
        &self.types[id.index()]
    }

    /// Look up by the paper's display name (e.g. `"bt.D.81"`) or by its
    /// benchmark prefix alone (e.g. `"bt"`).
    pub fn find(&self, name: &str) -> Option<&JobTypeSpec> {
        self.types
            .iter()
            .find(|t| t.name == name)
            .or_else(|| self.types.iter().find(|t| t.name.starts_with(name)))
    }

    /// Number of types.
    pub fn len(&self) -> usize {
        self.types.len()
    }

    /// True when the catalog holds no types.
    pub fn is_empty(&self) -> bool {
        self.types.is_empty()
    }

    /// Iterate over all specs in id order.
    pub fn iter(&self) -> impl Iterator<Item = &JobTypeSpec> {
        self.types.iter()
    }

    /// The subset used in the final schedules: the paper omits the short
    /// IS and EP types because their setup/teardown time hides power-cap
    /// slowdown (Section 7.2), leaving mg, ft, bt, lu, sp, cg (Fig. 10).
    pub fn long_running(&self) -> Vec<JobTypeId> {
        self.types
            .iter()
            .filter(|t| !t.is_short())
            .map(|t| t.id)
            .collect()
    }

    /// The most power-sensitive type (used as the over-prediction default
    /// model for unknown jobs; EP in the paper).
    pub fn most_sensitive(&self) -> Option<&JobTypeSpec> {
        self.types
            .iter()
            .max_by(|a, b| a.sensitivity.total_cmp(&b.sensitivity))
    }

    /// The least power-sensitive type (the under-prediction default; IS).
    pub fn least_sensitive(&self) -> Option<&JobTypeSpec> {
        self.types
            .iter()
            .min_by(|a, b| a.sensitivity.total_cmp(&b.sensitivity))
    }

    /// Scale every type's node footprint (the 1000-node simulations run
    /// "jobs scaled to use 25× as many nodes", Section 6.4).
    pub fn scale_nodes(&self, factor: u32) -> Catalog {
        let mut out = Catalog::new();
        for t in &self.types {
            let mut t = t.clone();
            t.nodes *= factor;
            out.push(t);
        }
        out
    }
}

impl std::ops::Index<JobTypeId> for Catalog {
    type Output = JobTypeSpec;
    fn index(&self, id: JobTypeId) -> &JobTypeSpec {
        self.get(id)
    }
}

/// One row of the standard catalog definition.
struct Row {
    name: &'static str,
    nodes: u32,
    epochs: u64,
    time_uncapped: f64,
    sensitivity: f64,
    max_draw: f64,
    noise_sigma: f64,
}

/// Paper-calibrated rows. Sensitivity = fractional slowdown at the 140 W
/// node cap, read off Fig. 3 (y-range 1.0–1.8); noise levels reproduce the
/// reported fit quality exceptions IS (R²≈0.92), MG (0.94), SP (0.84).
const ROWS: [Row; 8] = [
    Row {
        name: "bt.D.81",
        nodes: 2,
        epochs: 250,
        time_uncapped: 600.0,
        sensitivity: 0.75,
        max_draw: 272.0,
        noise_sigma: 0.02,
    },
    Row {
        name: "cg.D.32",
        nodes: 1,
        epochs: 150,
        time_uncapped: 240.0,
        sensitivity: 0.35,
        max_draw: 240.0,
        noise_sigma: 0.02,
    },
    Row {
        name: "ep.D.43",
        nodes: 1,
        epochs: 50,
        time_uncapped: 25.0,
        sensitivity: 0.80,
        max_draw: 278.0,
        noise_sigma: 0.02,
    },
    Row {
        name: "ft.D.64",
        nodes: 2,
        epochs: 120,
        time_uncapped: 180.0,
        sensitivity: 0.55,
        max_draw: 260.0,
        noise_sigma: 0.02,
    },
    Row {
        name: "is.D.32",
        nodes: 1,
        epochs: 40,
        time_uncapped: 20.0,
        sensitivity: 0.10,
        max_draw: 225.0,
        noise_sigma: 0.08,
    },
    Row {
        name: "lu.D.42",
        nodes: 1,
        epochs: 300,
        time_uncapped: 480.0,
        sensitivity: 0.70,
        max_draw: 268.0,
        noise_sigma: 0.02,
    },
    Row {
        name: "mg.D.32",
        nodes: 1,
        epochs: 100,
        time_uncapped: 120.0,
        sensitivity: 0.25,
        max_draw: 235.0,
        noise_sigma: 0.06,
    },
    Row {
        name: "sp.D.81",
        nodes: 2,
        epochs: 200,
        time_uncapped: 360.0,
        sensitivity: 0.15,
        max_draw: 230.0,
        noise_sigma: 0.12,
    },
];

/// Build the paper's eight-type catalog on the paper's node platform
/// (140–280 W per-node cap range, QoS limit Q = 5 for every type).
pub fn standard_catalog() -> Catalog {
    let mut c = Catalog::new();
    for row in &ROWS {
        c.push(JobTypeSpec {
            id: JobTypeId(0), // reassigned by push
            name: row.name.to_string(),
            nodes: row.nodes,
            epochs: row.epochs,
            time_uncapped: Seconds(row.time_uncapped),
            sensitivity: row.sensitivity,
            cap_range: CapRange::paper_node(),
            max_draw: Watts(row.max_draw),
            noise_sigma: row.noise_sigma,
            qos_limit: 5.0,
        });
    }
    c
}

/// Serialize a catalog to the plain-text format operators edit:
/// a `caprange MIN MAX` line, then one row per type of
/// `name nodes epochs time_s sensitivity max_draw_w noise qos_limit`.
pub fn write_catalog(w: &mut impl std::io::Write, catalog: &Catalog) -> crate::Result<()> {
    writeln!(
        w,
        "# name nodes epochs time_s sensitivity max_draw_w noise qos"
    )?;
    if let Some(first) = catalog.iter().next() {
        writeln!(
            w,
            "caprange {} {}",
            first.cap_range.min.value(),
            first.cap_range.max.value()
        )?;
    }
    for t in catalog.iter() {
        writeln!(
            w,
            "{} {} {} {} {} {} {} {}",
            t.name,
            t.nodes,
            t.epochs,
            t.time_uncapped.value(),
            t.sensitivity,
            t.max_draw.value(),
            t.noise_sigma,
            t.qos_limit
        )?;
    }
    Ok(())
}

/// Parse a catalog file produced by [`write_catalog`] (or hand-written in
/// the same format).
pub fn parse_catalog(r: impl std::io::BufRead) -> crate::Result<Catalog> {
    use crate::error::AnorError;
    let mut catalog = Catalog::new();
    let mut cap_range = CapRange::paper_node();
    for (lineno, line) in r.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        let bad = |what: &str| AnorError::config(format!("catalog line {}: {what}", lineno + 1));
        if fields[0] == "caprange" {
            if fields.len() != 3 {
                return Err(bad("caprange needs MIN MAX"));
            }
            let min: f64 = fields[1].parse().map_err(|_| bad("bad caprange min"))?;
            let max: f64 = fields[2].parse().map_err(|_| bad("bad caprange max"))?;
            if min <= 0.0 || max <= min {
                return Err(bad("caprange must be 0 < min < max"));
            }
            cap_range = CapRange::new(Watts(min), Watts(max));
            continue;
        }
        if fields.len() != 8 {
            return Err(bad("expected 8 columns"));
        }
        let parse_f = |i: usize, what: &str| -> crate::Result<f64> {
            fields[i]
                .parse()
                .map_err(|_| bad(&format!("bad {what} `{}`", fields[i])))
        };
        let time = parse_f(3, "time_s")?;
        let sensitivity = parse_f(4, "sensitivity")?;
        if time <= 0.0 || sensitivity < 0.0 {
            return Err(bad("time must be positive, sensitivity non-negative"));
        }
        catalog.push(JobTypeSpec {
            id: JobTypeId(0),
            name: fields[0].to_string(),
            nodes: fields[1].parse().map_err(|_| bad("bad nodes"))?,
            epochs: fields[2].parse().map_err(|_| bad("bad epochs"))?,
            time_uncapped: Seconds(time),
            sensitivity,
            cap_range,
            max_draw: Watts(parse_f(5, "max_draw")?),
            noise_sigma: parse_f(6, "noise")?,
            qos_limit: parse_f(7, "qos")?,
        });
    }
    Ok(catalog)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jobtype::SensitivityClass;

    #[test]
    fn standard_catalog_has_eight_types() {
        let c = standard_catalog();
        assert_eq!(c.len(), 8);
        assert!(!c.is_empty());
    }

    #[test]
    fn lookup_by_name_and_prefix() {
        let c = standard_catalog();
        assert_eq!(c.find("bt.D.81").unwrap().name, "bt.D.81");
        assert_eq!(c.find("bt").unwrap().name, "bt.D.81");
        assert_eq!(c.find("sp").unwrap().name, "sp.D.81");
        assert!(c.find("zz").is_none());
    }

    #[test]
    fn ids_are_sequential_and_indexable() {
        let c = standard_catalog();
        for (i, t) in c.iter().enumerate() {
            assert_eq!(t.id.index(), i);
            assert_eq!(c[t.id].name, t.name);
        }
    }

    #[test]
    fn sensitivity_extremes_match_paper() {
        // Fig. 5: the budgeter's under-prediction default is IS (least
        // sensitive), the over-prediction default is EP (most sensitive).
        let c = standard_catalog();
        assert_eq!(c.least_sensitive().unwrap().name, "is.D.32");
        assert_eq!(c.most_sensitive().unwrap().name, "ep.D.43");
    }

    #[test]
    fn paper_sensitivity_ordering() {
        let c = standard_catalog();
        let s = |n: &str| c.find(n).unwrap().sensitivity;
        // Fig. 6: BT high, SP low. Fig. 10: BT, LU, FT more sensitive than
        // mg, sp, cg.
        assert!(s("bt") > s("sp"));
        assert!(s("bt") > s("mg") && s("lu") > s("mg") && s("ft") > s("mg"));
        assert!(s("ep") > s("ft") && s("ft") > s("is"));
    }

    #[test]
    fn long_running_excludes_is_and_ep() {
        let c = standard_catalog();
        let long: Vec<&str> = c
            .long_running()
            .iter()
            .map(|&id| c[id].name.as_str())
            .collect();
        assert_eq!(long.len(), 6);
        assert!(!long.contains(&"is.D.32"));
        assert!(!long.contains(&"ep.D.43"));
        for n in [
            "bt.D.81", "cg.D.32", "ft.D.64", "lu.D.42", "mg.D.32", "sp.D.81",
        ] {
            assert!(long.contains(&n), "{n} missing from long-running set");
        }
    }

    #[test]
    fn class_assignments_match_figure_5_roles() {
        let c = standard_catalog();
        assert_eq!(
            c.find("is").unwrap().sensitivity_class(),
            SensitivityClass::Low
        );
        assert_eq!(
            c.find("ft").unwrap().sensitivity_class(),
            SensitivityClass::Medium
        );
        assert_eq!(
            c.find("ep").unwrap().sensitivity_class(),
            SensitivityClass::High
        );
    }

    #[test]
    fn node_scaling() {
        let c = standard_catalog().scale_nodes(25);
        assert_eq!(c.find("bt").unwrap().nodes, 50);
        assert_eq!(c.find("cg").unwrap().nodes, 25);
        // Other properties unchanged.
        assert_eq!(c.find("bt").unwrap().epochs, 250);
    }

    #[test]
    fn catalog_file_round_trips() {
        let original = standard_catalog();
        let mut buf = Vec::new();
        write_catalog(&mut buf, &original).unwrap();
        let parsed = parse_catalog(std::io::BufReader::new(&buf[..])).unwrap();
        assert_eq!(parsed.len(), original.len());
        for (a, b) in original.iter().zip(parsed.iter()) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.nodes, b.nodes);
            assert_eq!(a.epochs, b.epochs);
            assert!((a.time_uncapped.value() - b.time_uncapped.value()).abs() < 1e-9);
            assert!((a.sensitivity - b.sensitivity).abs() < 1e-9);
            assert_eq!(a.cap_range, b.cap_range);
        }
    }

    #[test]
    fn catalog_file_rejects_garbage() {
        let parse = |s: &str| parse_catalog(std::io::BufReader::new(s.as_bytes()));
        assert!(parse("bt 2 250 600 0.75 272").is_err(), "missing columns");
        assert!(parse("bt x 250 600 0.75 272 0.02 5").is_err(), "bad nodes");
        assert!(parse("caprange 280 140").is_err(), "inverted cap range");
        assert!(parse("bt 2 250 -5 0.75 272 0.02 5").is_err(), "bad time");
        // Comments and blank lines are fine; custom cap range applies.
        let cat = parse("# hi\n\ncaprange 100 200\nmy.A.1 1 10 50 0.3 180 0.01 5\n").unwrap();
        assert_eq!(cat.len(), 1);
        assert_eq!(
            cat.find("my.A.1").unwrap().cap_range,
            CapRange::new(Watts(100.0), Watts(200.0))
        );
    }

    #[test]
    fn all_types_share_paper_platform() {
        for t in standard_catalog().iter() {
            assert_eq!(t.cap_range, CapRange::paper_node());
            assert_eq!(t.qos_limit, 5.0);
            assert!(t.max_draw.value() <= 280.0 && t.max_draw.value() > 140.0);
        }
    }
}
