#![warn(missing_docs)]
//! # anor-types
//!
//! Shared vocabulary for the ANOR (Attach Nested-Objective Runtimes)
//! multi-tiered power-management framework, a reproduction of
//! *"An End-to-End HPC Framework for Dynamic Power Objectives"*
//! (Wilson et al., SC-W 2023).
//!
//! Every other crate in the workspace builds on the types defined here:
//!
//! * [`units`] — strongly-typed watts / joules / seconds arithmetic;
//! * [`ids`] — job, node and package identifiers;
//! * [`curve`] — the quadratic power-performance model `T(P) = A·P² + B·P + C`
//!   that both tiers exchange;
//! * [`jobtype`] / [`catalog`] — descriptors for the NAS-Parallel-Benchmark
//!   shaped synthetic job types used throughout the paper's evaluation;
//! * [`qos`] — the sojourn-time QoS degradation metric `Q = (T_so − T_min)/T_min`;
//! * [`stats`] — small statistics helpers (Welford accumulators, percentiles,
//!   Box–Muller normal and Poisson-process sampling) so the workspace does
//!   not need `rand_distr`;
//! * [`msg`] — the cluster-tier ↔ job-tier wire protocol message types;
//! * [`error`] — the shared error enum.

pub mod catalog;
pub mod curve;
pub mod error;
pub mod ids;
pub mod jobtype;
pub mod msg;
pub mod qos;
pub mod stats;
pub mod units;

pub use catalog::{standard_catalog, Catalog};
pub use curve::{CapRange, PowerCurve};
pub use error::AnorError;
pub use ids::{JobId, NodeId, PackageId};
pub use jobtype::{JobTypeId, JobTypeSpec, SensitivityClass};
pub use msg::{ClusterToJob, JobToCluster};
pub use qos::{QosConstraint, QosDegradation};
pub use units::{Joules, Seconds, Watts};

/// Convenient `Result` alias used across the workspace.
pub type Result<T> = std::result::Result<T, AnorError>;
