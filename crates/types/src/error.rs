//! The workspace-wide error type.

use std::fmt;

/// Errors surfaced by ANOR components.
#[derive(Debug)]
pub enum AnorError {
    /// An underlying socket / file error (cluster daemon, schedule files).
    Io(std::io::Error),
    /// A malformed or unexpected wire-protocol message.
    Protocol(String),
    /// A model could not be fit or is unusable (non-monotone, too few
    /// samples, singular normal equations).
    Model(String),
    /// Invalid configuration (bad cap ranges, empty catalogs, bad
    /// utilization targets).
    Config(String),
    /// A malformed job-schedule or power-target file.
    Schedule(String),
    /// A platform register access outside the simulated MSR space.
    Platform(String),
}

impl AnorError {
    /// Convenience constructor for protocol errors.
    pub fn protocol(msg: impl Into<String>) -> Self {
        AnorError::Protocol(msg.into())
    }

    /// Convenience constructor for model errors.
    pub fn model(msg: impl Into<String>) -> Self {
        AnorError::Model(msg.into())
    }

    /// Convenience constructor for configuration errors.
    pub fn config(msg: impl Into<String>) -> Self {
        AnorError::Config(msg.into())
    }

    /// Convenience constructor for schedule-file errors.
    pub fn schedule(msg: impl Into<String>) -> Self {
        AnorError::Schedule(msg.into())
    }

    /// Convenience constructor for platform errors.
    pub fn platform(msg: impl Into<String>) -> Self {
        AnorError::Platform(msg.into())
    }
}

impl fmt::Display for AnorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnorError::Io(e) => write!(f, "i/o error: {e}"),
            AnorError::Protocol(m) => write!(f, "protocol error: {m}"),
            AnorError::Model(m) => write!(f, "model error: {m}"),
            AnorError::Config(m) => write!(f, "config error: {m}"),
            AnorError::Schedule(m) => write!(f, "schedule error: {m}"),
            AnorError::Platform(m) => write!(f, "platform error: {m}"),
        }
    }
}

impl std::error::Error for AnorError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AnorError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for AnorError {
    fn from(e: std::io::Error) -> Self {
        AnorError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn display_variants() {
        assert!(AnorError::protocol("bad tag")
            .to_string()
            .contains("bad tag"));
        assert!(AnorError::model("singular").to_string().contains("model"));
        assert!(AnorError::config("x").to_string().starts_with("config"));
        assert!(AnorError::schedule("y").to_string().contains("schedule"));
        assert!(AnorError::platform("z").to_string().contains("platform"));
    }

    #[test]
    fn io_source_is_preserved() {
        let io = std::io::Error::new(std::io::ErrorKind::ConnectionReset, "peer gone");
        let e = AnorError::from(io);
        assert!(e.source().is_some());
        assert!(e.to_string().contains("peer gone"));
    }

    #[test]
    fn non_io_has_no_source() {
        assert!(AnorError::protocol("x").source().is_none());
    }
}
