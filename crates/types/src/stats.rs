//! Small statistics toolbox.
//!
//! The evaluation needs normal performance-variation coefficients
//! (Section 6.4), Poisson job-arrival processes (Section 5.3), running
//! means/standard deviations for error bars, percentiles for QoS and
//! tracking-error reporting, and confidence intervals for Fig. 10/11.
//! Everything here is implemented over `rand::Rng` primitives so the
//! workspace does not depend on `rand_distr`.

use rand::Rng;

/// Welford's online mean/variance accumulator. Numerically stable for the
/// long sample streams the cluster daemon produces.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
}

impl OnlineStats {
    /// Fresh, empty accumulator.
    pub fn new() -> Self {
        OnlineStats::default()
    }

    /// Fold in one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0 with fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Half-width of the normal-approximation 95% confidence interval on
    /// the mean: `1.96·s/√n`. Fig. 10's error bars.
    pub fn ci95_half_width(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            1.96 * self.std_dev() / (self.n as f64).sqrt()
        }
    }

    /// Merge another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n = (self.n + other.n) as f64;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n;
        let m2 = self.m2 + other.m2 + delta * delta * self.n as f64 * other.n as f64 / n;
        self.n += other.n;
        self.mean = mean;
        self.m2 = m2;
    }
}

/// Mean of a slice (0 when empty).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Unbiased sample standard deviation of a slice (0 with < 2 elements).
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64;
    var.sqrt()
}

/// Percentile by linear interpolation over an **already sorted** slice.
/// `p` outside `[0, 100]` is clamped; the endpoints return the exact
/// minimum/maximum with no interpolation arithmetic. Panics on an empty
/// slice or a NaN `p` (use [`percentile`] for the lenient entry point).
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty slice");
    assert!(!p.is_nan(), "percentile rank must not be NaN");
    if sorted.len() == 1 || p <= 0.0 {
        return sorted[0];
    }
    if p >= 100.0 {
        return sorted[sorted.len() - 1];
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// Percentile of an unsorted slice (copies and sorts internally).
/// Returns 0 when empty, matching [`mean`]/[`std_dev`] conventions.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v = xs.to_vec();
    v.sort_by(f64::total_cmp);
    percentile_sorted(&v, p)
}

/// One standard-normal variate via the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Guard the log against u1 == 0.
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// A normal variate with the given mean and standard deviation.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    mu + sigma * standard_normal(rng)
}

/// A normal variate truncated below at `floor` (resampled, falling back to
/// the floor after a bounded number of tries). Used for performance
/// coefficients, which must stay positive.
pub fn truncated_normal<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64, floor: f64) -> f64 {
    for _ in 0..64 {
        let x = normal(rng, mu, sigma);
        if x > floor {
            return x;
        }
    }
    floor.max(mu)
}

/// An exponential variate with the given rate (events per unit time).
/// Inter-arrival times of a Poisson process.
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, rate: f64) -> f64 {
    assert!(rate > 0.0, "exponential rate must be positive");
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    -u.ln() / rate
}

/// Arrival times of a homogeneous Poisson process with rate `rate` on
/// `[0, horizon)`.
pub fn poisson_arrivals<R: Rng + ?Sized>(rng: &mut R, rate: f64, horizon: f64) -> Vec<f64> {
    let mut out = Vec::new();
    if rate <= 0.0 || horizon <= 0.0 {
        return out;
    }
    let mut t = exponential(rng, rate);
    while t < horizon {
        out.push(t);
        t += exponential(rng, rate);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn online_stats_matches_batch() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut s = OnlineStats::new();
        for &x in &xs {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - mean(&xs)).abs() < 1e-12);
        assert!((s.std_dev() - std_dev(&xs)).abs() < 1e-12);
    }

    #[test]
    fn online_stats_merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut all = OnlineStats::new();
        for &x in &xs {
            all.push(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &xs[..37] {
            a.push(x);
        }
        for &x in &xs[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.variance() - all.variance()).abs() < 1e-9);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.push(1.0);
        a.push(3.0);
        let before = a;
        a.merge(&OnlineStats::new());
        assert_eq!(a, before);
        let mut empty = OnlineStats::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn percentile_interpolation() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile_sorted(&xs, 0.0), 1.0);
        assert_eq!(percentile_sorted(&xs, 100.0), 5.0);
        assert_eq!(percentile_sorted(&xs, 50.0), 3.0);
        assert!((percentile_sorted(&xs, 90.0) - 4.6).abs() < 1e-12);
        // Unsorted entry point sorts internally.
        assert_eq!(percentile(&[5.0, 1.0, 3.0, 2.0, 4.0], 50.0), 3.0);
    }

    #[test]
    fn percentile_single_element() {
        assert_eq!(percentile_sorted(&[42.0], 17.0), 42.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn percentile_empty_panics() {
        percentile_sorted(&[], 50.0);
    }

    #[test]
    fn percentile_lenient_on_empty() {
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert_eq!(percentile(&[], 0.0), 0.0);
        assert_eq!(percentile(&[], 100.0), 0.0);
    }

    #[test]
    fn percentile_endpoints_are_exact() {
        // Endpoints must be the exact min/max — no interpolation noise —
        // including out-of-range and negative inputs.
        let xs = [0.3, -7.25, 12.5, 1e-9, 4.0];
        assert_eq!(percentile(&xs, 0.0), -7.25);
        assert_eq!(percentile(&xs, -10.0), -7.25);
        assert_eq!(percentile(&xs, 100.0), 12.5);
        assert_eq!(percentile(&xs, 250.0), 12.5);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn percentile_nan_rank_panics() {
        percentile_sorted(&[1.0, 2.0], f64::NAN);
    }

    #[test]
    fn normal_moments() {
        let mut rng = StdRng::seed_from_u64(7);
        let xs: Vec<f64> = (0..20_000).map(|_| normal(&mut rng, 1.0, 0.15)).collect();
        assert!((mean(&xs) - 1.0).abs() < 0.01, "mean {}", mean(&xs));
        assert!((std_dev(&xs) - 0.15).abs() < 0.01, "std {}", std_dev(&xs));
    }

    #[test]
    fn truncated_normal_respects_floor() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..5_000 {
            let x = truncated_normal(&mut rng, 1.0, 0.5, 0.05);
            assert!(x > 0.049999);
        }
    }

    #[test]
    fn poisson_arrival_rate() {
        let mut rng = StdRng::seed_from_u64(11);
        let horizon = 10_000.0;
        let arrivals = poisson_arrivals(&mut rng, 0.5, horizon);
        let observed = arrivals.len() as f64 / horizon;
        assert!(
            (observed - 0.5).abs() < 0.03,
            "observed rate {observed} far from 0.5"
        );
        // Sorted and in range.
        assert!(arrivals.windows(2).all(|w| w[0] <= w[1]));
        assert!(arrivals.iter().all(|&t| t >= 0.0 && t < horizon));
    }

    #[test]
    fn poisson_degenerate_inputs() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(poisson_arrivals(&mut rng, 0.0, 100.0).is_empty());
        assert!(poisson_arrivals(&mut rng, 1.0, 0.0).is_empty());
    }

    #[test]
    fn ci95_shrinks_with_samples() {
        let mut small = OnlineStats::new();
        let mut large = OnlineStats::new();
        let mut rng = StdRng::seed_from_u64(5);
        for i in 0..10 {
            small.push(normal(&mut rng, 0.0, 1.0) + i as f64 * 0.0);
        }
        for _ in 0..1000 {
            large.push(normal(&mut rng, 0.0, 1.0));
        }
        assert!(large.ci95_half_width() < small.ci95_half_width());
    }

    #[test]
    fn exponential_mean() {
        let mut rng = StdRng::seed_from_u64(9);
        let xs: Vec<f64> = (0..20_000).map(|_| exponential(&mut rng, 2.0)).collect();
        assert!((mean(&xs) - 0.5).abs() < 0.02);
        assert!(xs.iter().all(|&x| x > 0.0));
    }
}
