//! Identifiers for jobs, nodes and CPU packages.
//!
//! All identifiers are small `Copy` newtypes over integers so they can be
//! used as table indices in the tabular simulator and as map keys in the
//! cluster daemon without allocation.

use std::fmt;

/// Identifies a job instance for the lifetime of a cluster (monotonically
/// assigned by the scheduler; never reused within one run).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct JobId(pub u64);

/// Identifies one compute node in a cluster. Doubles as the row index into
/// the tabular simulator's node table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub u32);

/// Identifies a CPU package (socket) within a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PackageId(pub u8);

impl JobId {
    /// The next job id in sequence.
    #[inline]
    pub fn next(self) -> JobId {
        JobId(self.0 + 1)
    }
}

impl NodeId {
    /// Usable as a vector index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl PackageId {
    /// Usable as a vector index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job-{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node-{}", self.0)
    }
}

impl fmt::Display for PackageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pkg-{}", self.0)
    }
}

impl From<u64> for JobId {
    fn from(v: u64) -> Self {
        JobId(v)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn job_id_sequencing() {
        let a = JobId::default();
        assert_eq!(a, JobId(0));
        assert_eq!(a.next(), JobId(1));
        assert_eq!(a.next().next(), JobId(2));
    }

    #[test]
    fn ids_are_map_keys() {
        let mut m = HashMap::new();
        m.insert(NodeId(3), "busy");
        assert_eq!(m.get(&NodeId(3)), Some(&"busy"));
        assert_eq!(m.get(&NodeId(4)), None);
    }

    #[test]
    fn display_formats() {
        assert_eq!(JobId(7).to_string(), "job-7");
        assert_eq!(NodeId(2).to_string(), "node-2");
        assert_eq!(PackageId(1).to_string(), "pkg-1");
    }

    #[test]
    fn index_conversions() {
        assert_eq!(NodeId(9).index(), 9usize);
        assert_eq!(PackageId(1).index(), 1usize);
        assert_eq!(JobId::from(5u64), JobId(5));
        assert_eq!(NodeId::from(5u32), NodeId(5));
    }
}
