//! Strongly-typed physical units.
//!
//! Power management code mixes watts, joules and seconds constantly; the
//! newtypes here make unit errors a compile-time problem while staying
//! zero-cost (`repr(transparent)` over `f64`). Arithmetic is defined only
//! where it is physically meaningful: `Watts × Seconds = Joules`,
//! `Joules ÷ Seconds = Watts`, and same-unit addition/subtraction.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

macro_rules! unit {
    ($(#[$doc:meta])* $name:ident, $suffix:expr) => {
        $(#[$doc])*
        #[derive(Debug, Default, Clone, Copy, PartialEq, PartialOrd)]
        #[repr(transparent)]
        pub struct $name(pub f64);

        impl $name {
            /// The zero value of this unit.
            pub const ZERO: $name = $name(0.0);

            /// Construct from a raw `f64` magnitude.
            #[inline]
            pub const fn new(v: f64) -> Self {
                $name(v)
            }

            /// The raw magnitude.
            #[inline]
            pub const fn value(self) -> f64 {
                self.0
            }

            /// Absolute value.
            #[inline]
            pub fn abs(self) -> Self {
                $name(self.0.abs())
            }

            /// Element-wise minimum.
            #[inline]
            pub fn min(self, other: Self) -> Self {
                $name(self.0.min(other.0))
            }

            /// Element-wise maximum.
            #[inline]
            pub fn max(self, other: Self) -> Self {
                $name(self.0.max(other.0))
            }

            /// Clamp into `[lo, hi]`.
            #[inline]
            pub fn clamp(self, lo: Self, hi: Self) -> Self {
                $name(self.0.clamp(lo.0, hi.0))
            }

            /// True when the magnitude is finite (not NaN/∞).
            #[inline]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }
        }

        impl Add for $name {
            type Output = $name;
            #[inline]
            fn add(self, rhs: $name) -> $name {
                $name(self.0 + rhs.0)
            }
        }

        impl Sub for $name {
            type Output = $name;
            #[inline]
            fn sub(self, rhs: $name) -> $name {
                $name(self.0 - rhs.0)
            }
        }

        impl AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: $name) {
                self.0 += rhs.0;
            }
        }

        impl SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, rhs: $name) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $name {
            type Output = $name;
            #[inline]
            fn neg(self) -> $name {
                $name(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: f64) -> $name {
                $name(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = $name;
            #[inline]
            fn div(self, rhs: f64) -> $name {
                $name(self.0 / rhs)
            }
        }

        /// Same-unit division produces a dimensionless ratio.
        impl Div<$name> for $name {
            type Output = f64;
            #[inline]
            fn div(self, rhs: $name) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = $name>>(iter: I) -> $name {
                $name(iter.map(|x| x.0).sum())
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                if let Some(p) = f.precision() {
                    write!(f, "{:.*} {}", p, self.0, $suffix)
                } else {
                    write!(f, "{} {}", self.0, $suffix)
                }
            }
        }
    };
}

unit!(
    /// Electrical power in watts.
    Watts,
    "W"
);
unit!(
    /// Energy in joules.
    Joules,
    "J"
);
unit!(
    /// A span of time in seconds.
    Seconds,
    "s"
);

impl Mul<Seconds> for Watts {
    type Output = Joules;
    #[inline]
    fn mul(self, rhs: Seconds) -> Joules {
        Joules(self.0 * rhs.0)
    }
}

impl Mul<Watts> for Seconds {
    type Output = Joules;
    #[inline]
    fn mul(self, rhs: Watts) -> Joules {
        Joules(self.0 * rhs.0)
    }
}

impl Div<Seconds> for Joules {
    type Output = Watts;
    #[inline]
    fn div(self, rhs: Seconds) -> Watts {
        Watts(self.0 / rhs.0)
    }
}

impl Div<Watts> for Joules {
    type Output = Seconds;
    #[inline]
    fn div(self, rhs: Watts) -> Seconds {
        Seconds(self.0 / rhs.0)
    }
}

impl Seconds {
    /// Convert to a [`std::time::Duration`], saturating at zero.
    pub fn to_duration(self) -> std::time::Duration {
        std::time::Duration::from_secs_f64(self.0.max(0.0))
    }

    /// Construct from a [`std::time::Duration`].
    pub fn from_duration(d: std::time::Duration) -> Self {
        Seconds(d.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn watts_times_seconds_is_joules() {
        let e = Watts(100.0) * Seconds(10.0);
        assert_eq!(e, Joules(1000.0));
        let e = Seconds(10.0) * Watts(100.0);
        assert_eq!(e, Joules(1000.0));
    }

    #[test]
    fn joules_over_seconds_is_watts() {
        assert_eq!(Joules(1000.0) / Seconds(10.0), Watts(100.0));
    }

    #[test]
    fn joules_over_watts_is_seconds() {
        assert_eq!(Joules(1000.0) / Watts(100.0), Seconds(10.0));
    }

    #[test]
    fn same_unit_ratio_is_dimensionless() {
        let r: f64 = Watts(50.0) / Watts(200.0);
        assert!((r - 0.25).abs() < 1e-12);
    }

    #[test]
    fn add_sub_assign() {
        let mut w = Watts(10.0);
        w += Watts(5.0);
        assert_eq!(w, Watts(15.0));
        w -= Watts(20.0);
        assert_eq!(w, Watts(-5.0));
        assert_eq!(w.abs(), Watts(5.0));
        assert_eq!(-w, Watts(5.0));
    }

    #[test]
    fn clamp_and_minmax() {
        assert_eq!(Watts(300.0).clamp(Watts(140.0), Watts(280.0)), Watts(280.0));
        assert_eq!(Watts(100.0).clamp(Watts(140.0), Watts(280.0)), Watts(140.0));
        assert_eq!(Watts(1.0).min(Watts(2.0)), Watts(1.0));
        assert_eq!(Watts(1.0).max(Watts(2.0)), Watts(2.0));
    }

    #[test]
    fn sum_iterator() {
        let total: Watts = [Watts(1.0), Watts(2.0), Watts(3.0)].into_iter().sum();
        assert_eq!(total, Watts(6.0));
    }

    #[test]
    fn display_with_precision() {
        assert_eq!(format!("{:.1}", Watts(123.456)), "123.5 W");
        assert_eq!(format!("{:.0}", Seconds(9.9)), "10 s");
        assert_eq!(format!("{:.2}", Joules(1.0)), "1.00 J");
    }

    #[test]
    fn duration_round_trip() {
        let s = Seconds(1.5);
        assert_eq!(Seconds::from_duration(s.to_duration()), s);
        // Negative seconds saturate to a zero duration.
        assert_eq!(Seconds(-1.0).to_duration(), std::time::Duration::ZERO);
    }

    #[test]
    fn scalar_multiplication_both_sides() {
        assert_eq!(Watts(10.0) * 2.0, Watts(20.0));
        assert_eq!(2.0 * Watts(10.0), Watts(20.0));
        assert_eq!(Watts(10.0) / 2.0, Watts(5.0));
    }
}
