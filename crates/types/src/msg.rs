//! Cluster-tier ↔ job-tier wire protocol.
//!
//! The paper's implementation connects one cluster-level power budgeter to
//! one job-tier power-modeling process per job over TCP (Fig. 2): power
//! budgets flow down, power models and epoch samples flow up. The message
//! set here mirrors that design, with the timestamping the authors added
//! to reconcile tiers running control loops at different rates
//! (Section 7.2).
//!
//! Framing is a hand-rolled length-prefixed binary codec (over [`bytes`])
//! rather than a serde format crate: a `u32` big-endian payload length,
//! then a one-byte message tag, then fixed-width big-endian fields
//! (strings are `u16`-length-prefixed UTF-8).
//!
//! # Codec versioning
//!
//! Version 2 of the codec added causal-tracing context: `SetPowerCap`,
//! `Sample` and `Model` carry the `CauseId` of the budgeter rebalance
//! decision they descend from. Rather than a connection-level version
//! handshake, the extended messages use **new tags** (`SetPowerCap` v2 =
//! tag 4, `Sample` v2 = tag 5, `Model` v2 = tag 6); the v1 tags remain
//! decodable and yield a zero (`unknown`) cause, so a v2 budgeter can
//! ingest frames from a v1 job endpoint and vice versa.
//!
//! The session-resume handshake (`Resume` = job tag 7, `ResumeAck` =
//! cluster tag 5) rides the same scheme: fresh tags, so v1/v2 peers that
//! never reconnect are byte-for-byte unaffected.

use crate::curve::PowerCurve;
use crate::error::AnorError;
use crate::ids::JobId;
use crate::units::{Joules, Seconds, Watts};
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Upper bound on a sane frame, to reject corrupt length prefixes before
/// allocating.
pub const MAX_FRAME_LEN: usize = 64 * 1024;

/// Current codec version. Bumped to 2 when cause ids were added to
/// `SetPowerCap`/`Sample`/`Model`; encoders always emit the current
/// version, decoders accept every version back to 1.
pub const CODEC_VERSION: u8 = 2;

/// One job-progress observation flowing up from the GEOPM agent through
/// the job-tier modeler to the cluster tier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochSample {
    /// Job the sample belongs to.
    pub job: JobId,
    /// Cumulative count of `geopm_prof_epoch()` completions across all of
    /// the job's processes.
    pub epoch_count: u64,
    /// Cumulative CPU package energy consumed by the job's nodes.
    pub energy: Joules,
    /// Average power over the sampling window.
    pub avg_power: Watts,
    /// Average power cap applied over the window (what the modeler
    /// correlates epoch time against, Section 4.2).
    pub avg_cap: Watts,
    /// Job-tier local timestamp of the observation; lets the cluster tier
    /// align samples from tiers running control loops at different rates.
    pub timestamp: Seconds,
    /// Causal-trace id of the budgeter decision whose cap was in force
    /// when the sample was taken (`0` = unknown: pre-cap samples, or a
    /// peer speaking codec v1).
    pub cause: u64,
}

/// Messages the cluster tier sends to a job-tier endpoint.
#[derive(Debug, Clone, PartialEq)]
pub enum ClusterToJob {
    /// New per-node power budget for the job (Fig. 2: "Job Power Budgets").
    SetPowerCap {
        /// Per-node cap in watts.
        cap: Watts,
        /// Causal-trace id of the rebalance decision that produced this
        /// cap (`0` = untraced / codec-v1 peer).
        cause: u64,
    },
    /// Ask the endpoint to report its latest sample immediately.
    RequestSample,
    /// The budgeter is shutting down or the job was cancelled.
    Shutdown,
    /// Reply to a [`JobToCluster::Resume`]: re-syncs the cap the budgeter
    /// holds on record for the job so a `SetPowerCap` lost to the
    /// disconnect is replayed rather than dropped.
    ResumeAck {
        /// Per-node cap currently on record. A non-positive value means
        /// the budgeter has no cap on record (e.g. it restarted and lost
        /// state); the endpoint keeps its believed cap until the next
        /// rebalance sends a fresh `SetPowerCap`.
        cap: Watts,
        /// Causal-trace id of the decision that produced the cap (`0` =
        /// none on record).
        cause: u64,
    },
}

/// Messages a job-tier endpoint sends to the cluster tier.
#[derive(Debug, Clone, PartialEq)]
pub enum JobToCluster {
    /// First message on a fresh connection: identify the job.
    Hello {
        /// Cluster-assigned job id.
        job: JobId,
        /// Job-type name hint (may be unknown/misclassified — that is the
        /// point of Section 6.1.2).
        type_name: String,
        /// Number of compute nodes the job occupies.
        nodes: u32,
    },
    /// Periodic progress sample.
    Sample(EpochSample),
    /// A freshly (re-)trained power-performance model (Fig. 2: "Power
    /// Modeler" sends models up).
    Model {
        /// Job id the model describes.
        job: JobId,
        /// Per-epoch quadratic model.
        curve: PowerCurve,
        /// How many epoch observations the fit used.
        samples: u32,
        /// Causal-trace id of the decision whose cap the retrain
        /// observed (`0` = unknown).
        cause: u64,
    },
    /// Job finished; final report data.
    Done {
        /// Job id.
        job: JobId,
        /// Wall-clock the application section ran (the "Application
        /// Totals" figure from GEOPM reports).
        elapsed: Seconds,
    },
    /// First message on a *re-established* connection: re-register the
    /// job and report the cap the endpoint still believes, so the
    /// budgeter can restore a reclaimed lease and re-sync the cap via
    /// [`ClusterToJob::ResumeAck`].
    Resume {
        /// Cluster-assigned job id (unchanged across reconnects).
        job: JobId,
        /// Announced job-type name, replayed from the original hello.
        type_name: String,
        /// Number of compute nodes the job occupies.
        nodes: u32,
        /// Per-node cap the endpoint was enforcing when the connection
        /// dropped (non-positive = it never received one).
        believed_cap: Watts,
        /// Causal-trace id of the decision behind `believed_cap` (`0` =
        /// none).
        cause: u64,
    },
}

// ---------------------------------------------------------------------------
// Codec
// ---------------------------------------------------------------------------

fn put_string(buf: &mut BytesMut, s: &str) {
    // Truncate oversize strings at a char boundary: a too-long type name
    // must not corrupt the frame in release builds.
    let mut end = s.len().min(u16::MAX as usize);
    while !s.is_char_boundary(end) {
        end -= 1;
    }
    buf.put_u16(end as u16);
    buf.put_slice(&s.as_bytes()[..end]);
}

fn get_string(buf: &mut Bytes) -> Result<String, AnorError> {
    if buf.remaining() < 2 {
        return Err(AnorError::protocol("truncated string length"));
    }
    let len = buf.get_u16() as usize;
    if buf.remaining() < len {
        return Err(AnorError::protocol("truncated string body"));
    }
    let raw = buf.split_to(len);
    String::from_utf8(raw.to_vec()).map_err(|_| AnorError::protocol("invalid UTF-8 in string"))
}

fn put_curve(buf: &mut BytesMut, c: &PowerCurve) {
    buf.put_f64(c.a);
    buf.put_f64(c.b);
    buf.put_f64(c.c);
}

fn get_curve(buf: &mut Bytes) -> Result<PowerCurve, AnorError> {
    if buf.remaining() < 24 {
        return Err(AnorError::protocol("truncated curve"));
    }
    Ok(PowerCurve::new(buf.get_f64(), buf.get_f64(), buf.get_f64()))
}

fn need(buf: &Bytes, n: usize, what: &str) -> Result<(), AnorError> {
    if buf.remaining() < n {
        Err(AnorError::protocol(format!("truncated {what}")))
    } else {
        Ok(())
    }
}

impl ClusterToJob {
    /// Encode into a length-prefixed frame.
    pub fn encode(&self) -> Bytes {
        let mut body = BytesMut::with_capacity(24);
        match self {
            ClusterToJob::SetPowerCap { cap, cause } => {
                body.put_u8(4);
                body.put_f64(cap.value());
                body.put_u64(*cause);
            }
            ClusterToJob::RequestSample => body.put_u8(2),
            ClusterToJob::Shutdown => body.put_u8(3),
            ClusterToJob::ResumeAck { cap, cause } => {
                body.put_u8(5);
                body.put_f64(cap.value());
                body.put_u64(*cause);
            }
        }
        frame(body)
    }

    /// Decode a frame body (length prefix already stripped). Pre-v2
    /// tags decode with a zero cause.
    pub fn decode(mut body: Bytes) -> Result<Self, AnorError> {
        need(&body, 1, "tag")?;
        match body.get_u8() {
            // v1 SetPowerCap: no cause on the wire.
            1 => {
                need(&body, 8, "SetPowerCap")?;
                Ok(ClusterToJob::SetPowerCap {
                    cap: Watts(body.get_f64()),
                    cause: 0,
                })
            }
            2 => Ok(ClusterToJob::RequestSample),
            3 => Ok(ClusterToJob::Shutdown),
            4 => {
                need(&body, 16, "SetPowerCap v2")?;
                Ok(ClusterToJob::SetPowerCap {
                    cap: Watts(body.get_f64()),
                    cause: body.get_u64(),
                })
            }
            5 => {
                need(&body, 16, "ResumeAck")?;
                Ok(ClusterToJob::ResumeAck {
                    cap: Watts(body.get_f64()),
                    cause: body.get_u64(),
                })
            }
            t => Err(AnorError::protocol(format!("unknown ClusterToJob tag {t}"))),
        }
    }
}

impl JobToCluster {
    /// Encode into a length-prefixed frame.
    pub fn encode(&self) -> Bytes {
        let mut body = BytesMut::with_capacity(64);
        match self {
            JobToCluster::Hello {
                job,
                type_name,
                nodes,
            } => {
                body.put_u8(1);
                body.put_u64(job.0);
                put_string(&mut body, type_name);
                body.put_u32(*nodes);
            }
            JobToCluster::Sample(s) => {
                body.put_u8(5);
                body.put_u64(s.job.0);
                body.put_u64(s.epoch_count);
                body.put_f64(s.energy.value());
                body.put_f64(s.avg_power.value());
                body.put_f64(s.avg_cap.value());
                body.put_f64(s.timestamp.value());
                body.put_u64(s.cause);
            }
            JobToCluster::Model {
                job,
                curve,
                samples,
                cause,
            } => {
                body.put_u8(6);
                body.put_u64(job.0);
                put_curve(&mut body, curve);
                body.put_u32(*samples);
                body.put_u64(*cause);
            }
            JobToCluster::Done { job, elapsed } => {
                body.put_u8(4);
                body.put_u64(job.0);
                body.put_f64(elapsed.value());
            }
            JobToCluster::Resume {
                job,
                type_name,
                nodes,
                believed_cap,
                cause,
            } => {
                body.put_u8(7);
                body.put_u64(job.0);
                put_string(&mut body, type_name);
                body.put_u32(*nodes);
                body.put_f64(believed_cap.value());
                body.put_u64(*cause);
            }
        }
        frame(body)
    }

    /// Decode a frame body (length prefix already stripped).
    pub fn decode(mut body: Bytes) -> Result<Self, AnorError> {
        need(&body, 1, "tag")?;
        match body.get_u8() {
            1 => {
                need(&body, 8, "Hello job id")?;
                let job = JobId(body.get_u64());
                let type_name = get_string(&mut body)?;
                need(&body, 4, "Hello nodes")?;
                Ok(JobToCluster::Hello {
                    job,
                    type_name,
                    nodes: body.get_u32(),
                })
            }
            // v1 Sample: no cause on the wire.
            2 => {
                need(&body, 8 * 6, "Sample")?;
                Ok(JobToCluster::Sample(EpochSample {
                    job: JobId(body.get_u64()),
                    epoch_count: body.get_u64(),
                    energy: Joules(body.get_f64()),
                    avg_power: Watts(body.get_f64()),
                    avg_cap: Watts(body.get_f64()),
                    timestamp: Seconds(body.get_f64()),
                    cause: 0,
                }))
            }
            // v1 Model: no cause on the wire.
            3 => {
                need(&body, 8, "Model job id")?;
                let job = JobId(body.get_u64());
                let curve = get_curve(&mut body)?;
                need(&body, 4, "Model samples")?;
                Ok(JobToCluster::Model {
                    job,
                    curve,
                    samples: body.get_u32(),
                    cause: 0,
                })
            }
            4 => {
                need(&body, 16, "Done")?;
                Ok(JobToCluster::Done {
                    job: JobId(body.get_u64()),
                    elapsed: Seconds(body.get_f64()),
                })
            }
            5 => {
                need(&body, 8 * 7, "Sample v2")?;
                Ok(JobToCluster::Sample(EpochSample {
                    job: JobId(body.get_u64()),
                    epoch_count: body.get_u64(),
                    energy: Joules(body.get_f64()),
                    avg_power: Watts(body.get_f64()),
                    avg_cap: Watts(body.get_f64()),
                    timestamp: Seconds(body.get_f64()),
                    cause: body.get_u64(),
                }))
            }
            6 => {
                need(&body, 8, "Model v2 job id")?;
                let job = JobId(body.get_u64());
                let curve = get_curve(&mut body)?;
                need(&body, 12, "Model v2 samples+cause")?;
                Ok(JobToCluster::Model {
                    job,
                    curve,
                    samples: body.get_u32(),
                    cause: body.get_u64(),
                })
            }
            7 => {
                need(&body, 8, "Resume job id")?;
                let job = JobId(body.get_u64());
                let type_name = get_string(&mut body)?;
                need(&body, 4 + 8 + 8, "Resume nodes+cap+cause")?;
                Ok(JobToCluster::Resume {
                    job,
                    type_name,
                    nodes: body.get_u32(),
                    believed_cap: Watts(body.get_f64()),
                    cause: body.get_u64(),
                })
            }
            t => Err(AnorError::protocol(format!("unknown JobToCluster tag {t}"))),
        }
    }
}

/// Prepend the `u32` length prefix to a message body.
fn frame(body: BytesMut) -> Bytes {
    let mut out = BytesMut::with_capacity(4 + body.len());
    out.put_u32(body.len() as u32);
    out.extend_from_slice(&body);
    out.freeze()
}

/// Try to pull one complete frame body out of an accumulation buffer.
/// Returns `Ok(None)` when more bytes are needed; on success the consumed
/// bytes are removed from `buf`.
pub fn take_frame(buf: &mut BytesMut) -> Result<Option<Bytes>, AnorError> {
    if buf.len() < 4 {
        return Ok(None);
    }
    let len = u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    if len > MAX_FRAME_LEN {
        return Err(AnorError::protocol(format!(
            "frame length {len} exceeds max {MAX_FRAME_LEN}"
        )));
    }
    if buf.len() < 4 + len {
        return Ok(None);
    }
    buf.advance(4);
    Ok(Some(buf.split_to(len).freeze()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strip_len(frame: Bytes) -> Bytes {
        let mut b = frame;
        b.advance(4);
        b
    }

    fn sample() -> EpochSample {
        EpochSample {
            job: JobId(42),
            epoch_count: 137,
            energy: Joules(12_345.5),
            avg_power: Watts(201.25),
            avg_cap: Watts(210.0),
            timestamp: Seconds(98.75),
            cause: 31_337,
        }
    }

    #[test]
    fn cluster_to_job_round_trips() {
        let msgs = [
            ClusterToJob::SetPowerCap {
                cap: Watts(187.5),
                cause: 99,
            },
            ClusterToJob::RequestSample,
            ClusterToJob::Shutdown,
            ClusterToJob::ResumeAck {
                cap: Watts(192.5),
                cause: 1234,
            },
        ];
        for m in msgs {
            let decoded = ClusterToJob::decode(strip_len(m.encode())).unwrap();
            assert_eq!(decoded, m);
        }
    }

    #[test]
    fn job_to_cluster_round_trips() {
        let msgs = [
            JobToCluster::Hello {
                job: JobId(7),
                type_name: "bt.D.81".into(),
                nodes: 2,
            },
            JobToCluster::Sample(sample()),
            JobToCluster::Model {
                job: JobId(7),
                curve: PowerCurve::new(1.25e-5, -0.007, 1.9),
                samples: 23,
                cause: 512,
            },
            JobToCluster::Done {
                job: JobId(7),
                elapsed: Seconds(612.5),
            },
            JobToCluster::Resume {
                job: JobId(7),
                type_name: "bt.D.81".into(),
                nodes: 2,
                believed_cap: Watts(187.5),
                cause: 4096,
            },
        ];
        for m in msgs {
            let decoded = JobToCluster::decode(strip_len(m.encode())).unwrap();
            assert_eq!(decoded, m);
        }
    }

    // ---- session resume handshake -------------------------------------

    #[test]
    fn resume_without_believed_cap_round_trips() {
        let m = JobToCluster::Resume {
            job: JobId(3),
            type_name: "unknown".into(),
            nodes: 4,
            believed_cap: Watts(-1.0),
            cause: 0,
        };
        assert_eq!(JobToCluster::decode(strip_len(m.encode())).unwrap(), m);
    }

    #[test]
    fn truncated_resume_frames_rejected() {
        // A Resume cut off before the believed cap.
        let mut body = BytesMut::new();
        body.put_u8(7);
        body.put_u64(3);
        body.put_u16(2);
        body.put_slice(b"bt");
        body.put_u32(4);
        assert!(JobToCluster::decode(body.freeze()).is_err());
        // A ResumeAck missing its cause.
        let mut body = BytesMut::new();
        body.put_u8(5);
        body.put_f64(187.5);
        assert!(ClusterToJob::decode(body.freeze()).is_err());
    }

    // ---- codec version bump (v1 → v2) --------------------------------

    #[test]
    fn v2_frames_preserve_cause_exactly() {
        let m = ClusterToJob::SetPowerCap {
            cap: Watts(205.0),
            cause: u64::MAX,
        };
        assert_eq!(ClusterToJob::decode(strip_len(m.encode())).unwrap(), m);
        let m = JobToCluster::Sample(EpochSample {
            cause: u64::MAX - 1,
            ..sample()
        });
        assert_eq!(JobToCluster::decode(strip_len(m.encode())).unwrap(), m);
        assert_eq!(CODEC_VERSION, 2);
    }

    #[test]
    fn pre_bump_set_power_cap_decodes_with_zero_cause() {
        // Hand-build the v1 frame body: tag 1, cap only, no cause field.
        let mut body = BytesMut::new();
        body.put_u8(1);
        body.put_f64(187.5);
        assert_eq!(
            ClusterToJob::decode(body.freeze()).unwrap(),
            ClusterToJob::SetPowerCap {
                cap: Watts(187.5),
                cause: 0,
            }
        );
    }

    #[test]
    fn pre_bump_sample_decodes_with_zero_cause() {
        let s = sample();
        let mut body = BytesMut::new();
        body.put_u8(2);
        body.put_u64(s.job.0);
        body.put_u64(s.epoch_count);
        body.put_f64(s.energy.value());
        body.put_f64(s.avg_power.value());
        body.put_f64(s.avg_cap.value());
        body.put_f64(s.timestamp.value());
        let decoded = JobToCluster::decode(body.freeze()).unwrap();
        assert_eq!(decoded, JobToCluster::Sample(EpochSample { cause: 0, ..s }));
    }

    #[test]
    fn pre_bump_model_decodes_with_zero_cause() {
        let curve = PowerCurve::new(1.25e-5, -0.007, 1.9);
        let mut body = BytesMut::new();
        body.put_u8(3);
        body.put_u64(7);
        body.put_f64(curve.a);
        body.put_f64(curve.b);
        body.put_f64(curve.c);
        body.put_u32(23);
        assert_eq!(
            JobToCluster::decode(body.freeze()).unwrap(),
            JobToCluster::Model {
                job: JobId(7),
                curve,
                samples: 23,
                cause: 0,
            }
        );
    }

    #[test]
    fn truncated_v2_bodies_rejected() {
        // A v2 SetPowerCap missing its cause field.
        let mut body = BytesMut::new();
        body.put_u8(4);
        body.put_f64(187.5);
        assert!(ClusterToJob::decode(body.freeze()).is_err());
        // A v2 Model cut off before the cause.
        let mut body = BytesMut::new();
        body.put_u8(6);
        body.put_u64(7);
        body.put_f64(0.0);
        body.put_f64(0.0);
        body.put_f64(0.0);
        body.put_u32(23);
        assert!(JobToCluster::decode(body.freeze()).is_err());
    }

    #[test]
    fn oversize_strings_truncate_instead_of_corrupting() {
        let long = "x".repeat(u16::MAX as usize + 100);
        let m = JobToCluster::Hello {
            job: JobId(1),
            type_name: long,
            nodes: 1,
        };
        let decoded = JobToCluster::decode(strip_len(m.encode())).unwrap();
        let JobToCluster::Hello { type_name, .. } = decoded else {
            panic!("expected Hello");
        };
        assert_eq!(type_name.len(), u16::MAX as usize);
    }

    #[test]
    fn take_frame_handles_partial_input() {
        let full = JobToCluster::Done {
            job: JobId(1),
            elapsed: Seconds(5.0),
        }
        .encode();
        let mut buf = BytesMut::new();
        // Feed one byte at a time; frame only appears once complete.
        for (i, b) in full.iter().enumerate() {
            buf.put_u8(*b);
            let got = take_frame(&mut buf).unwrap();
            if i + 1 < full.len() {
                assert!(got.is_none(), "premature frame at byte {i}");
            } else {
                let body = got.expect("complete frame");
                assert!(matches!(
                    JobToCluster::decode(body).unwrap(),
                    JobToCluster::Done { .. }
                ));
            }
        }
        assert!(buf.is_empty());
    }

    #[test]
    fn take_frame_yields_multiple_frames() {
        let mut buf = BytesMut::new();
        buf.extend_from_slice(&ClusterToJob::RequestSample.encode());
        buf.extend_from_slice(&ClusterToJob::Shutdown.encode());
        let a = take_frame(&mut buf).unwrap().unwrap();
        let b = take_frame(&mut buf).unwrap().unwrap();
        assert_eq!(
            ClusterToJob::decode(a).unwrap(),
            ClusterToJob::RequestSample
        );
        assert_eq!(ClusterToJob::decode(b).unwrap(), ClusterToJob::Shutdown);
        assert!(take_frame(&mut buf).unwrap().is_none());
    }

    #[test]
    fn oversized_frame_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u32((MAX_FRAME_LEN + 1) as u32);
        buf.put_u8(0);
        assert!(take_frame(&mut buf).is_err());
    }

    #[test]
    fn unknown_tag_rejected() {
        let mut body = BytesMut::new();
        body.put_u8(99);
        assert!(ClusterToJob::decode(body.freeze()).is_err());
        let mut body = BytesMut::new();
        body.put_u8(99);
        assert!(JobToCluster::decode(body.freeze()).is_err());
    }

    #[test]
    fn truncated_bodies_rejected() {
        // A SetPowerCap tag with no payload.
        let mut body = BytesMut::new();
        body.put_u8(1);
        assert!(ClusterToJob::decode(body.freeze()).is_err());
        // A Hello with a string length pointing past the end.
        let mut body = BytesMut::new();
        body.put_u8(1);
        body.put_u64(1);
        body.put_u16(200); // claims 200 bytes of name
        body.put_slice(b"short");
        assert!(JobToCluster::decode(body.freeze()).is_err());
    }

    #[test]
    fn invalid_utf8_rejected() {
        let mut body = BytesMut::new();
        body.put_u8(1);
        body.put_u64(1);
        body.put_u16(2);
        body.put_slice(&[0xff, 0xfe]);
        body.put_u32(1);
        assert!(JobToCluster::decode(body.freeze()).is_err());
    }

    #[test]
    fn empty_frame_body_rejected() {
        assert!(ClusterToJob::decode(Bytes::new()).is_err());
        assert!(JobToCluster::decode(Bytes::new()).is_err());
    }
}
