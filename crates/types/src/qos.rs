//! Quality-of-service math.
//!
//! Section 5.2 defines a job's QoS degradation as
//! `Q = (T_so − T_min) / T_min`, where `T_so` is the sojourn time (submit →
//! completion) and `T_min` the execution time when the job is not power
//! limited. The paper's experiments use a probabilistic constraint: every
//! type must stay within `Q = 5` with 90% probability.

use crate::units::Seconds;

/// The QoS degradation of one completed job.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QosDegradation {
    /// Sojourn time: submission to completion.
    pub sojourn: Seconds,
    /// Uncapped execution time of the job's type.
    pub t_min: Seconds,
}

impl QosDegradation {
    /// Build from the three timestamps the job table records.
    pub fn from_timestamps(submit: Seconds, end: Seconds, t_min: Seconds) -> Self {
        QosDegradation {
            sojourn: end - submit,
            t_min,
        }
    }

    /// `Q = (T_so − T_min) / T_min`. Zero when the job ran immediately at
    /// full speed; grows with queue wait and power-cap slowdown.
    pub fn degradation(&self) -> f64 {
        debug_assert!(self.t_min.value() > 0.0, "t_min must be positive");
        (self.sojourn - self.t_min) / self.t_min
    }

    /// Does this job meet a degradation limit?
    pub fn within(&self, limit: f64) -> bool {
        self.degradation() <= limit
    }
}

/// A probabilistic QoS constraint: `Q ≤ limit` with probability
/// `probability` across a job population.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QosConstraint {
    /// Degradation ceiling (paper: 5).
    pub limit: f64,
    /// Required fraction of jobs under the ceiling (paper: 0.90).
    pub probability: f64,
}

impl Default for QosConstraint {
    fn default() -> Self {
        QosConstraint {
            limit: 5.0,
            probability: 0.90,
        }
    }
}

impl QosConstraint {
    /// Check the constraint over a set of completed jobs. Empty input is
    /// vacuously satisfied (no jobs have been harmed).
    pub fn satisfied_by(&self, jobs: &[QosDegradation]) -> bool {
        if jobs.is_empty() {
            return true;
        }
        let ok = jobs.iter().filter(|j| j.within(self.limit)).count();
        (ok as f64 / jobs.len() as f64) >= self.probability
    }

    /// The `probability`-th percentile of degradation over a population —
    /// the quantity Fig. 11 plots (its y axis is the 90th-percentile QoS
    /// degradation). Returns `None` on an empty population.
    pub fn percentile_degradation(&self, jobs: &[QosDegradation]) -> Option<f64> {
        if jobs.is_empty() {
            return None;
        }
        let mut qs: Vec<f64> = jobs.iter().map(|j| j.degradation()).collect();
        qs.sort_by(f64::total_cmp);
        Some(crate::stats::percentile_sorted(
            &qs,
            self.probability * 100.0,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(sojourn: f64, tmin: f64) -> QosDegradation {
        QosDegradation {
            sojourn: Seconds(sojourn),
            t_min: Seconds(tmin),
        }
    }

    #[test]
    fn degradation_formula() {
        // Runs immediately, uncapped: Q = 0.
        assert_eq!(q(100.0, 100.0).degradation(), 0.0);
        // Waits as long as it runs: Q = 1.
        assert!((q(200.0, 100.0).degradation() - 1.0).abs() < 1e-12);
        // The paper's limit case.
        assert!((q(600.0, 100.0).degradation() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn from_timestamps() {
        let d = QosDegradation::from_timestamps(Seconds(10.0), Seconds(130.0), Seconds(60.0));
        assert_eq!(d.sojourn, Seconds(120.0));
        assert!((d.degradation() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn within_limit() {
        assert!(q(500.0, 100.0).within(5.0));
        assert!(q(600.0, 100.0).within(5.0));
        assert!(!q(601.0, 100.0).within(5.0));
    }

    #[test]
    fn constraint_satisfaction() {
        let c = QosConstraint::default();
        // 9 of 10 within the limit -> satisfied at 90%.
        let mut jobs: Vec<_> = (0..9).map(|_| q(100.0, 100.0)).collect();
        jobs.push(q(10_000.0, 100.0));
        assert!(c.satisfied_by(&jobs));
        // 8 of 10 -> violated.
        jobs.push(q(10_000.0, 100.0));
        jobs.remove(0);
        assert!(!c.satisfied_by(&jobs));
    }

    #[test]
    fn empty_population_is_vacuously_ok() {
        let c = QosConstraint::default();
        assert!(c.satisfied_by(&[]));
        assert_eq!(c.percentile_degradation(&[]), None);
    }

    #[test]
    fn percentile_degradation_matches_manual() {
        let c = QosConstraint::default();
        let jobs: Vec<_> = (1..=10)
            .map(|i| q(100.0 * (1.0 + i as f64), 100.0))
            .collect();
        // Degradations are 1..=10; 90th percentile by linear interpolation
        // over 10 points is 9.1.
        let p = c.percentile_degradation(&jobs).unwrap();
        assert!((p - 9.1).abs() < 1e-9, "got {p}");
    }
}
