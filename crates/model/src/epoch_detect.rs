//! Automatic epoch detection from hardware telemetry.
//!
//! Section 8: instrumentation effort could be avoided "by identifying
//! periodic usage of system resources or software interfaces" — an
//! iterative HPC code's main loop leaves a periodic signature in node
//! power (compute bursts, synchronization dips). [`detect_period`]
//! estimates that period from a uniformly sampled power trace via
//! normalized autocorrelation, letting an uninstrumented job still feed
//! epoch-rate estimates to the power modeler.

/// Estimate the dominant period of `samples` (taken every `dt` seconds)
/// within `[min_period, max_period]` seconds.
///
/// Returns `None` when the trace is too short, flat, or has no
/// autocorrelation peak exceeding `min_confidence` (a value in `(0, 1]`;
/// 0.3 is a reasonable default for noisy RAPL traces).
pub fn detect_period(
    samples: &[f64],
    dt: f64,
    min_period: f64,
    max_period: f64,
    min_confidence: f64,
) -> Option<f64> {
    assert!(dt > 0.0, "sample spacing must be positive");
    assert!(
        min_period > 0.0 && max_period > min_period,
        "period window must be ordered and positive"
    );
    let n = samples.len();
    let min_lag = (min_period / dt).round().max(1.0) as usize;
    let max_lag = (max_period / dt).round() as usize;
    // Need at least two full periods of data at the largest lag.
    if n < 2 * max_lag.max(2) || min_lag >= max_lag {
        return None;
    }
    let mean = samples.iter().sum::<f64>() / n as f64;
    let var: f64 = samples.iter().map(|x| (x - mean) * (x - mean)).sum();
    if var <= 1e-12 {
        return None; // flat signal: no periodicity to find
    }
    // Normalized autocorrelation per candidate lag.
    let corr: Vec<f64> = (min_lag..=max_lag)
        .map(|lag| {
            let m = n - lag;
            let mut acc = 0.0;
            for i in 0..m {
                acc += (samples[i] - mean) * (samples[i + lag] - mean);
            }
            acc / var * (n as f64 / m as f64)
        })
        .collect();
    let r_max = corr.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if r_max < min_confidence {
        return None;
    }
    // Every integer multiple of the true period correlates equally well;
    // pick the *fundamental*: the smallest lag that is a local peak and
    // within 15% of the global maximum.
    let mut pick = None;
    for (i, &r) in corr.iter().enumerate() {
        let left = if i == 0 {
            f64::NEG_INFINITY
        } else {
            corr[i - 1]
        };
        let right = corr.get(i + 1).copied().unwrap_or(f64::NEG_INFINITY);
        if r >= 0.85 * r_max && r >= left && r >= right {
            pick = Some((min_lag + i, r));
            break;
        }
    }
    let (lag, r) = pick?;
    // Parabolic refinement around the peak for sub-sample resolution.
    let corr_at = |l: usize| -> f64 {
        let m = n - l;
        let mut acc = 0.0;
        for i in 0..m {
            acc += (samples[i] - mean) * (samples[i + l] - mean);
        }
        acc / var * (n as f64 / m as f64)
    };
    let refined = if lag > min_lag && lag < max_lag {
        let (y0, y1, y2) = (corr_at(lag - 1), r, corr_at(lag + 1));
        let denom = y0 - 2.0 * y1 + y2;
        if denom.abs() > 1e-12 {
            lag as f64 + 0.5 * (y0 - y2) / denom
        } else {
            lag as f64
        }
    } else {
        lag as f64
    };
    Some(refined * dt)
}

/// Convenience wrapper: estimate epochs-per-second from a power trace.
pub fn detect_epoch_rate(
    samples: &[f64],
    dt: f64,
    min_period: f64,
    max_period: f64,
) -> Option<f64> {
    detect_period(samples, dt, min_period, max_period, 0.3).map(|p| 1.0 / p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use anor_types::stats::normal;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A synthetic power trace: compute plateau with periodic sync dips.
    fn trace(period_s: f64, dt: f64, seconds: f64, noise: f64, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = (seconds / dt) as usize;
        (0..n)
            .map(|i| {
                let t = i as f64 * dt;
                let phase = (t % period_s) / period_s;
                // 80% of the period at high power, 20% in a sync dip.
                let base = if phase < 0.8 { 260.0 } else { 180.0 };
                base + normal(&mut rng, 0.0, noise)
            })
            .collect()
    }

    #[test]
    fn clean_periodic_signal_detected() {
        let samples = trace(2.4, 0.1, 120.0, 0.0, 1);
        let p = detect_period(&samples, 0.1, 0.5, 10.0, 0.3).unwrap();
        assert!((p - 2.4).abs() < 0.15, "detected {p}, expected 2.4");
    }

    #[test]
    fn noisy_signal_still_detected() {
        let samples = trace(3.0, 0.1, 180.0, 15.0, 2);
        let p = detect_period(&samples, 0.1, 0.5, 10.0, 0.3).unwrap();
        assert!((p - 3.0).abs() < 0.2, "detected {p}, expected 3.0");
    }

    #[test]
    fn epoch_rate_wrapper() {
        let samples = trace(2.0, 0.1, 120.0, 5.0, 3);
        let rate = detect_epoch_rate(&samples, 0.1, 0.5, 8.0).unwrap();
        assert!((rate - 0.5).abs() < 0.05, "rate {rate}, expected 0.5");
    }

    #[test]
    fn flat_signal_rejected() {
        let samples = vec![200.0; 1000];
        assert!(detect_period(&samples, 0.1, 0.5, 10.0, 0.3).is_none());
    }

    #[test]
    fn pure_noise_rejected() {
        let mut rng = StdRng::seed_from_u64(4);
        let samples: Vec<f64> = (0..2000).map(|_| normal(&mut rng, 200.0, 10.0)).collect();
        assert!(
            detect_period(&samples, 0.1, 0.5, 10.0, 0.3).is_none(),
            "white noise must not produce a confident period"
        );
    }

    #[test]
    fn too_short_trace_rejected() {
        let samples = trace(2.0, 0.1, 3.0, 0.0, 5);
        assert!(detect_period(&samples, 0.1, 0.5, 10.0, 0.3).is_none());
    }

    #[test]
    fn period_outside_window_rejected_or_aliased_safely() {
        // True period 20 s, but we only search up to 5 s: either nothing,
        // or a harmonic — never a panic, never a confident fundamental.
        let samples = trace(20.0, 0.1, 200.0, 0.0, 6);
        if let Some(p) = detect_period(&samples, 0.1, 0.5, 5.0, 0.3) {
            assert!(p <= 5.0 + 0.2);
        }
    }

    #[test]
    #[should_panic(expected = "ordered")]
    fn inverted_window_rejected() {
        detect_period(&[1.0; 100], 0.1, 5.0, 1.0, 0.3);
    }
}
