//! Least-squares fitting of power-performance models.
//!
//! Three fitters, in decreasing data-hunger order:
//!
//! * [`fit_quadratic`] — the paper's `T = A·P² + B·P + C` (3 parameters;
//!   needs ≥ 3 distinct cap levels). Used for offline precharacterization
//!   where sweeps cover the whole cap range (Fig. 3).
//! * [`fit_anchored`] — the 2-parameter family
//!   `T = t₀ + t₀·s·x²` with `x = (Pmax − P)/(Pmax − Pmin)`, linear in
//!   `(t₀, t₀·s)`; identifiable from just 2 distinct caps. The online
//!   modeler uses this while data is sparse.
//! * [`fit_linear`] — `T = B·P + C`, kept for the model-order ablation
//!   bench.

use anor_types::{AnorError, CapRange, PowerCurve, Result, Seconds, Watts};

/// A fitted model plus its goodness of fit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FitResult {
    /// The fitted curve.
    pub curve: PowerCurve,
    /// Coefficient of determination on the training points.
    pub r2: f64,
}

/// Solve a small dense linear system `A x = b` by Gaussian elimination
/// with partial pivoting. Returns an error when the system is singular
/// (collinear observations).
fn solve(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Result<Vec<f64>> {
    let n = b.len();
    debug_assert!(a.len() == n && a.iter().all(|r| r.len() == n));
    for col in 0..n {
        // Partial pivot.
        let Some(pivot) = (col..n).max_by(|&i, &j| a[i][col].abs().total_cmp(&a[j][col].abs()))
        else {
            // Unreachable for n > 0, but a degenerate system must yield a
            // fit error, never a panic inside the modeler.
            return Err(AnorError::model("empty system in pivot search"));
        };
        if a[pivot][col].abs() < 1e-12 {
            return Err(AnorError::model("singular normal equations"));
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        for row in (col + 1)..n {
            let f = a[row][col] / a[col][col];
            // Indexing two rows of `a` simultaneously; iterator forms
            // would need split_at_mut gymnastics for no clarity gain.
            #[allow(clippy::needless_range_loop)]
            for k in col..n {
                a[row][k] -= f * a[col][k];
            }
            b[row] -= f * b[col];
        }
    }
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for k in (row + 1)..n {
            acc -= a[row][k] * x[k];
        }
        x[row] = acc / a[row][row];
    }
    Ok(x)
}

/// Least squares over an arbitrary basis: returns coefficients minimizing
/// `Σ (Σ_k c_k φ_k(P_i) − T_i)²`.
fn least_squares(points: &[(Watts, Seconds)], basis: &[&dyn Fn(f64) -> f64]) -> Result<Vec<f64>> {
    let k = basis.len();
    if points.len() < k {
        return Err(AnorError::model(format!(
            "need at least {k} observations, have {}",
            points.len()
        )));
    }
    let mut ata = vec![vec![0.0; k]; k];
    let mut atb = vec![0.0; k];
    for &(p, t) in points {
        let phi: Vec<f64> = basis.iter().map(|f| f(p.value())).collect();
        for i in 0..k {
            for j in 0..k {
                ata[i][j] += phi[i] * phi[j];
            }
            atb[i] += phi[i] * t.value();
        }
    }
    solve(ata, atb)
}

/// Number of distinct cap levels among observations, with a 1 W tolerance.
pub fn distinct_caps(points: &[(Watts, Seconds)]) -> usize {
    let mut caps: Vec<f64> = points.iter().map(|(p, _)| p.value()).collect();
    caps.sort_by(f64::total_cmp);
    let mut n = 0;
    let mut last = f64::NEG_INFINITY;
    for c in caps {
        if c - last > 1.0 {
            n += 1;
            last = c;
        }
    }
    n
}

/// Fit the paper's 3-parameter quadratic `T = A·P² + B·P + C`.
///
/// Requires ≥ 3 observations at ≥ 3 distinct cap levels; otherwise the
/// normal equations are singular.
pub fn fit_quadratic(points: &[(Watts, Seconds)]) -> Result<FitResult> {
    if distinct_caps(points) < 3 {
        return Err(AnorError::model(
            "quadratic fit needs 3 distinct cap levels",
        ));
    }
    // Center and scale P for conditioning: work in q = (P - mean)/scale.
    let mean = points.iter().map(|(p, _)| p.value()).sum::<f64>() / points.len() as f64;
    let scale = points
        .iter()
        .map(|(p, _)| (p.value() - mean).abs())
        .fold(0.0f64, f64::max)
        .max(1.0);
    let shifted: Vec<(Watts, Seconds)> = points
        .iter()
        .map(|&(p, t)| (Watts((p.value() - mean) / scale), t))
        .collect();
    let coeffs = least_squares(&shifted, &[&|q: f64| q * q, &|q: f64| q, &|_q: f64| 1.0])?;
    // Undo the substitution q = (P-mean)/scale:
    // a' q^2 + b' q + c' = a'(P-mean)^2/scale^2 + b'(P-mean)/scale + c'.
    let (ap, bp, cp) = (coeffs[0], coeffs[1], coeffs[2]);
    let a = ap / (scale * scale);
    let b = -2.0 * ap * mean / (scale * scale) + bp / scale;
    let c = ap * mean * mean / (scale * scale) - bp * mean / scale + cp;
    let curve = PowerCurve::new(a, b, c);
    Ok(FitResult {
        r2: r_squared(points, &curve),
        curve,
    })
}

/// Fit the 2-parameter anchored family
/// `T(P) = t₀·(1 + s·((Pmax − P)/span)²)` by linear least squares on the
/// basis `[1, x²]`. Negative fitted sensitivity is clamped to zero (more
/// power never hurts in this family).
pub fn fit_anchored(points: &[(Watts, Seconds)], range: CapRange) -> Result<FitResult> {
    if distinct_caps(points) < 2 {
        return Err(AnorError::model("anchored fit needs 2 distinct cap levels"));
    }
    let span = range.span().value();
    let pmax = range.max.value();
    let x = move |p: f64| {
        let v = (pmax - p) / span;
        v * v
    };
    let coeffs = least_squares(points, &[&|_p: f64| 1.0, &x])?;
    let (t0, v) = (coeffs[0], coeffs[1].max(0.0));
    if !(t0.is_finite() && t0 > 0.0) {
        return Err(AnorError::model(format!(
            "non-physical anchored fit t0={t0}"
        )));
    }
    let s = v / t0;
    let curve = PowerCurve::from_anchor(Seconds(t0), s, range);
    Ok(FitResult {
        r2: r_squared(points, &curve),
        curve,
    })
}

/// Fit a straight line `T = B·P + C` (model-order ablation baseline).
pub fn fit_linear(points: &[(Watts, Seconds)]) -> Result<FitResult> {
    if distinct_caps(points) < 2 {
        return Err(AnorError::model("linear fit needs 2 distinct cap levels"));
    }
    let coeffs = least_squares(points, &[&|p: f64| p, &|_p: f64| 1.0])?;
    let curve = PowerCurve::new(0.0, coeffs[0], coeffs[1]);
    Ok(FitResult {
        r2: r_squared(points, &curve),
        curve,
    })
}

/// Coefficient of determination of `curve` against observations.
/// Returns 1.0 for a perfect fit of zero-variance data.
pub fn r_squared(points: &[(Watts, Seconds)], curve: &PowerCurve) -> f64 {
    if points.is_empty() {
        return f64::NAN;
    }
    let mean_t = points.iter().map(|(_, t)| t.value()).sum::<f64>() / points.len() as f64;
    let ss_tot: f64 = points
        .iter()
        .map(|(_, t)| (t.value() - mean_t).powi(2))
        .sum();
    let ss_res: f64 = points
        .iter()
        .map(|&(p, t)| (t.value() - curve.time_at(p).value()).powi(2))
        .sum();
    if ss_tot <= 1e-18 {
        if ss_res <= 1e-12 {
            1.0
        } else {
            0.0
        }
    } else {
        1.0 - ss_res / ss_tot
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anor_types::stats::normal;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn range() -> CapRange {
        CapRange::paper_node()
    }

    /// Clean samples from a known curve across the cap range.
    fn samples(curve: &PowerCurve, caps: &[f64]) -> Vec<(Watts, Seconds)> {
        caps.iter()
            .map(|&p| (Watts(p), curve.time_at(Watts(p))))
            .collect()
    }

    #[test]
    fn quadratic_recovers_exact_curve() {
        let truth = PowerCurve::new(2.5e-5, -0.018, 6.0);
        let pts = samples(&truth, &[140.0, 175.0, 210.0, 245.0, 280.0]);
        let fit = fit_quadratic(&pts).unwrap();
        assert!((fit.curve.a - truth.a).abs() < 1e-10);
        assert!((fit.curve.b - truth.b).abs() < 1e-7);
        assert!((fit.curve.c - truth.c).abs() < 1e-4);
        assert!(fit.r2 > 0.999999);
    }

    #[test]
    fn quadratic_on_noisy_data_keeps_high_r2() {
        let truth = PowerCurve::from_anchor(Seconds(2.4), 0.75, range());
        let mut rng = StdRng::seed_from_u64(1);
        let pts: Vec<(Watts, Seconds)> = (0..200)
            .map(|i| {
                let p = 140.0 + (i % 15) as f64 * 10.0;
                let t = truth.time_at(Watts(p)).value() * normal(&mut rng, 1.0, 0.02);
                (Watts(p), Seconds(t))
            })
            .collect();
        let fit = fit_quadratic(&pts).unwrap();
        assert!(fit.r2 > 0.9, "r2 = {}", fit.r2);
        // Predictions track truth within a few percent mid-range.
        for p in [150.0, 200.0, 260.0] {
            let e = fit.curve.time_at(Watts(p)).value();
            let t = truth.time_at(Watts(p)).value();
            assert!((e - t).abs() / t < 0.05, "at {p} W: {e} vs {t}");
        }
    }

    #[test]
    fn quadratic_rejects_sparse_caps() {
        let truth = PowerCurve::new(1e-5, -0.01, 4.0);
        let pts = samples(&truth, &[140.0, 140.2, 210.0, 210.4]);
        assert!(fit_quadratic(&pts).is_err(), "2 distinct caps must fail");
    }

    #[test]
    fn anchored_fit_from_two_caps() {
        let truth = PowerCurve::from_anchor(Seconds(3.0), 0.6, range());
        let pts = samples(&truth, &[160.0, 160.0, 240.0, 240.0]);
        let fit = fit_anchored(&pts, range()).unwrap();
        for p in [140.0, 200.0, 280.0] {
            let e = fit.curve.time_at(Watts(p)).value();
            let t = truth.time_at(Watts(p)).value();
            assert!((e - t).abs() / t < 0.01, "at {p} W: {e} vs {t}");
        }
    }

    #[test]
    fn anchored_fit_clamps_negative_sensitivity() {
        // Data where *less* power looks faster (noise artifact): s clamps
        // to 0 -> flat curve.
        let pts = vec![
            (Watts(150.0), Seconds(1.0)),
            (Watts(150.0), Seconds(1.02)),
            (Watts(270.0), Seconds(1.1)),
        ];
        let fit = fit_anchored(&pts, range()).unwrap();
        assert!(fit.curve.is_monotone_decreasing_on(range()));
        let flat = (fit.curve.time_at(Watts(140.0)).value()
            - fit.curve.time_at(Watts(280.0)).value())
        .abs();
        assert!(flat < 1e-9, "curve should be flat, spread {flat}");
    }

    #[test]
    fn anchored_fit_needs_two_levels() {
        let pts = vec![(Watts(200.0), Seconds(1.0)), (Watts(200.5), Seconds(1.1))];
        assert!(fit_anchored(&pts, range()).is_err());
    }

    #[test]
    fn linear_fit_recovers_line() {
        let truth = PowerCurve::new(0.0, -0.01, 5.0);
        let pts = samples(&truth, &[140.0, 200.0, 280.0]);
        let fit = fit_linear(&pts).unwrap();
        assert!((fit.curve.b + 0.01).abs() < 1e-10);
        assert!((fit.curve.c - 5.0).abs() < 1e-8);
        assert_eq!(fit.curve.a, 0.0);
    }

    #[test]
    fn r_squared_degenerate_cases() {
        let c = PowerCurve::new(0.0, 0.0, 2.0);
        // Zero-variance data, perfect fit.
        let pts = vec![(Watts(150.0), Seconds(2.0)), (Watts(250.0), Seconds(2.0))];
        assert_eq!(r_squared(&pts, &c), 1.0);
        // Zero-variance data, wrong constant.
        let pts = vec![(Watts(150.0), Seconds(3.0)), (Watts(250.0), Seconds(3.0))];
        assert_eq!(r_squared(&pts, &c), 0.0);
        assert!(r_squared(&[], &c).is_nan());
    }

    #[test]
    fn distinct_cap_counting() {
        let pts = vec![
            (Watts(140.0), Seconds(1.0)),
            (Watts(140.5), Seconds(1.0)),
            (Watts(142.0), Seconds(1.0)),
            (Watts(200.0), Seconds(1.0)),
        ];
        assert_eq!(distinct_caps(&pts), 3);
        assert_eq!(distinct_caps(&[]), 0);
    }

    #[test]
    fn anchored_matches_paper_noise_profile() {
        // Reproduce Section 5.1's fit-quality pattern: a low-noise type
        // fits with R² >= 0.97, a noisy SP-like type fits worse.
        let mut rng = StdRng::seed_from_u64(42);
        let mut gen = |sens: f64, sigma: f64| {
            let truth = PowerCurve::from_anchor(Seconds(1.8), sens, range());
            let pts: Vec<(Watts, Seconds)> = (0..300)
                .map(|i| {
                    let p = 140.0 + (i % 8) as f64 * 20.0;
                    let t = truth.time_at(Watts(p)).value() * normal(&mut rng, 1.0, sigma);
                    (Watts(p), Seconds(t))
                })
                .collect();
            fit_quadratic(&pts).unwrap().r2
        };
        let r2_bt = gen(0.75, 0.02);
        let r2_sp = gen(0.15, 0.12);
        assert!(r2_bt > 0.97, "bt-like r2 {r2_bt}");
        assert!(r2_sp < r2_bt, "sp-like r2 {r2_sp} not worse than {r2_bt}");
    }
}
