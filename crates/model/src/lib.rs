#![warn(missing_docs)]
//! # anor-model
//!
//! The job-tier power modeler (paper Section 4.2): "Each model relates a
//! job's rate of progress to a CPU power cap. The modeler receives an
//! epoch count from the GEOPM agent layer via the GEOPM endpoint
//! interface. The modeler records the time since the last epoch update,
//! and the average power cap applied over that time span. We fit
//! `T = A·P² + B·P + C` for T seconds per epoch and power cap P watts
//! below TDP. We re-train the model when at least 10 new epochs have been
//! recorded. Jobs that report no epochs or that have yet to build a model
//! use a default model."
//!
//! * [`fit`] — least-squares fitting: the paper's 3-parameter quadratic,
//!   a 2-parameter *anchored* family `T = t₀·(1 + s·((Pmax−P)/span)²)`
//!   usable with only two distinct cap levels, and R² scoring;
//! * [`window`] — differencing of cumulative `(epoch_count, timestamp)`
//!   samples into per-epoch observations tagged with the average cap over
//!   the window (the timestamping fix of Section 7.2);
//! * [`modeler`] — the retrain state machine with default-model fallback
//!   and a small zero-mean cap *dither* that makes the model identifiable
//!   when the budgeter would otherwise hold a job at a single cap level
//!   (documented as a substitution in DESIGN.md).

pub mod drift;
pub mod epoch_detect;
pub mod fit;
pub mod modeler;
pub mod window;

pub use drift::DriftDetector;
pub use epoch_detect::{detect_epoch_rate, detect_period};
pub use fit::{fit_anchored, fit_linear, fit_quadratic, r_squared, FitResult};
pub use modeler::{ModelSource, ModelerConfig, PowerModeler};
pub use window::EpochWindow;
