//! Differencing cumulative endpoint samples into per-epoch observations.
//!
//! The endpoint delivers *cumulative* state: epoch count so far, a
//! timestamp, and the cap in force. The modeler needs *per-epoch time at
//! an average cap* pairs (Section 4.2: "the modeler records the time
//! since the last epoch update, and the average power cap applied over
//! that time span"). [`EpochWindow`] performs that differencing, carrying
//! a time-weighted cap average across sample boundaries — the
//! asynchronous-sampling bookkeeping Section 7.2 describes.

use anor_types::{Seconds, Watts};

/// One derived observation: `epochs` epochs completed over `elapsed`
/// seconds at time-weighted average cap `avg_cap`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochObservation {
    /// Number of epochs the window covered.
    pub epochs: u64,
    /// Wall-clock the window covered.
    pub elapsed: Seconds,
    /// Time-weighted average cap over the window.
    pub avg_cap: Watts,
}

impl EpochObservation {
    /// Seconds per epoch over this window.
    pub fn per_epoch(&self) -> Seconds {
        self.elapsed / self.epochs as f64
    }
}

/// Stateful differencer over a stream of cumulative samples.
#[derive(Debug, Clone, Default)]
pub struct EpochWindow {
    last_count: Option<u64>,
    last_ts: Seconds,
    /// Time-weighted cap accumulator since the last epoch boundary:
    /// Σ capᵢ·dtᵢ and Σ dtᵢ.
    cap_time_integral: f64,
    time_accum: f64,
}

impl EpochWindow {
    /// Fresh window with no history.
    pub fn new() -> Self {
        EpochWindow::default()
    }

    /// Feed one cumulative sample `(epoch_count, timestamp, cap_in_force)`.
    /// Returns an observation when at least one new epoch completed since
    /// the previous sample; `None` while no epoch boundary has passed
    /// (the cap exposure is still accumulated so the eventual observation
    /// is correctly weighted).
    pub fn push(
        &mut self,
        epoch_count: u64,
        timestamp: Seconds,
        cap: Watts,
    ) -> Option<EpochObservation> {
        // Samples cross a wire; non-finite values must not poison the
        // accumulators (a NaN cap would make every later fit NaN).
        if !timestamp.is_finite() || !cap.is_finite() || cap.value() < 0.0 {
            return None;
        }
        let Some(prev) = self.last_count else {
            // First sample establishes the baseline.
            self.last_count = Some(epoch_count);
            self.last_ts = timestamp;
            return None;
        };
        let dt = (timestamp - self.last_ts).value();
        if dt < 0.0 {
            // Out-of-order timestamp (tiers sampling asynchronously);
            // ignore, keeping the established baseline.
            return None;
        }
        self.cap_time_integral += cap.value() * dt;
        self.time_accum += dt;
        self.last_ts = timestamp;
        if epoch_count <= prev {
            return None;
        }
        let epochs = epoch_count - prev;
        let elapsed = Seconds(self.time_accum);
        let avg_cap = if self.time_accum > 0.0 {
            Watts(self.cap_time_integral / self.time_accum)
        } else {
            cap
        };
        self.last_count = Some(epoch_count);
        self.cap_time_integral = 0.0;
        self.time_accum = 0.0;
        if elapsed.value() <= 0.0 {
            // Degenerate: epochs with no measured time; unusable for
            // fitting.
            return None;
        }
        Some(EpochObservation {
            epochs,
            elapsed,
            avg_cap,
        })
    }

    /// Discard history (e.g. after a job migrates or the connection
    /// resets).
    pub fn reset(&mut self) {
        *self = EpochWindow::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_sample_only_establishes_baseline() {
        let mut w = EpochWindow::new();
        assert!(w.push(5, Seconds(10.0), Watts(200.0)).is_none());
    }

    #[test]
    fn basic_differencing() {
        let mut w = EpochWindow::new();
        w.push(0, Seconds(0.0), Watts(200.0));
        let obs = w.push(4, Seconds(8.0), Watts(200.0)).unwrap();
        assert_eq!(obs.epochs, 4);
        assert_eq!(obs.elapsed, Seconds(8.0));
        assert_eq!(obs.avg_cap, Watts(200.0));
        assert_eq!(obs.per_epoch(), Seconds(2.0));
    }

    #[test]
    fn no_new_epochs_accumulates_exposure() {
        let mut w = EpochWindow::new();
        w.push(0, Seconds(0.0), Watts(150.0));
        // Two quiet samples under different caps.
        assert!(w.push(0, Seconds(2.0), Watts(150.0)).is_none());
        assert!(w.push(0, Seconds(4.0), Watts(250.0)).is_none());
        // Epoch completes after 2 more seconds at 250 W.
        let obs = w.push(1, Seconds(6.0), Watts(250.0)).unwrap();
        assert_eq!(obs.elapsed, Seconds(6.0));
        // Weighted: (150·2 + 250·2 + 250·2)/6 = 216.67.
        assert!((obs.avg_cap.value() - 1300.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn cap_change_mid_window_is_time_weighted() {
        let mut w = EpochWindow::new();
        w.push(0, Seconds(0.0), Watts(140.0));
        w.push(0, Seconds(9.0), Watts(140.0));
        let obs = w.push(2, Seconds(10.0), Watts(280.0)).unwrap();
        // 9 s at 140 W + 1 s at 280 W = avg 154 W.
        assert!((obs.avg_cap.value() - 154.0).abs() < 1e-9);
        assert_eq!(obs.epochs, 2);
    }

    #[test]
    fn out_of_order_timestamps_ignored() {
        let mut w = EpochWindow::new();
        w.push(0, Seconds(5.0), Watts(200.0));
        assert!(w.push(3, Seconds(4.0), Watts(200.0)).is_none());
        // Stream recovers with a later timestamp.
        let obs = w.push(3, Seconds(7.0), Watts(200.0)).unwrap();
        assert_eq!(obs.epochs, 3);
        assert_eq!(obs.elapsed, Seconds(2.0));
    }

    #[test]
    fn epoch_regression_treated_as_quiet() {
        // A restarted agent reporting a lower count must not panic or
        // emit a bogus observation.
        let mut w = EpochWindow::new();
        w.push(10, Seconds(0.0), Watts(200.0));
        assert!(w.push(7, Seconds(1.0), Watts(200.0)).is_none());
    }

    #[test]
    fn zero_elapsed_observation_suppressed() {
        let mut w = EpochWindow::new();
        w.push(0, Seconds(3.0), Watts(200.0));
        assert!(w.push(5, Seconds(3.0), Watts(200.0)).is_none());
    }

    #[test]
    fn non_finite_samples_rejected() {
        let mut w = EpochWindow::new();
        w.push(0, Seconds(0.0), Watts(200.0));
        assert!(w.push(1, Seconds(f64::NAN), Watts(200.0)).is_none());
        assert!(w.push(1, Seconds(2.0), Watts(f64::INFINITY)).is_none());
        assert!(w.push(1, Seconds(2.0), Watts(-5.0)).is_none());
        // The window is still healthy afterwards.
        let obs = w.push(1, Seconds(2.0), Watts(200.0)).unwrap();
        assert_eq!(obs.epochs, 1);
        assert!(obs.avg_cap.is_finite());
    }

    #[test]
    fn reset_clears_baseline() {
        let mut w = EpochWindow::new();
        w.push(0, Seconds(0.0), Watts(200.0));
        w.reset();
        assert!(w.push(100, Seconds(50.0), Watts(200.0)).is_none());
        let obs = w.push(101, Seconds(52.0), Watts(200.0)).unwrap();
        assert_eq!(obs.epochs, 1);
        assert_eq!(obs.elapsed, Seconds(2.0));
    }

    #[test]
    fn consecutive_windows_are_independent() {
        let mut w = EpochWindow::new();
        w.push(0, Seconds(0.0), Watts(160.0));
        let a = w.push(2, Seconds(4.0), Watts(160.0)).unwrap();
        let b = w.push(4, Seconds(10.0), Watts(240.0)).unwrap();
        assert_eq!(a.per_epoch(), Seconds(2.0));
        assert_eq!(b.per_epoch(), Seconds(3.0));
        assert_eq!(b.avg_cap, Watts(240.0), "window 2 exposure only");
    }
}
