//! The per-job power modeler state machine.
//!
//! One [`PowerModeler`] runs per job on a compute node (Fig. 2),
//! consuming cumulative endpoint samples and maintaining the job's
//! current best power-performance model:
//!
//! * starts from a **default** (for unknown jobs — possibly a
//!   misclassified type's curve, Section 4.4.2) or a **precharacterized**
//!   curve;
//! * re-trains "when at least 10 new epochs have been recorded"
//!   (Section 4.2), preferring the paper's 3-parameter quadratic when the
//!   observed caps identify it, falling back to the 2-parameter anchored
//!   family otherwise;
//! * rejects non-monotone fits (a model claiming more power slows the job
//!   would destabilize the budgeter);
//! * recommends a small zero-mean **cap dither** while the model is
//!   under-identified so that a job held at one cap level still produces
//!   data that distinguishes job types (DESIGN.md documents this
//!   substitution for the paper's naturally-varying caps).

use crate::drift::DriftDetector;
use crate::fit::{self, FitResult};
use crate::window::EpochWindow;
use anor_telemetry::{CauseId, Counter, Histogram, Telemetry, TraceStage, Tracer};
use anor_types::{CapRange, PowerCurve, Seconds, Watts};

/// Cached metric handles (attached via
/// [`PowerModeler::attach_telemetry`]).
#[derive(Debug, Clone)]
struct Instruments {
    retrains: Counter,
    /// `1 - R²` of each accepted fit — 0 is a perfect fit.
    fit_residual: Histogram,
    dither_flips: Counter,
    phase_changes: Counter,
}

/// Provenance of the modeler's current curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ModelSource {
    /// The configured default model — no feedback incorporated yet.
    Default,
    /// An offline precharacterized model supplied at launch.
    Precharacterized,
    /// Fit from online epoch feedback.
    Fitted {
        /// Observations used in the accepted fit.
        observations: usize,
        /// Training R² of the accepted fit.
        r2: f64,
    },
}

/// Tunables for the modeler.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelerConfig {
    /// Re-train after this many newly observed epochs (paper: 10).
    pub retrain_epochs: u64,
    /// The node cap range models are valid over.
    pub cap_range: CapRange,
    /// Dither amplitude as a fraction of the cap-range span (0 disables).
    pub dither_fraction: f64,
    /// Keep at most this many observations (ring buffer).
    pub max_observations: usize,
    /// Hold each dither level until this many new epochs have been
    /// observed (flipping faster than epochs complete would blur the
    /// time-weighted average caps together and ruin identifiability).
    pub dither_hold_epochs: u64,
}

impl ModelerConfig {
    /// Paper-calibrated defaults on the paper's node platform.
    pub fn paper() -> Self {
        ModelerConfig {
            retrain_epochs: 10,
            cap_range: CapRange::paper_node(),
            dither_fraction: 0.05,
            max_observations: 512,
            dither_hold_epochs: 4,
        }
    }
}

/// The per-job modeler.
#[derive(Debug, Clone)]
pub struct PowerModeler {
    cfg: ModelerConfig,
    window: EpochWindow,
    /// `(avg cap, seconds-per-epoch)` observations.
    obs: Vec<(Watts, Seconds)>,
    curve: PowerCurve,
    source: ModelSource,
    epochs_since_fit: u64,
    dither_phase: bool,
    epochs_seen: u64,
    epochs_at_flip: u64,
    drift: Option<DriftDetector>,
    phase_changes: u64,
    /// Set after a drift reset; drift checks pause until the next
    /// successful refit (the stale curve would re-trigger forever).
    awaiting_refit: bool,
    instruments: Option<Instruments>,
    tracer: Option<Tracer>,
    /// Causal-trace id of the cap in force over the observations feeding
    /// the next retrain (`0` = untraced).
    cause: u64,
}

impl PowerModeler {
    /// Start from a default model (unknown job type).
    pub fn with_default(cfg: ModelerConfig, default: PowerCurve) -> Self {
        PowerModeler {
            cfg,
            window: EpochWindow::new(),
            obs: Vec::new(),
            curve: default,
            source: ModelSource::Default,
            epochs_since_fit: 0,
            dither_phase: false,
            epochs_seen: 0,
            epochs_at_flip: 0,
            drift: None,
            phase_changes: 0,
            awaiting_refit: false,
            instruments: None,
            tracer: None,
            cause: 0,
        }
    }

    /// Record retrains, fit residuals, dither-level transitions and
    /// phase changes into `telemetry`.
    pub fn attach_telemetry(&mut self, telemetry: &Telemetry) {
        self.instruments = Some(Instruments {
            retrains: telemetry.counter("model_retrains_total", &[]),
            fit_residual: telemetry.histogram("model_fit_residual", &[]),
            dither_flips: telemetry.counter("model_dither_flips_total", &[]),
            phase_changes: telemetry.counter("model_phase_changes_total", &[]),
        });
    }

    /// Record a causal-trace event for each accepted retrain, closing the
    /// observation loop of the trace: `decision → … → retrain`.
    pub fn attach_tracer(&mut self, tracer: &Tracer) {
        self.tracer = Some(tracer.clone());
    }

    /// Note the budgeter decision whose cap the modeler is currently
    /// observing under (stamped on the next retrain's trace event).
    pub fn set_cause(&mut self, cause: u64) {
        self.cause = cause;
    }

    /// The decision id the modeler last observed under.
    pub fn cause(&self) -> u64 {
        self.cause
    }

    /// Enable phase-change (drift) detection: when recent observations
    /// stop matching the fitted model, the observation history is dropped
    /// and the model refits on the new regime (Section 8's multi-phase
    /// jobs).
    pub fn with_drift_detection(mut self, detector: DriftDetector) -> Self {
        self.drift = Some(detector);
        self
    }

    /// How many phase changes drift detection has declared.
    pub fn phase_changes(&self) -> u64 {
        self.phase_changes
    }

    /// Start from a trusted precharacterized model.
    pub fn with_precharacterized(cfg: ModelerConfig, curve: PowerCurve) -> Self {
        PowerModeler {
            source: ModelSource::Precharacterized,
            ..PowerModeler::with_default(cfg, curve)
        }
    }

    /// Feed one cumulative endpoint sample. Returns `true` when the model
    /// was re-trained as a result.
    pub fn observe(&mut self, epoch_count: u64, timestamp: Seconds, cap: Watts) -> bool {
        let Some(observation) = self.window.push(epoch_count, timestamp, cap) else {
            return false;
        };
        // Drift check against the *current* model, before absorbing the
        // observation: a sustained mismatch means the job changed phase.
        if let Some(d) = &mut self.drift {
            if !self.awaiting_refit
                && matches!(self.source, ModelSource::Fitted { .. })
                && d.observe(&self.curve, observation.avg_cap, observation.per_epoch())
            {
                self.obs.clear();
                self.epochs_since_fit = 0;
                self.phase_changes += 1;
                self.awaiting_refit = true;
                if let Some(i) = &self.instruments {
                    i.phase_changes.inc();
                }
                d.reset();
            }
        }
        if self.obs.len() == self.cfg.max_observations {
            self.obs.remove(0);
        }
        self.obs
            .push((observation.avg_cap, observation.per_epoch()));
        self.epochs_since_fit += observation.epochs;
        self.epochs_seen += observation.epochs;
        if self.epochs_since_fit >= self.cfg.retrain_epochs {
            self.try_retrain()
        } else {
            false
        }
    }

    fn try_retrain(&mut self) -> bool {
        let attempt: Option<FitResult> = fit::fit_quadratic(&self.obs)
            .ok()
            .filter(|f| f.curve.is_monotone_decreasing_on(self.cfg.cap_range))
            .or_else(|| fit::fit_anchored(&self.obs, self.cfg.cap_range).ok());
        match attempt {
            Some(f) if f.r2.is_finite() => {
                self.curve = f.curve;
                self.source = ModelSource::Fitted {
                    observations: self.obs.len(),
                    r2: f.r2,
                };
                if let Some(i) = &self.instruments {
                    i.retrains.inc();
                    i.fit_residual.observe((1.0 - f.r2).max(0.0));
                }
                if let Some(t) = &self.tracer {
                    t.record_detail(
                        TraceStage::Retrain,
                        CauseId(self.cause),
                        &format!("obs={} r2={:.4}", self.obs.len(), f.r2),
                    );
                }
                self.epochs_since_fit = 0;
                self.awaiting_refit = false;
                if let Some(d) = &mut self.drift {
                    d.reset();
                }
                true
            }
            _ => false,
        }
    }

    /// The current best per-epoch model.
    pub fn curve(&self) -> PowerCurve {
        self.curve
    }

    /// Where the current model came from.
    pub fn source(&self) -> ModelSource {
        self.source
    }

    /// Number of buffered observations.
    pub fn observation_count(&self) -> usize {
        self.obs.len()
    }

    /// Has feedback produced a model yet?
    pub fn is_fitted(&self) -> bool {
        matches!(self.source, ModelSource::Fitted { .. })
    }

    /// Distinct cap levels observed so far.
    pub fn distinct_caps(&self) -> usize {
        fit::distinct_caps(&self.obs)
    }

    /// Convert a budgeted cap into the cap to actually enforce. While the
    /// model is under-identified (fewer than 3 distinct observed caps and
    /// dithering enabled), alternate ±dither around the budget — zero
    /// mean, so the job's average power still meets the budget.
    pub fn recommend_cap(&mut self, budget: Watts) -> Watts {
        let needs_data = self.cfg.dither_fraction > 0.0 && self.distinct_caps() < 3;
        if !needs_data {
            return self.cfg.cap_range.clamp(budget);
        }
        let amp = self.cfg.cap_range.span() * self.cfg.dither_fraction;
        // Hold each level until enough epochs completed under it.
        if self.epochs_seen - self.epochs_at_flip >= self.cfg.dither_hold_epochs {
            self.dither_phase = !self.dither_phase;
            self.epochs_at_flip = self.epochs_seen;
            if let Some(i) = &self.instruments {
                i.dither_flips.inc();
            }
        }
        let sign = if self.dither_phase { 1.0 } else { -1.0 };
        self.cfg.cap_range.clamp(budget + amp * sign)
    }

    /// Forget sample history (connection reset / migration) but keep the
    /// current model.
    pub fn reset_window(&mut self) {
        self.window.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ModelerConfig {
        ModelerConfig::paper()
    }

    fn truth() -> PowerCurve {
        // BT-like: 2.4 s/epoch uncapped, sensitivity 0.75.
        PowerCurve::from_anchor(Seconds(2.4), 0.75, CapRange::paper_node())
    }

    fn default_is_like() -> PowerCurve {
        // IS-like default: nearly flat.
        PowerCurve::from_anchor(Seconds(0.5), 0.10, CapRange::paper_node())
    }

    /// Stream ground-truth epochs at a fixed cap into a modeler.
    fn feed(m: &mut PowerModeler, cap: Watts, epochs: u64, start_t: f64, start_count: u64) -> f64 {
        let tau = truth().time_at(cap).value();
        let mut t = start_t;
        let mut count = start_count;
        // Establish baseline.
        m.observe(count, Seconds(t), cap);
        for _ in 0..epochs {
            t += tau;
            count += 1;
            m.observe(count, Seconds(t), cap);
        }
        t
    }

    #[test]
    fn starts_with_default_and_no_fit() {
        let m = PowerModeler::with_default(cfg(), default_is_like());
        assert_eq!(m.source(), ModelSource::Default);
        assert!(!m.is_fitted());
        assert_eq!(m.observation_count(), 0);
    }

    #[test]
    fn single_cap_level_cannot_retrain() {
        let mut m = PowerModeler::with_default(cfg(), default_is_like());
        feed(&mut m, Watts(180.0), 30, 0.0, 0);
        assert!(!m.is_fitted(), "one cap level is unidentifiable");
        assert_eq!(m.distinct_caps(), 1);
    }

    #[test]
    fn two_cap_levels_learn_true_sensitivity() {
        let mut m = PowerModeler::with_default(cfg(), default_is_like());
        let t = feed(&mut m, Watts(170.0), 12, 0.0, 0);
        feed(&mut m, Watts(250.0), 12, t, 12);
        assert!(m.is_fitted(), "fit after 2 cap levels x >=10 epochs");
        // Learned slowdown at 140 vs 280 should approach truth's 1.75.
        let learned = m.curve().slowdown_at(Watts(140.0), Watts(280.0));
        assert!(
            (learned - 1.75).abs() < 0.1,
            "learned slowdown {learned}, expected ~1.75"
        );
    }

    #[test]
    fn retrain_threshold_respected() {
        let mut m = PowerModeler::with_default(cfg(), default_is_like());
        // 2 distinct caps but only 4+4 epochs: below the 10-epoch rule.
        let t = feed(&mut m, Watts(170.0), 4, 0.0, 0);
        feed(&mut m, Watts(250.0), 4, t, 4);
        assert!(!m.is_fitted(), "8 epochs < retrain threshold");
        // Two more epochs tips it over.
        feed(&mut m, Watts(250.0), 2, 1000.0, 100);
        assert!(m.is_fitted());
    }

    #[test]
    fn three_cap_levels_use_full_quadratic() {
        let mut m = PowerModeler::with_default(cfg(), default_is_like());
        let t = feed(&mut m, Watts(150.0), 8, 0.0, 0);
        let t = feed(&mut m, Watts(210.0), 8, t, 8);
        feed(&mut m, Watts(270.0), 8, t, 16);
        assert!(m.is_fitted());
        let ModelSource::Fitted { r2, .. } = m.source() else {
            panic!("expected fitted source");
        };
        assert!(r2 > 0.99, "clean data should fit nearly perfectly, r2={r2}");
        // Predictions match truth across the range.
        for p in [150.0, 200.0, 260.0] {
            let e = m.curve().time_at(Watts(p)).value();
            let want = truth().time_at(Watts(p)).value();
            assert!((e - want).abs() / want < 0.05, "at {p}: {e} vs {want}");
        }
    }

    #[test]
    fn precharacterized_source_until_feedback() {
        let mut m = PowerModeler::with_precharacterized(cfg(), truth());
        assert_eq!(m.source(), ModelSource::Precharacterized);
        let t = feed(&mut m, Watts(160.0), 12, 0.0, 0);
        feed(&mut m, Watts(260.0), 12, t, 12);
        assert!(m.is_fitted(), "feedback supersedes precharacterization");
    }

    #[test]
    fn dither_alternates_and_is_zero_mean() {
        let mut c = cfg();
        c.dither_hold_epochs = 0; // flip on every recommendation
        let mut m = PowerModeler::with_default(c, default_is_like());
        let budget = Watts(200.0);
        let a = m.recommend_cap(budget);
        let b = m.recommend_cap(budget);
        assert_ne!(a, b, "dither must alternate");
        let mean = (a.value() + b.value()) / 2.0;
        assert!((mean - 200.0).abs() < 1e-9, "dither not zero-mean: {mean}");
        // Amplitude is dither_fraction of the 140 W span = 7 W.
        assert!((a.value() - b.value()).abs() - 14.0 < 1e-9);
    }

    #[test]
    fn dither_stops_once_identified() {
        let mut m = PowerModeler::with_default(cfg(), default_is_like());
        let t = feed(&mut m, Watts(150.0), 8, 0.0, 0);
        let t = feed(&mut m, Watts(210.0), 8, t, 8);
        feed(&mut m, Watts(270.0), 8, t, 16);
        assert!(m.distinct_caps() >= 3);
        let a = m.recommend_cap(Watts(200.0));
        let b = m.recommend_cap(Watts(200.0));
        assert_eq!(a, Watts(200.0));
        assert_eq!(b, Watts(200.0));
    }

    #[test]
    fn dither_holds_level_until_epochs_observed() {
        let mut m = PowerModeler::with_default(cfg(), default_is_like());
        let budget = Watts(200.0);
        // No epochs observed yet: the level must not flip.
        let first = m.recommend_cap(budget);
        for _ in 0..10 {
            assert_eq!(m.recommend_cap(budget), first, "level flipped early");
        }
        // Observe enough epochs (hold is 4) and the level flips.
        let tau = 2.0;
        let mut t = 0.0;
        m.observe(0, Seconds(t), first);
        for i in 1..=5u64 {
            t += tau;
            m.observe(i, Seconds(t), first);
        }
        let flipped = m.recommend_cap(budget);
        assert_ne!(flipped, first, "level must flip after the hold");
    }

    #[test]
    fn dither_respects_cap_range() {
        let mut c = cfg();
        c.dither_hold_epochs = 0;
        let mut m = PowerModeler::with_default(c, default_is_like());
        for _ in 0..4 {
            let c = m.recommend_cap(Watts(141.0));
            assert!(CapRange::paper_node().contains(c), "dithered cap {c}");
            let c = m.recommend_cap(Watts(279.0));
            assert!(CapRange::paper_node().contains(c), "dithered cap {c}");
        }
    }

    #[test]
    fn observation_buffer_bounded() {
        let mut cfg = cfg();
        cfg.max_observations = 16;
        let mut m = PowerModeler::with_default(cfg, default_is_like());
        feed(&mut m, Watts(200.0), 100, 0.0, 0);
        assert!(m.observation_count() <= 16);
    }

    #[test]
    fn drift_detection_adapts_to_phase_change() {
        use crate::drift::DriftDetector;
        let phase_a = PowerCurve::from_anchor(Seconds(1.0), 0.1, CapRange::paper_node());
        let phase_b = PowerCurve::from_anchor(Seconds(2.5), 0.8, CapRange::paper_node());
        let mut m = PowerModeler::with_default(cfg(), default_is_like())
            .with_drift_detection(DriftDetector::paper());
        // Stream phase A at two caps until fitted.
        let mut t = 0.0;
        let mut count = 0u64;
        m.observe(count, Seconds(t), Watts(170.0));
        let feed_curve = |m: &mut PowerModeler,
                          curve: &PowerCurve,
                          cap: Watts,
                          epochs: u64,
                          t: &mut f64,
                          count: &mut u64| {
            for _ in 0..epochs {
                *t += curve.time_at(cap).value();
                *count += 1;
                m.observe(*count, Seconds(*t), cap);
            }
        };
        feed_curve(&mut m, &phase_a, Watts(170.0), 12, &mut t, &mut count);
        feed_curve(&mut m, &phase_a, Watts(250.0), 12, &mut t, &mut count);
        assert!(m.is_fitted());
        let learned_a = m.curve().slowdown_at(Watts(140.0), Watts(280.0));
        assert!(
            (learned_a - 1.1).abs() < 0.05,
            "phase A slowdown {learned_a}"
        );
        assert_eq!(m.phase_changes(), 0);
        // Job enters phase B: drift fires, history resets, model refits.
        feed_curve(&mut m, &phase_b, Watts(170.0), 25, &mut t, &mut count);
        feed_curve(&mut m, &phase_b, Watts(250.0), 25, &mut t, &mut count);
        assert!(m.phase_changes() >= 1, "phase change must be detected");
        let learned_b = m.curve().slowdown_at(Watts(140.0), Watts(280.0));
        assert!(
            (learned_b - 1.8).abs() < 0.15,
            "phase B slowdown {learned_b}, expected ~1.8"
        );
    }

    #[test]
    fn attached_telemetry_counts_retrains_residuals_and_flips() {
        let telemetry = Telemetry::new();
        let mut c = cfg();
        c.dither_hold_epochs = 0;
        let mut m = PowerModeler::with_default(c, default_is_like());
        m.attach_telemetry(&telemetry);
        m.recommend_cap(Watts(200.0));
        m.recommend_cap(Watts(200.0));
        let t = feed(&mut m, Watts(170.0), 12, 0.0, 0);
        feed(&mut m, Watts(250.0), 12, t, 12);
        assert!(m.is_fitted());
        assert!(telemetry.counter("model_retrains_total", &[]).get() >= 1);
        let residuals = telemetry.histogram("model_fit_residual", &[]);
        assert!(residuals.count() >= 1);
        assert!(
            residuals.max() < 0.05,
            "clean synthetic data fits tightly, residual {}",
            residuals.max()
        );
        assert!(
            telemetry.counter("model_dither_flips_total", &[]).get() >= 1,
            "dither transitions must be counted"
        );
    }

    #[test]
    fn no_epochs_no_model_change() {
        let mut m = PowerModeler::with_default(cfg(), default_is_like());
        // Samples with a frozen epoch count: "jobs that report no epochs
        // ... use a default model".
        for i in 0..100 {
            assert!(!m.observe(5, Seconds(i as f64), Watts(200.0)));
        }
        assert_eq!(m.source(), ModelSource::Default);
    }
}
