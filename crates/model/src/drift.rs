//! Model-drift detection for phase changes.
//!
//! Section 8: "some jobs may consist of multiple power-sensitivity
//! profiles through the job's lifecycle... Future work may consider how
//! to handle job phase changes across the management hierarchy." When a
//! job enters a new phase, the epoch times the modeler observes stop
//! matching its fitted curve; [`DriftDetector`] watches the normalized
//! residual stream and flags a sustained shift, so the modeler can drop
//! stale observations and refit on the new regime.

use anor_types::{PowerCurve, Seconds, Watts};
use std::collections::VecDeque;

/// Sliding-window drift detector over model residuals.
#[derive(Debug, Clone)]
pub struct DriftDetector {
    /// Number of recent residuals considered.
    window: usize,
    /// Median |relative residual| above which drift is declared.
    threshold: f64,
    residuals: VecDeque<f64>,
}

impl DriftDetector {
    /// Detector with an explicit window and threshold.
    pub fn new(window: usize, threshold: f64) -> Self {
        assert!(window >= 2, "window must hold at least 2 residuals");
        assert!(threshold > 0.0, "threshold must be positive");
        DriftDetector {
            window,
            threshold,
            residuals: VecDeque::with_capacity(window),
        }
    }

    /// Defaults tuned for the catalog's noise levels: an 8-epoch window
    /// and a 15% sustained misprediction threshold (noise σ ≤ 0.12, so
    /// the *median* residual of a well-fit model stays well under this).
    pub fn paper() -> Self {
        DriftDetector::new(8, 0.15)
    }

    /// Record one observation against the current model. Returns `true`
    /// when drift is detected (the caller should reset the model's
    /// observation history and start refitting).
    pub fn observe(&mut self, curve: &PowerCurve, cap: Watts, per_epoch: Seconds) -> bool {
        let predicted = curve.time_at(cap).value();
        if predicted <= 0.0 {
            return false;
        }
        let rel = (per_epoch.value() - predicted).abs() / predicted;
        if self.residuals.len() == self.window {
            self.residuals.pop_front();
        }
        self.residuals.push_back(rel);
        self.is_drifted()
    }

    /// Current drift verdict over the filled window.
    pub fn is_drifted(&self) -> bool {
        if self.residuals.len() < self.window {
            return false;
        }
        let mut sorted: Vec<f64> = self.residuals.iter().copied().collect();
        sorted.sort_by(f64::total_cmp);
        let median = sorted[sorted.len() / 2];
        median > self.threshold
    }

    /// Forget history (after the model was refit on the new phase).
    pub fn reset(&mut self) {
        self.residuals.clear();
    }

    /// Residuals currently buffered.
    pub fn len(&self) -> usize {
        self.residuals.len()
    }

    /// True when no residuals are buffered.
    pub fn is_empty(&self) -> bool {
        self.residuals.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anor_types::CapRange;

    fn curve(sens: f64) -> PowerCurve {
        PowerCurve::from_anchor(Seconds(2.0), sens, CapRange::paper_node())
    }

    #[test]
    fn well_fit_model_never_drifts() {
        let c = curve(0.5);
        let mut d = DriftDetector::paper();
        for i in 0..100 {
            let cap = Watts(150.0 + (i % 10) as f64 * 13.0);
            // Observations match the model within 5% noise.
            let noisy = c.time_at(cap) * (1.0 + 0.05 * ((i % 3) as f64 - 1.0));
            assert!(!d.observe(&c, cap, noisy), "false drift at obs {i}");
        }
    }

    #[test]
    fn phase_change_detected_quickly() {
        let fitted = curve(0.1); // modeler learned the IS-like phase
        let actual = curve(0.8); // job entered the EP-like phase
        let mut d = DriftDetector::paper();
        let mut detected_at = None;
        for i in 0..50 {
            let cap = Watts(160.0);
            if d.observe(&fitted, cap, actual.time_at(cap)) {
                detected_at = Some(i);
                break;
            }
        }
        let at = detected_at.expect("drift must be detected");
        assert!(at < 16, "took {at} observations to detect");
    }

    #[test]
    fn single_outlier_does_not_trigger() {
        let c = curve(0.5);
        let mut d = DriftDetector::paper();
        for i in 0..20 {
            let cap = Watts(200.0);
            let t = if i == 10 {
                c.time_at(cap) * 5.0 // one wild outlier
            } else {
                c.time_at(cap)
            };
            assert!(!d.observe(&c, cap, t), "outlier falsely triggered at {i}");
        }
    }

    #[test]
    fn reset_clears_verdict() {
        let fitted = curve(0.1);
        let actual = curve(0.8);
        let mut d = DriftDetector::paper();
        for _ in 0..10 {
            d.observe(&fitted, Watts(150.0), actual.time_at(Watts(150.0)));
        }
        assert!(d.is_drifted());
        d.reset();
        assert!(!d.is_drifted());
        assert!(d.is_empty());
    }

    #[test]
    fn window_must_fill_before_verdict() {
        let fitted = curve(0.1);
        let actual = curve(0.8);
        let mut d = DriftDetector::new(8, 0.15);
        for i in 0..7 {
            assert!(
                !d.observe(&fitted, Watts(150.0), actual.time_at(Watts(150.0))),
                "verdict before window filled at {i}"
            );
        }
        assert_eq!(d.len(), 7);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn degenerate_window_rejected() {
        DriftDetector::new(1, 0.1);
    }
}
