//! The hourly bidding loop, wired to the tabular simulator.
//!
//! Section 4.4.1: "the resource-forecasting policy determines how much
//! average power the cluster should request and what range of power
//! flexibility the cluster should offer as reserve for demand response.
//! The bidding decision is made once per hour." AQA judges candidate
//! bids by simulating "expected power-constraint and job-submission
//! scenarios" (Section 4.4.2) — here, by running [`TabularSim`] over a
//! forecast schedule and checking the QoS and tracking constraints.

use anor_aqa::{
    candidate_grid, poisson_schedule, search_bid, Bid, BidEvaluation, CostModel, PowerTarget,
    RegulationSignal, TrackingConstraint,
};
use anor_exec::ExecPool;
use anor_platform::PerformanceVariation;
use anor_sim::{SimConfig, TabularSim};
use anor_types::{QosDegradation, Result, Seconds, Watts};

/// Configuration of one bidding decision.
#[derive(Debug, Clone)]
pub struct BiddingConfig {
    /// Simulated cluster the bid is evaluated on.
    pub sim: SimConfig,
    /// Expected node utilization of the next hour's submissions.
    pub utilization: f64,
    /// Evaluation horizon per candidate (shorter than an hour is fine —
    /// the constraints bind early).
    pub horizon: Seconds,
    /// Electricity price model.
    pub cost: CostModel,
    /// The tracking constraint bids must satisfy.
    pub tracking: TrackingConstraint,
    /// Grid resolution per axis.
    pub grid_steps: usize,
    /// Determinism seed.
    pub seed: u64,
    /// Worker threads for the candidate-grid search (0 = resolve from
    /// `ANOR_JOBS` / available parallelism). The chosen bid is identical
    /// for every value — candidates are evaluated with independent seeds
    /// and compared in grid order.
    pub jobs: usize,
}

impl BiddingConfig {
    /// A bidding decision over a given simulated cluster.
    pub fn new(sim: SimConfig, utilization: f64, seed: u64) -> Self {
        BiddingConfig {
            sim,
            utilization,
            horizon: Seconds(1200.0),
            cost: CostModel::default(),
            tracking: TrackingConstraint::default(),
            grid_steps: 4,
            seed,
            jobs: 0,
        }
    }

    /// The candidate (average, reserve) ranges, derived from the
    /// cluster's physical power envelope at the expected utilization.
    pub fn candidate_ranges(&self) -> ((Watts, Watts), (Watts, Watts)) {
        let nodes = self.sim.total_nodes as f64;
        let idle = self.sim.idle_power.value();
        let mean_draw: f64 = self
            .sim
            .types
            .iter()
            .map(|&id| self.sim.catalog[id].max_draw.value())
            .sum::<f64>()
            / self.sim.types.len().max(1) as f64;
        let expected = nodes * (self.utilization * mean_draw + (1.0 - self.utilization) * idle);
        // Realized utilization runs below offered utilization whenever
        // the queue momentarily empties, so candidate averages extend
        // well below the naive expectation.
        (
            (Watts(expected * 0.70), Watts(expected * 1.0)),
            (Watts(expected * 0.05), Watts(expected * 0.25)),
        )
    }
}

/// Evaluate one candidate bid by simulation.
pub fn evaluate_bid(cfg: &BiddingConfig, bid: &Bid) -> Result<BidEvaluation> {
    let schedule = poisson_schedule(
        &cfg.sim.catalog,
        &cfg.sim.types,
        cfg.utilization,
        cfg.sim.total_nodes,
        cfg.horizon,
        cfg.seed,
    );
    let target = PowerTarget {
        avg: bid.avg_power,
        reserve: bid.reserve,
        signal: RegulationSignal::random_walk(
            Seconds(4.0),
            0.35,
            cfg.horizon * 3.0,
            cfg.seed ^ 0xb1d,
        ),
    };
    let variation = PerformanceVariation::none(cfg.sim.total_nodes as usize);
    let mut sim = TabularSim::new(cfg.sim.clone(), target, &variation, schedule, None);
    // Judge tracking from a warm cluster: the first quarter of the
    // horizon is fill-up ramp, which every candidate shares.
    sim.run_with_warmup(cfg.horizon * 0.25, cfg.horizon, cfg.horizon * 2.0);
    let out = sim.outcome();
    let all: Vec<QosDegradation> = out
        .qos_by_type
        .iter()
        .flat_map(|(_, v)| v.iter().copied())
        .collect();
    Ok(BidEvaluation {
        qos_ok: cfg.sim.qos.satisfied_by(&all),
        tracking_ok: out.tracking_within_30 >= cfg.tracking.probability,
    })
}

/// Choose the cheapest feasible bid for the next hour, or `None` when no
/// candidate satisfies both constraints (the cluster then declines to
/// offer reserve this hour).
///
/// Candidate evaluations are independent simulations, so they fan out
/// over [`ExecPool`] (`cfg.jobs` workers); results come back in grid
/// order and the cheapest-feasible comparison runs serially over them,
/// so the chosen bid does not depend on the worker count.
pub fn choose_hourly_bid(cfg: &BiddingConfig) -> Result<Option<Bid>> {
    let (avg_range, reserve_range) = cfg.candidate_ranges();
    let candidates = candidate_grid(avg_range, reserve_range, cfg.grid_steps);
    let evals = ExecPool::new(cfg.jobs).map(&candidates, |bid| evaluate_bid(cfg, bid));
    let mut failure: Option<anor_types::AnorError> = None;
    let mut next = evals.into_iter();
    let chosen = search_bid(&candidates, &cfg.cost, |_| {
        match next.next().expect("one evaluation per candidate") {
            Ok(e) => e,
            Err(e) => {
                failure = Some(e);
                BidEvaluation {
                    qos_ok: false,
                    tracking_ok: false,
                }
            }
        }
    });
    match failure {
        Some(e) => Err(e),
        None => Ok(chosen),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anor_sim::SimPowerPolicy;
    use anor_types::standard_catalog;

    fn small_sim() -> SimConfig {
        let catalog = standard_catalog();
        let types = catalog.long_running();
        SimConfig {
            total_nodes: 24,
            idle_power: Watts(90.0),
            catalog,
            types,
            tick: Seconds(1.0),
            policy: SimPowerPolicy::Uniform,
            qos: Default::default(),
            qos_risk_threshold: 0.8,
        }
    }

    #[test]
    fn candidate_ranges_scale_with_cluster() {
        let cfg = BiddingConfig::new(small_sim(), 0.75, 1);
        let ((avg_lo, avg_hi), (res_lo, res_hi)) = cfg.candidate_ranges();
        assert!(avg_lo.value() < avg_hi.value());
        assert!(res_lo.value() < res_hi.value());
        // Expected power for 24 nodes at 75% utilization lands between
        // all-idle and all-max.
        assert!(avg_lo.value() > 24.0 * 90.0);
        assert!(avg_hi.value() < 24.0 * 280.0);
    }

    #[test]
    fn hourly_bid_is_feasible_and_deterministic() {
        let mut cfg = BiddingConfig::new(small_sim(), 0.7, 5);
        cfg.horizon = Seconds(700.0);
        cfg.grid_steps = 3;
        // A 24-node cluster has coarse power granularity relative to its
        // reserve; the paper's 30%-for-90%-of-time constraint is tuned
        // for 16 nodes at 95% utilization. Relax the probability for the
        // small test scenario.
        cfg.tracking.probability = 0.75;
        let bid = choose_hourly_bid(&cfg).unwrap();
        let bid = bid.expect("a moderate-utilization cluster can always bid");
        // The chosen bid itself passes evaluation.
        let e = evaluate_bid(&cfg, &bid).unwrap();
        assert!(e.feasible());
        // Deterministic.
        let again = choose_hourly_bid(&cfg).unwrap().unwrap();
        assert_eq!(bid, again);
        // ...including across worker counts.
        cfg.jobs = 3;
        let parallel = choose_hourly_bid(&cfg).unwrap().unwrap();
        assert_eq!(bid, parallel, "worker count must not change the bid");
    }

    #[test]
    fn chosen_bid_maximizes_reserve_among_feasible() {
        // With the default cost model, reserve is revenue: the chosen bid
        // should not leave obviously-feasible reserve on the table.
        let mut cfg = BiddingConfig::new(small_sim(), 0.7, 9);
        cfg.horizon = Seconds(700.0);
        cfg.grid_steps = 3;
        cfg.tracking.probability = 0.75;
        let bid = choose_hourly_bid(&cfg).unwrap().unwrap();
        let (_, (res_lo, _)) = cfg.candidate_ranges();
        assert!(
            bid.reserve.value() > res_lo.value(),
            "picked the minimum reserve {:?}",
            bid.reserve
        );
    }
}
