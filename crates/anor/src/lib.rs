#![warn(missing_docs)]
//! # anor-core
//!
//! The facade of the ANOR workspace: re-exports of every subsystem plus
//! [`experiments`], the scenario runners that regenerate each figure of
//! the paper's evaluation (Section 6). Examples and the benchmark
//! harness are thin wrappers over this crate.

pub mod bidding;
pub mod experiments;
pub mod render;
pub mod training;

pub use anor_aqa as aqa;
pub use anor_cluster as cluster;
pub use anor_geopm as geopm;
pub use anor_model as model;
pub use anor_platform as platform;
pub use anor_policy as policy;
pub use anor_sim as sim;
pub use anor_telemetry as telemetry;
pub use anor_types as types;
