//! Multi-hour demand response with hourly re-bidding.
//!
//! Section 4.4.1: "The bidding decision is made once per hour,
//! influencing the range of power targets that will be received until
//! the next bid. ... New power targets arrive once every few seconds."
//! This runner chains hours over one continuous simulated cluster: at
//! each hour boundary the bidder re-searches (P̄, R) against the coming
//! hour's forecast utilization, the commitment switches, and tracking is
//! scored per hour.

use crate::bidding::{choose_hourly_bid, BiddingConfig};
use anor_aqa::{poisson_schedule, Bid, JobSubmission, PowerTarget, RegulationSignal};
use anor_platform::PerformanceVariation;
use anor_sim::{SimConfig, TabularSim};
use anor_types::{Result, Seconds, Watts};

/// Per-hour forecast and outcome.
#[derive(Debug, Clone)]
pub struct HourSummary {
    /// Hour index from the start of the run.
    pub hour: usize,
    /// Forecast utilization the bid was chosen against.
    pub utilization: f64,
    /// The committed bid (None = the cluster declined; it then holds the
    /// previous commitment).
    pub bid: Option<Bid>,
    /// 90th-percentile tracking error within the hour.
    pub tracking_p90: f64,
    /// Fraction of the hour within the 30% error limit.
    pub within_30: f64,
    /// Jobs completed by the end of this hour (cumulative).
    pub completed: u32,
}

/// Scenario parameters.
#[derive(Debug, Clone)]
pub struct MultiHourConfig {
    /// The simulated cluster.
    pub sim: SimConfig,
    /// Forecast utilization per hour (also drives the arrivals).
    pub hourly_utilization: Vec<f64>,
    /// Determinism seed.
    pub seed: u64,
    /// Tracking probability required of candidate bids (relax for small
    /// clusters whose power granularity is coarse).
    pub bid_tracking_probability: f64,
}

/// Run the scenario: one continuous cluster, re-bid at each hour.
pub fn run(cfg: &MultiHourConfig) -> Result<Vec<HourSummary>> {
    assert!(!cfg.hourly_utilization.is_empty(), "need at least one hour");
    let hour = Seconds(3600.0);
    // Build the full arrival schedule hour by hour at each hour's
    // utilization.
    let mut schedule: Vec<JobSubmission> = Vec::new();
    for (h, &util) in cfg.hourly_utilization.iter().enumerate() {
        let base = hour * h as f64;
        let mut part = poisson_schedule(
            &cfg.sim.catalog,
            &cfg.sim.types,
            util,
            cfg.sim.total_nodes,
            hour,
            cfg.seed ^ ((h as u64 + 1) << 8),
        );
        for s in &mut part {
            s.time += base;
        }
        schedule.extend(part);
    }
    let variation = PerformanceVariation::none(cfg.sim.total_nodes as usize);
    // Placeholder commitment until the first bid lands.
    let initial = PowerTarget {
        avg: Watts(cfg.sim.total_nodes as f64 * 200.0),
        reserve: Watts(cfg.sim.total_nodes as f64 * 25.0),
        signal: RegulationSignal::Constant(0.0),
    };
    let mut sim = TabularSim::new(cfg.sim.clone(), initial, &variation, schedule, None);
    let mut out = Vec::with_capacity(cfg.hourly_utilization.len());
    let mut previous_bid: Option<Bid> = None;
    for (h, &util) in cfg.hourly_utilization.iter().enumerate() {
        // Hourly bidding decision against the coming hour's forecast.
        let mut bcfg = BiddingConfig::new(cfg.sim.clone(), util, cfg.seed ^ (h as u64));
        bcfg.horizon = Seconds(900.0);
        bcfg.grid_steps = 3;
        bcfg.tracking.probability = cfg.bid_tracking_probability;
        let bid = choose_hourly_bid(&bcfg)?;
        let committed = bid.or(previous_bid);
        if let Some(b) = committed {
            sim.set_target(PowerTarget {
                avg: b.avg_power,
                reserve: b.reserve,
                signal: RegulationSignal::random_walk(
                    Seconds(4.0),
                    0.35,
                    hour,
                    cfg.seed ^ ((h as u64) << 16),
                ),
            });
            previous_bid = Some(b);
        }
        sim.reset_tracking();
        let end = hour * (h as f64 + 1.0);
        while sim.now().value() < end.value() {
            sim.step();
        }
        let o = sim.outcome();
        out.push(HourSummary {
            hour: h,
            utilization: util,
            bid,
            tracking_p90: o.tracking_p90,
            within_30: o.tracking_within_30,
            completed: o.completed,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use anor_sim::SimPowerPolicy;
    use anor_types::standard_catalog;

    #[test]
    fn three_hour_run_rebids_and_tracks() {
        let catalog = standard_catalog();
        let types = catalog.long_running();
        let sim = SimConfig {
            total_nodes: 32,
            idle_power: Watts(90.0),
            catalog,
            types,
            tick: Seconds(1.0),
            policy: SimPowerPolicy::Uniform,
            qos: Default::default(),
            qos_risk_threshold: 0.8,
        };
        let cfg = MultiHourConfig {
            sim,
            hourly_utilization: vec![0.5, 0.8, 0.6],
            seed: 7,
            bid_tracking_probability: 0.6,
        };
        let hours = run(&cfg).unwrap();
        assert_eq!(hours.len(), 3);
        // Bids exist (directly or carried over) and completion grows.
        assert!(hours.iter().any(|h| h.bid.is_some()), "no hour ever bid");
        assert!(hours[2].completed > hours[0].completed);
        // The higher-utilization hour's committed average exceeds the
        // low-utilization hour's (when both bid).
        if let (Some(b0), Some(b1)) = (hours[0].bid, hours[1].bid) {
            assert!(
                b1.avg_power.value() > b0.avg_power.value(),
                "hour-1 bid {:?} should exceed hour-0 bid {:?}",
                b1.avg_power,
                b0.avg_power
            );
        }
        // Tracking stays sane after warm-up hours.
        assert!(hours[2].within_30 > 0.4, "{:?}", hours[2]);
    }

    #[test]
    #[should_panic(expected = "at least one hour")]
    fn empty_hours_rejected() {
        let catalog = standard_catalog();
        let types = catalog.long_running();
        let sim = SimConfig {
            total_nodes: 16,
            idle_power: Watts(90.0),
            catalog,
            types,
            tick: Seconds(1.0),
            policy: SimPowerPolicy::Uniform,
            qos: Default::default(),
            qos_risk_threshold: 0.8,
        };
        let _ = run(&MultiHourConfig {
            sim,
            hourly_utilization: vec![],
            seed: 1,
            bid_tracking_probability: 0.5,
        });
    }
}
