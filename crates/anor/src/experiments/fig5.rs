//! Fig. 5: performance impact when a medium-sensitivity job (FT) is
//! misclassified as higher (EP) or lower (IS) sensitivity than its true
//! behaviour, co-scheduled with a high-sensitivity (EP) and a
//! low-sensitivity (IS) job. Upper quadrants: the unknown job is smaller
//! (2 nodes vs 4-node known jobs); lower: larger (8 nodes vs 1-node
//! known jobs).

use crate::render::Series;
use anor_policy::{Budgeter, EvenPowerBudgeter, EvenSlowdownBudgeter, MisclassifyScenario};
use anor_types::{standard_catalog, Watts};

/// Direction of the misclassification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// FT assumed to be IS (its sensitivity is under-predicted).
    Underpredict,
    /// FT assumed to be EP (over-predicted).
    Overpredict,
}

/// Relative size of the unknown job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnknownSize {
    /// Unknown FT on 2 nodes, known jobs on 4 nodes each.
    Small,
    /// Unknown FT on 8 nodes, known jobs on 1 node each.
    Large,
}

/// One quadrant's data: for each of the three jobs, slowdown-vs-budget
/// series under the ideal, even-power, and mischaracterized budgeters.
#[derive(Debug, Clone)]
pub struct Quadrant {
    /// Which direction was simulated.
    pub direction: Direction,
    /// Which size was simulated.
    pub size: UnknownSize,
    /// Series labelled `"<job>/<budgeter>"`.
    pub series: Vec<Series>,
}

/// The budgets swept (x axis 1400–2800 W).
pub fn budgets() -> Vec<f64> {
    (0..=14).map(|i| 1400.0 + 100.0 * i as f64).collect()
}

/// Job labels in scenario order.
pub const JOBS: [&str; 3] = ["ep.D.x", "ft.D.x (unknown)", "is.D.x"];

/// Run one quadrant.
pub fn quadrant(direction: Direction, size: UnknownSize) -> Quadrant {
    let catalog = standard_catalog();
    let ep = catalog.find("ep").unwrap();
    let ft = catalog.find("ft").unwrap();
    let is = catalog.find("is").unwrap();
    let (ft_nodes, known_nodes) = match size {
        UnknownSize::Small => (2, 4),
        UnknownSize::Large => (8, 1),
    };
    let jobs = [(ep, known_nodes), (ft, ft_nodes), (is, known_nodes)];
    let assumed = match direction {
        Direction::Underpredict => is,
        Direction::Overpredict => ep,
    };
    let ideal = MisclassifyScenario::fully_known(&jobs);
    let mischaracterized = MisclassifyScenario::with_unknown(&jobs, 1, assumed);
    let even_slowdown = EvenSlowdownBudgeter::default();
    let mut series: Vec<Series> = Vec::new();
    for (label, scenario, budgeter) in [
        ("Ideal", &ideal, &even_slowdown as &dyn Budgeter),
        ("Even Power Caps", &ideal, &EvenPowerBudgeter),
        ("Mischaracterized", &mischaracterized, &even_slowdown),
    ] {
        let mut per_job: Vec<Series> = JOBS
            .iter()
            .map(|j| Series::new(format!("{j}/{label}")))
            .collect();
        for budget in budgets() {
            let outcome = scenario.evaluate(budgeter, Watts(budget));
            for (s, &slow) in per_job.iter_mut().zip(&outcome.slowdowns) {
                s.push(budget, (slow - 1.0) * 100.0, 0.0);
            }
        }
        series.extend(per_job);
    }
    Quadrant {
        direction,
        size,
        series,
    }
}

/// Run all four quadrants.
pub fn run() -> Vec<Quadrant> {
    let mut out = Vec::new();
    for size in [UnknownSize::Small, UnknownSize::Large] {
        for direction in [Direction::Underpredict, Direction::Overpredict] {
            out.push(quadrant(direction, size));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series<'a>(q: &'a Quadrant, job: &str, budgeter: &str) -> &'a Series {
        q.series
            .iter()
            .find(|s| s.label == format!("{job}/{budgeter}"))
            .unwrap()
    }

    /// Mean over the mid-range budgets, where the policies differ.
    fn midrange_mean(s: &Series) -> f64 {
        let xs = [1600.0, 1800.0, 2000.0, 2200.0];
        xs.iter().map(|&x| s.y_at(x).unwrap()).sum::<f64>() / xs.len() as f64
    }

    #[test]
    fn underprediction_slows_unknown_job() {
        for size in [UnknownSize::Small, UnknownSize::Large] {
            let q = quadrant(Direction::Underpredict, size);
            let ft_mis = midrange_mean(series(&q, "ft.D.x (unknown)", "Mischaracterized"));
            let ft_ideal = midrange_mean(series(&q, "ft.D.x (unknown)", "Ideal"));
            assert!(
                ft_mis > ft_ideal + 1.0,
                "{size:?}: FT mis {ft_mis}% vs ideal {ft_ideal}%"
            );
        }
    }

    #[test]
    fn overprediction_slows_sensitive_coscheduled_job() {
        for size in [UnknownSize::Small, UnknownSize::Large] {
            let q = quadrant(Direction::Overpredict, size);
            let ep_mis = midrange_mean(series(&q, "ep.D.x", "Mischaracterized"));
            let ep_ideal = midrange_mean(series(&q, "ep.D.x", "Ideal"));
            assert!(
                ep_mis > ep_ideal + 0.5,
                "{size:?}: EP mis {ep_mis}% vs ideal {ep_ideal}%"
            );
        }
    }

    #[test]
    fn larger_unknown_job_amplifies_harm() {
        let small = quadrant(Direction::Overpredict, UnknownSize::Small);
        let large = quadrant(Direction::Overpredict, UnknownSize::Large);
        let harm = |q: &Quadrant| {
            midrange_mean(series(q, "ep.D.x", "Mischaracterized"))
                - midrange_mean(series(q, "ep.D.x", "Ideal"))
        };
        assert!(
            harm(&large) > harm(&small),
            "large {} vs small {}",
            harm(&large),
            harm(&small)
        );
    }

    #[test]
    fn all_quadrants_have_nine_series() {
        for q in run() {
            assert_eq!(q.series.len(), 9);
            for s in &q.series {
                assert_eq!(s.points.len(), budgets().len());
            }
        }
    }
}
