//! Fig. 9: time-varying cluster power targets and measurements over an
//! hour of job arrivals from 6 job types (Section 6.3). The power target
//! changes once every 4 seconds; the objective is to *follow* the target,
//! not merely stay below it.

use anor_aqa::{poisson_schedule, PowerTarget, RegulationSignal, TrackingRecorder};
use anor_cluster::{BudgetPolicy, EmulatedCluster, EmulatorConfig, JobSetup};
use anor_telemetry::{Telemetry, Tracer};
use anor_types::{Result, Seconds, Watts};

/// Scenario parameters.
#[derive(Debug, Clone)]
pub struct Fig9Config {
    /// Schedule horizon (paper: 1 hour).
    pub horizon: Seconds,
    /// Target node utilization of the arrivals (paper: 95%).
    pub utilization: f64,
    /// Committed average power P̄.
    pub avg: Watts,
    /// Committed reserve R.
    pub reserve: Watts,
    /// Determinism seed.
    pub seed: u64,
    /// Tracking statistics exclude this initial fill-up window (the
    /// paper's hour starts from a warm cluster).
    pub warmup: Seconds,
    /// Telemetry sink for the emulated cluster (in-memory by default;
    /// the `fig9` binary passes a directory-backed sink for
    /// `--telemetry <dir>`).
    pub telemetry: Telemetry,
    /// Optional causal tracer (the `--trace <dir>` path of the `fig9`
    /// binary).
    pub tracer: Option<Tracer>,
}

impl Default for Fig9Config {
    fn default() -> Self {
        // The committed band is sized to the emulated cluster's
        // achievable range (paper: 2.3–4.5 kW on hardware whose job mix
        // reaches closer to TDP; see EXPERIMENTS.md).
        Fig9Config {
            horizon: Seconds(3600.0),
            utilization: 0.95,
            avg: Watts(3200.0),
            reserve: Watts(900.0),
            seed: 9,
            warmup: Seconds(180.0),
            telemetry: Telemetry::new(),
            tracer: None,
        }
    }
}

/// The tracking results.
#[derive(Debug, Clone)]
pub struct Fig9Output {
    /// `(time, target, measured)` per tick, within the horizon.
    pub trace: Vec<(Seconds, Watts, Watts)>,
    /// 90th-percentile tracking error (fraction of reserve).
    pub p90_error: f64,
    /// Fraction of ticks within the 30% error limit.
    pub within_30: f64,
    /// Mean |measured − target| / target — the "within 8% of target"
    /// claim in the paper's abstract is this quantity.
    pub mean_relative_miss: f64,
}

/// Run the scenario.
pub fn run(cfg: &Fig9Config) -> Result<Fig9Output> {
    let mut ecfg = EmulatorConfig::paper(BudgetPolicy::EvenSlowdown, false)
        .with_telemetry(cfg.telemetry.clone());
    if let Some(t) = &cfg.tracer {
        ecfg = ecfg.with_tracer(t.clone());
    }
    let catalog = ecfg.catalog.clone();
    let types = catalog.long_running();
    let submissions = poisson_schedule(
        &catalog,
        &types,
        cfg.utilization,
        ecfg.nodes,
        cfg.horizon,
        cfg.seed,
    );
    let jobs: Vec<JobSetup> = submissions
        .iter()
        .map(|s| JobSetup::known(&catalog[s.type_id].name).at(s.time))
        .collect();
    let target = PowerTarget {
        avg: cfg.avg,
        reserve: cfg.reserve,
        signal: RegulationSignal::random_walk(
            Seconds(4.0),
            0.35,
            cfg.horizon + Seconds(3600.0),
            cfg.seed ^ 0x5157,
        ),
    };
    let cluster = EmulatedCluster::new(ecfg);
    let report = cluster.run_demand_response(&jobs, target, true)?;
    // Evaluate tracking within the schedule horizon only (the paper's
    // hour), not the drain tail.
    let trace: Vec<(Seconds, Watts, Watts)> = report
        .power_trace
        .iter()
        .copied()
        .filter(|(t, _, _)| t.value() <= cfg.horizon.value())
        .collect();
    let mut recorder = TrackingRecorder::new(cfg.reserve);
    let mut rel_miss = 0.0;
    let mut n = 0usize;
    for &(t, target, measured) in &trace {
        if t.value() < cfg.warmup.value() {
            continue;
        }
        recorder.push(target, measured);
        rel_miss += (measured - target).abs().value() / target.value();
        n += 1;
    }
    let n = n.max(1) as f64;
    Ok(Fig9Output {
        p90_error: recorder.percentile_error(90.0),
        within_30: recorder.fraction_within(0.30),
        mean_relative_miss: rel_miss / n,
        trace,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_run_tracks_target() {
        let cfg = Fig9Config {
            horizon: Seconds(600.0),
            seed: 4,
            ..Fig9Config::default()
        };
        let out = run(&cfg).unwrap();
        assert!(!out.trace.is_empty());
        // After warm-up the cluster should follow the target most of the
        // time; the constraint is 30% error for 90% of time — a short
        // window with cold start won't hit 90%, but must clear half.
        assert!(
            out.within_30 > 0.5,
            "within-30% fraction {} too low",
            out.within_30
        );
        assert!(
            out.mean_relative_miss < 0.25,
            "mean relative miss {}",
            out.mean_relative_miss
        );
        // Trace stays within the horizon.
        assert!(out.trace.iter().all(|(t, _, _)| t.value() <= 600.0 + 1e-9));
    }
}
