//! Shared machinery for the emulated-hardware experiments (Figs. 6–8).
//!
//! Each figure co-schedules two jobs under a shared static budget of 75%
//! of TDP across 4 nodes (840 W) and measures slowdown vs the job type's
//! uncapped execution time, across budgeter configurations and repeated
//! trials.

use anor_cluster::{
    recorder_meta, BudgetPolicy, BudgeterConfig, EmulatedCluster, EmulatorConfig, FaultPlan,
    JobSetup, TransportKind,
};
use anor_exec::ExecPool;
use anor_telemetry::{FlightRecorder, Telemetry, Tracer};
use anor_types::stats::{mean, std_dev};
use anor_types::{Result, Watts};
use std::path::{Path, PathBuf};

/// The shared budget: 75% of the 4-node TDP (0.75 × 4 × 280 W).
pub const SHARED_BUDGET: Watts = Watts(840.0);

/// One configuration row of a Fig. 6–8 chart.
#[derive(Debug, Clone)]
pub struct HwConfig {
    /// Row label as it appears in the figure.
    pub label: String,
    /// Budget distribution policy.
    pub policy: BudgetPolicy,
    /// Whether model feedback flows back into the budgeter.
    pub feedback: bool,
    /// The two jobs (true type, announced type).
    pub jobs: [JobSetup; 2],
}

impl HwConfig {
    /// Convenience constructor.
    pub fn new(label: &str, policy: BudgetPolicy, feedback: bool, jobs: [JobSetup; 2]) -> Self {
        HwConfig {
            label: label.to_string(),
            policy,
            feedback,
            jobs,
        }
    }
}

/// One measured bar: per-job mean slowdown (as a percentage above
/// uncapped) with standard deviation over trials.
#[derive(Debug, Clone)]
pub struct HwBar {
    /// Configuration label.
    pub label: String,
    /// `(job display name, mean slowdown %, σ %)` per job.
    pub jobs: Vec<(String, f64, f64)>,
}

/// Optional knobs shared by every figure's emulated-cluster grid; the
/// positional `run_configs*` cascade below delegates here. New runners
/// should build one of these (`..HwRunOptions::default()`) instead of
/// threading another positional argument through the cascade.
#[derive(Debug, Clone)]
pub struct HwRunOptions {
    /// Telemetry sink shared by every trial (`--telemetry <dir>`).
    pub telemetry: Telemetry,
    /// Optional causal tracer shared by every trial (`--trace <dir>`).
    pub tracer: Option<Tracer>,
    /// Worker threads for the trial fan-out (0 = `ANOR_JOBS` /
    /// available parallelism). Output is identical for every value.
    pub jobs: usize,
    /// Optional chaos plan, forked per (configuration, trial) cell.
    pub faults: Option<FaultPlan>,
    /// Optional flight-recording directory (`--record <dir>`).
    pub record_dir: Option<PathBuf>,
    /// Budgeter connection plane for every trial (`--transport`).
    /// Decisions are byte-identical across kinds, so figures keep their
    /// shape; this exists to soak the reactor under real experiment
    /// traffic.
    pub transport: TransportKind,
}

impl Default for HwRunOptions {
    fn default() -> Self {
        HwRunOptions {
            telemetry: Telemetry::new(),
            tracer: None,
            jobs: 0,
            faults: None,
            record_dir: None,
            transport: TransportKind::default(),
        }
    }
}

/// Run a set of configurations for `trials` repetitions each.
pub fn run_configs(configs: &[HwConfig], trials: usize, seed: u64) -> Result<Vec<HwBar>> {
    run_configs_with(configs, trials, seed, &Telemetry::new())
}

/// [`run_configs`] with an explicit telemetry sink shared by every
/// trial's emulated cluster (the `--telemetry <dir>` path of the figure
/// binaries).
pub fn run_configs_with(
    configs: &[HwConfig],
    trials: usize,
    seed: u64,
    telemetry: &Telemetry,
) -> Result<Vec<HwBar>> {
    run_configs_traced(configs, trials, seed, telemetry, None)
}

/// [`run_configs_with`] plus an optional causal [`Tracer`] shared by
/// every trial's budgeter, endpoints and runtimes (the `--trace <dir>`
/// path of the figure binaries).
pub fn run_configs_traced(
    configs: &[HwConfig],
    trials: usize,
    seed: u64,
    telemetry: &Telemetry,
    tracer: Option<&Tracer>,
) -> Result<Vec<HwBar>> {
    run_configs_pooled(configs, trials, seed, telemetry, tracer, 0)
}

/// [`run_configs_traced`] with an explicit worker count (0 = resolve
/// from `ANOR_JOBS` / available parallelism).
///
/// Every (configuration, trial) cell is an independent emulated-cluster
/// run — each binds its own ephemeral loopback ports and seeds from the
/// trial index alone — so the grid fans out over [`ExecPool`]. Results
/// return in submission order and the per-configuration aggregation
/// below runs serially over them, so the bars are identical for every
/// worker count.
pub fn run_configs_pooled(
    configs: &[HwConfig],
    trials: usize,
    seed: u64,
    telemetry: &Telemetry,
    tracer: Option<&Tracer>,
    jobs: usize,
) -> Result<Vec<HwBar>> {
    run_configs_chaos(configs, trials, seed, telemetry, tracer, jobs, None)
}

/// [`run_configs_pooled`] with an optional chaos [`FaultPlan`] injected
/// into every trial's emulated transport. Each (configuration, trial)
/// cell forks the plan with a cell-unique salt, so the fault schedule is
/// identical across re-runs and independent of the worker count.
#[allow(clippy::too_many_arguments)]
pub fn run_configs_chaos(
    configs: &[HwConfig],
    trials: usize,
    seed: u64,
    telemetry: &Telemetry,
    tracer: Option<&Tracer>,
    jobs: usize,
    faults: Option<&FaultPlan>,
) -> Result<Vec<HwBar>> {
    run_configs_recorded(configs, trials, seed, telemetry, tracer, jobs, faults, None)
}

/// Filesystem-safe slug of a configuration label (for per-cell recording
/// file names).
fn label_slug(label: &str) -> String {
    label
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '-'
            }
        })
        .collect()
}

/// [`run_configs_chaos`] plus an optional flight-recording directory (the
/// `--record <dir>` path of the figure binaries). Every (configuration,
/// trial) cell records its budgeter into
/// `<dir>/<label>-c<ci>-t<trial>.rec`, replayable with
/// `anor-replay --verify` — including chaos runs, because each cell's
/// fault fork is deterministic.
#[allow(clippy::too_many_arguments)]
pub fn run_configs_recorded(
    configs: &[HwConfig],
    trials: usize,
    seed: u64,
    telemetry: &Telemetry,
    tracer: Option<&Tracer>,
    jobs: usize,
    faults: Option<&FaultPlan>,
    record_dir: Option<&Path>,
) -> Result<Vec<HwBar>> {
    run_configs_opts(
        configs,
        trials,
        seed,
        &HwRunOptions {
            telemetry: telemetry.clone(),
            tracer: tracer.cloned(),
            jobs,
            faults: faults.cloned(),
            record_dir: record_dir.map(Path::to_path_buf),
            transport: TransportKind::default(),
        },
    )
}

/// The root of the `run_configs*` cascade: every optional knob in one
/// [`HwRunOptions`], including the budgeter connection plane.
pub fn run_configs_opts(
    configs: &[HwConfig],
    trials: usize,
    seed: u64,
    opts: &HwRunOptions,
) -> Result<Vec<HwBar>> {
    let telemetry = &opts.telemetry;
    let grid: Vec<(usize, usize)> = (0..configs.len())
        .flat_map(|ci| (0..trials).map(move |trial| (ci, trial)))
        .collect();
    let pool = ExecPool::new(opts.jobs).with_telemetry(telemetry);
    let trial_results = pool.map(&grid, |&(ci, trial)| -> Result<Vec<f64>> {
        let cfg = &configs[ci];
        let mut ecfg = EmulatorConfig::paper(cfg.policy, cfg.feedback)
            .with_telemetry(telemetry.clone())
            .with_transport(opts.transport);
        if let Some(t) = &opts.tracer {
            ecfg = ecfg.with_tracer(t.clone());
        }
        if let Some(plan) = &opts.faults {
            ecfg = ecfg.with_faults(plan.fork(((ci as u64) << 32) ^ (trial as u64 + 1)));
        }
        ecfg.seed = seed ^ ((trial as u64 + 1) << 16);
        let mut cell_rec = None;
        if let Some(dir) = &opts.record_dir {
            let bcfg = BudgeterConfig::new(cfg.policy, cfg.feedback);
            let meta = recorder_meta(&bcfg, &ecfg.lease, ecfg.seed);
            let path = dir.join(format!(
                "{}-c{ci}-t{}.rec",
                label_slug(&cfg.label),
                trial + 1
            ));
            let rec = FlightRecorder::create(path, meta)?;
            ecfg = ecfg.with_recorder(rec.clone());
            cell_rec = Some(rec);
        }
        let cluster = EmulatedCluster::new(ecfg);
        let report = cluster.run_static(&cfg.jobs, SHARED_BUDGET)?;
        if let Some(rec) = cell_rec {
            rec.flush()?;
        }
        Ok(report
            .jobs
            .iter()
            .map(|job| (job.slowdown - 1.0) * 100.0)
            .collect())
    });
    // Per-config, per-job slowdown samples across trials, in trial order.
    let mut samples: Vec<Vec<Vec<f64>>> = configs
        .iter()
        .map(|cfg| vec![Vec::new(); cfg.jobs.len()])
        .collect();
    for (&(ci, _), result) in grid.iter().zip(trial_results) {
        for (i, x) in result?.into_iter().enumerate() {
            samples[ci][i].push(x);
        }
    }
    let mut bars = Vec::with_capacity(configs.len());
    for (cfg, samples) in configs.iter().zip(&samples) {
        let jobs = cfg
            .jobs
            .iter()
            .zip(samples)
            .map(|(setup, xs)| {
                let display = if setup.true_type == setup.announced {
                    setup.true_type.clone()
                } else {
                    format!("{}={}", setup.true_type, setup.announced)
                };
                (display, mean(xs), std_dev(xs))
            })
            .collect();
        bars.push(HwBar {
            label: cfg.label.clone(),
            jobs,
        });
    }
    Ok(bars)
}

/// Look up a bar by configuration label.
pub fn bar<'a>(bars: &'a [HwBar], label: &str) -> &'a HwBar {
    bars.iter()
        .find(|b| b.label == label)
        .unwrap_or_else(|| panic!("no bar labelled {label}"))
}

/// A job's mean slowdown within a bar, by true-type prefix.
pub fn job_slowdown(bar: &HwBar, prefix: &str) -> f64 {
    bar.jobs
        .iter()
        .find(|(name, _, _)| name.starts_with(prefix))
        .map(|(_, y, _)| *y)
        .unwrap_or_else(|| panic!("no job starting with {prefix} in {}", bar.label))
}
