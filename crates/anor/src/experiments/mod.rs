//! Scenario runners for every figure in the paper's evaluation.
//!
//! Each submodule regenerates one figure of Section 6 and returns
//! structured data; the `anor-bench` `fig*` binaries print it with
//! [`crate::render`]. The paper has no numbered tables; Figs. 1–2 are
//! architecture diagrams; Figs. 3–11 are reproduced here.
//!
//! | Module | Paper artifact |
//! |---|---|
//! | [`fig3`]  | Execution time vs power cap per job type |
//! | [`fig4`]  | Estimated slowdown under shared budgets, two budgeters |
//! | [`fig5`]  | Misclassified-job slowdown, 4 quadrants |
//! | [`hw`] + [`fig6`]/[`fig7`]/[`fig8`] | Measured slowdown under a shared 840 W budget on the emulated 16-node cluster |
//! | [`fig9`]  | 1-hour time-varying power-target tracking |
//! | [`fig10`] | Mean slowdown per type under 4 capping policies |
//! | [`fig11`] | 90th-percentile QoS degradation vs performance variation |

pub mod ablation;
pub mod fig10;
pub mod fig11;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod hw;
pub mod multihour;
