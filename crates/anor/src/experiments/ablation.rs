//! Ablation experiments over the design choices DESIGN.md calls out.
//!
//! Each ablation replays the Fig. 6 misclassification-recovery scenario
//! (BT announced as IS next to SP under a shared 840 W budget) while
//! varying one knob, and reports the *recovery fraction* — how much of
//! the slowdown gap between the misclassified and fully-characterized
//! runs the feedback path wins back.

use anor_cluster::{BudgetPolicy, EmulatedCluster, EmulatorConfig, JobSetup};
use anor_types::{Result, Watts};

/// The recovery achieved under one knob setting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AblationPoint {
    /// The knob value.
    pub value: f64,
    /// BT slowdown (%) with feedback under this setting.
    pub bt_slowdown_pct: f64,
    /// Fraction of the misclassification gap recovered (0 = none,
    /// 1 = fully back to the characterized baseline).
    pub recovery: f64,
}

fn bt_slowdown(cfg: EmulatorConfig, jobs: &[JobSetup]) -> Result<f64> {
    let report = EmulatedCluster::new(cfg).run_static(jobs, Watts(840.0))?;
    Ok(report
        .mean_slowdown("bt.D.81")
        .expect("bt present in scenario"))
}

fn scenario() -> ([JobSetup; 2], [JobSetup; 2]) {
    (
        [JobSetup::known("bt.D.81"), JobSetup::known("sp.D.81")],
        [
            JobSetup::misclassified("bt.D.81", "is.D.32"),
            JobSetup::known("sp.D.81"),
        ],
    )
}

/// Sweep the modeler's retrain threshold (paper default: 10 new epochs).
pub fn retrain_threshold(thresholds: &[u64], seed: u64) -> Result<Vec<AblationPoint>> {
    let (known, mislabeled) = scenario();
    let mut base_cfg = EmulatorConfig::paper(BudgetPolicy::EvenSlowdown, false);
    base_cfg.seed = seed;
    let ideal = bt_slowdown(base_cfg.clone(), &known)?;
    let hurt = bt_slowdown(base_cfg, &mislabeled)?;
    let gap = (hurt - ideal).max(1e-9);
    let mut out = Vec::with_capacity(thresholds.len());
    for &t in thresholds {
        let mut cfg = EmulatorConfig::paper(BudgetPolicy::EvenSlowdown, true);
        cfg.seed = seed;
        cfg.retrain_epochs = Some(t);
        let fed = bt_slowdown(cfg, &mislabeled)?;
        out.push(AblationPoint {
            value: t as f64,
            bt_slowdown_pct: (fed - 1.0) * 100.0,
            recovery: ((hurt - fed) / gap).clamp(-1.0, 1.0),
        });
    }
    Ok(out)
}

/// Sweep the modeler's exploratory dither amplitude (fraction of the
/// 140 W cap span; the default is 0.05).
pub fn dither_amplitude(fractions: &[f64], seed: u64) -> Result<Vec<AblationPoint>> {
    let (known, mislabeled) = scenario();
    let mut base_cfg = EmulatorConfig::paper(BudgetPolicy::EvenSlowdown, false);
    base_cfg.seed = seed;
    let ideal = bt_slowdown(base_cfg.clone(), &known)?;
    let hurt = bt_slowdown(base_cfg, &mislabeled)?;
    let gap = (hurt - ideal).max(1e-9);
    let mut out = Vec::with_capacity(fractions.len());
    for &f in fractions {
        let mut cfg = EmulatorConfig::paper(BudgetPolicy::EvenSlowdown, true);
        cfg.seed = seed;
        cfg.dither_fraction = Some(f);
        let fed = bt_slowdown(cfg, &mislabeled)?;
        out.push(AblationPoint {
            value: f,
            bt_slowdown_pct: (fed - 1.0) * 100.0,
            recovery: ((hurt - fed) / gap).clamp(-1.0, 1.0),
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_retrain_threshold_recovers_most_of_the_gap() {
        let points = retrain_threshold(&[10], 42).unwrap();
        assert_eq!(points.len(), 1);
        assert!(
            points[0].recovery > 0.5,
            "10-epoch retrain should recover most of the gap: {:?}",
            points[0]
        );
    }

    #[test]
    fn zero_dither_cannot_identify_the_model() {
        // With no dither and a static budget, the misclassified job sits
        // at one cap level; the model stays unidentifiable and recovery
        // is limited.
        let points = dither_amplitude(&[0.0, 0.05], 9).unwrap();
        let none = points[0];
        let paper = points[1];
        assert!(
            paper.recovery > none.recovery + 0.2,
            "dither must enable recovery: {none:?} vs {paper:?}"
        );
    }
}
