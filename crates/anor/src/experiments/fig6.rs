//! Fig. 6: BT (high power sensitivity) and SP (low power sensitivity)
//! co-scheduled under a shared 840 W budget (75% of TDP over 4 nodes),
//! across six configurations: performance agnostic, performance aware,
//! BT's sensitivity under-estimated (classified as IS) without and with
//! feedback, and SP's sensitivity over-estimated (classified as EP)
//! without and with feedback. The paper uses 3 trials.

use super::hw::{
    run_configs, run_configs_chaos, run_configs_opts, run_configs_pooled, run_configs_recorded,
    run_configs_traced, run_configs_with, HwBar, HwConfig, HwRunOptions,
};
use anor_cluster::{BudgetPolicy, FaultPlan, JobSetup};
use anor_telemetry::{Telemetry, Tracer};
use anor_types::Result;

/// The six configuration rows of the figure.
pub fn configs() -> Vec<HwConfig> {
    let known = || [JobSetup::known("bt.D.81"), JobSetup::known("sp.D.81")];
    let bt_as_is = || {
        [
            JobSetup::misclassified("bt.D.81", "is.D.32"),
            JobSetup::known("sp.D.81"),
        ]
    };
    let sp_as_ep = || {
        [
            JobSetup::known("bt.D.81"),
            JobSetup::misclassified("sp.D.81", "ep.D.43"),
        ]
    };
    vec![
        HwConfig::new(
            "Performance Agnostic",
            BudgetPolicy::Uniform,
            false,
            known(),
        ),
        HwConfig::new(
            "Performance Aware",
            BudgetPolicy::EvenSlowdown,
            false,
            known(),
        ),
        HwConfig::new(
            "Under-estimate bt",
            BudgetPolicy::EvenSlowdown,
            false,
            bt_as_is(),
        ),
        HwConfig::new(
            "Under-estimate bt, with feedback",
            BudgetPolicy::EvenSlowdown,
            true,
            bt_as_is(),
        ),
        HwConfig::new(
            "Over-estimate sp",
            BudgetPolicy::EvenSlowdown,
            false,
            sp_as_ep(),
        ),
        HwConfig::new(
            "Over-estimate sp, with feedback",
            BudgetPolicy::EvenSlowdown,
            true,
            sp_as_ep(),
        ),
    ]
}

/// Run the figure with the paper's 3 trials (or fewer for quick runs).
pub fn run(trials: usize, seed: u64) -> Result<Vec<HwBar>> {
    run_configs(&configs(), trials, seed)
}

/// [`run`] with an explicit telemetry sink shared by all trials.
pub fn run_with(trials: usize, seed: u64, telemetry: &Telemetry) -> Result<Vec<HwBar>> {
    run_configs_with(&configs(), trials, seed, telemetry)
}

/// [`run_with`] plus an optional causal tracer shared by all trials
/// (the `--trace <dir>` path).
pub fn run_traced(
    trials: usize,
    seed: u64,
    telemetry: &Telemetry,
    tracer: Option<&Tracer>,
) -> Result<Vec<HwBar>> {
    run_configs_traced(&configs(), trials, seed, telemetry, tracer)
}

/// [`run_traced`] with an explicit worker count for the trial fan-out
/// (0 = resolve from `ANOR_JOBS` / available parallelism); output is
/// identical for every value.
pub fn run_pooled(
    trials: usize,
    seed: u64,
    telemetry: &Telemetry,
    tracer: Option<&Tracer>,
    jobs: usize,
) -> Result<Vec<HwBar>> {
    run_configs_pooled(&configs(), trials, seed, telemetry, tracer, jobs)
}

/// [`run_pooled`] with an optional chaos [`FaultPlan`] injected into
/// every trial's emulated transport (the `--faults <spec>` path): drops
/// force endpoint reconnects, corruption exercises the codec's reject
/// path, and the run must still complete with the figure's shape intact.
pub fn run_chaos(
    trials: usize,
    seed: u64,
    telemetry: &Telemetry,
    tracer: Option<&Tracer>,
    jobs: usize,
    faults: Option<&FaultPlan>,
) -> Result<Vec<HwBar>> {
    run_configs_chaos(&configs(), trials, seed, telemetry, tracer, jobs, faults)
}

/// [`run_chaos`] plus an optional flight-recording directory (the
/// `--record <dir>` path): every (configuration, trial) cell's budgeter
/// is recorded into `<dir>/<label>-c<ci>-t<trial>.rec` for
/// `anor-replay --verify`.
#[allow(clippy::too_many_arguments)]
pub fn run_recorded(
    trials: usize,
    seed: u64,
    telemetry: &Telemetry,
    tracer: Option<&Tracer>,
    jobs: usize,
    faults: Option<&FaultPlan>,
    record_dir: Option<&std::path::Path>,
) -> Result<Vec<HwBar>> {
    run_configs_recorded(
        &configs(),
        trials,
        seed,
        telemetry,
        tracer,
        jobs,
        faults,
        record_dir,
    )
}

/// Run the figure with every optional knob — including the budgeter's
/// connection plane — in one [`HwRunOptions`]. The figure binaries call
/// this; the positional variants above remain for older callers.
pub fn run_opts(trials: usize, seed: u64, opts: &HwRunOptions) -> Result<Vec<HwBar>> {
    run_configs_opts(&configs(), trials, seed, opts)
}

#[cfg(test)]
mod tests {
    use super::super::hw::{bar, job_slowdown};
    use super::*;

    #[test]
    fn figure_6_shape_holds() {
        let bars = run(1, 42).unwrap();
        assert_eq!(bars.len(), 6);
        let bt = |label: &str| job_slowdown(bar(&bars, label), "bt");
        // Performance awareness reduces BT's slowdown vs agnostic.
        assert!(
            bt("Performance Aware") < bt("Performance Agnostic"),
            "aware {} vs agnostic {}",
            bt("Performance Aware"),
            bt("Performance Agnostic")
        );
        // Under-estimating BT degrades it vs fully characterized...
        assert!(bt("Under-estimate bt") > bt("Performance Aware"));
        // ...and feedback recovers part of the loss.
        assert!(
            bt("Under-estimate bt, with feedback") < bt("Under-estimate bt"),
            "feedback {} vs no-feedback {}",
            bt("Under-estimate bt, with feedback"),
            bt("Under-estimate bt")
        );
        // Over-estimating SP also degrades BT (power stolen by SP), and
        // feedback recovers.
        assert!(bt("Over-estimate sp") > bt("Performance Aware"));
        assert!(bt("Over-estimate sp, with feedback") < bt("Over-estimate sp"));
    }
}
