//! Fig. 7: two instances of BT (high power sensitivity) co-scheduled
//! under the shared 840 W budget, with one instance potentially
//! misclassified as IS. The paper uses 3 back-to-back trials.

use super::hw::{
    run_configs, run_configs_chaos, run_configs_opts, run_configs_pooled, run_configs_recorded,
    run_configs_traced, run_configs_with, HwBar, HwConfig, HwRunOptions,
};
use anor_cluster::{BudgetPolicy, FaultPlan, JobSetup};
use anor_telemetry::{Telemetry, Tracer};
use anor_types::Result;

/// The four configuration rows of the figure.
pub fn configs() -> Vec<HwConfig> {
    let known = || [JobSetup::known("bt.D.81"), JobSetup::known("bt.D.81")];
    let one_as_is = || {
        [
            JobSetup::known("bt.D.81"),
            JobSetup::misclassified("bt.D.81", "is.D.32"),
        ]
    };
    vec![
        HwConfig::new(
            "Performance Agnostic",
            BudgetPolicy::Uniform,
            false,
            known(),
        ),
        HwConfig::new(
            "Performance Aware",
            BudgetPolicy::EvenSlowdown,
            false,
            known(),
        ),
        HwConfig::new(
            "Under-estimate bt",
            BudgetPolicy::EvenSlowdown,
            false,
            one_as_is(),
        ),
        HwConfig::new(
            "Under-estimate bt, with feedback",
            BudgetPolicy::EvenSlowdown,
            true,
            one_as_is(),
        ),
    ]
}

/// Run with the requested number of trials (paper: 3).
pub fn run(trials: usize, seed: u64) -> Result<Vec<HwBar>> {
    run_configs(&configs(), trials, seed)
}

/// [`run`] with an explicit telemetry sink shared by all trials.
pub fn run_with(trials: usize, seed: u64, telemetry: &Telemetry) -> Result<Vec<HwBar>> {
    run_configs_with(&configs(), trials, seed, telemetry)
}

/// [`run_with`] plus an optional causal tracer shared by all trials
/// (the `--trace <dir>` path).
pub fn run_traced(
    trials: usize,
    seed: u64,
    telemetry: &Telemetry,
    tracer: Option<&Tracer>,
) -> Result<Vec<HwBar>> {
    run_configs_traced(&configs(), trials, seed, telemetry, tracer)
}

/// [`run_traced`] with an explicit worker count for the trial fan-out
/// (0 = resolve from `ANOR_JOBS` / available parallelism); output is
/// identical for every value.
pub fn run_pooled(
    trials: usize,
    seed: u64,
    telemetry: &Telemetry,
    tracer: Option<&Tracer>,
    jobs: usize,
) -> Result<Vec<HwBar>> {
    run_configs_pooled(&configs(), trials, seed, telemetry, tracer, jobs)
}

/// [`run_pooled`] with an optional chaos [`FaultPlan`] injected into
/// every trial's emulated transport (the `--faults <spec>` path).
pub fn run_chaos(
    trials: usize,
    seed: u64,
    telemetry: &Telemetry,
    tracer: Option<&Tracer>,
    jobs: usize,
    faults: Option<&FaultPlan>,
) -> Result<Vec<HwBar>> {
    run_configs_chaos(&configs(), trials, seed, telemetry, tracer, jobs, faults)
}

/// [`run_chaos`] plus an optional flight-recording directory (the
/// `--record <dir>` path): every (configuration, trial) cell's budgeter
/// is recorded into `<dir>/<label>-c<ci>-t<trial>.rec` for
/// `anor-replay --verify`.
#[allow(clippy::too_many_arguments)]
pub fn run_recorded(
    trials: usize,
    seed: u64,
    telemetry: &Telemetry,
    tracer: Option<&Tracer>,
    jobs: usize,
    faults: Option<&FaultPlan>,
    record_dir: Option<&std::path::Path>,
) -> Result<Vec<HwBar>> {
    run_configs_recorded(
        &configs(),
        trials,
        seed,
        telemetry,
        tracer,
        jobs,
        faults,
        record_dir,
    )
}

/// Run the figure with every optional knob — including the budgeter's
/// connection plane — in one [`HwRunOptions`]. The figure binaries call
/// this; the positional variants above remain for older callers.
pub fn run_opts(trials: usize, seed: u64, opts: &HwRunOptions) -> Result<Vec<HwBar>> {
    run_configs_opts(&configs(), trials, seed, opts)
}

#[cfg(test)]
mod tests {
    use super::super::hw::bar;
    use super::*;

    #[test]
    fn homogeneous_jobs_make_policies_agree_and_misclassification_hurts() {
        let bars = run(1, 3).unwrap();
        // With identical job types, agnostic and aware make the same
        // decisions (Fig. 7 discussion).
        let agnostic = &bar(&bars, "Performance Agnostic").jobs;
        let aware = &bar(&bars, "Performance Aware").jobs;
        let mean_of = |rows: &Vec<(String, f64, f64)>| {
            rows.iter().map(|(_, y, _)| *y).sum::<f64>() / rows.len() as f64
        };
        assert!(
            (mean_of(agnostic) - mean_of(aware)).abs() < 3.0,
            "agnostic {} vs aware {}",
            mean_of(agnostic),
            mean_of(aware)
        );
        // The misclassified instance slows down more; feedback recovers.
        let mis = bar(&bars, "Under-estimate bt");
        let fed = bar(&bars, "Under-estimate bt, with feedback");
        let mis_job = mis
            .jobs
            .iter()
            .find(|(n, _, _)| n.contains('='))
            .expect("misclassified job labelled with =");
        let fed_job = fed.jobs.iter().find(|(n, _, _)| n.contains('=')).unwrap();
        assert!(
            mis_job.1 > mean_of(aware),
            "misclassified {} vs aware {}",
            mis_job.1,
            mean_of(aware)
        );
        assert!(
            fed_job.1 < mis_job.1,
            "feedback {} vs no-feedback {}",
            fed_job.1,
            mis_job.1
        );
    }
}
