//! Fig. 10: mean execution-time slowdown of 6 job types under a 1-hour
//! schedule with time-varying cluster power caps, across four capping
//! techniques: Uniform, Characterized (performance-aware), Misclassified
//! (BT announced as IS, no feedback) and Adjusted (same, with feedback).
//! Error bars are 95% confidence intervals; the paper reports the worst
//! type improving from 11.6% (uniform) to 8.0% (characterized), and the
//! misclassified-case power staying under 24% error at least 90% of the
//! time (all other cases under 17%).

use anor_aqa::{poisson_schedule, PowerTarget, RegulationSignal, TrackingRecorder};
use anor_cluster::{
    recorder_meta, BudgetPolicy, BudgeterConfig, EmulatedCluster, EmulatorConfig, FaultPlan,
    JobSetup, TransportKind,
};
use anor_exec::ExecPool;
use anor_telemetry::{FlightRecorder, Telemetry, Tracer};
use anor_types::stats::OnlineStats;
use anor_types::{Result, Seconds, Watts};

/// The four capping techniques of the figure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fig10Policy {
    /// Performance-agnostic uniform caps.
    Uniform,
    /// Performance-aware balancer with correct precharacterization.
    Characterized,
    /// BT misclassified as IS, no feedback.
    Misclassified,
    /// BT misclassified as IS, with job-tier feedback.
    Adjusted,
}

impl Fig10Policy {
    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            Fig10Policy::Uniform => "Uniform",
            Fig10Policy::Characterized => "Characterized",
            Fig10Policy::Misclassified => "Misclassified",
            Fig10Policy::Adjusted => "Adjusted",
        }
    }

    /// All four, in the figure's legend order.
    pub fn all() -> [Fig10Policy; 4] {
        [
            Fig10Policy::Uniform,
            Fig10Policy::Characterized,
            Fig10Policy::Misclassified,
            Fig10Policy::Adjusted,
        ]
    }
}

/// Scenario parameters.
#[derive(Debug, Clone)]
pub struct Fig10Config {
    /// Schedule horizon (paper: 1 hour).
    pub horizon: Seconds,
    /// Target node utilization (paper: 95%).
    pub utilization: f64,
    /// Committed average power.
    pub avg: Watts,
    /// Committed reserve.
    pub reserve: Watts,
    /// Determinism seed.
    pub seed: u64,
    /// Tracking statistics exclude this initial fill-up window.
    pub warmup: Seconds,
    /// Telemetry sink shared by the four policies' emulated runs
    /// (in-memory by default; the `fig10` binary passes a
    /// directory-backed sink for `--telemetry <dir>`).
    pub telemetry: Telemetry,
    /// Optional causal tracer shared by the four policies' runs (the
    /// `--trace <dir>` path of the `fig10` binary).
    pub tracer: Option<Tracer>,
    /// Worker threads for the four policies' emulated runs (0 = resolve
    /// from `ANOR_JOBS` / available parallelism). Each policy's run is
    /// seeded independently and results aggregate in legend order, so
    /// the output is identical for every value.
    pub jobs: usize,
    /// Optional chaos schedule injected into every policy's emulated
    /// transport (the `--faults <spec>` path); forked per policy so the
    /// four runs see identical, independent fault schedules.
    pub faults: Option<FaultPlan>,
    /// Optional flight-recording directory (the `--record <dir>` path):
    /// each policy's budgeter records into `<dir>/fig10-<policy>.rec`
    /// for `anor-replay`.
    pub record: Option<std::path::PathBuf>,
    /// Budgeter connection plane for the four policies' runs (the
    /// `--transport` path). Decisions are byte-identical across kinds.
    pub transport: TransportKind,
}

impl Default for Fig10Config {
    fn default() -> Self {
        Fig10Config {
            horizon: Seconds(3600.0),
            utilization: 0.95,
            avg: Watts(3200.0),
            reserve: Watts(900.0),
            seed: 10,
            warmup: Seconds(180.0),
            telemetry: Telemetry::new(),
            tracer: None,
            jobs: 0,
            faults: None,
            record: None,
            transport: TransportKind::default(),
        }
    }
}

/// One (policy, type) cell of the figure.
#[derive(Debug, Clone)]
pub struct Fig10Cell {
    /// Capping technique.
    pub policy: Fig10Policy,
    /// Job type name.
    pub type_name: String,
    /// Mean slowdown in percent over instances.
    pub mean_slowdown: f64,
    /// 95% CI half-width.
    pub ci95: f64,
    /// Number of job instances behind the mean.
    pub instances: u64,
}

/// The full figure's data.
#[derive(Debug, Clone)]
pub struct Fig10Output {
    /// All cells.
    pub cells: Vec<Fig10Cell>,
    /// Per-policy 90th-percentile tracking error.
    pub tracking_p90: Vec<(Fig10Policy, f64)>,
}

impl Fig10Output {
    /// The cell for a policy and type prefix.
    pub fn cell(&self, policy: Fig10Policy, prefix: &str) -> Option<&Fig10Cell> {
        self.cells
            .iter()
            .find(|c| c.policy == policy && c.type_name.starts_with(prefix))
    }

    /// The worst mean slowdown across types for a policy.
    pub fn worst(&self, policy: Fig10Policy) -> f64 {
        self.cells
            .iter()
            .filter(|c| c.policy == policy)
            .map(|c| c.mean_slowdown)
            .fold(0.0, f64::max)
    }
}

/// Run one policy over the shared schedule; internal helper.
fn run_policy(
    policy: Fig10Policy,
    cfg: &Fig10Config,
    jobs: &[JobSetup],
    type_names: &[String],
) -> Result<(Vec<Fig10Cell>, f64)> {
    let (budget_policy, feedback, misclassify) = match policy {
        Fig10Policy::Uniform => (BudgetPolicy::Uniform, false, false),
        Fig10Policy::Characterized => (BudgetPolicy::EvenSlowdown, false, false),
        Fig10Policy::Misclassified => (BudgetPolicy::EvenSlowdown, false, true),
        Fig10Policy::Adjusted => (BudgetPolicy::EvenSlowdown, true, true),
    };
    let mut ecfg = EmulatorConfig::paper(budget_policy, feedback)
        .with_telemetry(cfg.telemetry.clone())
        .with_transport(cfg.transport);
    if let Some(t) = &cfg.tracer {
        ecfg = ecfg.with_tracer(t.clone());
    }
    if let Some(plan) = &cfg.faults {
        // Legend position as the fork salt: stable per policy, so the
        // four runs draw identical but independent schedules.
        let salt = Fig10Policy::all().iter().position(|p| *p == policy);
        ecfg = ecfg.with_faults(plan.fork(salt.unwrap_or(0) as u64 + 1));
    }
    ecfg.seed = cfg.seed;
    let mut cell_rec = None;
    if let Some(dir) = &cfg.record {
        let bcfg = BudgeterConfig::new(budget_policy, feedback);
        let meta = recorder_meta(&bcfg, &ecfg.lease, cfg.seed);
        let path = dir.join(format!("fig10-{}.rec", policy.label().to_lowercase()));
        let rec = FlightRecorder::create(path, meta)?;
        ecfg = ecfg.with_recorder(rec.clone());
        cell_rec = Some(rec);
    }
    let jobs: Vec<JobSetup> = jobs
        .iter()
        .map(|j| {
            let mut j = j.clone();
            if misclassify && j.true_type.starts_with("bt") {
                j.announced = "is.D.32".to_string();
            }
            j
        })
        .collect();
    let target = PowerTarget {
        avg: cfg.avg,
        reserve: cfg.reserve,
        signal: RegulationSignal::random_walk(
            Seconds(4.0),
            0.35,
            cfg.horizon + Seconds(3600.0),
            cfg.seed ^ 0x515,
        ),
    };
    let cluster = EmulatedCluster::new(ecfg);
    let report = cluster.run_demand_response(&jobs, target, true)?;
    if let Some(rec) = cell_rec {
        rec.flush()?;
    }
    // Per-type stats.
    let mut cells = Vec::new();
    for name in type_names {
        let mut stats = OnlineStats::new();
        for j in report.jobs.iter().filter(|j| &j.true_type == name) {
            stats.push((j.slowdown - 1.0) * 100.0);
        }
        cells.push(Fig10Cell {
            policy,
            type_name: name.clone(),
            mean_slowdown: stats.mean(),
            ci95: stats.ci95_half_width(),
            instances: stats.count(),
        });
    }
    // Tracking error within the horizon.
    let mut rec = TrackingRecorder::new(cfg.reserve);
    for &(t, target, measured) in &report.power_trace {
        if t.value() >= cfg.warmup.value() && t.value() <= cfg.horizon.value() {
            rec.push(target, measured);
        }
    }
    Ok((cells, rec.percentile_error(90.0)))
}

/// Run all four policies over one shared schedule.
pub fn run(cfg: &Fig10Config) -> Result<Fig10Output> {
    let ecfg = EmulatorConfig::paper(BudgetPolicy::Uniform, false);
    let catalog = ecfg.catalog.clone();
    let types = catalog.long_running();
    let type_names: Vec<String> = types.iter().map(|&id| catalog[id].name.clone()).collect();
    let submissions = poisson_schedule(
        &catalog,
        &types,
        cfg.utilization,
        ecfg.nodes,
        cfg.horizon,
        cfg.seed,
    );
    let jobs: Vec<JobSetup> = submissions
        .iter()
        .map(|s| JobSetup::known(&catalog[s.type_id].name).at(s.time))
        .collect();
    // The four policies replay the same schedule independently; fan them
    // out and aggregate in legend order.
    let policies = Fig10Policy::all();
    let results = ExecPool::new(cfg.jobs)
        .with_telemetry(&cfg.telemetry)
        .map(&policies, |&policy| {
            run_policy(policy, cfg, &jobs, &type_names)
        });
    let mut cells = Vec::new();
    let mut tracking = Vec::new();
    for (policy, result) in policies.into_iter().zip(results) {
        let (mut c, p90) = result?;
        cells.append(&mut c);
        tracking.push((policy, p90));
    }
    Ok(Fig10Output {
        cells,
        tracking_p90: tracking,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_schedule_reproduces_policy_ordering() {
        let cfg = Fig10Config {
            horizon: Seconds(900.0),
            utilization: 0.85,
            seed: 3,
            ..Fig10Config::default()
        };
        let out = run(&cfg).unwrap();
        // 4 policies × 6 types.
        assert_eq!(out.cells.len(), 24);
        assert!(out.cells.iter().any(|c| c.instances > 0));
        // Characterized improves the worst type vs Uniform (the paper's
        // 11.6% → 8.0% claim, shape only).
        let worst_uniform = out.worst(Fig10Policy::Uniform);
        let worst_char = out.worst(Fig10Policy::Characterized);
        assert!(
            worst_char <= worst_uniform + 1.0,
            "characterized worst {worst_char}% vs uniform {worst_uniform}%"
        );
        // Misclassification slows BT; adjustment recovers some of it.
        let bt = |p: Fig10Policy| out.cell(p, "bt").unwrap().mean_slowdown;
        assert!(
            bt(Fig10Policy::Misclassified) >= bt(Fig10Policy::Characterized) - 1.0,
            "misclassified {} vs characterized {}",
            bt(Fig10Policy::Misclassified),
            bt(Fig10Policy::Characterized)
        );
        assert!(
            bt(Fig10Policy::Adjusted) <= bt(Fig10Policy::Misclassified) + 1.0,
            "adjusted {} vs misclassified {}",
            bt(Fig10Policy::Adjusted),
            bt(Fig10Policy::Misclassified)
        );
        // Tracking recorded for every policy.
        assert_eq!(out.tracking_p90.len(), 4);
    }
}
