//! Fig. 4: estimated slowdown when one instance of each of the 8 job
//! types runs under a shared cluster power budget, comparing the
//! even-slowdown (ideal) budgeter against even power caps.

use crate::render::Series;
use anor_exec::ExecPool;
use anor_policy::{Budgeter, EvenPowerBudgeter, EvenSlowdownBudgeter, JobView};
use anor_types::{standard_catalog, JobId, Watts};

/// Data for one budgeter: a slowdown-vs-budget series per job type.
#[derive(Debug, Clone)]
pub struct Fig4Output {
    /// Even-slowdown ("Even Slowdown (Ideal)" in the figure legend).
    pub even_slowdown: Vec<Series>,
    /// Even power caps.
    pub even_power: Vec<Series>,
}

/// The budgets swept in the figure (x axis 1500–3000 W).
pub fn budgets() -> Vec<f64> {
    (0..=15).map(|i| 1500.0 + 100.0 * i as f64).collect()
}

/// Run the analysis with the default worker count.
pub fn run() -> Fig4Output {
    run_pooled(0)
}

/// Run the analysis fanning the budget sweep out over `jobs` workers
/// (0 = resolve from `ANOR_JOBS` / available parallelism). Each budget
/// point is an independent assignment; results come back in sweep order
/// and series assembly is serial, so output is identical for any count.
pub fn run_pooled(jobs: usize) -> Fig4Output {
    let catalog = standard_catalog();
    let views: Vec<JobView> = catalog
        .iter()
        .map(|spec| JobView::from_spec(JobId(spec.id.0 as u64), spec))
        .collect();
    let pool = ExecPool::new(jobs);
    let budget_points = budgets();
    let sweep = |b: &(dyn Budgeter + Sync)| -> Vec<Series> {
        let rows = pool.map(&budget_points, |&budget| {
            let caps = b.assign(Watts(budget), &views);
            views
                .iter()
                .zip(&caps)
                // Slowdown as % above uncapped, like the figure's y axis.
                .map(|(view, cap)| (view.believed_slowdown(*cap) - 1.0) * 100.0)
                .collect::<Vec<f64>>()
        });
        let mut per_type: Vec<Series> = catalog
            .iter()
            .map(|s| Series::new(s.name.clone()))
            .collect();
        for (&budget, row) in budget_points.iter().zip(rows) {
            for (slowdown, series) in row.into_iter().zip(&mut per_type) {
                series.push(budget, slowdown, 0.0);
            }
        }
        per_type
    };
    Fig4Output {
        even_slowdown: sweep(&EvenSlowdownBudgeter::default()),
        even_power: sweep(&EvenPowerBudgeter),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn max_at(series: &[Series], budget: f64) -> f64 {
        series
            .iter()
            .map(|s| s.y_at(budget).unwrap())
            .fold(0.0, f64::max)
    }

    #[test]
    fn even_slowdown_reduces_worst_job_in_midrange() {
        let out = run();
        // Mid-range budgets: clear win for even-slowdown (Section 6.1.1).
        for budget in [1800.0, 2100.0, 2400.0] {
            let worst_es = max_at(&out.even_slowdown, budget);
            let worst_ep = max_at(&out.even_power, budget);
            assert!(
                worst_es < worst_ep,
                "at {budget} W: even-slowdown worst {worst_es} vs even-power {worst_ep}"
            );
        }
    }

    #[test]
    fn slowdown_range_widens_as_budget_decreases_under_even_power() {
        let out = run();
        let spread = |budget: f64| {
            let ys: Vec<f64> = out
                .even_power
                .iter()
                .map(|s| s.y_at(budget).unwrap())
                .collect();
            ys.iter().cloned().fold(0.0, f64::max) - ys.iter().cloned().fold(f64::MAX, f64::min)
        };
        assert!(spread(1500.0) > spread(2500.0));
    }

    #[test]
    fn no_opportunity_at_extreme_budgets() {
        let out = run();
        // At the top budget every job is (nearly) uncapped under both.
        let hi = budgets().last().copied().unwrap();
        assert!(max_at(&out.even_slowdown, hi) < 12.0);
        assert!((max_at(&out.even_slowdown, hi) - max_at(&out.even_power, hi)).abs() < 10.0);
    }

    #[test]
    fn equal_slowdown_across_unsaturated_jobs() {
        let out = run();
        // At a mid budget, jobs not pinned at min cap share one slowdown.
        let ys: Vec<f64> = out
            .even_slowdown
            .iter()
            .map(|s| s.y_at(2400.0).unwrap())
            .collect();
        let max = ys.iter().cloned().fold(0.0, f64::max);
        // Every job is either at the common slowdown or below it
        // (leveled off at min cap with a *smaller* slowdown).
        for y in ys {
            assert!(y <= max + 1e-6);
        }
        assert!(max > 0.5, "some slowdown must exist at 2400 W: {max}");
    }
}
