//! Fig. 8: two instances of SP (low power sensitivity) co-scheduled
//! under the shared 840 W budget, with one instance potentially
//! misclassified as EP. The paper uses 6 back-to-back trials.

use super::hw::{
    run_configs, run_configs_chaos, run_configs_opts, run_configs_pooled, run_configs_recorded,
    run_configs_traced, run_configs_with, HwBar, HwConfig, HwRunOptions,
};
use anor_cluster::{BudgetPolicy, FaultPlan, JobSetup};
use anor_telemetry::{Telemetry, Tracer};
use anor_types::Result;

/// The four configuration rows of the figure.
pub fn configs() -> Vec<HwConfig> {
    let known = || [JobSetup::known("sp.D.81"), JobSetup::known("sp.D.81")];
    let one_as_ep = || {
        [
            JobSetup::known("sp.D.81"),
            JobSetup::misclassified("sp.D.81", "ep.D.43"),
        ]
    };
    vec![
        HwConfig::new(
            "Performance Agnostic",
            BudgetPolicy::Uniform,
            false,
            known(),
        ),
        HwConfig::new(
            "Performance Aware",
            BudgetPolicy::EvenSlowdown,
            false,
            known(),
        ),
        HwConfig::new(
            "Over-estimate sp",
            BudgetPolicy::EvenSlowdown,
            false,
            one_as_ep(),
        ),
        HwConfig::new(
            "Over-estimate sp, with feedback",
            BudgetPolicy::EvenSlowdown,
            true,
            one_as_ep(),
        ),
    ]
}

/// Run with the requested number of trials (paper: 6).
pub fn run(trials: usize, seed: u64) -> Result<Vec<HwBar>> {
    run_configs(&configs(), trials, seed)
}

/// [`run`] with an explicit telemetry sink shared by all trials.
pub fn run_with(trials: usize, seed: u64, telemetry: &Telemetry) -> Result<Vec<HwBar>> {
    run_configs_with(&configs(), trials, seed, telemetry)
}

/// [`run_with`] plus an optional causal tracer shared by all trials
/// (the `--trace <dir>` path).
pub fn run_traced(
    trials: usize,
    seed: u64,
    telemetry: &Telemetry,
    tracer: Option<&Tracer>,
) -> Result<Vec<HwBar>> {
    run_configs_traced(&configs(), trials, seed, telemetry, tracer)
}

/// [`run_traced`] with an explicit worker count for the trial fan-out
/// (0 = resolve from `ANOR_JOBS` / available parallelism); output is
/// identical for every value.
pub fn run_pooled(
    trials: usize,
    seed: u64,
    telemetry: &Telemetry,
    tracer: Option<&Tracer>,
    jobs: usize,
) -> Result<Vec<HwBar>> {
    run_configs_pooled(&configs(), trials, seed, telemetry, tracer, jobs)
}

/// [`run_pooled`] with an optional chaos [`FaultPlan`] injected into
/// every trial's emulated transport (the `--faults <spec>` path).
pub fn run_chaos(
    trials: usize,
    seed: u64,
    telemetry: &Telemetry,
    tracer: Option<&Tracer>,
    jobs: usize,
    faults: Option<&FaultPlan>,
) -> Result<Vec<HwBar>> {
    run_configs_chaos(&configs(), trials, seed, telemetry, tracer, jobs, faults)
}

/// [`run_chaos`] plus an optional flight-recording directory (the
/// `--record <dir>` path): every (configuration, trial) cell's budgeter
/// is recorded into `<dir>/<label>-c<ci>-t<trial>.rec` for
/// `anor-replay --verify`.
#[allow(clippy::too_many_arguments)]
pub fn run_recorded(
    trials: usize,
    seed: u64,
    telemetry: &Telemetry,
    tracer: Option<&Tracer>,
    jobs: usize,
    faults: Option<&FaultPlan>,
    record_dir: Option<&std::path::Path>,
) -> Result<Vec<HwBar>> {
    run_configs_recorded(
        &configs(),
        trials,
        seed,
        telemetry,
        tracer,
        jobs,
        faults,
        record_dir,
    )
}

/// Run the figure with every optional knob — including the budgeter's
/// connection plane — in one [`HwRunOptions`]. The figure binaries call
/// this; the positional variants above remain for older callers.
pub fn run_opts(trials: usize, seed: u64, opts: &HwRunOptions) -> Result<Vec<HwBar>> {
    run_configs_opts(&configs(), trials, seed, opts)
}

#[cfg(test)]
mod tests {
    use super::super::hw::bar;
    use super::*;

    #[test]
    fn overestimating_one_sp_slows_its_coscheduled_sibling() {
        let bars = run(1, 5).unwrap();
        // Misclassifying one low-sensitivity job steals power from the
        // correctly classified sibling (small slowdown shift, Fig. 8).
        let aware = bar(&bars, "Performance Aware");
        let over = bar(&bars, "Over-estimate sp");
        let fed = bar(&bars, "Over-estimate sp, with feedback");
        let correctly_classified = |b: &super::super::hw::HwBar| {
            b.jobs.iter().find(|(n, _, _)| !n.contains('=')).unwrap().1
        };
        let base = correctly_classified(aware);
        let hurt = correctly_classified(over);
        let recovered = correctly_classified(fed);
        assert!(
            hurt >= base - 0.5,
            "sibling should not speed up: {hurt} vs {base}"
        );
        assert!(
            recovered <= hurt + 0.5,
            "feedback should not make it worse: {recovered} vs {hurt}"
        );
        // Slowdowns stay small for the insensitive SP pair (y axis tops
        // out around 6% in the figure).
        for b in &bars {
            for (name, y, _) in &b.jobs {
                assert!(*y < 15.0, "{}/{name}: slowdown {y}% too large", b.label);
            }
        }
    }
}
