//! Fig. 11: 90th-percentile QoS degradation under different levels of
//! per-node performance variation, on a simulated 1000-node cluster
//! (Section 6.4): coefficients ~ N(1, σ) drawn per node per trial, 10
//! trials per level, 6 job types at 75% utilization, jobs scaled to 25×
//! the node counts of the 16-node experiments, QoS target Q = 5.

use crate::render::Series;
use anor_aqa::{poisson_schedule, PowerTarget, RegulationSignal};
use anor_exec::ExecPool;
use anor_platform::PerformanceVariation;
use anor_sim::{SimConfig, SimPowerPolicy, TabularSim};
use anor_types::stats::OnlineStats;
use anor_types::{QosDegradation, Result, Seconds, Watts};

/// Scenario parameters.
#[derive(Debug, Clone)]
pub struct Fig11Config {
    /// Cluster size (paper: 1000).
    pub nodes: u32,
    /// Trials per variation level (paper: 10).
    pub trials: usize,
    /// Variation levels as "99% of performance within ±X%".
    pub levels: Vec<f64>,
    /// Target utilization (paper: 75%).
    pub utilization: f64,
    /// Arrival horizon per trial.
    pub horizon: Seconds,
    /// Power-capping policy.
    pub policy: SimPowerPolicy,
    /// Determinism seed.
    pub seed: u64,
    /// Worker threads for the level × trial fan-out (0 = resolve from
    /// `ANOR_JOBS` / available parallelism). Output is identical for
    /// every value: trial seeds are independent of execution order and
    /// aggregation runs serially over submission-ordered results.
    pub jobs: usize,
}

impl Default for Fig11Config {
    fn default() -> Self {
        Fig11Config {
            nodes: 1000,
            trials: 10,
            levels: vec![0.0, 7.5, 15.0, 22.5, 30.0],
            utilization: 0.75,
            horizon: Seconds(7200.0),
            policy: SimPowerPolicy::Uniform,
            seed: 11,
            jobs: 0,
        }
    }
}

impl Fig11Config {
    /// A scaled-down configuration for tests and smoke runs.
    pub fn quick() -> Self {
        Fig11Config {
            nodes: 120,
            trials: 2,
            levels: vec![0.0, 30.0],
            horizon: Seconds(1800.0),
            ..Fig11Config::default()
        }
    }
}

/// The figure's data plus the tracking sanity check the paper reports
/// ("under each level of performance variation, our method's power
/// tracking error is within our constraint").
#[derive(Debug, Clone)]
pub struct Fig11Output {
    /// One series per job type: x = level (%), y = mean over trials of
    /// the 90th-percentile QoS degradation, err = 90% CI half-width.
    pub series: Vec<Series>,
    /// Per-level fraction of trials meeting the 30%/90% tracking
    /// constraint.
    pub tracking_ok_fraction: Vec<(f64, f64)>,
}

/// Run the sweep.
pub fn run(cfg: &Fig11Config) -> Result<Fig11Output> {
    // Scale node footprints proportionally to cluster size (paper: 25×
    // for 1000 nodes). Integer scale, at least 1.
    let scale = (cfg.nodes as f64 / 40.0).round().max(1.0) as u32;
    let scfg_proto = {
        let catalog = anor_types::standard_catalog().scale_nodes(scale);
        let types = catalog.long_running();
        SimConfig {
            total_nodes: cfg.nodes,
            idle_power: Watts(90.0),
            catalog,
            types,
            tick: Seconds(1.0),
            policy: cfg.policy,
            qos: anor_types::QosConstraint::default(),
            qos_risk_threshold: 0.8,
        }
    };
    // Demand-response bid sized to expected draw.
    let mean_draw: f64 = scfg_proto
        .types
        .iter()
        .map(|&id| scfg_proto.catalog[id].max_draw.value())
        .sum::<f64>()
        / scfg_proto.types.len() as f64;
    // Bid like AQA does: search (P̄, R) by simulating the expected
    // scenario (Section 4.4.2), falling back to a deflated physical
    // estimate if no candidate satisfies the constraints. The budgeter
    // tracks by capping *down*, so the average must sit below the
    // cluster's free-running power.
    let fallback_avg =
        Watts(cfg.nodes as f64 * (cfg.utilization * mean_draw + (1.0 - cfg.utilization) * 90.0))
            * 0.85;
    let mut bid_cfg =
        crate::bidding::BiddingConfig::new(scfg_proto.clone(), cfg.utilization, cfg.seed ^ 0xb1dd);
    bid_cfg.horizon = (cfg.horizon * 0.5).max(Seconds(1800.0));
    bid_cfg.grid_steps = 4;
    bid_cfg.jobs = cfg.jobs;
    let bid = crate::bidding::choose_hourly_bid(&bid_cfg)?;
    let (avg, reserve) = match bid {
        Some(b) => (b.avg_power, b.reserve),
        None => (fallback_avg, fallback_avg * 0.12),
    };
    let type_names: Vec<String> = scfg_proto
        .types
        .iter()
        .map(|&id| scfg_proto.catalog[id].name.clone())
        .collect();
    let mut per_type_stats: Vec<Vec<OnlineStats>> =
        vec![vec![OnlineStats::new(); cfg.levels.len()]; type_names.len()];
    let mut tracking_ok = vec![0usize; cfg.levels.len()];
    // Fan the (level, trial) grid out over the pool. Each trial's seed is
    // a pure function of its grid position, and the pool returns results
    // in submission order, so the serial aggregation below sees exactly
    // the sequence the old nested loop produced.
    let grid: Vec<(usize, usize)> = (0..cfg.levels.len())
        .flat_map(|li| (0..cfg.trials).map(move |trial| (li, trial)))
        .collect();
    let trial_outcomes = ExecPool::new(cfg.jobs).map(&grid, |&(li, trial)| {
        let level = cfg.levels[li];
        let seed = cfg.seed ^ ((li as u64) << 16) ^ ((trial as u64) << 32);
        let variation = PerformanceVariation::with_level_percent(cfg.nodes as usize, level, seed);
        let schedule = poisson_schedule(
            &scfg_proto.catalog,
            &scfg_proto.types,
            cfg.utilization,
            cfg.nodes,
            cfg.horizon,
            seed ^ 0xa11,
        );
        let target = PowerTarget {
            avg,
            reserve,
            signal: RegulationSignal::random_walk(
                Seconds(4.0),
                0.35,
                cfg.horizon + Seconds(7200.0),
                seed ^ 0x9e9,
            ),
        };
        let mut sim = TabularSim::new(scfg_proto.clone(), target, &variation, schedule, None);
        // Tracking judged over the warm window only; the drain tail
        // (arrivals stopped) is excluded by freeze.
        sim.run_with_warmup(cfg.horizon * 0.1, cfg.horizon, cfg.horizon * 2.0);
        sim.outcome()
    });
    for (&(li, _), out) in grid.iter().zip(&trial_outcomes) {
        if out.tracking_within_30 >= 0.90 {
            tracking_ok[li] += 1;
        }
        for (ti, name) in type_names.iter().enumerate() {
            let qs: Vec<QosDegradation> = out
                .qos_by_type
                .iter()
                .filter(|(id, _)| &scfg_proto.catalog[*id].name == name)
                .flat_map(|(_, v)| v.iter().copied())
                .collect();
            if let Some(p90) = scfg_proto.qos.percentile_degradation(&qs) {
                per_type_stats[ti][li].push(p90);
            }
        }
    }
    let series = type_names
        .iter()
        .enumerate()
        .map(|(ti, name)| {
            let mut s = Series::new(name.split('.').next().unwrap_or(name).to_string());
            for (li, &level) in cfg.levels.iter().enumerate() {
                let st = &per_type_stats[ti][li];
                // 90% CI half-width (z = 1.645), matching the figure's
                // shaded region.
                let ci = if st.count() >= 2 {
                    1.645 * st.std_dev() / (st.count() as f64).sqrt()
                } else {
                    0.0
                };
                s.push(level, st.mean(), ci);
            }
            s
        })
        .collect();
    let tracking_ok_fraction = cfg
        .levels
        .iter()
        .zip(tracking_ok)
        .map(|(&l, ok)| (l, ok as f64 / cfg.trials as f64))
        .collect();
    Ok(Fig11Output {
        series,
        tracking_ok_fraction,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variation_increases_qos_degradation() {
        let out = run(&Fig11Config::quick()).unwrap();
        assert_eq!(out.series.len(), 6);
        // Across types on average, the ±30% level must degrade QoS more
        // than the 0% level.
        let mean_at = |x: f64| {
            let ys: Vec<f64> = out.series.iter().filter_map(|s| s.y_at(x)).collect();
            ys.iter().sum::<f64>() / ys.len() as f64
        };
        let q0 = mean_at(0.0);
        let q30 = mean_at(30.0);
        assert!(q30 > q0, "±30% variation must degrade QoS: {q30} vs {q0}");
        assert_eq!(out.tracking_ok_fraction.len(), 2);
    }
}
