//! Fig. 3: execution time of each job type under varied power caps,
//! relative to the time at a 280 W node cap; error bars are the standard
//! deviation over repeated runs (the paper uses 10).

use crate::render::Series;
use anor_platform::SyntheticWorkload;
use anor_types::stats::{mean, std_dev};
use anor_types::{standard_catalog, Watts};

/// Run the characterization sweep: `runs` repetitions per (type, cap).
/// Returns one series per job type with x = cap (W), y = relative time,
/// err = σ of relative time.
pub fn run(runs: usize, seed: u64) -> Vec<Series> {
    assert!(runs >= 1);
    let catalog = standard_catalog();
    let caps: Vec<f64> = (0..8).map(|i| 140.0 + 20.0 * i as f64).collect();
    let mut out = Vec::new();
    for spec in catalog.iter() {
        // Reference: mean uncapped (280 W) execution time.
        let t_ref = mean(
            &(0..runs)
                .map(|r| {
                    let mut w = SyntheticWorkload::new(spec.clone(), 1.0, seed ^ (r as u64) << 8);
                    w.run_to_completion(Watts(280.0)).value()
                })
                .collect::<Vec<f64>>(),
        );
        let mut series = Series::new(spec.name.clone());
        for &cap in &caps {
            let ts: Vec<f64> = (0..runs)
                .map(|r| {
                    let mut w = SyntheticWorkload::new(
                        spec.clone(),
                        1.0,
                        seed ^ ((r as u64) << 8) ^ ((cap as u64) << 20),
                    );
                    w.run_to_completion(Watts(cap)).value() / t_ref
                })
                .collect();
            series.push(cap, mean(&ts), std_dev(&ts));
        }
        out.push(series);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_match_figure_3() {
        let series = run(3, 7);
        assert_eq!(series.len(), 8);
        for s in &series {
            // Relative time at 280 W ~ 1.
            let top = s.y_at(280.0).unwrap();
            assert!((top - 1.0).abs() < 0.1, "{}: top {top}", s.label);
            // Monotone-ish increase toward 140 W; y stays in Fig. 3's
            // plotted band.
            let bottom = s.y_at(140.0).unwrap();
            assert!(bottom >= top - 0.05, "{}: {bottom} < {top}", s.label);
            assert!(bottom < 2.0, "{}: bottom {bottom}", s.label);
        }
        // Ordering: EP most sensitive, IS least (Fig. 5's casting).
        let at140 = |name: &str| {
            series
                .iter()
                .find(|s| s.label.starts_with(name))
                .unwrap()
                .y_at(140.0)
                .unwrap()
        };
        assert!(at140("ep") > at140("ft"));
        assert!(at140("ft") > at140("is"));
        assert!(at140("bt") > at140("sp"));
    }
}
