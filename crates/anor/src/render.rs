//! Plain-text rendering of experiment output.
//!
//! The benchmark harness prints each figure's data as aligned text tables
//! (the "same rows/series the paper reports"); these helpers keep the
//! formatting consistent across the `fig*` binaries.

/// A labelled data series: `(x, y, err)` triples.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// Points: x, y, and a symmetric error (0 when not applicable).
    pub points: Vec<(f64, f64, f64)>,
}

impl Series {
    /// A new empty series.
    pub fn new(label: impl Into<String>) -> Self {
        Series {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// Append a point with error.
    pub fn push(&mut self, x: f64, y: f64, err: f64) {
        self.points.push((x, y, err));
    }

    /// The y value at a given x (exact match), if present.
    pub fn y_at(&self, x: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|(px, _, _)| (px - x).abs() < 1e-9)
            .map(|&(_, y, _)| y)
    }

    /// Largest y in the series.
    pub fn y_max(&self) -> f64 {
        self.points
            .iter()
            .map(|&(_, y, _)| y)
            .fold(f64::NAN, f64::max)
    }
}

/// Render a group of series as a wide table: one row per x, one column
/// per series, `value±err` cells.
pub fn render_table(title: &str, x_label: &str, series: &[Series]) -> String {
    let mut out = String::new();
    out.push_str(&format!("# {title}\n"));
    // Collect the union of x values in first-seen order.
    let mut xs: Vec<f64> = Vec::new();
    for s in series {
        for &(x, _, _) in &s.points {
            if !xs.iter().any(|&v| (v - x).abs() < 1e-9) {
                xs.push(x);
            }
        }
    }
    out.push_str(&format!("{x_label:>12}"));
    for s in series {
        out.push_str(&format!(" {:>22}", s.label));
    }
    out.push('\n');
    for &x in &xs {
        out.push_str(&format!("{x:>12.1}"));
        for s in series {
            match s.points.iter().find(|(px, _, _)| (px - x).abs() < 1e-9) {
                Some(&(_, y, e)) if e > 0.0 => out.push_str(&format!(" {:>14.4}±{:<7.4}", y, e)),
                Some(&(_, y, _)) => out.push_str(&format!(" {y:>22.4}")),
                None => out.push_str(&format!(" {:>22}", "-")),
            }
        }
        out.push('\n');
    }
    out
}

/// Render labelled scalar rows (`label: value±err`), for bar-chart-like
/// figures.
pub fn render_bars(title: &str, rows: &[(String, f64, f64)]) -> String {
    let mut out = String::new();
    out.push_str(&format!("# {title}\n"));
    let width = rows.iter().map(|(l, _, _)| l.len()).max().unwrap_or(0);
    for (label, y, e) in rows {
        if *e > 0.0 {
            out.push_str(&format!("{label:>width$}  {y:.4} ± {e:.4}\n"));
        } else {
            out.push_str(&format!("{label:>width$}  {y:.4}\n"));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_accessors() {
        let mut s = Series::new("bt");
        s.push(140.0, 1.75, 0.02);
        s.push(280.0, 1.0, 0.01);
        assert_eq!(s.y_at(140.0), Some(1.75));
        assert_eq!(s.y_at(200.0), None);
        assert_eq!(s.y_max(), 1.75);
    }

    #[test]
    fn table_renders_union_of_xs() {
        let mut a = Series::new("a");
        a.push(1.0, 10.0, 0.0);
        a.push(2.0, 20.0, 0.5);
        let mut b = Series::new("b");
        b.push(2.0, 200.0, 0.0);
        let t = render_table("T", "x", &[a, b]);
        assert!(t.contains("# T"));
        assert!(t.lines().count() == 4, "{t}");
        assert!(t.contains('-'), "missing cell placeholder");
        assert!(t.contains("±"), "error cell rendered");
    }

    #[test]
    fn bars_render() {
        let rows = vec![
            ("Performance Agnostic".to_string(), 0.15, 0.01),
            ("Performance Aware".to_string(), 0.08, 0.0),
        ];
        let t = render_bars("Fig", &rows);
        assert!(t.contains("0.1500 ± 0.0100"));
        assert!(t.contains("0.0800"));
    }
}
