//! AQA queue-weight training, wired to the tabular simulator.
//!
//! Section 4.4.2: "Each queue is assigned a weight of node allocations
//! that is tuned over simulations of expected power-constraint and
//! job-submission scenarios." Candidate weight vectors come from
//! [`anor_aqa::weight_candidates`]; each is judged by replaying the
//! expected scenario in [`TabularSim`] and checking the QoS constraint
//! per queue plus the tracking constraint, minimizing the mean QoS
//! degradation among feasible candidates.
//!
//! Unknown job types in the forecast are stood in by
//! [`anor_aqa::UnknownJobSampler`] (declared time kept, power identity
//! sampled from known types), exactly as the paper trains AQA before
//! those types have been characterized.

use anor_aqa::{
    poisson_schedule, search_weights, weight_candidates, PowerTarget, RegulationSignal,
    TrackingConstraint, WeightEvaluation,
};
use anor_platform::PerformanceVariation;
use anor_sim::{SimConfig, TabularSim};
use anor_types::{QosDegradation, Result, Seconds};

/// Configuration of a weight-training pass.
#[derive(Debug, Clone)]
pub struct TrainingConfig {
    /// The simulated cluster scenario.
    pub sim: SimConfig,
    /// Expected utilization of the scenario.
    pub utilization: f64,
    /// The committed demand-response operating point during training.
    pub target: PowerTarget,
    /// Evaluation horizon per candidate.
    pub horizon: Seconds,
    /// Number of random candidate perturbations around uniform.
    pub candidates: usize,
    /// Perturbation spread in `[0, 1)`.
    pub spread: f64,
    /// Tracking constraint candidates must satisfy.
    pub tracking: TrackingConstraint,
    /// Determinism seed.
    pub seed: u64,
}

impl TrainingConfig {
    /// A training pass over a simulated cluster at a given utilization.
    pub fn new(sim: SimConfig, utilization: f64, seed: u64) -> Self {
        let nodes = sim.total_nodes as f64;
        TrainingConfig {
            sim,
            utilization,
            target: PowerTarget {
                avg: anor_types::Watts(nodes * 180.0),
                reserve: anor_types::Watts(nodes * 25.0),
                signal: RegulationSignal::random_walk(
                    Seconds(4.0),
                    0.35,
                    Seconds(20_000.0),
                    seed ^ 0x7e1,
                ),
            },
            horizon: Seconds(1500.0),
            candidates: 12,
            spread: 0.6,
            tracking: TrackingConstraint::default(),
            seed,
        }
    }
}

/// Evaluate one candidate weight vector by simulation.
pub fn evaluate_weights(cfg: &TrainingConfig, weights: &[f64]) -> WeightEvaluation {
    let schedule = poisson_schedule(
        &cfg.sim.catalog,
        &cfg.sim.types,
        cfg.utilization,
        cfg.sim.total_nodes,
        cfg.horizon,
        cfg.seed,
    );
    let variation = PerformanceVariation::none(cfg.sim.total_nodes as usize);
    let mut sim = TabularSim::new(
        cfg.sim.clone(),
        cfg.target.clone(),
        &variation,
        schedule,
        Some(weights.to_vec()),
    );
    sim.run_with_warmup(cfg.horizon * 0.2, cfg.horizon, cfg.horizon * 2.0);
    let out = sim.outcome();
    // QoS must hold for *every* queue (AQA's per-type assurance).
    let mut qos_ok = true;
    let mut degradations: Vec<f64> = Vec::new();
    for (_, qs) in &out.qos_by_type {
        if !cfg.sim.qos.satisfied_by(qs) {
            qos_ok = false;
        }
        degradations.extend(qs.iter().map(QosDegradation::degradation));
    }
    let mean_q = if degradations.is_empty() {
        0.0
    } else {
        degradations.iter().sum::<f64>() / degradations.len() as f64
    };
    WeightEvaluation {
        qos_ok,
        tracking_ok: out.tracking_within_30 >= cfg.tracking.probability,
        cost: mean_q,
    }
}

/// Train queue weights for the scenario. Returns the winning weight
/// vector, or uniform weights when no candidate is feasible (with a
/// `false` flag so the caller can react).
pub fn train_weights(cfg: &TrainingConfig) -> Result<(Vec<f64>, bool)> {
    let candidates = weight_candidates(
        cfg.sim.catalog.len(),
        cfg.candidates,
        cfg.spread,
        cfg.seed ^ 0x77,
    );
    match search_weights(&candidates, |w| evaluate_weights(cfg, w)) {
        Some(w) => Ok((w, true)),
        None => Ok((vec![1.0; cfg.sim.catalog.len()], false)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anor_aqa::UnknownJobSampler;
    use anor_sim::SimPowerPolicy;
    use anor_types::{standard_catalog, Watts};

    fn small_cfg(seed: u64) -> TrainingConfig {
        let catalog = standard_catalog();
        let types = catalog.long_running();
        let sim = SimConfig {
            total_nodes: 24,
            idle_power: Watts(90.0),
            catalog,
            types,
            tick: Seconds(1.0),
            policy: SimPowerPolicy::Uniform,
            qos: Default::default(),
            qos_risk_threshold: 0.8,
        };
        let mut cfg = TrainingConfig::new(sim, 0.6, seed);
        cfg.horizon = Seconds(900.0);
        cfg.candidates = 6;
        // Small-cluster granularity: relax tracking as in bidding tests.
        cfg.tracking.probability = 0.5;
        cfg
    }

    #[test]
    fn training_returns_feasible_weights() {
        let cfg = small_cfg(3);
        let (weights, feasible) = train_weights(&cfg).unwrap();
        assert_eq!(weights.len(), cfg.sim.catalog.len());
        assert!(weights.iter().all(|&w| w > 0.0));
        assert!(feasible, "a moderate scenario must be trainable");
        // The winner's evaluation is indeed feasible.
        let e = evaluate_weights(&cfg, &weights);
        assert!(e.qos_ok && e.tracking_ok);
    }

    #[test]
    fn infeasible_scenario_falls_back_to_uniform() {
        let mut cfg = small_cfg(5);
        // Impossible tracking bar.
        cfg.tracking = TrackingConstraint {
            limit: 0.0001,
            probability: 1.0,
        };
        let (weights, feasible) = train_weights(&cfg).unwrap();
        assert!(!feasible);
        assert!(weights.iter().all(|&w| w == 1.0));
    }

    #[test]
    fn unknown_types_can_join_the_training_catalog() {
        // The paper's unknown-type flow: sample a stand-in, add it to the
        // catalog, and train over the extended queue set.
        let mut catalog = standard_catalog();
        let mut sampler = UnknownJobSampler::new(&catalog, 9).unwrap();
        let stand_in = sampler.sample("userapp.X.32", Seconds(200.0), 1);
        let new_id = catalog.push(stand_in);
        let mut types = catalog.long_running();
        if !types.contains(&new_id) {
            types.push(new_id);
        }
        let sim = SimConfig {
            total_nodes: 24,
            idle_power: Watts(90.0),
            catalog,
            types,
            tick: Seconds(1.0),
            policy: SimPowerPolicy::Uniform,
            qos: Default::default(),
            qos_risk_threshold: 0.8,
        };
        let mut cfg = TrainingConfig::new(sim, 0.6, 11);
        cfg.horizon = Seconds(700.0);
        cfg.candidates = 3;
        cfg.tracking.probability = 0.3;
        let (weights, _) = train_weights(&cfg).unwrap();
        // One weight per catalog entry, including the synthetic type.
        assert_eq!(weights.len(), cfg.sim.catalog.len());
    }
}
