//! Power-tracking error accounting.
//!
//! Section 4.4.2: "We set a power-tracking constraint allowing no more
//! than 30% error for at least 90% of the time. Error is calculated as
//! distance between the measured power and the target power, divided by
//! the reserve."

use anor_telemetry::{Histogram, Telemetry};
use anor_types::stats::percentile;
use anor_types::Watts;

/// The probabilistic tracking constraint.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrackingConstraint {
    /// Maximum tolerated error as a fraction of reserve (paper: 0.30).
    pub limit: f64,
    /// Required fraction of time under the limit (paper: 0.90).
    pub probability: f64,
}

impl Default for TrackingConstraint {
    fn default() -> Self {
        TrackingConstraint {
            limit: 0.30,
            probability: 0.90,
        }
    }
}

/// Accumulates (target, measured) pairs and reports error statistics.
///
/// ```
/// use anor_aqa::{TrackingConstraint, TrackingRecorder};
/// use anor_types::Watts;
///
/// let mut rec = TrackingRecorder::new(Watts(100_000.0)); // 100 kW reserve
/// // The paper's example: a 10 kW miss against a 100 kW reserve = 10%.
/// let err = rec.push(Watts(500_000.0), Watts(510_000.0));
/// assert!((err - 0.10).abs() < 1e-12);
/// assert!(rec.satisfies(&TrackingConstraint::default()));
/// ```
#[derive(Debug, Clone)]
pub struct TrackingRecorder {
    reserve: Watts,
    errors: Vec<f64>,
    stream: Option<Histogram>,
}

impl TrackingRecorder {
    /// Recorder for a commitment with the given reserve.
    pub fn new(reserve: Watts) -> Self {
        assert!(reserve.value() > 0.0, "reserve must be positive");
        TrackingRecorder {
            reserve,
            errors: Vec::new(),
            stream: None,
        }
    }

    /// Stream every recorded error into the `tracking_error` histogram
    /// on `telemetry` as well (the end-of-run summary then shows the
    /// same percentiles [`TrackingRecorder::percentile_error`] computes).
    pub fn attach_telemetry(&mut self, telemetry: &Telemetry) {
        self.stream = Some(telemetry.histogram("tracking_error", &[]));
    }

    /// Record one sample; returns the error it contributed.
    /// Example from the paper: reserve 100 kW, |measured − target| =
    /// 10 kW → error 10%.
    pub fn push(&mut self, target: Watts, measured: Watts) -> f64 {
        let e = (measured - target).abs() / self.reserve;
        self.errors.push(e);
        if let Some(h) = &self.stream {
            h.observe(e);
        }
        e
    }

    /// Number of samples recorded.
    pub fn len(&self) -> usize {
        self.errors.len()
    }

    /// True when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.errors.is_empty()
    }

    /// Fraction of samples with error ≤ `limit` (1.0 when empty).
    pub fn fraction_within(&self, limit: f64) -> f64 {
        if self.errors.is_empty() {
            return 1.0;
        }
        self.errors.iter().filter(|&&e| e <= limit).count() as f64 / self.errors.len() as f64
    }

    /// The `p`-th percentile error (the paper reports "under 24% error at
    /// least 90% of the time" = 90th percentile error 0.24).
    pub fn percentile_error(&self, p: f64) -> f64 {
        if self.errors.is_empty() {
            return 0.0;
        }
        percentile(&self.errors, p)
    }

    /// Mean error across all samples.
    pub fn mean_error(&self) -> f64 {
        if self.errors.is_empty() {
            return 0.0;
        }
        self.errors.iter().sum::<f64>() / self.errors.len() as f64
    }

    /// Does the recorded history satisfy a tracking constraint?
    pub fn satisfies(&self, c: &TrackingConstraint) -> bool {
        self.fraction_within(c.limit) >= c.probability
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example() {
        // Reserve 100 kW, 10 kW miss -> 10% error.
        let mut r = TrackingRecorder::new(Watts(100_000.0));
        let e = r.push(Watts(500_000.0), Watts(510_000.0));
        assert!((e - 0.10).abs() < 1e-12);
    }

    #[test]
    fn constraint_satisfaction() {
        let mut r = TrackingRecorder::new(Watts(100.0));
        // 9 perfect samples, 1 terrible one: 90% within -> satisfied.
        for _ in 0..9 {
            r.push(Watts(1000.0), Watts(1000.0));
        }
        r.push(Watts(1000.0), Watts(1100.0)); // 100% error
        let c = TrackingConstraint::default();
        assert!(r.satisfies(&c));
        // One more bad sample: 9/11 < 90% -> violated.
        r.push(Watts(1000.0), Watts(900.0));
        assert!(!r.satisfies(&c));
    }

    #[test]
    fn percentile_and_mean() {
        let mut r = TrackingRecorder::new(Watts(100.0));
        for i in 1..=10 {
            // Errors 0.01..=0.10.
            r.push(Watts(0.0), Watts(i as f64));
        }
        assert!((r.mean_error() - 0.055).abs() < 1e-12);
        assert!((r.percentile_error(90.0) - 0.091).abs() < 1e-9);
        assert_eq!(r.len(), 10);
    }

    #[test]
    fn empty_recorder_is_vacuously_fine() {
        let r = TrackingRecorder::new(Watts(10.0));
        assert!(r.is_empty());
        assert_eq!(r.fraction_within(0.3), 1.0);
        assert_eq!(r.percentile_error(90.0), 0.0);
        assert_eq!(r.mean_error(), 0.0);
        assert!(r.satisfies(&TrackingConstraint::default()));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_reserve_rejected() {
        TrackingRecorder::new(Watts(0.0));
    }

    #[test]
    fn percentile_error_endpoints_are_exact() {
        let mut r = TrackingRecorder::new(Watts(100.0));
        for i in 1..=10 {
            r.push(Watts(0.0), Watts(i as f64)); // errors 0.01..=0.10
        }
        // p=0 is the minimum error, p=100 the maximum — no interpolation.
        assert_eq!(r.percentile_error(0.0), 0.01);
        assert_eq!(r.percentile_error(100.0), 0.10);
        // Out-of-range ranks clamp to the endpoints.
        assert_eq!(r.percentile_error(-5.0), 0.01);
        assert_eq!(r.percentile_error(150.0), 0.10);
    }

    #[test]
    fn attached_telemetry_streams_every_error() {
        use anor_telemetry::Telemetry;
        let telemetry = Telemetry::new();
        let mut r = TrackingRecorder::new(Watts(100.0));
        r.attach_telemetry(&telemetry);
        for i in 1..=4 {
            r.push(Watts(0.0), Watts(10.0 * i as f64));
        }
        let hist = telemetry.histogram("tracking_error", &[]);
        assert_eq!(hist.count(), 4);
        // Max streamed error is 40/100 = 0.4, same as the recorder's own view.
        assert!((hist.quantile(1.0) - r.percentile_error(100.0)).abs() < 1e-12);
    }

    #[test]
    fn error_is_symmetric() {
        let mut r = TrackingRecorder::new(Watts(50.0));
        let over = r.push(Watts(100.0), Watts(120.0));
        let under = r.push(Watts(100.0), Watts(80.0));
        assert_eq!(over, under);
        assert!((over - 0.4).abs() < 1e-12);
    }
}
