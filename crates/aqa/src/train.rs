//! AQA training: queue weights and unknown-job-type handling.
//!
//! Section 4.4.2: "AQA models job types as a collection of work queues.
//! Each queue is assigned a weight of node allocations that is tuned over
//! simulations of expected power-constraint and job-submission scenarios.
//! ... AQA searches for queue weights and demand response bids (average
//! power and reserve) that reduce electricity cost under constraints for
//! QoS and power-tracking error."
//!
//! And for types not yet known when AQA is trained: "For each unknown job
//! type in the user submission queue during AQA training, we simulate a
//! known minimum execution time (which may be provided at launch time,
//! similar to setting a job's time limit). We simulate the job's
//! achievable power-demand range and maximum slowdown (i.e., at the
//! minimum power cap) to be randomly sampled from those of known job
//! types." [`UnknownJobSampler`] implements exactly that sampling.
//!
//! The weight search is evaluator-agnostic (like [`crate::bid`]): a
//! caller-supplied closure judges each candidate weight vector, usually
//! by running the tabular simulator.

use anor_types::{Catalog, JobTypeId, JobTypeSpec, Result, Seconds};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// What the evaluator reports about one candidate weight vector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeightEvaluation {
    /// Does the QoS constraint hold for every queue?
    pub qos_ok: bool,
    /// Does the power-tracking constraint hold?
    pub tracking_ok: bool,
    /// Objective to minimize among feasible candidates (e.g. electricity
    /// cost, or mean QoS degradation as a tiebreaker).
    pub cost: f64,
}

/// A candidate generator for queue-weight vectors: the uniform vector
/// plus `perturbations` random positive perturbations around it.
pub fn weight_candidates(
    n_queues: usize,
    perturbations: usize,
    spread: f64,
    seed: u64,
) -> Vec<Vec<f64>> {
    assert!(n_queues >= 1);
    assert!((0.0..1.0).contains(&spread), "spread must be in [0, 1)");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = vec![vec![1.0; n_queues]];
    for _ in 0..perturbations {
        let w: Vec<f64> = (0..n_queues)
            .map(|_| 1.0 + spread * (2.0 * rng.gen::<f64>() - 1.0))
            .collect();
        out.push(w);
    }
    out
}

/// Search candidate weight vectors for the cheapest feasible one.
/// Returns `None` when nothing is feasible (the caller then falls back to
/// uniform weights and flags the scenario).
pub fn search_weights(
    candidates: &[Vec<f64>],
    mut evaluate: impl FnMut(&[f64]) -> WeightEvaluation,
) -> Option<Vec<f64>> {
    let mut best: Option<(f64, &Vec<f64>)> = None;
    for cand in candidates {
        let e = evaluate(cand);
        if !(e.qos_ok && e.tracking_ok) {
            continue;
        }
        if best.is_none_or(|(c, _)| e.cost < c) {
            best = Some((e.cost, cand));
        }
    }
    best.map(|(_, w)| w.clone())
}

/// Synthesizes stand-in specs for job types unknown at training time, per
/// Section 4.4.2: the declared minimum execution time is kept, while the
/// power-demand range and maximum slowdown are sampled from known types.
#[derive(Debug)]
pub struct UnknownJobSampler {
    known: Vec<JobTypeSpec>,
    rng: StdRng,
}

impl UnknownJobSampler {
    /// Build over the known types of a catalog.
    pub fn new(catalog: &Catalog, seed: u64) -> Result<Self> {
        if catalog.is_empty() {
            return Err(anor_types::AnorError::config(
                "cannot sample unknown jobs from an empty catalog",
            ));
        }
        Ok(UnknownJobSampler {
            known: catalog.iter().cloned().collect(),
            rng: StdRng::seed_from_u64(seed),
        })
    }

    /// Synthesize a spec for an unknown type. `declared_min_time` is the
    /// user-provided minimum execution time (like a job time limit);
    /// `nodes` its declared footprint.
    pub fn sample(&mut self, name: &str, declared_min_time: Seconds, nodes: u32) -> JobTypeSpec {
        // Power-demand range donor and slowdown donor are drawn
        // independently, as the paper samples each property.
        let power_donor = self.known[self.rng.gen_range(0..self.known.len())].clone();
        let slowdown_donor = &self.known[self.rng.gen_range(0..self.known.len())];
        JobTypeSpec {
            id: JobTypeId(0), // assigned when pushed into a catalog
            name: name.to_string(),
            nodes,
            // Epoch granularity proportional to the declared time, so the
            // synthetic stand-in produces plausible feedback cadence.
            epochs: (declared_min_time.value() / 2.0).ceil().max(1.0) as u64,
            time_uncapped: declared_min_time,
            sensitivity: slowdown_donor.sensitivity,
            cap_range: power_donor.cap_range,
            max_draw: power_donor.max_draw,
            noise_sigma: slowdown_donor.noise_sigma,
            qos_limit: slowdown_donor.qos_limit,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anor_types::standard_catalog;

    #[test]
    fn candidates_include_uniform_and_stay_positive() {
        let cands = weight_candidates(6, 10, 0.8, 3);
        assert_eq!(cands.len(), 11);
        assert!(cands[0].iter().all(|&w| w == 1.0));
        for c in &cands {
            assert_eq!(c.len(), 6);
            assert!(c.iter().all(|&w| w > 0.0), "non-positive weight in {c:?}");
        }
    }

    #[test]
    fn search_picks_cheapest_feasible_vector() {
        let cands = weight_candidates(3, 20, 0.5, 7);
        // Feasibility rule: first queue's weight must exceed 1.0; cost =
        // sum of weights.
        let best = search_weights(&cands, |w| WeightEvaluation {
            qos_ok: w[0] > 1.0,
            tracking_ok: true,
            cost: w.iter().sum(),
        });
        let best = best.expect("some candidate has w[0] > 1");
        assert!(best[0] > 1.0);
        // No cheaper feasible candidate exists.
        for c in &cands {
            if c[0] > 1.0 {
                assert!(c.iter().sum::<f64>() >= best.iter().sum::<f64>() - 1e-12);
            }
        }
    }

    #[test]
    fn search_returns_none_when_all_infeasible() {
        let cands = weight_candidates(2, 5, 0.3, 1);
        assert!(search_weights(&cands, |_| WeightEvaluation {
            qos_ok: false,
            tracking_ok: true,
            cost: 0.0,
        })
        .is_none());
    }

    #[test]
    fn unknown_sampler_keeps_declared_time_and_borrows_properties() {
        let catalog = standard_catalog();
        let mut sampler = UnknownJobSampler::new(&catalog, 5).unwrap();
        let spec = sampler.sample("mystery.X.64", Seconds(300.0), 2);
        assert_eq!(spec.name, "mystery.X.64");
        assert_eq!(spec.time_uncapped, Seconds(300.0));
        assert_eq!(spec.nodes, 2);
        // Sensitivity and draw must come from the known population.
        assert!(catalog
            .iter()
            .any(|t| (t.sensitivity - spec.sensitivity).abs() < 1e-12));
        assert!(catalog
            .iter()
            .any(|t| (t.max_draw.value() - spec.max_draw.value()).abs() < 1e-12));
        assert!(spec.epochs >= 1);
    }

    #[test]
    fn unknown_sampler_varies_across_draws() {
        let catalog = standard_catalog();
        let mut sampler = UnknownJobSampler::new(&catalog, 11).unwrap();
        let draws: Vec<f64> = (0..50)
            .map(|i| {
                sampler
                    .sample(&format!("u{i}"), Seconds(100.0), 1)
                    .sensitivity
            })
            .collect();
        let distinct = {
            let mut d = draws.clone();
            d.sort_by(f64::total_cmp);
            d.dedup_by(|a, b| (*a - *b).abs() < 1e-12);
            d.len()
        };
        assert!(distinct >= 3, "sampling should cover several donors");
    }

    #[test]
    fn empty_catalog_rejected() {
        let empty = Catalog::new();
        assert!(UnknownJobSampler::new(&empty, 1).is_err());
    }

    #[test]
    fn synthetic_spec_integrates_with_catalog() {
        let mut catalog = standard_catalog();
        let mut sampler = UnknownJobSampler::new(&catalog, 9).unwrap();
        let spec = sampler.sample("newapp.C.16", Seconds(250.0), 1);
        let id = catalog.push(spec);
        assert_eq!(catalog[id].name, "newapp.C.16");
        // The synthesized curve is well-formed.
        assert!(catalog[id]
            .curve()
            .is_monotone_decreasing_on(catalog[id].cap_range));
    }
}
