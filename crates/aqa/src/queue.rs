//! AQA's weighted work queues.
//!
//! Section 4.4.2: "AQA models job types as a collection of work queues.
//! Each queue is assigned a weight of node allocations that is tuned over
//! simulations... Compute nodes are allocated so that queues with greater
//! weight are assigned more nodes."
//!
//! [`QueueScheduler::select`] implements the allocation rule as deficit
//! scheduling: among the pending jobs that fit in the currently idle
//! nodes, start the one whose queue is furthest *below* its weighted node
//! share; ties break FCFS. The scheduler stays work-conserving — if only
//! over-share queues have pending work and nodes are idle, it still
//! schedules (unless the caller withholds nodes for power reasons).

use anor_types::{JobTypeId, Seconds};

/// A pending job as the scheduler sees it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PendingView {
    /// Which queue (job type) it belongs to.
    pub type_id: JobTypeId,
    /// Nodes the job needs.
    pub nodes: u32,
    /// Submission time (FCFS tie-break).
    pub submit: Seconds,
}

/// The weighted-queue node allocator.
#[derive(Debug, Clone)]
pub struct QueueScheduler {
    weights: Vec<f64>,
    total_nodes: u32,
}

impl QueueScheduler {
    /// Build with one weight per job type (indexed by [`JobTypeId`]).
    /// Weights are relative; they need not sum to 1.
    pub fn new(weights: Vec<f64>, total_nodes: u32) -> Self {
        assert!(!weights.is_empty(), "need at least one queue");
        assert!(
            weights.iter().all(|w| *w >= 0.0) && weights.iter().sum::<f64>() > 0.0,
            "weights must be non-negative with a positive sum"
        );
        QueueScheduler {
            weights,
            total_nodes,
        }
    }

    /// Equal weights across `n_types` queues.
    pub fn uniform(n_types: usize, total_nodes: u32) -> Self {
        QueueScheduler::new(vec![1.0; n_types], total_nodes)
    }

    /// Number of queues.
    pub fn queue_count(&self) -> usize {
        self.weights.len()
    }

    /// The node share a queue is entitled to.
    pub fn target_nodes(&self, q: JobTypeId) -> f64 {
        let total_w: f64 = self.weights.iter().sum();
        self.weights[q.index()] / total_w * self.total_nodes as f64
    }

    /// Pick the next pending job to start, given current per-queue node
    /// usage and the number of idle nodes. Returns the index into
    /// `pending`, or `None` when nothing fits.
    pub fn select(&self, pending: &[PendingView], usage: &[u32], idle: u32) -> Option<usize> {
        debug_assert_eq!(usage.len(), self.weights.len());
        let mut best: Option<(f64, Seconds, usize)> = None;
        for (i, p) in pending.iter().enumerate() {
            if p.nodes > idle {
                continue;
            }
            // Deficit = usage relative to entitled share. Lower = more
            // deserving.
            let target = self.target_nodes(p.type_id).max(1e-9);
            let ratio = usage[p.type_id.index()] as f64 / target;
            let better = match &best {
                None => true,
                Some((r, t, _)) => {
                    ratio < r - 1e-12
                        || ((ratio - r).abs() <= 1e-12 && p.submit.value() < t.value())
                }
            };
            if better {
                best = Some((ratio, p.submit, i));
            }
        }
        best.map(|(_, _, i)| i)
    }
}

/// The pending-job store behind the scheduler: one FIFO per job type,
/// with aggregate statistics for QoS forecasting (queue depth and oldest
/// wait feed the forced-start logic).
#[derive(Debug, Clone)]
pub struct WorkQueues {
    queues: Vec<std::collections::VecDeque<(u64, PendingView)>>,
}

impl WorkQueues {
    /// Empty queues for `n_types` job types.
    pub fn new(n_types: usize) -> Self {
        WorkQueues {
            queues: (0..n_types).map(|_| Default::default()).collect(),
        }
    }

    /// Enqueue a pending job (tagged with an opaque job key).
    pub fn submit(&mut self, key: u64, view: PendingView) {
        self.queues[view.type_id.index()].push_back((key, view));
    }

    /// All pending jobs across queues, in a stable order (queue-major,
    /// FIFO within a queue) — the shape [`QueueScheduler::select`] takes.
    pub fn pending(&self) -> Vec<PendingView> {
        self.queues
            .iter()
            .flat_map(|q| q.iter().map(|(_, v)| *v))
            .collect()
    }

    /// Remove and return the job at `index` of the [`WorkQueues::pending`]
    /// ordering (the index [`QueueScheduler::select`] returned).
    pub fn take(&mut self, mut index: usize) -> Option<(u64, PendingView)> {
        for q in &mut self.queues {
            if index < q.len() {
                return q.remove(index);
            }
            index -= q.len();
        }
        None
    }

    /// Total jobs waiting.
    pub fn len(&self) -> usize {
        self.queues.iter().map(|q| q.len()).sum()
    }

    /// No jobs waiting?
    pub fn is_empty(&self) -> bool {
        self.queues.iter().all(|q| q.is_empty())
    }

    /// Depth of one queue.
    pub fn depth(&self, q: JobTypeId) -> usize {
        self.queues[q.index()].len()
    }

    /// The earliest submission time still waiting in a queue.
    pub fn oldest_submit(&self, q: JobTypeId) -> Option<Seconds> {
        self.queues[q.index()].front().map(|(_, v)| v.submit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(type_id: u16, nodes: u32, submit: f64) -> PendingView {
        PendingView {
            type_id: JobTypeId(type_id),
            nodes,
            submit: Seconds(submit),
        }
    }

    #[test]
    fn target_shares_follow_weights() {
        let s = QueueScheduler::new(vec![1.0, 3.0], 16);
        assert!((s.target_nodes(JobTypeId(0)) - 4.0).abs() < 1e-12);
        assert!((s.target_nodes(JobTypeId(1)) - 12.0).abs() < 1e-12);
        assert_eq!(s.queue_count(), 2);
    }

    #[test]
    fn under_share_queue_wins() {
        let s = QueueScheduler::new(vec![1.0, 1.0], 16);
        // Queue 0 is using 6 nodes, queue 1 only 2: queue 1 is more
        // deserving.
        let pending = [p(0, 2, 0.0), p(1, 2, 5.0)];
        let pick = s.select(&pending, &[6, 2], 4).unwrap();
        assert_eq!(pick, 1);
    }

    #[test]
    fn fcfs_tie_break() {
        let s = QueueScheduler::uniform(2, 16);
        let pending = [p(0, 2, 9.0), p(1, 2, 3.0)];
        let pick = s.select(&pending, &[4, 4], 8).unwrap();
        assert_eq!(pick, 1, "equal deficit: earlier submission wins");
    }

    #[test]
    fn jobs_that_do_not_fit_are_skipped() {
        let s = QueueScheduler::uniform(2, 16);
        let pending = [p(0, 8, 0.0), p(1, 2, 10.0)];
        // Only 4 idle nodes: the 8-node job can't start.
        let pick = s.select(&pending, &[0, 0], 4).unwrap();
        assert_eq!(pick, 1);
        // Nothing fits at 1 idle node.
        assert!(s.select(&pending, &[0, 0], 1).is_none());
    }

    #[test]
    fn empty_pending_yields_none() {
        let s = QueueScheduler::uniform(3, 16);
        assert!(s.select(&[], &[0, 0, 0], 16).is_none());
    }

    #[test]
    fn work_conserving_over_share_queue_still_runs() {
        let s = QueueScheduler::new(vec![1.0, 1.0], 16);
        // Queue 0 already over its 8-node share but it's the only queue
        // with pending work and nodes are idle.
        let pending = [p(0, 2, 0.0)];
        assert_eq!(s.select(&pending, &[10, 0], 6), Some(0));
    }

    #[test]
    fn zero_weight_queue_starves_against_competition() {
        let s = QueueScheduler::new(vec![0.0, 1.0], 16);
        let pending = [p(0, 1, 0.0), p(1, 1, 100.0)];
        // Queue 0 with any usage has infinite ratio vs its ~0 target.
        assert_eq!(s.select(&pending, &[1, 0], 4), Some(1));
        // But alone it still runs (work conserving).
        assert_eq!(s.select(&pending[..1], &[1, 0], 4), Some(0));
    }

    #[test]
    #[should_panic(expected = "positive sum")]
    fn all_zero_weights_rejected() {
        QueueScheduler::new(vec![0.0, 0.0], 16);
    }

    #[test]
    fn work_queues_fifo_per_type() {
        let mut q = WorkQueues::new(2);
        assert!(q.is_empty());
        q.submit(10, p(0, 1, 5.0));
        q.submit(11, p(1, 2, 1.0));
        q.submit(12, p(0, 1, 7.0));
        assert_eq!(q.len(), 3);
        assert_eq!(q.depth(JobTypeId(0)), 2);
        assert_eq!(q.depth(JobTypeId(1)), 1);
        assert_eq!(q.oldest_submit(JobTypeId(0)), Some(Seconds(5.0)));
        // pending() is queue-major: [type0#10, type0#12, type1#11].
        let pending = q.pending();
        assert_eq!(pending.len(), 3);
        assert_eq!(pending[0].submit, Seconds(5.0));
        assert_eq!(pending[2].type_id, JobTypeId(1));
        // take() maps pending indices back to the right queue slot.
        let (key, view) = q.take(1).unwrap();
        assert_eq!(key, 12);
        assert_eq!(view.submit, Seconds(7.0));
        assert_eq!(q.len(), 2);
        let (key, _) = q.take(1).unwrap();
        assert_eq!(key, 11, "index shifts after removal");
        assert!(q.take(5).is_none());
    }

    #[test]
    fn work_queues_integrate_with_scheduler() {
        let mut wq = WorkQueues::new(2);
        wq.submit(1, p(0, 2, 0.0));
        wq.submit(2, p(1, 2, 1.0));
        let s = QueueScheduler::uniform(2, 16);
        // Queue 1 under-served: scheduler picks its job; take() pops it.
        let pick = s.select(&wq.pending(), &[6, 0], 8).unwrap();
        let (key, view) = wq.take(pick).unwrap();
        assert_eq!(key, 2);
        assert_eq!(view.type_id, JobTypeId(1));
        assert_eq!(wq.len(), 1);
    }
}
