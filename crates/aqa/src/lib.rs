#![warn(missing_docs)]
//! # anor-aqa
//!
//! The demand-response machinery of the paper's cluster tier, based on
//! the AQA policy (Zhang et al., *HPC Data Center Participation in Demand
//! Response: An Adaptive Policy With QoS Assurance*, IEEE TSUSC 2022),
//! which the paper reuses for its "demand response bidder, job scheduler,
//! and power budgeter" (Section 4).
//!
//! * [`regulation`] — the grid regulation signal `y(t) ∈ [−1, 1]` and the
//!   moving power target `P_target = P̄ + R·y(t)` (Section 5.6), with new
//!   targets every few seconds (4 s in Section 6.3);
//! * [`tracking`] — power-tracking error accounting: error = |measured −
//!   target| / reserve, with the paper's constraint of ≤ 30% error at
//!   least 90% of the time (Section 4.4.2);
//! * [`bid`] — the hourly bidding decision: search average power and
//!   reserve "that reduce electricity cost under constraints for QoS and
//!   power-tracking error";
//! * [`queue`] — AQA's weighted work queues: "compute nodes are allocated
//!   so that queues with greater weight are assigned more nodes";
//! * [`schedule`] — Poisson job-submission generation calibrated by the
//!   utilization equation `Σ λ_j·T_j·n_j = η·N` (Section 5.3), plus the
//!   schedule / power-target file formats the head-node daemon reads
//!   (Section 4.1: "this process reads power targets and a job submission
//!   schedule from files").

pub mod bid;
pub mod queue;
pub mod regulation;
pub mod schedule;
pub mod tracking;
pub mod train;

pub use bid::{candidate_grid, search_bid, Bid, BidEvaluation, CostModel};
pub use queue::{PendingView, QueueScheduler, WorkQueues};
pub use regulation::{PowerTarget, RegulationSignal};
pub use schedule::{poisson_schedule, JobSubmission};
pub use tracking::{TrackingConstraint, TrackingRecorder};
pub use train::{search_weights, weight_candidates, UnknownJobSampler, WeightEvaluation};
