//! Job-schedule generation and the head-node daemon's file formats.
//!
//! Section 5.3: "Job submissions are generated as Poisson processes with
//! job arrival rates that achieve a target node utilization. We relate a
//! target utilization η to job type j's arrival rate λ_j and
//! non-power-capped time to completion T_j over N nodes by
//! Σ λ_j·T_j = η·N." With per-type node footprints n_j, each type is
//! given an equal share of the utilized node-seconds:
//! `λ_j·T_j·n_j = η·N / J`.
//!
//! Section 4.1: "this process reads power targets and a job submission
//! schedule from files" — [`write_schedule`]/[`parse_schedule`] and
//! [`write_power_targets`]/[`parse_power_targets`] define those formats
//! (whitespace-separated columns, `#` comments).

use anor_types::stats::poisson_arrivals;
use anor_types::{AnorError, Catalog, JobTypeId, Result, Seconds, Watts};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::{BufRead, Write};

/// One entry of a job submission schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobSubmission {
    /// When the job enters the queue.
    pub time: Seconds,
    /// Which job type it is.
    pub type_id: JobTypeId,
}

/// Per-type arrival rates λ_j (jobs/second) achieving `utilization` on
/// `total_nodes` nodes, splitting utilized node-seconds equally across
/// the listed types.
pub fn arrival_rates(
    catalog: &Catalog,
    types: &[JobTypeId],
    utilization: f64,
    total_nodes: u32,
) -> Vec<f64> {
    assert!(!types.is_empty(), "need at least one job type");
    assert!(
        (0.0..=1.0).contains(&utilization),
        "utilization must be in [0, 1]"
    );
    let share = utilization * total_nodes as f64 / types.len() as f64;
    types
        .iter()
        .map(|&id| {
            let t = &catalog[id];
            share / (t.time_uncapped.value() * t.nodes as f64)
        })
        .collect()
}

/// Generate a Poisson submission schedule over `[0, horizon)` at the
/// target utilization, sorted by time.
pub fn poisson_schedule(
    catalog: &Catalog,
    types: &[JobTypeId],
    utilization: f64,
    total_nodes: u32,
    horizon: Seconds,
    seed: u64,
) -> Vec<JobSubmission> {
    let rates = arrival_rates(catalog, types, utilization, total_nodes);
    let mut out = Vec::new();
    for (k, (&id, &rate)) in types.iter().zip(&rates).enumerate() {
        let mut rng = StdRng::seed_from_u64(seed ^ ((k as u64 + 1) << 24));
        for t in poisson_arrivals(&mut rng, rate, horizon.value()) {
            out.push(JobSubmission {
                time: Seconds(t),
                type_id: id,
            });
        }
    }
    out.sort_by(|a, b| a.time.value().total_cmp(&b.time.value()));
    out
}

/// Expected node utilization of a schedule (utilized node-seconds over
/// available node-seconds), using uncapped execution times.
pub fn schedule_utilization(
    catalog: &Catalog,
    schedule: &[JobSubmission],
    total_nodes: u32,
    horizon: Seconds,
) -> f64 {
    let node_seconds: f64 = schedule
        .iter()
        .map(|s| {
            let t = &catalog[s.type_id];
            t.time_uncapped.value() * t.nodes as f64
        })
        .sum();
    node_seconds / (total_nodes as f64 * horizon.value())
}

// ---------------------------------------------------------------------------
// File formats
// ---------------------------------------------------------------------------

/// Write a schedule as `time job-type-name` lines.
pub fn write_schedule(
    w: &mut impl Write,
    catalog: &Catalog,
    schedule: &[JobSubmission],
) -> Result<()> {
    writeln!(w, "# time_s job_type")?;
    for s in schedule {
        writeln!(w, "{:.3} {}", s.time.value(), catalog[s.type_id].name)?;
    }
    Ok(())
}

/// Parse a schedule file produced by [`write_schedule`].
pub fn parse_schedule(r: impl BufRead, catalog: &Catalog) -> Result<Vec<JobSubmission>> {
    let mut out = Vec::new();
    for (lineno, line) in r.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(t), Some(name)) = (parts.next(), parts.next()) else {
            return Err(AnorError::schedule(format!(
                "line {}: expected `time job_type`",
                lineno + 1
            )));
        };
        let time: f64 = t
            .parse()
            .map_err(|_| AnorError::schedule(format!("line {}: bad time `{t}`", lineno + 1)))?;
        let spec = catalog.find(name).ok_or_else(|| {
            AnorError::schedule(format!("line {}: unknown job type `{name}`", lineno + 1))
        })?;
        out.push(JobSubmission {
            time: Seconds(time),
            type_id: spec.id,
        });
    }
    Ok(out)
}

/// Write a power-target trace as `time watts` lines.
pub fn write_power_targets(w: &mut impl Write, targets: &[(Seconds, Watts)]) -> Result<()> {
    writeln!(w, "# time_s target_w")?;
    for (t, p) in targets {
        writeln!(w, "{:.3} {:.3}", t.value(), p.value())?;
    }
    Ok(())
}

/// Parse a power-target file produced by [`write_power_targets`].
pub fn parse_power_targets(r: impl BufRead) -> Result<Vec<(Seconds, Watts)>> {
    let mut out = Vec::new();
    for (lineno, line) in r.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(t), Some(p)) = (parts.next(), parts.next()) else {
            return Err(AnorError::schedule(format!(
                "line {}: expected `time watts`",
                lineno + 1
            )));
        };
        let time: f64 = t
            .parse()
            .map_err(|_| AnorError::schedule(format!("line {}: bad time `{t}`", lineno + 1)))?;
        let watts: f64 = p
            .parse()
            .map_err(|_| AnorError::schedule(format!("line {}: bad watts `{p}`", lineno + 1)))?;
        out.push((Seconds(time), Watts(watts)));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use anor_types::standard_catalog;
    use std::io::BufReader;

    #[test]
    fn arrival_rates_hit_target_utilization() {
        let cat = standard_catalog();
        let types = cat.long_running();
        let rates = arrival_rates(&cat, &types, 0.75, 1000);
        // Σ λ_j·T_j·n_j should equal η·N.
        let total: f64 = types
            .iter()
            .zip(&rates)
            .map(|(&id, &r)| r * cat[id].time_uncapped.value() * cat[id].nodes as f64)
            .sum();
        assert!((total - 750.0).abs() < 1e-9, "total {total}");
    }

    #[test]
    fn poisson_schedule_achieves_utilization() {
        let cat = standard_catalog();
        let types = cat.long_running();
        let horizon = Seconds(100_000.0);
        let sched = poisson_schedule(&cat, &types, 0.75, 100, horizon, 11);
        let util = schedule_utilization(&cat, &sched, 100, horizon);
        assert!(
            (util - 0.75).abs() < 0.05,
            "long-run offered utilization {util}"
        );
        // Sorted by time.
        assert!(sched
            .windows(2)
            .all(|w| w[0].time.value() <= w[1].time.value()));
    }

    #[test]
    fn all_types_appear_in_long_schedules() {
        let cat = standard_catalog();
        let types = cat.long_running();
        let sched = poisson_schedule(&cat, &types, 0.95, 16, Seconds(36_000.0), 3);
        for &id in &types {
            assert!(
                sched.iter().any(|s| s.type_id == id),
                "{} missing",
                cat[id].name
            );
        }
    }

    #[test]
    fn schedule_round_trips_through_file_format() {
        let cat = standard_catalog();
        let types = cat.long_running();
        let sched = poisson_schedule(&cat, &types, 0.5, 16, Seconds(3600.0), 7);
        let mut buf = Vec::new();
        write_schedule(&mut buf, &cat, &sched).unwrap();
        let parsed = parse_schedule(BufReader::new(&buf[..]), &cat).unwrap();
        assert_eq!(parsed.len(), sched.len());
        for (a, b) in sched.iter().zip(&parsed) {
            assert_eq!(a.type_id, b.type_id);
            assert!((a.time.value() - b.time.value()).abs() < 1e-3);
        }
    }

    #[test]
    fn parse_schedule_rejects_garbage() {
        let cat = standard_catalog();
        assert!(parse_schedule(BufReader::new(&b"12.0"[..]), &cat).is_err());
        assert!(parse_schedule(BufReader::new(&b"abc bt.D.81"[..]), &cat).is_err());
        assert!(parse_schedule(BufReader::new(&b"1.0 nosuch.X.1"[..]), &cat).is_err());
        // Comments and blanks are fine.
        let ok = parse_schedule(BufReader::new(&b"# header\n\n10.5 bt.D.81\n"[..]), &cat).unwrap();
        assert_eq!(ok.len(), 1);
        assert_eq!(cat[ok[0].type_id].name, "bt.D.81");
    }

    #[test]
    fn power_targets_round_trip() {
        let targets = vec![
            (Seconds(0.0), Watts(2300.0)),
            (Seconds(4.0), Watts(3100.5)),
            (Seconds(8.0), Watts(4500.0)),
        ];
        let mut buf = Vec::new();
        write_power_targets(&mut buf, &targets).unwrap();
        let parsed = parse_power_targets(BufReader::new(&buf[..])).unwrap();
        assert_eq!(parsed.len(), 3);
        for (a, b) in targets.iter().zip(&parsed) {
            assert!((a.0.value() - b.0.value()).abs() < 1e-3);
            assert!((a.1.value() - b.1.value()).abs() < 1e-3);
        }
    }

    #[test]
    fn parse_power_targets_rejects_garbage() {
        assert!(parse_power_targets(BufReader::new(&b"1.0"[..])).is_err());
        assert!(parse_power_targets(BufReader::new(&b"x y"[..])).is_err());
        assert!(parse_power_targets(BufReader::new(&b"1.0 zz"[..])).is_err());
    }

    #[test]
    #[should_panic(expected = "utilization")]
    fn utilization_out_of_range_rejected() {
        let cat = standard_catalog();
        arrival_rates(&cat, &cat.long_running(), 1.5, 16);
    }

    #[test]
    fn deterministic_by_seed() {
        let cat = standard_catalog();
        let t = cat.long_running();
        let a = poisson_schedule(&cat, &t, 0.75, 16, Seconds(3600.0), 5);
        let b = poisson_schedule(&cat, &t, 0.75, 16, Seconds(3600.0), 5);
        assert_eq!(a, b);
        let c = poisson_schedule(&cat, &t, 0.75, 16, Seconds(3600.0), 6);
        assert_ne!(a, c);
    }
}
