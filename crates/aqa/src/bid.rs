//! The hourly demand-response bidding decision.
//!
//! Section 4.4.1: "the resource-forecasting policy determines how much
//! average power the cluster should request and what range of power
//! flexibility the cluster should offer as reserve for demand response.
//! The bidding decision is made once per hour." Section 4.4.2: "AQA
//! searches for queue weights and demand response bids (average power and
//! reserve) that reduce electricity cost under constraints for QoS and
//! power-tracking error."
//!
//! The search here is deliberately evaluator-agnostic: feasibility of a
//! candidate bid (does it keep QoS and tracking within constraints?) is
//! judged by a caller-supplied closure, which in this workspace is backed
//! by the tabular cluster simulator.

use anor_types::Watts;

/// A demand-response bid: requested mean power and offered reserve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bid {
    /// Requested average power P̄.
    pub avg_power: Watts,
    /// Offered reserve R. Targets will span `avg ± reserve`.
    pub reserve: Watts,
}

impl Bid {
    /// The band of power targets this bid commits to.
    pub fn band(&self) -> (Watts, Watts) {
        (self.avg_power - self.reserve, self.avg_power + self.reserve)
    }
}

/// A simple electricity cost model: pay for expected energy, get credited
/// for offered reserve (regulation-market revenue).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// $ per kWh of average consumption.
    pub energy_price: f64,
    /// $ per kW of reserve per hour.
    pub reserve_credit: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        // Representative magnitudes: 12 ¢/kWh energy, 5 $/MW·h regulation
        // credit (≈ 0.005 $/kW·h).
        CostModel {
            energy_price: 0.12,
            reserve_credit: 0.005,
        }
    }
}

impl CostModel {
    /// Net cost per hour of operating at a bid (energy bill minus reserve
    /// credit).
    pub fn hourly_cost(&self, bid: &Bid) -> f64 {
        let avg_kw = bid.avg_power.value() / 1000.0;
        let reserve_kw = bid.reserve.value() / 1000.0;
        self.energy_price * avg_kw - self.reserve_credit * reserve_kw
    }
}

/// What the evaluator reports about one candidate bid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BidEvaluation {
    /// Would the QoS constraint hold under this bid?
    pub qos_ok: bool,
    /// Would the power-tracking constraint hold?
    pub tracking_ok: bool,
}

impl BidEvaluation {
    /// Feasible = both constraints hold.
    pub fn feasible(&self) -> bool {
        self.qos_ok && self.tracking_ok
    }
}

/// Build a grid of candidate bids over inclusive ranges.
pub fn candidate_grid(
    avg_range: (Watts, Watts),
    reserve_range: (Watts, Watts),
    steps: usize,
) -> Vec<Bid> {
    assert!(steps >= 2, "need at least 2 grid steps");
    let lerp = |lo: f64, hi: f64, i: usize| lo + (hi - lo) * i as f64 / (steps - 1) as f64;
    let mut out = Vec::with_capacity(steps * steps);
    for i in 0..steps {
        for j in 0..steps {
            let bid = Bid {
                avg_power: Watts(lerp(avg_range.0.value(), avg_range.1.value(), i)),
                reserve: Watts(lerp(reserve_range.0.value(), reserve_range.1.value(), j)),
            };
            // A bid whose lower band edge goes negative is meaningless.
            if bid.band().0.value() >= 0.0 && bid.reserve.value() > 0.0 {
                out.push(bid);
            }
        }
    }
    out
}

/// Search candidates for the cheapest *feasible* bid. The evaluator is
/// called once per candidate (typically a simulation). Returns `None`
/// when nothing is feasible.
pub fn search_bid(
    candidates: &[Bid],
    cost: &CostModel,
    mut evaluate: impl FnMut(&Bid) -> BidEvaluation,
) -> Option<Bid> {
    let mut best: Option<(f64, Bid)> = None;
    for &bid in candidates {
        if !evaluate(&bid).feasible() {
            continue;
        }
        let c = cost.hourly_cost(&bid);
        if best.is_none_or(|(bc, _)| c < bc) {
            best = Some((c, bid));
        }
    }
    best.map(|(_, b)| b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_rewards_reserve_and_penalizes_power() {
        let m = CostModel::default();
        let base = Bid {
            avg_power: Watts(100_000.0),
            reserve: Watts(10_000.0),
        };
        let more_power = Bid {
            avg_power: Watts(120_000.0),
            ..base
        };
        let more_reserve = Bid {
            reserve: Watts(20_000.0),
            ..base
        };
        assert!(m.hourly_cost(&more_power) > m.hourly_cost(&base));
        assert!(m.hourly_cost(&more_reserve) < m.hourly_cost(&base));
    }

    #[test]
    fn grid_covers_corners_and_filters_degenerates() {
        let grid = candidate_grid(
            (Watts(1000.0), Watts(3000.0)),
            (Watts(500.0), Watts(1500.0)),
            3,
        );
        assert!(grid.contains(&Bid {
            avg_power: Watts(1000.0),
            reserve: Watts(500.0)
        }));
        assert!(grid.contains(&Bid {
            avg_power: Watts(3000.0),
            reserve: Watts(1500.0)
        }));
        // avg 1000, reserve 1500 -> band goes negative -> filtered.
        assert!(!grid.contains(&Bid {
            avg_power: Watts(1000.0),
            reserve: Watts(1500.0)
        }));
    }

    #[test]
    fn search_picks_cheapest_feasible() {
        let grid = candidate_grid(
            (Watts(1000.0), Watts(2000.0)),
            (Watts(100.0), Watts(900.0)),
            5,
        );
        // Feasibility rule: tracking fails when reserve > 500 W; QoS
        // fails when avg < 1500 W.
        let chosen = search_bid(&grid, &CostModel::default(), |b| BidEvaluation {
            qos_ok: b.avg_power.value() >= 1500.0,
            tracking_ok: b.reserve.value() <= 500.0,
        })
        .expect("feasible bids exist");
        // Cheapest feasible: smallest feasible avg (1500), largest
        // feasible reserve (500).
        assert_eq!(chosen.avg_power, Watts(1500.0));
        assert_eq!(chosen.reserve, Watts(500.0));
    }

    #[test]
    fn search_returns_none_when_infeasible() {
        let grid = candidate_grid(
            (Watts(1000.0), Watts(2000.0)),
            (Watts(100.0), Watts(200.0)),
            3,
        );
        let got = search_bid(&grid, &CostModel::default(), |_| BidEvaluation {
            qos_ok: false,
            tracking_ok: true,
        });
        assert!(got.is_none());
    }

    #[test]
    fn evaluator_called_per_candidate() {
        let grid = candidate_grid(
            (Watts(1000.0), Watts(2000.0)),
            (Watts(100.0), Watts(200.0)),
            3,
        );
        let mut calls = 0;
        search_bid(&grid, &CostModel::default(), |_| {
            calls += 1;
            BidEvaluation {
                qos_ok: true,
                tracking_ok: true,
            }
        });
        assert_eq!(calls, grid.len());
    }

    #[test]
    fn band_is_symmetric() {
        let b = Bid {
            avg_power: Watts(3400.0),
            reserve: Watts(1100.0),
        };
        assert_eq!(b.band(), (Watts(2300.0), Watts(4500.0)));
    }
}
