//! The grid regulation signal and moving power target.
//!
//! Section 5.6: "Demand response parameters include average power P̄,
//! reserve power R offered by the simulated cluster, and a time-varying
//! regulation signal y(t). The regulation signal ranges from −1 to 1,
//! indicating the cluster power target P_target = P̄ + R·y(t)."
//!
//! Section 6.3 drives the real cluster with a target that "changes once
//! every 4 seconds, staying within the range of 2.3 kW to 4.5 kW".

use anor_types::stats::standard_normal;
use anor_types::{Seconds, Watts};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A regulation signal `y(t)` with values in `[−1, 1]`.
#[derive(Debug, Clone, PartialEq)]
pub enum RegulationSignal {
    /// A constant level (e.g. 0 for "hold the average").
    Constant(f64),
    /// A sinusoid with the given period and amplitude.
    Sinusoid {
        /// Full oscillation period.
        period: Seconds,
        /// Peak |y| (clamped to 1).
        amplitude: f64,
    },
    /// A piecewise-constant trace: `values[k]` holds on
    /// `[k·update_period, (k+1)·update_period)`; the last value holds
    /// forever after.
    Trace {
        /// Piecewise-constant levels, each already in `[−1, 1]`.
        values: Vec<f64>,
        /// Hold time per level (paper: 4 s).
        update_period: Seconds,
    },
}

impl RegulationSignal {
    /// A mean-reverting random walk, precomputed over `horizon` as a
    /// [`RegulationSignal::Trace`]. This is the shape of a frequency-
    /// regulation test signal: zero-mean, bounded, with step-to-step
    /// correlation.
    pub fn random_walk(
        update_period: Seconds,
        step: f64,
        horizon: Seconds,
        seed: u64,
    ) -> RegulationSignal {
        assert!(
            update_period.value() > 0.0,
            "update period must be positive"
        );
        let n = (horizon.value() / update_period.value()).ceil() as usize + 1;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut y = 0.0f64;
        let mut values = Vec::with_capacity(n);
        for _ in 0..n {
            // Mean reversion keeps the signal from pinning at the rails.
            y = (0.9 * y + step * standard_normal(&mut rng)).clamp(-1.0, 1.0);
            values.push(y);
        }
        RegulationSignal::Trace {
            values,
            update_period,
        }
    }

    /// A tariff-driven signal (a Section 3 motivation: "changing power
    /// tariffs"): given a per-period electricity price, the cluster runs
    /// hotter when power is cheap and colder when it is expensive. The
    /// cheapest period maps to +1, the priciest to −1, linearly in
    /// between; a flat tariff maps to 0 everywhere.
    pub fn from_tariff(prices: &[f64], period: Seconds) -> RegulationSignal {
        assert!(!prices.is_empty(), "tariff needs at least one period");
        assert!(
            prices.iter().all(|p| p.is_finite()),
            "tariff prices must be finite"
        );
        let lo = prices.iter().copied().fold(f64::MAX, f64::min);
        let hi = prices.iter().copied().fold(f64::MIN, f64::max);
        let values = if hi - lo <= 1e-12 {
            vec![0.0; prices.len()]
        } else {
            prices
                .iter()
                .map(|p| 1.0 - 2.0 * (p - lo) / (hi - lo))
                .collect()
        };
        RegulationSignal::Trace {
            values,
            update_period: period,
        }
    }

    /// The next time strictly after `t` at which the signal's value can
    /// change, or `None` when it is constant from `t` on.
    ///
    /// This is the event-driven simulator's re-cap boundary source: a
    /// [`RegulationSignal::Trace`] only moves at multiples of its update
    /// period, so the engine can fast-forward between boundaries. A
    /// sinusoid changes continuously, reported as `Some(t)` ("immediately
    /// after `t`"), which callers treat as "advance one tick at a time".
    /// Boundaries where adjacent trace levels happen to be equal are
    /// still reported; a spurious wake-up is cheap and always safe.
    pub fn next_change_after(&self, t: Seconds) -> Option<Seconds> {
        match self {
            RegulationSignal::Constant(_) => None,
            RegulationSignal::Sinusoid { .. } => Some(t),
            RegulationSignal::Trace {
                values,
                update_period,
            } => {
                if values.len() <= 1 {
                    return None;
                }
                let k = (t.value().max(0.0) / update_period.value()) as usize;
                if k + 1 >= values.len() {
                    None
                } else {
                    Some(Seconds((k + 1) as f64 * update_period.value()))
                }
            }
        }
    }

    /// The signal value at time `t`, clamped into `[−1, 1]`.
    pub fn value(&self, t: Seconds) -> f64 {
        let y = match self {
            RegulationSignal::Constant(v) => *v,
            RegulationSignal::Sinusoid { period, amplitude } => {
                amplitude * (std::f64::consts::TAU * t.value() / period.value()).sin()
            }
            RegulationSignal::Trace {
                values,
                update_period,
            } => {
                if values.is_empty() {
                    0.0
                } else {
                    let k = (t.value().max(0.0) / update_period.value()) as usize;
                    values[k.min(values.len() - 1)]
                }
            }
        };
        y.clamp(-1.0, 1.0)
    }
}

/// A committed demand-response operating point: the cluster promises to
/// track `avg + reserve·y(t)`.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerTarget {
    /// Requested mean power P̄.
    pub avg: Watts,
    /// Offered reserve R (flexibility half-width).
    pub reserve: Watts,
    /// The regulation signal received from the grid.
    pub signal: RegulationSignal,
}

impl PowerTarget {
    /// The instantaneous power target `P̄ + R·y(t)`.
    pub fn at(&self, t: Seconds) -> Watts {
        self.avg + self.reserve * self.signal.value(t)
    }

    /// The committed tracking band `[P̄ − R, P̄ + R]`.
    pub fn band(&self) -> (Watts, Watts) {
        (self.avg - self.reserve, self.avg + self.reserve)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_signal() {
        let s = RegulationSignal::Constant(0.5);
        assert_eq!(s.value(Seconds(0.0)), 0.5);
        assert_eq!(s.value(Seconds(1e6)), 0.5);
        // Out-of-range constants clamp.
        assert_eq!(RegulationSignal::Constant(3.0).value(Seconds(1.0)), 1.0);
    }

    #[test]
    fn sinusoid_hits_extremes_and_zero() {
        let s = RegulationSignal::Sinusoid {
            period: Seconds(100.0),
            amplitude: 1.0,
        };
        assert!(s.value(Seconds(0.0)).abs() < 1e-12);
        assert!((s.value(Seconds(25.0)) - 1.0).abs() < 1e-12);
        assert!((s.value(Seconds(75.0)) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn trace_is_piecewise_constant_and_extends() {
        let s = RegulationSignal::Trace {
            values: vec![-1.0, 0.0, 1.0],
            update_period: Seconds(4.0),
        };
        assert_eq!(s.value(Seconds(0.0)), -1.0);
        assert_eq!(s.value(Seconds(3.999)), -1.0);
        assert_eq!(s.value(Seconds(4.0)), 0.0);
        assert_eq!(s.value(Seconds(8.5)), 1.0);
        // Past the end: last value holds.
        assert_eq!(s.value(Seconds(1e4)), 1.0);
        // Negative time clamps to the first value.
        assert_eq!(s.value(Seconds(-5.0)), -1.0);
    }

    #[test]
    fn empty_trace_is_zero() {
        let s = RegulationSignal::Trace {
            values: vec![],
            update_period: Seconds(4.0),
        };
        assert_eq!(s.value(Seconds(10.0)), 0.0);
    }

    #[test]
    fn random_walk_is_bounded_and_deterministic() {
        let a = RegulationSignal::random_walk(Seconds(4.0), 0.3, Seconds(3600.0), 7);
        let b = RegulationSignal::random_walk(Seconds(4.0), 0.3, Seconds(3600.0), 7);
        assert_eq!(a, b);
        let RegulationSignal::Trace { values, .. } = &a else {
            panic!("random_walk returns a trace");
        };
        assert!(values.len() >= 900);
        assert!(values.iter().all(|v| (-1.0..=1.0).contains(v)));
        // Mean-reverting: long-run average near zero.
        let mean: f64 = values.iter().sum::<f64>() / values.len() as f64;
        assert!(mean.abs() < 0.25, "walk mean {mean}");
    }

    #[test]
    fn tariff_signal_inverts_prices() {
        // Hourly prices: cheap overnight, expensive evening peak.
        let prices = [0.08, 0.08, 0.12, 0.30, 0.20];
        let s = RegulationSignal::from_tariff(&prices, Seconds(3600.0));
        // Cheapest hours -> full power (+1).
        assert_eq!(s.value(Seconds(0.0)), 1.0);
        assert_eq!(s.value(Seconds(3700.0)), 1.0);
        // Priciest hour -> maximum curtailment (−1).
        assert_eq!(s.value(Seconds(3.5 * 3600.0)), -1.0);
        // Mid prices interpolate and stay in bounds.
        let mid = s.value(Seconds(2.5 * 3600.0));
        assert!((-1.0..=1.0).contains(&mid) && mid > 0.0 && mid < 1.0);
    }

    #[test]
    fn flat_tariff_is_neutral() {
        let s = RegulationSignal::from_tariff(&[0.1, 0.1, 0.1], Seconds(3600.0));
        for h in 0..3 {
            assert_eq!(s.value(Seconds(h as f64 * 3600.0)), 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "at least one period")]
    fn empty_tariff_rejected() {
        RegulationSignal::from_tariff(&[], Seconds(3600.0));
    }

    #[test]
    fn next_change_after_reports_trace_boundaries() {
        let s = RegulationSignal::Trace {
            values: vec![-1.0, 0.0, 1.0],
            update_period: Seconds(4.0),
        };
        assert_eq!(s.next_change_after(Seconds(0.0)), Some(Seconds(4.0)));
        assert_eq!(s.next_change_after(Seconds(3.9)), Some(Seconds(4.0)));
        assert_eq!(s.next_change_after(Seconds(4.0)), Some(Seconds(8.0)));
        // Past the last boundary the trace holds forever.
        assert_eq!(s.next_change_after(Seconds(8.0)), None);
        assert_eq!(s.next_change_after(Seconds(100.0)), None);
        // Negative time clamps like value() does.
        assert_eq!(s.next_change_after(Seconds(-5.0)), Some(Seconds(4.0)));
    }

    #[test]
    fn next_change_after_degenerate_signals() {
        assert_eq!(
            RegulationSignal::Constant(0.3).next_change_after(Seconds(0.0)),
            None
        );
        let single = RegulationSignal::Trace {
            values: vec![0.5],
            update_period: Seconds(4.0),
        };
        assert_eq!(single.next_change_after(Seconds(0.0)), None);
        // Sinusoids change continuously: "immediately after t".
        let sine = RegulationSignal::Sinusoid {
            period: Seconds(100.0),
            amplitude: 1.0,
        };
        assert_eq!(sine.next_change_after(Seconds(7.0)), Some(Seconds(7.0)));
    }

    #[test]
    fn power_target_formula() {
        // The paper's Fig. 9 band: 2.3–4.5 kW -> avg 3.4 kW, reserve 1.1 kW.
        let t = PowerTarget {
            avg: Watts(3400.0),
            reserve: Watts(1100.0),
            signal: RegulationSignal::Constant(-1.0),
        };
        assert_eq!(t.at(Seconds(0.0)), Watts(2300.0));
        let (lo, hi) = t.band();
        assert_eq!(lo, Watts(2300.0));
        assert_eq!(hi, Watts(4500.0));
    }

    #[test]
    fn target_tracks_signal_over_time() {
        let t = PowerTarget {
            avg: Watts(1000.0),
            reserve: Watts(200.0),
            signal: RegulationSignal::Trace {
                values: vec![0.0, 0.5, -0.5],
                update_period: Seconds(4.0),
            },
        };
        assert_eq!(t.at(Seconds(1.0)), Watts(1000.0));
        assert_eq!(t.at(Seconds(5.0)), Watts(1100.0));
        assert_eq!(t.at(Seconds(9.0)), Watts(900.0));
    }
}
