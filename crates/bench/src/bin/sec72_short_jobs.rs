//! Reproduces the Section 7.2 observation: "we initially observed
//! unexpected performance improvements in all power management policies
//! ... due to two job types (IS and EP) that have very short execution
//! times. The time spent setting up and tearing down those short jobs
//! represents a major share of the total time those jobs hold compute
//! node resources... the compute node's power consumption is low, which
//! enables all policies to reallocate extra slack power to all other
//! active jobs for most of the time the short job is active."
//!
//! We co-schedule BT with either a long partner (SP) or a stream of
//! short EP jobs whose setup/teardown dominates, under the same shared
//! budget, and show the short partner *hides* BT's slowdown — which is
//! why the paper omits IS/EP from its final schedules.

use anor_bench::header;
use anor_core::cluster::{BudgetPolicy, EmulatedCluster, EmulatorConfig, JobSetup};
use anor_core::types::{Seconds, Watts};

fn bt_slowdown(partner_short: bool) -> f64 {
    let mut cfg = EmulatorConfig::paper(BudgetPolicy::Uniform, false);
    cfg.setup_teardown = Seconds(20.0);
    let cluster = EmulatedCluster::new(cfg);
    let mut jobs = vec![JobSetup::known("bt.D.81")];
    if partner_short {
        // A stream of short EP jobs (25 s exec + 40 s setup/teardown)
        // keeps the partner slot mostly idle-but-held.
        for k in 0..9 {
            jobs.push(JobSetup::known("ep.D.43").at(Seconds(70.0 * k as f64)));
        }
    } else {
        // Long partners occupy their power allocation continuously.
        jobs.push(JobSetup::known("sp.D.81"));
        jobs.push(JobSetup::known("sp.D.81").at(Seconds(420.0)));
    }
    let report = cluster
        .run_static(&jobs, Watts(840.0))
        .expect("emulated run failed");
    (report.mean_slowdown("bt.D.81").unwrap() - 1.0) * 100.0
}

fn main() {
    header(
        "Section 7.2",
        "Short setup-dominated jobs hide co-scheduled slowdown",
    );
    let with_long = bt_slowdown(false);
    let with_short = bt_slowdown(true);
    println!("BT slowdown with long partners (SP):        {with_long:>6.1}%");
    println!("BT slowdown with short partners (EP+setup): {with_short:>6.1}%");
    println!();
    println!(
        "paper: short jobs' setup/teardown slack flows to the other jobs,\n\
         hiding the slowdown a minutes-long partner would cause — hence IS\n\
         and EP are omitted from the paper's final schedules (and ours)."
    );
    assert!(
        with_short < with_long,
        "short partners must hide slowdown: {with_short} vs {with_long}"
    );
}
