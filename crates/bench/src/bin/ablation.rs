//! Runs the design-choice ablations DESIGN.md calls out and prints the
//! recovery achieved under each knob setting (the criterion benches in
//! `benches/ablations.rs` measure the *cost* of the same knobs).

use anor_bench::header;
use anor_core::experiments::ablation;

fn main() {
    header(
        "Ablations",
        "Misclassification-recovery fraction vs modeler design knobs",
    );
    println!("retrain threshold (paper: 10 new epochs):");
    println!(
        "{:>10} {:>16} {:>10}",
        "epochs", "bt_slowdown_%", "recovery"
    );
    for p in ablation::retrain_threshold(&[5, 10, 20, 40], 42).expect("runs failed") {
        println!(
            "{:>10.0} {:>16.2} {:>10.2}",
            p.value, p.bt_slowdown_pct, p.recovery
        );
    }
    println!();
    println!("dither amplitude (fraction of the 140 W cap span; paper impl: 0.05):");
    println!(
        "{:>10} {:>16} {:>10}",
        "fraction", "bt_slowdown_%", "recovery"
    );
    for p in ablation::dither_amplitude(&[0.0, 0.02, 0.05, 0.10], 42).expect("runs failed") {
        println!(
            "{:>10.2} {:>16.2} {:>10.2}",
            p.value, p.bt_slowdown_pct, p.recovery
        );
    }
    println!(
        "\nreading: recovery 1.0 = feedback returns BT to the fully\n\
         characterized slowdown; 0.0 = no better than no feedback."
    );
}
