//! Reproduces the Section 5.2 QoS-constraint justification: "we measured
//! the queue wait time and execution time of jobs from a month of
//! real-world job queue data. The 90th percentile of job wait time
//! divided by execution time is larger than 22, making our selected
//! constraint [Q = 5 at 90%] more aggressive than the properties of that
//! real-world queue trace."
//!
//! We do not have the Patel et al. trace, so we synthesize a month of
//! arrivals on a saturated cluster (utilization ≈ 1, heavy-tailed load —
//! the regime real academic clusters run in) and compute the same
//! statistic with the tabular simulator.

use anor_bench::{header, scaled};
use anor_core::aqa::{poisson_schedule, PowerTarget, RegulationSignal};
use anor_core::platform::PerformanceVariation;
use anor_core::sim::{SimConfig, SimPowerPolicy, TabularSim};
use anor_core::types::stats::percentile;
use anor_core::types::{standard_catalog, Seconds, Watts};

fn main() {
    header(
        "Section 5.2",
        "Wait/execution ratio of a saturated synthetic month-long queue",
    );
    let nodes = 64u32;
    // A (scaled) month of arrivals at an offered utilization slightly
    // above capacity: queues grow, as on real oversubscribed clusters.
    let horizon = scaled(Seconds(14.0 * 24.0 * 3600.0), Seconds(24.0 * 3600.0));
    let catalog = standard_catalog();
    let types = catalog.long_running();
    let cfg = SimConfig {
        total_nodes: nodes,
        idle_power: Watts(90.0),
        catalog: catalog.clone(),
        types: types.clone(),
        tick: Seconds(1.0),
        policy: SimPowerPolicy::Uniform,
        qos: Default::default(),
        // Effectively disable QoS-forced starts: a saturated cluster
        // cannot honor them anyway, and the paper's trace has no such
        // mechanism.
        qos_risk_threshold: 1e6,
    };
    let schedule = poisson_schedule(&catalog, &types, 1.0, nodes, horizon, 52);
    // No demand response here: an effectively unconstrained target.
    let target = PowerTarget {
        avg: Watts(nodes as f64 * 280.0),
        reserve: Watts(nodes as f64 * 28.0),
        signal: RegulationSignal::Constant(0.0),
    };
    let mut sim = TabularSim::new(
        cfg,
        target,
        &PerformanceVariation::none(nodes as usize),
        schedule,
        None,
    );
    sim.run(horizon, horizon * 2.0);
    // Wait / execution ratio per completed job.
    let mut ratios = Vec::new();
    for job in sim.jobs() {
        let (Some(start), Some(end)) = (job.start, job.end) else {
            continue;
        };
        let wait = (start - job.submit).value();
        let exec = (end - start).value();
        if exec > 0.0 {
            ratios.push(wait / exec);
        }
    }
    println!("jobs completed: {}", ratios.len());
    for p in [50.0, 75.0, 90.0, 95.0] {
        println!("p{p:<4.0} wait/exec ratio: {:>8.1}", percentile(&ratios, p));
    }
    let p90 = percentile(&ratios, 90.0);
    println!();
    println!(
        "paper: the real-world trace's p90 ratio exceeds 22, so a Q = (T_so - T_min)/T_min <= 5\n\
         constraint is aggressive by comparison. Our saturated synthetic month gives p90 = {p90:.1};\n\
         values above ~5 confirm the same reading: demanding Q <= 5 at 90% is a *tight* QoS bar."
    );
}
