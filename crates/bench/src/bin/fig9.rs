//! Regenerates Fig. 9: time-varying cluster power targets and measured
//! power over an hour of job arrivals, plus the Section 6.3 tracking
//! error summary.

use anor_bench::{
    finish_telemetry, finish_tracer, header, scaled, telemetry_from_args, tracer_from_args,
};
use anor_core::experiments::fig9::{self, Fig9Config};
use anor_types::Seconds;

fn main() {
    header(
        "Fig. 9",
        "Power target vs measured power over a 1-hour schedule",
    );
    let telemetry = telemetry_from_args();
    let tracer = tracer_from_args();
    let cfg = Fig9Config {
        horizon: scaled(Seconds(3600.0), Seconds(600.0)),
        telemetry: telemetry.clone(),
        tracer: tracer.clone(),
        ..Fig9Config::default()
    };
    let out = fig9::run(&cfg).expect("demand-response run failed");
    // Print a downsampled trace (one row per ~30 s) — the figure's series.
    println!("{:>8} {:>12} {:>12}", "time_s", "target_w", "measured_w");
    let stride = (out.trace.len() / 120).max(1);
    for (t, target, measured) in out.trace.iter().step_by(stride) {
        println!(
            "{:>8.0} {:>12.1} {:>12.1}",
            t.value(),
            target.value(),
            measured.value()
        );
    }
    println!();
    println!(
        "tracking: p90 error {:.1}% of reserve (constraint: <=30% for 90% of time)",
        out.p90_error * 100.0
    );
    println!(
        "          within-30%% fraction {:.1}% (constraint: >=90%)",
        out.within_30 * 100.0
    );
    println!(
        "          mean |measured-target|/target = {:.1}% (paper abstract: ~8%)",
        out.mean_relative_miss * 100.0
    );
    finish_telemetry(&telemetry);
    finish_tracer(&tracer);
}
