//! The benchmark trajectory harness: times the workloads this PR's
//! optimizations target and appends the medians to a `BENCH_PR<N>.json`
//! at the repo root, so successive PRs accumulate a perf trajectory
//! (schema documented in DESIGN.md § Performance).
//!
//! ```text
//! perfsuite [--quick] [--out PATH] [--runs K] [--baseline PATH]
//! ```
//!
//! Benches:
//! - `fig11_small` at `--jobs 1` and `--jobs 8`: the level × trial
//!   fan-out plus the embedded hourly-bid grid search, end to end. The
//!   jobs=8/jobs=1 ratio is the executor's measured speedup and scales
//!   with the host's cores (1.0 on a single-core machine).
//! - `fig4`: the analytic budget sweep.
//! - `sim_step_1000x600`: 600 simulated seconds of a 1000-node
//!   `TabularSim` at 75% utilization — the per-tick hot path.
//! - `sim_step_100k`: the same workload at 100,000 nodes, exercising the
//!   event-driven engine at ROADMAP scale (60 simulated seconds with
//!   `--quick`). The run's final state hash is also checked for equality
//!   across re-cap worker counts and against the fast-forward path.
//! - `sim_state_hash`: one FNV-1a fingerprint pass over the final
//!   100k-node node/job tables (the determinism-check primitive).
//! - `status_snapshot`: 10k snapshot+render passes over a live budgeter
//!   with 8 registered job sessions — the per-pump cost the ops plane
//!   adds when `--status-addr` is active.
//! - `load_1k_endpoints`: a full `anor-load` pass — 1000 scripted
//!   endpoints (200 with `--quick`) registering, absorbing caps and
//!   riding out a reconnect storm against the sharded reactor. The run
//!   must finish clean (all sessions re-established, zero invariant
//!   violations) and its pump p99 is reported against the 10 ms target.
//!
//! Each bench reports the min, median and run-to-run standard deviation
//! of K runs (default 5; 3 with `--quick`, which also shrinks the fig11
//! scenario). When the prior PR's trajectory file exists (`--baseline`,
//! default `BENCH_PR9.json`), medians that slowed by more than 10% are
//! flagged as `PERF REGRESSION` lines.

use anor_bench::analyze::{flag_regressions, parse_bench_file, BenchRow};
use anor_cluster::budgeter::{BudgeterConfig, ClusterBudgeter};
use anor_cluster::{
    run_load, BudgetPolicy, FramedStream, LoadConfig, StreamOptions, TransportKind,
    TransportOptions,
};
use anor_core::aqa::{poisson_schedule, PowerTarget, RegulationSignal};
use anor_core::experiments::{fig11, fig4};
use anor_core::platform::PerformanceVariation;
use anor_core::sim::{SimConfig, SimPowerPolicy, TabularSim};
use anor_core::types::{QosConstraint, Seconds, Watts};
use anor_types::msg::JobToCluster;
use anor_types::stats::std_dev;
use anor_types::JobId;
use std::time::Instant;

struct BenchResult {
    bench: String,
    min_s: f64,
    median_s: f64,
    stddev_s: f64,
    runs: usize,
    jobs: usize,
}

/// Min / median / run-to-run standard deviation of wall-clock seconds
/// over `runs` invocations.
fn timed_runs(runs: usize, mut f: impl FnMut()) -> (f64, f64, f64) {
    let mut samples: Vec<f64> = (0..runs)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    let sigma = std_dev(&samples);
    (samples[0], samples[samples.len() / 2], sigma)
}

fn fig11_small(quick: bool, jobs: usize) -> fig11::Fig11Config {
    if quick {
        fig11::Fig11Config {
            nodes: 40,
            trials: 2,
            levels: vec![0.0, 30.0],
            horizon: Seconds(600.0),
            jobs,
            ..fig11::Fig11Config::default()
        }
    } else {
        fig11::Fig11Config {
            nodes: 150,
            trials: 4,
            levels: vec![0.0, 10.0, 20.0, 30.0],
            horizon: Seconds(900.0),
            jobs,
            ..fig11::Fig11Config::default()
        }
    }
}

/// The `sim_step` bench scenario: 75% utilization, a ±35% random-walk
/// regulation signal, 5% performance variation.
fn sim_build(nodes: u32, ticks: usize) -> TabularSim {
    let catalog = anor_core::types::standard_catalog().scale_nodes((nodes / 40).max(1));
    let types = catalog.long_running();
    let cfg = SimConfig {
        total_nodes: nodes,
        idle_power: Watts(90.0),
        catalog,
        types,
        tick: Seconds(1.0),
        policy: SimPowerPolicy::EvenSlowdown,
        qos: QosConstraint::default(),
        qos_risk_threshold: 0.8,
    };
    let schedule = poisson_schedule(
        &cfg.catalog,
        &cfg.types,
        0.75,
        nodes,
        Seconds(ticks as f64),
        42,
    );
    let mean_draw: f64 = cfg
        .types
        .iter()
        .map(|&id| cfg.catalog[id].max_draw.value())
        .sum::<f64>()
        / cfg.types.len() as f64;
    let avg = Watts(nodes as f64 * (0.75 * mean_draw + 0.25 * 90.0)) * 0.85;
    let target = PowerTarget {
        avg,
        reserve: avg * 0.12,
        signal: RegulationSignal::random_walk(Seconds(4.0), 0.35, Seconds(7200.0), 7),
    };
    let variation = PerformanceVariation::with_sigma(nodes as usize, 0.05, 13);
    TabularSim::new(cfg, target, &variation, schedule, None)
}

/// One `nodes`-node, `ticks`-tick simulator run (the hot-path bench body).
fn sim_step_loop(nodes: u32, ticks: usize) {
    let mut sim = sim_build(nodes, ticks);
    for _ in 0..ticks {
        sim.step();
    }
    assert!(sim.measured_power().value() > 0.0);
}

/// One full run returning the final state hash. `workers` shards the
/// re-cap staging pass; `fast_forward` drives the run through `run_to`
/// (tracking frozen) instead of per-tick stepping. All variants must
/// produce the same hash — that is the engine's determinism contract.
fn sim_hash_run(nodes: u32, ticks: usize, workers: usize, fast_forward: bool) -> u64 {
    let mut sim = sim_build(nodes, ticks);
    sim.set_recap_shards(workers);
    if fast_forward {
        sim.freeze_tracking();
        sim.run_to(Seconds(ticks as f64));
    } else {
        for _ in 0..ticks {
            sim.step();
        }
    }
    sim.state_hash()
}

/// A live budgeter with `sessions` registered jobs, for the snapshot
/// bench. The returned streams keep the sessions connected.
fn snapshot_fixture(sessions: u64) -> (ClusterBudgeter, Vec<FramedStream>) {
    let (mut b, addr) = ClusterBudgeter::builder(BudgeterConfig::new(BudgetPolicy::Uniform, false))
        .bind()
        .expect("bind budgeter");
    let mut streams = Vec::new();
    for job in 1..=sessions {
        let mut s = FramedStream::new(
            std::net::TcpStream::connect(addr).expect("connect"),
            StreamOptions::default(),
        )
        .expect("framed stream");
        s.send(
            JobToCluster::Hello {
                job: JobId(job),
                type_name: "cg.D.32".into(),
                nodes: 2,
            }
            .encode(),
        )
        .expect("hello");
        streams.push(s);
    }
    // Pump until every session is registered and capped.
    for _ in 0..1000 {
        b.pump(Watts(840.0)).expect("pump");
        if b.status_snapshot().active_jobs == sessions as usize {
            return (b, streams);
        }
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    panic!("sessions never registered");
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn write_json(path: &str, results: &[BenchResult]) -> std::io::Result<()> {
    let mut out = String::from("[\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"bench\": \"{}\", \"min_s\": {:.6}, \"median_s\": {:.6}, \
             \"stddev_s\": {:.6}, \"runs\": {}, \"jobs\": {}}}{}\n",
            json_escape(&r.bench),
            r.min_s,
            r.median_s,
            r.stddev_s,
            r.runs,
            r.jobs,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    out.push_str("]\n");
    std::fs::write(path, out)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_PR10.json".to_string());
    let baseline_path = args
        .iter()
        .position(|a| a == "--baseline")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_PR9.json".to_string());
    let runs = args
        .iter()
        .position(|a| a == "--runs")
        .and_then(|i| args.get(i + 1))
        .and_then(|n| n.parse().ok())
        .unwrap_or(if quick { 3 } else { 5 });

    anor_bench::header(
        "perfsuite",
        "Benchmark trajectory harness (stats land in BENCH_PR10.json)",
    );
    let mut results = Vec::new();
    for jobs in [1usize, 8] {
        let cfg = fig11_small(quick, jobs);
        let (min, median, sigma) = timed_runs(runs, || {
            fig11::run(&cfg).expect("fig11 run failed");
        });
        println!(
            "fig11_small --jobs {jobs}: median {median:.3} s (min {min:.3}, σ {sigma:.3}) \
             over {runs} run(s)"
        );
        results.push(BenchResult {
            bench: "fig11_small".to_string(),
            min_s: min,
            median_s: median,
            stddev_s: sigma,
            runs,
            jobs,
        });
    }
    let serial = results[0].median_s;
    let parallel = results[1].median_s;
    println!(
        "fig11_small speedup at --jobs 8: {:.2}x (scales with available cores)",
        serial / parallel.max(1e-9)
    );

    let (min, median, sigma) = timed_runs(runs, || {
        let out = fig4::run_pooled(1);
        assert_eq!(out.even_slowdown.len(), 8);
    });
    println!("fig4: median {median:.3} s (min {min:.3}, σ {sigma:.3}) over {runs} run(s)");
    results.push(BenchResult {
        bench: "fig4".to_string(),
        min_s: min,
        median_s: median,
        stddev_s: sigma,
        runs,
        jobs: 1,
    });

    let (nodes, ticks) = if quick { (1000, 200) } else { (1000, 600) };
    let (min, median, sigma) = timed_runs(runs, || sim_step_loop(nodes, ticks));
    println!(
        "sim_step_{nodes}x{ticks}: median {median:.3} s (min {min:.3}, σ {sigma:.3}) \
         over {runs} run(s)"
    );
    results.push(BenchResult {
        bench: format!("sim_step_{nodes}x{ticks}"),
        min_s: min,
        median_s: median,
        stddev_s: sigma,
        runs,
        jobs: 1,
    });

    let ticks_100k = if quick { 60 } else { 600 };
    let (min, median, sigma) = timed_runs(runs, || sim_step_loop(100_000, ticks_100k));
    println!(
        "sim_step_100k: median {median:.3} s (min {min:.3}, \u{3c3} {sigma:.3}) over {runs} \
         run(s) at {ticks_100k} simulated second(s)"
    );
    results.push(BenchResult {
        bench: "sim_step_100k".to_string(),
        min_s: min,
        median_s: median,
        stddev_s: sigma,
        runs,
        jobs: 1,
    });

    // The determinism contract behind the bench: the identical scenario
    // must hash the same across re-cap worker counts, repeat runs and
    // the fast-forward stepping mode.
    let h_serial = sim_hash_run(100_000, ticks_100k, 1, false);
    let h_sharded = sim_hash_run(100_000, ticks_100k, 4, false);
    let h_jumped = sim_hash_run(100_000, ticks_100k, 1, true);
    assert_eq!(
        h_serial, h_sharded,
        "state hash must not depend on worker count"
    );
    assert_eq!(
        h_serial, h_jumped,
        "state hash must not depend on stepping mode"
    );
    println!(
        "sim_state_hash determinism: {h_serial:#018x} at 1 and 4 re-cap workers and under \
         fast-forward"
    );

    let mut hashed_sim = sim_build(100_000, ticks_100k);
    for _ in 0..ticks_100k {
        hashed_sim.step();
    }
    let (min, median, sigma) = timed_runs(runs, || {
        assert_ne!(hashed_sim.state_hash(), 0);
    });
    println!(
        "sim_state_hash: median {median:.3} s (min {min:.3}, \u{3c3} {sigma:.3}) over {runs} \
         run(s) for a 100k-node table fingerprint"
    );
    results.push(BenchResult {
        bench: "sim_state_hash".to_string(),
        min_s: min,
        median_s: median,
        stddev_s: sigma,
        runs,
        jobs: 1,
    });

    let (b, _streams) = snapshot_fixture(8);
    let iters = 10_000usize;
    let (min, median, sigma) = timed_runs(runs, || {
        for _ in 0..iters {
            let snap = b.status_snapshot();
            assert_eq!(snap.jobs.len(), 8);
            assert!(!snap.to_json().is_empty());
        }
    });
    println!(
        "status_snapshot: median {median:.3} s per {iters} snapshot+render passes \
         over {runs} run(s) ({:.1} µs/pass, min {min:.3} s, σ {sigma:.3} s)",
        median / iters as f64 * 1e6
    );
    results.push(BenchResult {
        bench: "status_snapshot".to_string(),
        min_s: min,
        median_s: median,
        stddev_s: sigma,
        runs,
        jobs: 1,
    });

    // The connection-plane bench: a full anor-load pass on the sharded
    // reactor — register N endpoints, land caps on all of them, drop
    // every socket at once and resume. The run must finish clean; the
    // timing is the trajectory metric, the pump p99 is checked against
    // the 10 ms design target.
    let endpoints = if quick { 200 } else { 1000 };
    let mut last_p99 = 0.0f64;
    let mut last_eps = 0.0f64;
    let (min, median, sigma) = timed_runs(runs, || {
        let cfg = LoadConfig {
            endpoints,
            storms: 1,
            transport: TransportOptions {
                kind: TransportKind::Reactor,
                shards: 4,
                conn_queue_depth: 64,
            },
            drivers: 4,
            ..LoadConfig::default()
        };
        let report = run_load(&cfg).expect("load run failed");
        assert!(report.ok(), "load run must finish clean:\n{report}");
        last_p99 = report.pump_p99_ms;
        last_eps = report.endpoints_per_sec;
    });
    println!(
        "load_1k_endpoints: median {median:.3} s (min {min:.3}, σ {sigma:.3}) over {runs} \
         run(s) at {endpoints} endpoint(s); {last_eps:.0} endpoints/s, pump p99 \
         {last_p99:.3} ms (target < 10 ms)"
    );
    if last_p99 >= 10.0 {
        println!("PERF WARNING: pump p99 {last_p99:.3} ms exceeds the 10 ms reactor target");
    }
    results.push(BenchResult {
        bench: "load_1k_endpoints".to_string(),
        min_s: min,
        median_s: median,
        stddev_s: sigma,
        runs,
        jobs: 1,
    });

    match write_json(&out_path, &results) {
        Ok(()) => println!("\nwrote {} result(s) to {out_path}", results.len()),
        Err(e) => {
            eprintln!("failed to write {out_path}: {e}");
            std::process::exit(1);
        }
    }

    // Compare against the prior PR's trajectory file, when present:
    // medians more than 10% slower are operator-visible regressions
    // (advisory — perf on shared CI machines is noisy, so the exit
    // status stays 0).
    match std::fs::read_to_string(&baseline_path) {
        Ok(text) => match parse_bench_file(&text) {
            Ok(prior) => {
                let current: Vec<BenchRow> = results
                    .iter()
                    .map(|r| BenchRow {
                        bench: r.bench.clone(),
                        jobs: r.jobs as u64,
                        median_s: r.median_s,
                        min_s: Some(r.min_s),
                        stddev_s: Some(r.stddev_s),
                    })
                    .collect();
                let flags = flag_regressions(&prior, &current, 0.10);
                if flags.is_empty() {
                    println!("no >10% median regressions vs {baseline_path}");
                } else {
                    for f in &flags {
                        println!("PERF REGRESSION vs {baseline_path}: {f}");
                    }
                }
            }
            Err(e) => eprintln!("{baseline_path}: unparseable baseline ({e}); skipping comparison"),
        },
        Err(_) => println!("baseline {baseline_path} not found; skipping regression comparison"),
    }
}
