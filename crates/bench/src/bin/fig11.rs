//! Regenerates Fig. 11: 90th-percentile QoS degradation vs per-node
//! performance-variation level on the simulated 1000-node cluster.

use anor_bench::{header, jobs_from_args, quick_mode};
use anor_core::experiments::fig11::{self, Fig11Config};
use anor_core::render::render_table;

fn main() {
    header(
        "Fig. 11",
        "90th-percentile QoS degradation vs performance variation (1000 nodes)",
    );
    let mut cfg = if quick_mode() {
        Fig11Config::quick()
    } else {
        Fig11Config::default()
    };
    cfg.jobs = jobs_from_args();
    let out = fig11::run(&cfg).expect("simulation failed");
    println!(
        "{}",
        render_table(
            "90th-percentile QoS degradation (err = 90% CI over trials)",
            "level_pct",
            &out.series
        )
    );
    println!("QoS target: Q = 5 (dashed line in the figure)");
    for (level, frac) in &out.tracking_ok_fraction {
        println!(
            "tracking constraint met at ±{level}%: {:.0}% of trials (paper: all levels within constraint)",
            frac * 100.0
        );
    }
}
