//! Regenerates Fig. 11: 90th-percentile QoS degradation vs per-node
//! performance-variation level on the simulated 1000-node cluster.

use anor_bench::{
    finish_telemetry, finish_tracer, header, jobs_from_args, quick_mode, telemetry_from_args,
    tracer_from_args,
};
use anor_core::experiments::fig11::{self, Fig11Config};
use anor_core::render::render_table;
use anor_telemetry::TraceStage;

fn main() {
    header(
        "Fig. 11",
        "90th-percentile QoS degradation vs performance variation (1000 nodes)",
    );
    let telemetry = telemetry_from_args();
    let tracer = tracer_from_args();
    let mut cfg = if quick_mode() {
        Fig11Config::quick()
    } else {
        Fig11Config::default()
    };
    cfg.jobs = jobs_from_args();
    let out = fig11::run(&cfg).expect("simulation failed");
    println!(
        "{}",
        render_table(
            "90th-percentile QoS degradation (err = 90% CI over trials)",
            "level_pct",
            &out.series
        )
    );
    println!("QoS target: Q = 5 (dashed line in the figure)");
    for (level, frac) in &out.tracking_ok_fraction {
        println!(
            "tracking constraint met at ±{level}%: {:.0}% of trials (paper: all levels within constraint)",
            frac * 100.0
        );
        // One event/trace record per variation level: the mean p90 QoS
        // across types and the tracking-constraint pass fraction.
        let mean_qos = {
            let ys: Vec<f64> = out.series.iter().filter_map(|s| s.y_at(*level)).collect();
            if ys.is_empty() {
                0.0
            } else {
                ys.iter().sum::<f64>() / ys.len() as f64
            }
        };
        telemetry.event(
            "fig11_level",
            &[
                ("level_pct", (*level).into()),
                ("mean_p90_qos", mean_qos.into()),
                ("tracking_ok_fraction", (*frac).into()),
            ],
        );
        if let Some(t) = &tracer {
            t.record_detail(
                TraceStage::Decision,
                t.next_cause(),
                &format!(
                    "fig11 level ±{level}%: mean p90 QoS {mean_qos:.2}, tracking ok {:.0}%",
                    frac * 100.0
                ),
            );
        }
    }
    finish_telemetry(&telemetry);
    finish_tracer(&tracer);
}
