//! `anor-trace` — offline causal-trace analyzer.
//!
//! Point it at a `--trace <dir>` output directory (or directly at a
//! `trace.jsonl` / postmortem file) and it joins the events into
//! per-decision causal chains, then reports completeness, orphans and
//! the control-loop latency percentiles.
//!
//! ```text
//! anor-trace /tmp/fig6-trace
//! anor-trace /tmp/fig6-trace/trace.jsonl
//! ```

use anor_bench::analyze::analyze;
use anor_telemetry::{read_trace, TraceEvent};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: anor-trace <trace-dir | trace.jsonl> [more files...]");
    eprintln!("  Joins ANOR causal-trace JSONL into per-decision chains and");
    eprintln!("  prints control-loop latency percentiles, orphaned decisions");
    eprintln!("  and malformed-event counts.");
    ExitCode::FAILURE
}

/// Expand an argument into the trace files it denotes: a file is taken
/// as-is; a directory contributes its `trace.jsonl` plus any
/// `postmortem-*.jsonl` dumps.
fn expand(path: &Path) -> Vec<PathBuf> {
    if path.is_file() {
        return vec![path.to_path_buf()];
    }
    let mut files = Vec::new();
    let main = path.join("trace.jsonl");
    if main.is_file() {
        files.push(main);
    }
    if let Ok(entries) = std::fs::read_dir(path) {
        let mut dumps: Vec<PathBuf> = entries
            .flatten()
            .map(|e| e.path())
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("postmortem-") && n.ends_with(".jsonl"))
            })
            .collect();
        dumps.sort();
        files.extend(dumps);
    }
    files
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "-h" || a == "--help") {
        return usage();
    }
    let mut events: Vec<TraceEvent> = Vec::new();
    let mut malformed = 0u64;
    let mut files_read = 0usize;
    for arg in &args {
        let path = Path::new(arg);
        let files = expand(path);
        if files.is_empty() {
            eprintln!("anor-trace: no trace files under {arg}");
            return ExitCode::FAILURE;
        }
        for file in files {
            match read_trace(&file) {
                Ok(scan) => {
                    println!(
                        "read {}: {} event(s), {} malformed, {} unrelated line(s)",
                        file.display(),
                        scan.events.len(),
                        scan.malformed,
                        scan.other
                    );
                    events.extend(scan.events);
                    malformed += scan.malformed;
                    files_read += 1;
                }
                Err(e) => {
                    eprintln!("anor-trace: {}: {e}", file.display());
                    return ExitCode::FAILURE;
                }
            }
        }
    }
    // Events from multiple files interleave; order by timestamp so
    // "first occurrence" per stage is chronological.
    events.sort_by(|a, b| a.ts.total_cmp(&b.ts));
    let report = analyze(&events);
    println!();
    println!(
        "{} file(s), {} event(s), {} malformed event(s)",
        files_read,
        events.len(),
        malformed
    );
    println!();
    print!("{}", report.render());
    if malformed > 0 {
        eprintln!("anor-trace: {malformed} malformed event(s) encountered");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
