//! Regenerates Fig. 8: two SP instances under the shared 840 W budget,
//! one potentially misclassified as EP.

use anor_bench::{header, scaled};
use anor_core::experiments::fig8;
use anor_core::render::render_bars;

fn main() {
    header(
        "Fig. 8",
        "Measured slowdown (%) of two SP instances (one possibly = EP)",
    );
    let trials = scaled(6, 1);
    let bars = fig8::run(trials, 8).expect("emulated run failed");
    for bar in &bars {
        let rows: Vec<(String, f64, f64)> = bar
            .jobs
            .iter()
            .map(|(name, y, e)| (name.clone(), *y, *e))
            .collect();
        println!("{}", render_bars(&bar.label, &rows));
    }
    println!(
        "paper anchors: slowdowns stay small (low-sensitivity pair); the\n\
         misclassified instance's sibling sees a small slowdown; feedback\n\
         recovers part of it."
    );
}
