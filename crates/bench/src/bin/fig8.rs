//! Regenerates Fig. 8: two SP instances under the shared 840 W budget,
//! one potentially misclassified as EP.

use anor_bench::{
    chaos_summary, faults_from_args, finish_recording, finish_telemetry, finish_tracer, header,
    jobs_from_args, record_dir_from_args, scaled, telemetry_from_args, tracer_from_args,
    transport_from_args,
};
use anor_core::experiments::fig8;
use anor_core::experiments::hw::HwRunOptions;
use anor_core::render::render_bars;

fn main() {
    header(
        "Fig. 8",
        "Measured slowdown (%) of two SP instances (one possibly = EP)",
    );
    let telemetry = telemetry_from_args();
    let tracer = tracer_from_args();
    let faults = faults_from_args();
    let record = record_dir_from_args();
    let trials = scaled(6, 1);
    let opts = HwRunOptions {
        telemetry: telemetry.clone(),
        tracer: tracer.clone(),
        jobs: jobs_from_args(),
        faults: faults.clone(),
        record_dir: record.clone(),
        transport: transport_from_args(),
    };
    let bars = fig8::run_opts(trials, 8, &opts).expect("emulated run failed");
    for bar in &bars {
        let rows: Vec<(String, f64, f64)> = bar
            .jobs
            .iter()
            .map(|(name, y, e)| (name.clone(), *y, *e))
            .collect();
        println!("{}", render_bars(&bar.label, &rows));
    }
    println!(
        "paper anchors: slowdowns stay small (low-sensitivity pair); the\n\
         misclassified instance's sibling sees a small slowdown; feedback\n\
         recovers part of it."
    );
    if faults.is_some() {
        chaos_summary(&telemetry);
    }
    finish_telemetry(&telemetry);
    finish_tracer(&tracer);
    finish_recording(&record);
}
