//! Regenerates Fig. 10: mean execution-time slowdown per job type under
//! a 1-hour schedule with time-varying power caps, across the Uniform /
//! Characterized / Misclassified / Adjusted policies, plus the tracking
//! error summary of Section 6.3.

use anor_bench::{
    chaos_summary, faults_from_args, finish_recording, finish_telemetry, finish_tracer, header,
    jobs_from_args, record_dir_from_args, scaled, telemetry_from_args, tracer_from_args,
    transport_from_args,
};
use anor_core::experiments::fig10::{self, Fig10Config, Fig10Policy};
use anor_types::Seconds;

fn main() {
    header(
        "Fig. 10",
        "Mean slowdown (%) per job type, 4 capping policies (95% CI)",
    );
    let telemetry = telemetry_from_args();
    let tracer = tracer_from_args();
    let faults = faults_from_args();
    let record = record_dir_from_args();
    let cfg = Fig10Config {
        horizon: scaled(Seconds(3600.0), Seconds(900.0)),
        telemetry: telemetry.clone(),
        tracer: tracer.clone(),
        jobs: jobs_from_args(),
        faults: faults.clone(),
        record: record.clone(),
        transport: transport_from_args(),
        ..Fig10Config::default()
    };
    let out = fig10::run(&cfg).expect("demand-response run failed");
    println!(
        "{:>14} {:>10} {:>12} {:>9} {:>6}",
        "policy", "job type", "slowdown_%", "ci95_%", "n"
    );
    for c in &out.cells {
        println!(
            "{:>14} {:>10} {:>12.2} {:>9.2} {:>6}",
            c.policy.label(),
            c.type_name,
            c.mean_slowdown,
            c.ci95,
            c.instances
        );
    }
    println!();
    println!(
        "worst-type slowdown: uniform {:.1}% -> characterized {:.1}% (paper: 11.6% -> 8.0%)",
        out.worst(Fig10Policy::Uniform),
        out.worst(Fig10Policy::Characterized)
    );
    for (policy, p90) in &out.tracking_p90 {
        println!(
            "tracking p90 error [{}]: {:.1}% of reserve (paper: worst 24%, others <17%)",
            policy.label(),
            p90 * 100.0
        );
    }
    if faults.is_some() {
        chaos_summary(&telemetry);
    }
    finish_telemetry(&telemetry);
    finish_tracer(&tracer);
    finish_recording(&record);
}
