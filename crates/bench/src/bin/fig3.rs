//! Regenerates Fig. 3: execution time of each job type under varied
//! power caps, relative to the 280 W time; σ over repeated runs.

use anor_bench::{header, scaled};
use anor_core::experiments::fig3;
use anor_core::render::render_table;

fn main() {
    header(
        "Fig. 3",
        "Relative execution time vs node power cap (error = σ over runs)",
    );
    let runs = scaled(10, 3);
    let series = fig3::run(runs, 3);
    println!("{}", render_table("relative time vs cap", "cap_w", &series));
    // Paper anchor: curves span 1.0 at 280 W up to ~1.8 at 140 W, with
    // EP/BT/LU/FT steep and IS/SP/MG/CG shallow.
    let at140: Vec<(String, f64)> = series
        .iter()
        .map(|s| (s.label.clone(), s.y_at(140.0).unwrap_or(f64::NAN)))
        .collect();
    println!("slowest-cap relative times (paper: up to ~1.8):");
    for (name, y) in at140 {
        println!("  {name:>8}: {y:.3}");
    }
}
