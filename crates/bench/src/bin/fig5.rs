//! Regenerates Fig. 5: performance impact when a medium-sensitivity job
//! is misclassified, across under/over-prediction and small/large
//! unknown-job quadrants.

use anor_bench::header;
use anor_core::experiments::fig5;
use anor_core::render::render_table;

fn main() {
    header(
        "Fig. 5",
        "Slowdown (%) vs cluster budget when FT is misclassified (4 quadrants)",
    );
    for q in fig5::run() {
        let title = format!(
            "{} sensitivity of {} job",
            match q.direction {
                fig5::Direction::Underpredict => "Underpredict",
                fig5::Direction::Overpredict => "Overpredict",
            },
            match q.size {
                fig5::UnknownSize::Small => "small (2-node) unknown",
                fig5::UnknownSize::Large => "large (8-node) unknown",
            }
        );
        println!("{}", render_table(&title, "budget_w", &q.series));
    }
    println!(
        "paper anchors: under-prediction slows the unknown job; over-prediction\n\
         slows the sensitive co-scheduled job; impact grows with the relative\n\
         size of the misclassified job."
    );
}
