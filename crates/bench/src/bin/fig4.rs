//! Regenerates Fig. 4: estimated job slowdown when 8 job types each run
//! one instance under a range of shared power budgets, comparing the
//! even-slowdown (ideal) and even-power-caps budgeters.

use anor_bench::{
    finish_telemetry, finish_tracer, header, jobs_from_args, telemetry_from_args, tracer_from_args,
};
use anor_core::experiments::fig4;
use anor_core::render::render_table;
use anor_telemetry::TraceStage;

fn main() {
    header(
        "Fig. 4",
        "Job slowdown (%) vs shared cluster budget, two budgeters",
    );
    let telemetry = telemetry_from_args();
    let tracer = tracer_from_args();
    let out = fig4::run_pooled(jobs_from_args());
    println!(
        "{}",
        render_table(
            "Even Slowdown (Ideal) budgeter",
            "budget_w",
            &out.even_slowdown
        )
    );
    println!(
        "{}",
        render_table("Even Power Caps budgeter", "budget_w", &out.even_power)
    );
    // One event/trace record per (policy, budget) point, carrying the
    // worst per-type slowdown — the quantity the figure argues about.
    for (policy, series) in [
        ("even_slowdown", &out.even_slowdown),
        ("even_power", &out.even_power),
    ] {
        for &budget in &fig4::budgets() {
            let worst = series
                .iter()
                .map(|s| s.y_at(budget).unwrap_or(0.0))
                .fold(0.0, f64::max);
            telemetry.event(
                "fig4_point",
                &[
                    ("policy", policy.into()),
                    ("budget_w", budget.into()),
                    ("worst_slowdown_pct", worst.into()),
                ],
            );
            if let Some(t) = &tracer {
                t.record_full(
                    TraceStage::Decision,
                    t.next_cause(),
                    None,
                    Some(budget),
                    Some(format!("fig4 {policy} worst {worst:.2}%")),
                );
            }
        }
    }
    // Paper anchor: even-slowdown reduces the worst job's slowdown in the
    // mid-range; no flexibility at the extremes.
    for budget in [1500.0, 2100.0, 2700.0, 3000.0] {
        let worst = |series: &[anor_core::render::Series]| {
            series
                .iter()
                .map(|s| s.y_at(budget).unwrap_or(0.0))
                .fold(0.0, f64::max)
        };
        println!(
            "budget {budget:>6.0} W: worst slowdown even-power {:>6.2}% vs even-slowdown {:>6.2}%",
            worst(&out.even_power),
            worst(&out.even_slowdown)
        );
    }
    finish_telemetry(&telemetry);
    finish_tracer(&tracer);
}
