#![warn(missing_docs)]
//! # anor-bench
//!
//! The benchmark harness: one `fig*` binary per figure of the paper's
//! evaluation (regenerating the figure's rows/series as text tables) and
//! a set of Criterion benches covering component performance and the
//! design-choice ablations DESIGN.md calls out.
//!
//! Run a figure:
//!
//! ```text
//! cargo run --release -p anor-bench --bin fig9
//! ```
//!
//! Set `ANOR_QUICK=1` to shrink trial counts / horizons for smoke runs.

pub mod analyze;

/// True when the `ANOR_QUICK` environment variable requests a scaled-down
/// run.
pub fn quick_mode() -> bool {
    std::env::var("ANOR_QUICK").is_ok_and(|v| v != "0" && !v.is_empty())
}

/// Pick between the paper-scale and quick values.
pub fn scaled<T>(full: T, quick: T) -> T {
    if quick_mode() {
        quick
    } else {
        full
    }
}

/// Print a standard header for a figure binary.
pub fn header(figure: &str, summary: &str) {
    println!("=== {figure} ===");
    println!("{summary}");
    if quick_mode() {
        println!("(ANOR_QUICK set: reduced trials/horizon)");
    }
    println!();
}

/// Parse a `--jobs N` command-line option for the experiment fan-out
/// worker count. Returns 0 when absent or malformed, which lets
/// [`anor_exec`] fall back to `ANOR_JOBS` and then the machine's
/// available parallelism. Output is identical for every value — `--jobs`
/// only changes wall-clock time.
pub fn jobs_from_args() -> usize {
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--jobs" {
            if let Some(n) = args.next() {
                match n.parse::<usize>() {
                    Ok(n) => return n,
                    Err(_) => {
                        eprintln!("--jobs {n}: not a number; using automatic worker count");
                        return 0;
                    }
                }
            }
        }
    }
    0
}

/// Build the run's [`Telemetry`](anor_telemetry::Telemetry) sink from a
/// `--telemetry <dir>` command-line option: directory-backed when the
/// option is present (events stream to `<dir>/events.jsonl`), in-memory
/// otherwise. Unknown options are ignored so figure binaries stay
/// permissive.
pub fn telemetry_from_args() -> anor_telemetry::Telemetry {
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--telemetry" {
            if let Some(dir) = args.next() {
                match anor_telemetry::Telemetry::to_dir(&dir) {
                    Ok(t) => return t,
                    Err(e) => {
                        eprintln!("--telemetry {dir}: {e}; falling back to in-memory telemetry");
                        break;
                    }
                }
            }
        }
    }
    anor_telemetry::Telemetry::new()
}

/// Flush telemetry artifacts and, when directory-backed, print the
/// end-of-run summary table and where the artifacts went.
pub fn finish_telemetry(telemetry: &anor_telemetry::Telemetry) {
    if let Some(dir) = telemetry.dir() {
        let dir = dir.to_path_buf();
        match telemetry.write_artifacts() {
            Ok(summary) => {
                println!();
                println!("{summary}");
                println!("telemetry artifacts written to {}", dir.display());
            }
            Err(e) => eprintln!("failed to write telemetry artifacts: {e}"),
        }
    }
}

/// Build a chaos [`FaultPlan`](anor_cluster::FaultPlan) from a
/// `--faults <spec>` command-line option (e.g.
/// `--faults drop@17,corrupt@42,delay@5:3`), seeded from an optional
/// `--fault-seed N`. Returns `None` when absent; a malformed spec is an
/// operator error and aborts the run rather than silently running
/// fault-free.
pub fn faults_from_args() -> Option<anor_cluster::FaultPlan> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let spec = {
        let mut it = argv.iter();
        let mut found = None;
        while let Some(arg) = it.next() {
            if arg == "--faults" {
                found = it.next();
                break;
            }
        }
        found?
    };
    let seed = {
        let mut it = argv.iter();
        let mut seed = 0x5eed_u64;
        while let Some(arg) = it.next() {
            if arg == "--fault-seed" {
                if let Some(s) = it.next() {
                    match s.parse() {
                        Ok(n) => seed = n,
                        Err(_) => {
                            eprintln!("--fault-seed {s}: not a number");
                            std::process::exit(2);
                        }
                    }
                }
            }
        }
        seed
    };
    match anor_cluster::FaultPlan::parse(spec) {
        Ok(plan) => Some(plan.seeded(seed)),
        Err(e) => {
            eprintln!("--faults {spec}: {e}");
            std::process::exit(2);
        }
    }
}

/// Print the greppable end-of-run chaos summary (only meaningful when a
/// fault plan was active): session reconnects, injected faults, expired
/// leases and currently reclaimed watts, all read from the shared
/// telemetry handle.
pub fn chaos_summary(telemetry: &anor_telemetry::Telemetry) {
    let reconnects = telemetry
        .counter("endpoint_session_reconnects_total", &[])
        .get();
    let injected = telemetry
        .counter("transport_faults_injected_total", &[("role", "endpoint")])
        .get()
        + telemetry
            .counter("transport_faults_injected_total", &[("role", "budgeter")])
            .get();
    let expired = telemetry.counter("leases_expired_total", &[]).get();
    let reclaimed = telemetry.gauge("watts_reclaimed", &[]).get();
    println!(
        "chaos: reconnects={reconnects} faults_injected={injected} \
         leases_expired={expired} watts_reclaimed={reclaimed:.1}"
    );
}

/// Parse a `--record <dir>` command-line option for budgeter flight
/// recording. Creates the directory eagerly so a typo'd path fails the
/// run before hours of emulation; returns `None` when the option is
/// absent. The figure runners write one `.rec` per emulated cell,
/// replayable with `anor-replay --verify`.
pub fn record_dir_from_args() -> Option<std::path::PathBuf> {
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--record" {
            if let Some(dir) = args.next() {
                let dir = std::path::PathBuf::from(dir);
                if let Err(e) = std::fs::create_dir_all(&dir) {
                    eprintln!("--record {}: {e}", dir.display());
                    std::process::exit(2);
                }
                return Some(dir);
            }
        }
    }
    None
}

/// Parse a `--transport blocking|reactor` command-line option for the
/// emulated budgeter's connection plane. Defaults to blocking when
/// absent; a malformed value is an operator error and aborts the run.
/// Decisions are byte-identical across kinds, so figure output is
/// unchanged — the flag exists to soak the sharded reactor under real
/// experiment traffic.
pub fn transport_from_args() -> anor_cluster::TransportKind {
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--transport" {
            if let Some(name) = args.next() {
                match name.parse() {
                    Ok(kind) => return kind,
                    Err(e) => {
                        eprintln!("--transport {name}: {e}");
                        std::process::exit(2);
                    }
                }
            }
        }
    }
    anor_cluster::TransportKind::default()
}

/// Print where a `--record` run's flight recordings went and how to
/// verify them.
pub fn finish_recording(record_dir: &Option<std::path::PathBuf>) {
    if let Some(dir) = record_dir {
        println!();
        println!(
            "flight recordings written to {}; verify with: anor-replay --rec <file> --verify",
            dir.display()
        );
    }
}

/// Build the run's causal [`Tracer`](anor_telemetry::Tracer) from a
/// `--trace <dir>` command-line option: directory-backed when present
/// (events stream to `<dir>/trace.jsonl`, flight-recorder postmortems
/// land beside it), absent otherwise. Unknown options are ignored so
/// figure binaries stay permissive.
pub fn tracer_from_args() -> Option<anor_telemetry::Tracer> {
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--trace" {
            if let Some(dir) = args.next() {
                match anor_telemetry::Tracer::to_dir(&dir) {
                    Ok(t) => return Some(t),
                    Err(e) => {
                        eprintln!("--trace {dir}: {e}; tracing disabled");
                        return None;
                    }
                }
            }
        }
    }
    None
}

/// Flush the tracer and print where the trace went and how to analyze it.
pub fn finish_tracer(tracer: &Option<anor_telemetry::Tracer>) {
    let Some(t) = tracer else { return };
    if let Err(e) = t.flush() {
        eprintln!("failed to flush trace sink: {e}");
    }
    if let Some(dir) = t.dir() {
        println!();
        println!(
            "trace written to {} ({} event(s)); analyze with: anor-trace {}",
            dir.join("trace.jsonl").display(),
            t.recorded(),
            dir.display()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_picks_by_env() {
        // The env var is process-global; only assert consistency.
        if quick_mode() {
            assert_eq!(scaled(10, 2), 2);
        } else {
            assert_eq!(scaled(10, 2), 10);
        }
    }
}
