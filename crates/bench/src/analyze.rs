//! Offline causal-trace analysis (the `anor-trace` binary's core).
//!
//! Joins the flat trace events a `--trace <dir>` run streams into
//! `trace.jsonl` back into per-decision causal chains, and derives the
//! control-loop latency distributions the framework's nested feedback
//! loop is designed around: how long a budgeter decision takes to reach
//! the MSRs (decision → wire → actuation) and how long until the
//! decision's effect is observed back at the cluster tier and folded
//! into a model (actuation → first observation → retrain).

use anor_telemetry::{TraceEvent, TraceStage};
use std::collections::BTreeMap;

/// The per-stage timeline reconstructed for one decision (cause id).
#[derive(Debug, Clone, Default)]
pub struct DecisionChain {
    /// The decision's cause id.
    pub cause: u64,
    /// When the budgeter recorded the decision.
    pub decision: Option<f64>,
    /// First `SetPowerCap` queued onto the wire.
    pub cap_tx: Option<f64>,
    /// First endpoint receipt of the cap.
    pub cap_rx: Option<f64>,
    /// First policy written into a GEOPM mailbox.
    pub policy_write: Option<f64>,
    /// First actual MSR programming under this decision.
    pub msr_write: Option<f64>,
    /// First sample carrying this cause arriving back at the budgeter.
    pub sample_rx: Option<f64>,
    /// First modeler retrain over samples taken under this decision.
    pub retrain: Option<f64>,
    /// Number of events attributed to this decision.
    pub events: u64,
}

impl DecisionChain {
    /// A chain is complete when the decision demonstrably travelled the
    /// whole loop: sent, received, actuated on an MSR, and observed back
    /// at the cluster tier.
    pub fn is_complete(&self) -> bool {
        self.decision.is_some()
            && self.cap_tx.is_some()
            && self.cap_rx.is_some()
            && self.msr_write.is_some()
            && self.sample_rx.is_some()
    }

    /// A decision is orphaned when it provably changed nothing: it never
    /// reached an MSR *and* no sample ever reported running under it.
    /// (A re-issued cap whose MSR write was elided still owns samples,
    /// so it does not count as an orphan.)
    pub fn is_orphan(&self) -> bool {
        self.decision.is_some() && self.msr_write.is_none() && self.sample_rx.is_none()
    }
}

fn first(slot: &mut Option<f64>, ts: f64) {
    if slot.is_none() {
        *slot = Some(ts);
    }
}

/// p50/p90/p99 of one latency distribution, in seconds.
#[derive(Debug, Clone, Copy, Default)]
pub struct LatencyStats {
    /// Sample count.
    pub count: usize,
    /// Median.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
}

impl LatencyStats {
    /// Compute from unordered latency samples.
    pub fn from_samples(mut xs: Vec<f64>) -> Self {
        if xs.is_empty() {
            return LatencyStats::default();
        }
        xs.sort_by(|a, b| a.total_cmp(b));
        let pick = |q: f64| {
            let idx = ((xs.len() as f64 - 1.0) * q).round() as usize;
            xs[idx.min(xs.len() - 1)]
        };
        LatencyStats {
            count: xs.len(),
            p50: pick(0.50),
            p90: pick(0.90),
            p99: pick(0.99),
        }
    }

    /// Render as `p50/p90/p99` in milliseconds.
    pub fn render_ms(&self) -> String {
        if self.count == 0 {
            return "n/a (no samples)".to_string();
        }
        format!(
            "p50 {:.3} ms  p90 {:.3} ms  p99 {:.3} ms  (n={})",
            self.p50 * 1e3,
            self.p90 * 1e3,
            self.p99 * 1e3,
            self.count
        )
    }
}

/// The analyzer's full output.
#[derive(Debug, Clone, Default)]
pub struct TraceReport {
    /// Per-decision chains, keyed by cause id.
    pub chains: BTreeMap<u64, DecisionChain>,
    /// Decisions that travelled the whole loop.
    pub complete: u64,
    /// Decisions that provably changed nothing.
    pub orphans: Vec<u64>,
    /// `sample_rx` events whose cause is neither 0 nor any known
    /// decision (a causality bug or a truncated trace).
    pub unknown_cause_samples: u64,
    /// `sample_rx` events with cause 0 (taken before the first traced
    /// cap reached their node — expected at run start).
    pub untraced_samples: u64,
    /// Transport errors recorded in the trace.
    pub transport_errors: u64,
    /// Disconnects recorded in the trace.
    pub disconnects: u64,
    /// Successful endpoint reconnects recorded in the trace.
    pub reconnects: u64,
    /// Session resume events (endpoint and budgeter sides both record
    /// one, so a healthy resume contributes two).
    pub resumes: u64,
    /// Power leases the budgeter expired.
    pub leases_expired: u64,
    /// Expired leases restored by a later resume.
    pub leases_restored: u64,
    /// Decisions that changed nothing *because* their lifetime fell
    /// inside a disconnect→resume window: the cap was decided while the
    /// job's session was down, so "orphan" would mislabel a known,
    /// recoverable outage as a causality bug.
    pub interrupted: Vec<u64>,
    /// Decisions from an analytic trace: the whole trace carries no
    /// actuation stage (no wire, MSR, or sample events), so chains
    /// cannot exist by construction — e.g. `fig4 --trace`, which sweeps
    /// budgets without driving hardware. Calling these orphans would
    /// mislabel every analytic run as a causality bug.
    pub standalone: Vec<u64>,
    /// decision → cap on the wire.
    pub decision_to_wire: LatencyStats,
    /// decision → endpoint receipt.
    pub decision_to_rx: LatencyStats,
    /// decision → first MSR programming (full downward latency).
    pub decision_to_msr: LatencyStats,
    /// MSR actuation → first sample under the new cap back at the
    /// budgeter (upward observation latency).
    pub msr_to_observation: LatencyStats,
    /// First observation → modeler retrain incorporating it.
    pub observation_to_retrain: LatencyStats,
}

impl TraceReport {
    /// Human-readable summary (what `anor-trace` prints).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "decisions: {}  complete chains: {}  orphaned decisions: {}\n",
            self.chains.len(),
            self.complete,
            self.orphans.len()
        ));
        out.push_str(&format!(
            "samples: {} with unknown cause, {} untraced (pre-first-cap)\n",
            self.unknown_cause_samples, self.untraced_samples
        ));
        out.push_str(&format!(
            "faults: {} transport error(s), {} disconnect(s)\n",
            self.transport_errors, self.disconnects
        ));
        out.push_str(&format!(
            "sessions: {} reconnect(s), {} resume event(s), \
             {} lease(s) expired, {} restored\n",
            self.reconnects, self.resumes, self.leases_expired, self.leases_restored
        ));
        out.push_str("\ncontrol-loop latencies (downward):\n");
        out.push_str(&format!(
            "  decision -> wire        {}\n",
            self.decision_to_wire.render_ms()
        ));
        out.push_str(&format!(
            "  decision -> endpoint    {}\n",
            self.decision_to_rx.render_ms()
        ));
        out.push_str(&format!(
            "  decision -> MSR write   {}\n",
            self.decision_to_msr.render_ms()
        ));
        out.push_str("control-loop latencies (upward):\n");
        out.push_str(&format!(
            "  MSR write -> observed   {}\n",
            self.msr_to_observation.render_ms()
        ));
        out.push_str(&format!(
            "  observed -> retrain     {}\n",
            self.observation_to_retrain.render_ms()
        ));
        if !self.orphans.is_empty() {
            let shown: Vec<String> = self.orphans.iter().take(8).map(u64::to_string).collect();
            let ell = if self.orphans.len() > 8 { ", ..." } else { "" };
            out.push_str(&format!("orphaned causes: {}{}\n", shown.join(", "), ell));
        }
        if !self.interrupted.is_empty() {
            let shown: Vec<String> = self
                .interrupted
                .iter()
                .take(8)
                .map(u64::to_string)
                .collect();
            let ell = if self.interrupted.len() > 8 {
                ", ..."
            } else {
                ""
            };
            out.push_str(&format!(
                "interrupted by disconnect (not orphans): {}{}\n",
                shown.join(", "),
                ell
            ));
        }
        if !self.standalone.is_empty() {
            out.push_str(&format!(
                "standalone decisions (analytic trace, no actuation stages): {}\n",
                self.standalone.len()
            ));
        }
        out
    }
}

/// Join trace events into per-decision chains and latency statistics.
pub fn analyze(events: &[TraceEvent]) -> TraceReport {
    let mut report = TraceReport::default();
    // Pass 1: build a chain per decision so sample causes can be
    // validated against the decision set.
    for ev in events {
        if ev.stage == TraceStage::Decision {
            let chain = report.chains.entry(ev.cause.0).or_default();
            chain.cause = ev.cause.0;
            first(&mut chain.decision, ev.ts);
        }
    }
    // Pass 2: attribute every other stage to its decision.
    for ev in events {
        match ev.stage {
            TraceStage::TransportError => report.transport_errors += 1,
            TraceStage::Disconnect => report.disconnects += 1,
            TraceStage::Reconnect => report.reconnects += 1,
            TraceStage::Resume => report.resumes += 1,
            TraceStage::LeaseExpired => report.leases_expired += 1,
            TraceStage::LeaseRestored => report.leases_restored += 1,
            TraceStage::Decision => {}
            stage => {
                if stage == TraceStage::SampleRx {
                    if ev.cause.0 == 0 {
                        report.untraced_samples += 1;
                    } else if !report.chains.contains_key(&ev.cause.0) {
                        report.unknown_cause_samples += 1;
                    }
                }
                let Some(chain) = report.chains.get_mut(&ev.cause.0) else {
                    continue;
                };
                chain.events += 1;
                match stage {
                    TraceStage::CapTx => first(&mut chain.cap_tx, ev.ts),
                    TraceStage::CapRx => first(&mut chain.cap_rx, ev.ts),
                    TraceStage::PolicyWrite => first(&mut chain.policy_write, ev.ts),
                    TraceStage::MsrWrite => first(&mut chain.msr_write, ev.ts),
                    TraceStage::SampleRx => first(&mut chain.sample_rx, ev.ts),
                    TraceStage::Retrain => first(&mut chain.retrain, ev.ts),
                    _ => {}
                }
            }
        }
    }
    // Pass 3: pair each job's Disconnect with the Reconnect/Resume that
    // ends the outage. An outage never closed by the end of the trace
    // extends to +inf (the session went Gone or the trace truncated).
    let mut session: Vec<&TraceEvent> = events
        .iter()
        .filter(|e| {
            e.job.is_some()
                && matches!(
                    e.stage,
                    TraceStage::Disconnect | TraceStage::Reconnect | TraceStage::Resume
                )
        })
        .collect();
    session.sort_by(|a, b| a.ts.total_cmp(&b.ts));
    let mut open: BTreeMap<u64, f64> = BTreeMap::new();
    let mut windows: Vec<(f64, f64)> = Vec::new();
    for ev in session {
        let job = match ev.job {
            Some(j) => j,
            None => continue,
        };
        match ev.stage {
            TraceStage::Disconnect => {
                open.entry(job).or_insert(ev.ts);
            }
            _ => {
                if let Some(t0) = open.remove(&job) {
                    windows.push((t0, ev.ts));
                }
            }
        }
    }
    windows.extend(open.into_values().map(|t0| (t0, f64::INFINITY)));
    let in_outage =
        |ts: Option<f64>| ts.is_some_and(|t| windows.iter().any(|&(a, b)| t >= a && t <= b));
    // Whether any event in the trace belongs to the actuation path at
    // all; without one the run was analytic and no decision can chain.
    let has_actuation = events.iter().any(|e| {
        matches!(
            e.stage,
            TraceStage::CapTx
                | TraceStage::CapRx
                | TraceStage::PolicyWrite
                | TraceStage::MsrWrite
                | TraceStage::SampleTx
                | TraceStage::SampleRx
        )
    });
    let mut to_wire = Vec::new();
    let mut to_rx = Vec::new();
    let mut to_msr = Vec::new();
    let mut to_obs = Vec::new();
    let mut to_retrain = Vec::new();
    for chain in report.chains.values() {
        if chain.is_complete() {
            report.complete += 1;
        }
        if chain.is_orphan() {
            // A dead decision made (or transmitted) while some job's
            // session was down is a consequence of the outage, not a
            // causality bug: report it as interrupted, not orphaned.
            if in_outage(chain.decision) || in_outage(chain.cap_tx) {
                report.interrupted.push(chain.cause);
            } else if !has_actuation {
                report.standalone.push(chain.cause);
            } else {
                report.orphans.push(chain.cause);
            }
        }
        let Some(d) = chain.decision else { continue };
        if let Some(t) = chain.cap_tx {
            to_wire.push(t - d);
        }
        if let Some(t) = chain.cap_rx {
            to_rx.push(t - d);
        }
        if let Some(t) = chain.msr_write {
            to_msr.push(t - d);
        }
        if let (Some(m), Some(s)) = (chain.msr_write, chain.sample_rx) {
            to_obs.push(s - m);
        }
        if let (Some(s), Some(r)) = (chain.sample_rx, chain.retrain) {
            // The retrain may predate the budgeter seeing the sample
            // (the endpoint observes first); clamp at zero.
            to_retrain.push((r - s).max(0.0));
        }
    }
    report.decision_to_wire = LatencyStats::from_samples(to_wire);
    report.decision_to_rx = LatencyStats::from_samples(to_rx);
    report.decision_to_msr = LatencyStats::from_samples(to_msr);
    report.msr_to_observation = LatencyStats::from_samples(to_obs);
    report.observation_to_retrain = LatencyStats::from_samples(to_retrain);
    report
}

/// One row of a `BENCH_PR<N>.json` perf-trajectory file (schema in
/// DESIGN.md § Performance). Keyed by `(bench, jobs)` when comparing
/// across PRs.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRow {
    /// Benchmark name.
    pub bench: String,
    /// Worker count the bench ran with.
    pub jobs: u64,
    /// Median wall-clock seconds.
    pub median_s: f64,
    /// Fastest run (absent in pre-PR7 files).
    pub min_s: Option<f64>,
    /// Run-to-run standard deviation (absent in pre-PR7 files).
    pub stddev_s: Option<f64>,
}

/// Parse the rows of a `BENCH_PR<N>.json` file. Tolerates the pre-PR7
/// schema (no `min_s`/`stddev_s`) so older trajectory files stay
/// comparable.
pub fn parse_bench_file(text: &str) -> Result<Vec<BenchRow>, String> {
    let v = anor_cluster::parse_json(text).map_err(|e| e.to_string())?;
    let arr = v
        .as_array()
        .ok_or_else(|| "expected a JSON array of bench rows".to_string())?;
    let mut rows = Vec::with_capacity(arr.len());
    for (i, row) in arr.iter().enumerate() {
        let bench = row
            .get("bench")
            .and_then(anor_cluster::Json::as_str)
            .ok_or_else(|| format!("row {i}: missing `bench`"))?
            .to_string();
        let median_s = row
            .get("median_s")
            .and_then(anor_cluster::Json::as_f64)
            .ok_or_else(|| format!("row {i}: missing `median_s`"))?;
        rows.push(BenchRow {
            bench,
            jobs: row
                .get("jobs")
                .and_then(anor_cluster::Json::as_u64)
                .unwrap_or(1),
            median_s,
            min_s: row.get("min_s").and_then(anor_cluster::Json::as_f64),
            stddev_s: row.get("stddev_s").and_then(anor_cluster::Json::as_f64),
        });
    }
    Ok(rows)
}

/// Compare a perfsuite run against a prior PR's trajectory file and
/// describe every benchmark whose median slowed by more than
/// `threshold` (fractional: 0.10 flags >10% regressions). Benches
/// present on only one side are skipped — a renamed or new bench is not
/// a regression.
pub fn flag_regressions(prior: &[BenchRow], current: &[BenchRow], threshold: f64) -> Vec<String> {
    let mut flags = Vec::new();
    for cur in current {
        let Some(old) = prior
            .iter()
            .find(|p| p.bench == cur.bench && p.jobs == cur.jobs)
        else {
            continue;
        };
        if old.median_s <= 0.0 {
            continue;
        }
        let ratio = cur.median_s / old.median_s;
        if ratio > 1.0 + threshold {
            flags.push(format!(
                "{} (jobs={}): median {:.3}s -> {:.3}s (+{:.1}%)",
                cur.bench,
                cur.jobs,
                old.median_s,
                cur.median_s,
                (ratio - 1.0) * 100.0
            ));
        }
    }
    flags
}

#[cfg(test)]
mod tests {
    use super::*;
    use anor_telemetry::{CauseId, SpanId};

    fn ev(span: u64, ts: f64, stage: TraceStage, cause: u64) -> TraceEvent {
        TraceEvent {
            span: SpanId(span),
            ts,
            stage,
            cause: CauseId(cause),
            job: None,
            watts: None,
            detail: None,
        }
    }

    #[test]
    fn complete_chain_is_joined_and_timed() {
        let events = vec![
            ev(0, 1.00, TraceStage::Decision, 1),
            ev(1, 1.01, TraceStage::CapTx, 1),
            ev(2, 1.02, TraceStage::CapRx, 1),
            ev(3, 1.02, TraceStage::PolicyWrite, 1),
            ev(4, 1.03, TraceStage::MsrWrite, 1),
            ev(5, 1.10, TraceStage::SampleRx, 1),
            ev(6, 1.20, TraceStage::Retrain, 1),
        ];
        let r = analyze(&events);
        assert_eq!(r.chains.len(), 1);
        assert_eq!(r.complete, 1);
        assert!(r.orphans.is_empty());
        assert!((r.decision_to_msr.p50 - 0.03).abs() < 1e-9);
        assert!((r.msr_to_observation.p50 - 0.07).abs() < 1e-9);
        assert!((r.observation_to_retrain.p50 - 0.10).abs() < 1e-9);
    }

    #[test]
    fn orphan_decisions_are_flagged() {
        let events = vec![
            ev(0, 1.0, TraceStage::Decision, 1),
            ev(1, 1.1, TraceStage::CapTx, 1),
            // Cause 2 completes; cause 1 never actuates or is observed.
            ev(2, 2.0, TraceStage::Decision, 2),
            ev(3, 2.1, TraceStage::CapTx, 2),
            ev(4, 2.2, TraceStage::CapRx, 2),
            ev(5, 2.3, TraceStage::MsrWrite, 2),
            ev(6, 2.4, TraceStage::SampleRx, 2),
        ];
        let r = analyze(&events);
        assert_eq!(r.complete, 1);
        assert_eq!(r.orphans, vec![1]);
    }

    #[test]
    fn decision_only_trace_is_standalone_not_orphaned() {
        // An analytic run (fig4/fig11 summary records) has no actuation
        // path anywhere in the trace, so its decisions are standalone.
        let events = vec![
            ev(0, 1.0, TraceStage::Decision, 1),
            ev(1, 2.0, TraceStage::Decision, 2),
        ];
        let r = analyze(&events);
        assert!(r.orphans.is_empty());
        assert_eq!(r.standalone, vec![1, 2]);
        assert!(r.render().contains("standalone decisions"));
        // One actuation event anywhere re-arms orphan detection: a
        // hardware-driving run must not hide dead decisions.
        let mut with_actuation = events.clone();
        with_actuation.push(ev(2, 2.1, TraceStage::CapTx, 2));
        let r = analyze(&with_actuation);
        assert_eq!(r.orphans, vec![1, 2]);
        assert!(r.standalone.is_empty());
    }

    #[test]
    fn elided_write_with_observed_samples_is_not_an_orphan() {
        // The agent skipped the redundant MSR write but samples still
        // report the new cause: incomplete, but not an orphan.
        let events = vec![
            ev(0, 1.0, TraceStage::Decision, 3),
            ev(1, 1.1, TraceStage::CapTx, 3),
            ev(2, 1.2, TraceStage::CapRx, 3),
            ev(3, 1.5, TraceStage::SampleRx, 3),
        ];
        let r = analyze(&events);
        assert_eq!(r.complete, 0);
        assert!(r.orphans.is_empty());
    }

    #[test]
    fn sample_causes_are_classified() {
        let events = vec![
            ev(0, 1.0, TraceStage::Decision, 1),
            ev(1, 1.1, TraceStage::SampleRx, 0),  // pre-first-cap
            ev(2, 1.2, TraceStage::SampleRx, 1),  // known
            ev(3, 1.3, TraceStage::SampleRx, 99), // unknown decision
        ];
        let r = analyze(&events);
        assert_eq!(r.untraced_samples, 1);
        assert_eq!(r.unknown_cause_samples, 1);
    }

    #[test]
    fn faults_are_counted() {
        let events = vec![
            ev(0, 1.0, TraceStage::TransportError, 0),
            ev(1, 1.1, TraceStage::Disconnect, 0),
            ev(2, 1.2, TraceStage::Disconnect, 0),
        ];
        let r = analyze(&events);
        assert_eq!(r.transport_errors, 1);
        assert_eq!(r.disconnects, 2);
    }

    fn jev(ts: f64, stage: TraceStage, cause: u64, job: u64) -> TraceEvent {
        TraceEvent {
            span: SpanId(0),
            ts,
            stage,
            cause: CauseId(cause),
            job: Some(job),
            watts: None,
            detail: None,
        }
    }

    #[test]
    fn session_stages_are_counted() {
        let events = vec![
            jev(1.0, TraceStage::Disconnect, 0, 1),
            jev(1.5, TraceStage::Reconnect, 0, 1),
            jev(1.6, TraceStage::Resume, 0, 1),
            jev(2.0, TraceStage::LeaseExpired, 0, 2),
            jev(3.0, TraceStage::LeaseRestored, 0, 2),
        ];
        let r = analyze(&events);
        assert_eq!(r.reconnects, 1);
        assert_eq!(r.resumes, 1);
        assert_eq!(r.leases_expired, 1);
        assert_eq!(r.leases_restored, 1);
    }

    #[test]
    fn dead_decision_inside_an_outage_is_interrupted_not_orphaned() {
        let events = vec![
            // Job 7's session drops at t=1 and resumes at t=3.
            jev(1.0, TraceStage::Disconnect, 0, 7),
            // Decided mid-outage, never actuated: interrupted.
            ev(1, 2.0, TraceStage::Decision, 5),
            ev(2, 2.1, TraceStage::CapTx, 5),
            jev(3.0, TraceStage::Resume, 0, 7),
            // Decided after the resume, also dead: a true orphan.
            ev(3, 4.0, TraceStage::Decision, 6),
            ev(4, 4.1, TraceStage::CapTx, 6),
        ];
        let r = analyze(&events);
        assert_eq!(r.interrupted, vec![5]);
        assert_eq!(r.orphans, vec![6]);
        let text = r.render();
        assert!(text.contains("interrupted by disconnect (not orphans): 5"));
        assert!(text.contains("orphaned causes: 6"));
    }

    #[test]
    fn unclosed_outage_extends_to_the_end_of_the_trace() {
        let events = vec![
            jev(1.0, TraceStage::Disconnect, 0, 3),
            // Session never comes back; late dead decisions stay
            // interrupted, not orphaned.
            ev(1, 9.0, TraceStage::Decision, 8),
        ];
        let r = analyze(&events);
        assert_eq!(r.interrupted, vec![8]);
        assert!(r.orphans.is_empty());
    }

    #[test]
    fn percentiles_pick_from_sorted_samples() {
        let xs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = LatencyStats::from_samples(xs);
        assert_eq!(s.count, 100);
        assert!((s.p50 - 51.0).abs() < 1.01);
        assert!((s.p90 - 90.0).abs() < 1.01);
        assert!((s.p99 - 99.0).abs() < 1.01);
        assert_eq!(LatencyStats::from_samples(vec![]).count, 0);
    }

    #[test]
    fn bench_rows_parse_old_and_new_schemas() {
        let old = r#"[{"bench": "fig4", "median_s": 0.5, "runs": 5, "jobs": 1}]"#;
        let rows = parse_bench_file(old).unwrap();
        assert_eq!(rows[0].bench, "fig4");
        assert_eq!(rows[0].jobs, 1);
        assert_eq!(rows[0].min_s, None);
        let new = r#"[{"bench": "fig4", "median_s": 0.5, "min_s": 0.45,
                       "stddev_s": 0.02, "runs": 5, "jobs": 1}]"#;
        let rows = parse_bench_file(new).unwrap();
        assert_eq!(rows[0].min_s, Some(0.45));
        assert_eq!(rows[0].stddev_s, Some(0.02));
        assert!(parse_bench_file("{}").is_err());
        assert!(parse_bench_file(r#"[{"median_s": 1.0}]"#).is_err());
    }

    #[test]
    fn regressions_flagged_beyond_threshold() {
        let row = |bench: &str, jobs: u64, median: f64| BenchRow {
            bench: bench.to_string(),
            jobs,
            median_s: median,
            min_s: None,
            stddev_s: None,
        };
        let prior = vec![row("a", 1, 1.0), row("b", 1, 1.0), row("b", 8, 1.0)];
        let current = vec![
            row("a", 1, 1.05),  // +5%: under threshold
            row("b", 1, 1.2),   // +20%: flagged
            row("b", 8, 0.9),   // faster: fine
            row("new", 1, 9.0), // no baseline: skipped
        ];
        let flags = flag_regressions(&prior, &current, 0.10);
        assert_eq!(flags.len(), 1, "{flags:?}");
        assert!(flags[0].contains("b (jobs=1)"));
        assert!(flags[0].contains("+20.0%"));
    }

    #[test]
    fn report_renders_key_lines() {
        let events = vec![
            ev(0, 1.00, TraceStage::Decision, 1),
            ev(1, 1.01, TraceStage::CapTx, 1),
            ev(2, 1.02, TraceStage::CapRx, 1),
            ev(3, 1.03, TraceStage::MsrWrite, 1),
            ev(4, 1.10, TraceStage::SampleRx, 1),
        ];
        let text = analyze(&events).render();
        assert!(text.contains("complete chains: 1"));
        assert!(text.contains("decision -> MSR write"));
        assert!(text.contains("p90"));
    }
}
