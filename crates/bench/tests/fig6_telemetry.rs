//! End-to-end check of the `--telemetry` artifact path: a Fig. 6 run
//! against a directory-backed sink must produce a parseable JSONL event
//! log, a Prometheus exposition and a summary table, with the core
//! series (budgeter rebalance latency, per-job retrain counts, transport
//! frame/byte/reconnect counters) non-empty.

use anor_core::experiments::fig6;
use anor_telemetry::Telemetry;
use std::path::PathBuf;

/// Validate one flat JSON object line the event log emits:
/// `{"key":"string","other":123,...}` with string / number / bool
/// values. Returns the keys on success.
fn parse_flat_json(line: &str) -> Result<Vec<String>, String> {
    let inner = line
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .ok_or_else(|| format!("not an object: {line}"))?;
    let mut keys = Vec::new();
    let mut chars = inner.chars().peekable();
    loop {
        // Key.
        if chars.next() != Some('"') {
            return Err(format!("expected key quote in {line}"));
        }
        let mut key = String::new();
        for c in chars.by_ref() {
            if c == '"' {
                break;
            }
            key.push(c);
        }
        keys.push(key);
        if chars.next() != Some(':') {
            return Err(format!("expected `:` in {line}"));
        }
        // Value: string, or bare token (number / bool).
        match chars.peek() {
            Some('"') => {
                chars.next();
                let mut escaped = false;
                loop {
                    let c = chars
                        .next()
                        .ok_or_else(|| format!("unterminated string in {line}"))?;
                    if escaped {
                        escaped = false;
                    } else if c == '\\' {
                        escaped = true;
                    } else if c == '"' {
                        break;
                    }
                }
            }
            _ => {
                let mut token = String::new();
                while let Some(&c) = chars.peek() {
                    if c == ',' {
                        break;
                    }
                    token.push(c);
                    chars.next();
                }
                let ok = token == "true"
                    || token == "false"
                    || token == "null"
                    || token.parse::<f64>().is_ok();
                if !ok {
                    return Err(format!("bad value `{token}` in {line}"));
                }
            }
        }
        match chars.next() {
            Some(',') => continue,
            None => return Ok(keys),
            Some(c) => return Err(format!("unexpected `{c}` in {line}")),
        }
    }
}

#[test]
fn fig6_telemetry_dir_has_parseable_events_and_core_series() {
    let dir: PathBuf =
        std::env::temp_dir().join(format!("anor-fig6-telemetry-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let telemetry = Telemetry::to_dir(&dir).expect("telemetry dir");

    fig6::run_with(1, 6, &telemetry).expect("emulated fig6 run");
    let summary = telemetry.write_artifacts().expect("artifacts");

    // Every event line parses as a flat JSON object with ts + event keys,
    // and the lifecycle events are present.
    let events = std::fs::read_to_string(dir.join("events.jsonl")).expect("events.jsonl");
    let mut names = Vec::new();
    let mut lines = 0usize;
    for line in events.lines() {
        let keys = parse_flat_json(line).expect("JSONL line parses");
        assert!(keys.contains(&"ts".to_string()), "missing ts: {line}");
        assert!(keys.contains(&"event".to_string()), "missing event: {line}");
        for name in ["run_started", "job_started", "job_done", "run_finished"] {
            if line.contains(&format!("\"event\":\"{name}\"")) {
                names.push(name);
            }
        }
        lines += 1;
    }
    assert!(lines > 0, "event log must be non-empty");
    for name in ["run_started", "job_started", "job_done", "run_finished"] {
        assert!(names.contains(&name), "missing lifecycle event {name}");
    }

    // Prometheus exposition carries the core series.
    let prom = std::fs::read_to_string(dir.join("metrics.prom")).expect("metrics.prom");
    for series in [
        "budgeter_rebalance_seconds",
        "job_retrains",
        "transport_frames_tx_total",
        "transport_frames_rx_total",
        "transport_bytes_tx_total",
        "transport_reconnects_total",
        "emulator_tick_seconds",
        "tracking_error",
    ] {
        assert!(prom.contains(series), "metrics.prom missing {series}");
    }
    // The rebalance histogram actually observed something.
    assert!(
        telemetry
            .histogram("budgeter_rebalance_seconds", &[])
            .count()
            > 0,
        "rebalance latency series is empty"
    );
    assert!(
        telemetry
            .counter("transport_frames_rx_total", &[("role", "budgeter")])
            .get()
            > 0,
        "budgeter received no frames"
    );

    // Summary table shows latency percentiles and the counters.
    assert!(std::fs::metadata(dir.join("summary.txt")).is_ok());
    for needle in [
        "budgeter_rebalance_seconds",
        "p99",
        "job_retrains",
        "transport_frames_tx_total",
    ] {
        assert!(
            summary.contains(needle),
            "summary missing {needle}:\n{summary}"
        );
    }

    let _ = std::fs::remove_dir_all(&dir);
}
