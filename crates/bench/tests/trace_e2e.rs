//! End-to-end causal tracing: run the emulated cluster (real TCP
//! budgeter, GEOPM runtimes, modelers) with a `Tracer`, then join the
//! resulting JSONL back into decision chains with the analyzer — the
//! `fig6 --trace` + `anor-trace` path, in-process.

use anor_bench::analyze::analyze;
use anor_core::cluster::{BudgetPolicy, EmulatedCluster, EmulatorConfig, JobSetup};
use anor_core::types::Watts;
use anor_telemetry::{read_trace, Tracer};

#[test]
fn emulated_run_produces_complete_decision_chains() {
    let dir = std::env::temp_dir().join(format!("anor-trace-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let tracer = Tracer::to_dir(&dir).unwrap();

    // A capped two-job run under the paper's shared budget: tight enough
    // that the budgeter must issue real cap changes.
    let cfg = EmulatorConfig::paper(BudgetPolicy::EvenSlowdown, true).with_tracer(tracer.clone());
    let report = EmulatedCluster::new(cfg)
        .run_static(
            &[JobSetup::known("bt.D.81"), JobSetup::known("sp.D.81")],
            Watts(840.0),
        )
        .expect("emulated run failed");
    assert_eq!(report.jobs.len(), 2);
    tracer.flush().unwrap();

    let scan = read_trace(&dir.join("trace.jsonl")).unwrap();
    assert_eq!(scan.malformed, 0, "trace contains malformed events");
    assert!(
        scan.events.len() >= 5,
        "suspiciously small trace: {} events",
        scan.events.len()
    );

    let r = analyze(&scan.events);
    assert!(
        r.complete >= 1,
        "no complete decision->actuation->observation chain (decisions: {}, orphans: {})",
        r.chains.len(),
        r.orphans.len()
    );
    assert_eq!(
        r.unknown_cause_samples, 0,
        "samples observed under causes no decision minted"
    );
    // Latency stats exist for the full downward path.
    assert!(r.decision_to_msr.count >= 1);
    assert!(r.msr_to_observation.count >= 1);
    // The report renders without panicking and names the key lines.
    let text = r.render();
    assert!(text.contains("complete chains"));
    assert!(text.contains("MSR write"));

    let _ = std::fs::remove_dir_all(&dir);
}
