//! Criterion bench for the Fig. 11 substrate: tabular-simulator tick
//! throughput at cluster scale (the paper's 1000-node runs step this
//! loop once per simulated second).

use anor_core::aqa::{poisson_schedule, PowerTarget, RegulationSignal};
use anor_core::platform::PerformanceVariation;
use anor_core::sim::{SimConfig, SimPowerPolicy, TabularSim};
use anor_core::types::{Seconds, Watts};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

fn make_sim(nodes: u32) -> TabularSim {
    let mut cfg = SimConfig::paper_1000(SimPowerPolicy::Uniform);
    cfg.total_nodes = nodes;
    // Keep job footprints feasible at small scale.
    let scale = (nodes as f64 / 40.0).round().max(1.0) as u32;
    cfg.catalog = anor_core::types::standard_catalog().scale_nodes(scale);
    cfg.types = cfg.catalog.long_running();
    let schedule = poisson_schedule(&cfg.catalog, &cfg.types, 0.75, nodes, Seconds(1800.0), 42);
    let target = PowerTarget {
        avg: Watts(nodes as f64 * 210.0),
        reserve: Watts(nodes as f64 * 25.0),
        signal: RegulationSignal::random_walk(Seconds(4.0), 0.35, Seconds(4000.0), 7),
    };
    let variation = PerformanceVariation::with_sigma(nodes as usize, 0.06, 3);
    TabularSim::new(cfg, target, &variation, schedule, None)
}

fn sim_tick(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_tick");
    for nodes in [100u32, 1000] {
        group.bench_function(format!("{nodes}_nodes/100_ticks"), |b| {
            b.iter_batched(
                || {
                    let mut sim = make_sim(nodes);
                    // Warm to steady state so ticks include running jobs.
                    for _ in 0..120 {
                        sim.step();
                    }
                    sim
                },
                |mut sim| {
                    for _ in 0..100 {
                        sim.step();
                    }
                    sim.measured_power()
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, sim_tick);
criterion_main!(benches);
