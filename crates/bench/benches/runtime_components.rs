//! Micro-benches of the runtime components on every control path: MSR
//! access, PlatformIO stepping, agent-tree aggregation, wire-codec
//! encode/decode, and epoch-window differencing.

use anor_core::geopm::{AgentSample, AgentTree, PlatformIo};
use anor_core::model::EpochWindow;
use anor_core::platform::Node;
use anor_core::types::msg::{ClusterToJob, EpochSample, JobToCluster};
use anor_core::types::{standard_catalog, JobId, Joules, NodeId, Seconds, Watts};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

fn platform_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("components");
    group.bench_function("platformio_advance_busy_node", |b| {
        let spec = standard_catalog().find("bt.D.81").unwrap().clone();
        b.iter_batched(
            || {
                let mut node = Node::paper(NodeId(0));
                node.launch(JobId(1), spec.clone(), 7).unwrap();
                PlatformIo::new(node)
            },
            |mut io| {
                for _ in 0..100 {
                    io.advance(Seconds(0.5));
                }
                io.read_signal(anor_core::geopm::Signal::CpuEnergy)
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("tree_aggregate_64_nodes", |b| {
        let samples: Vec<AgentSample> = (0..64)
            .map(|i| AgentSample {
                epoch_count: 100 + i as u64,
                energy: Joules(1000.0),
                power: Watts(200.0),
                cap: Watts(210.0),
                timestamp: Seconds(i as f64),
                cause: 0,
            })
            .collect();
        b.iter(|| AgentTree::aggregate(std::hint::black_box(&samples)))
    });
    group.bench_function("codec_sample_roundtrip", |b| {
        let msg = JobToCluster::Sample(EpochSample {
            job: JobId(42),
            epoch_count: 1234,
            energy: Joules(9999.5),
            avg_power: Watts(201.0),
            avg_cap: Watts(210.0),
            timestamp: Seconds(77.7),
            cause: 7,
        });
        b.iter(|| {
            let frame = msg.encode();
            let mut body = frame.clone();
            bytes::Buf::advance(&mut body, 4);
            JobToCluster::decode(body).unwrap()
        })
    });
    group.bench_function("codec_cap_roundtrip", |b| {
        let msg = ClusterToJob::SetPowerCap {
            cap: Watts(195.5),
            cause: 7,
        };
        b.iter(|| {
            let frame = msg.encode();
            let mut body = frame.clone();
            bytes::Buf::advance(&mut body, 4);
            ClusterToJob::decode(body).unwrap()
        })
    });
    group.bench_function("epoch_window_push_1000", |b| {
        b.iter(|| {
            let mut w = EpochWindow::new();
            let mut out = 0u64;
            for i in 0..1000u64 {
                if let Some(obs) = w.push(i, Seconds(i as f64 * 2.0), Watts(200.0)) {
                    out += obs.epochs;
                }
            }
            out
        })
    });
    group.finish();
}

criterion_group!(benches, platform_step);
criterion_main!(benches);
