//! Criterion bench for the Fig. 3 substrate: how fast the synthetic
//! workload characterization sweep runs (one full run-to-completion per
//! cap level per type).

use anor_core::platform::SyntheticWorkload;
use anor_core::types::{standard_catalog, Watts};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

fn characterization(c: &mut Criterion) {
    let catalog = standard_catalog();
    let mut group = c.benchmark_group("fig3");
    for name in ["bt.D.81", "is.D.32"] {
        let spec = catalog.find(name).unwrap().clone();
        group.bench_function(format!("sweep/{name}"), |b| {
            b.iter_batched(
                || spec.clone(),
                |spec| {
                    let mut total = 0.0;
                    for cap in [140.0, 180.0, 220.0, 260.0] {
                        let mut w = SyntheticWorkload::new(spec.clone(), 1.0, 1);
                        total += w.run_to_completion(Watts(cap)).value();
                    }
                    total
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, characterization);
criterion_main!(benches);
