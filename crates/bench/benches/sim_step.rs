//! Criterion bench for the simulator's per-tick hot path after the
//! incremental-aggregate overhaul: single steps of a warm, loaded
//! 1000-node cluster (idle/busy counts, per-type usage and busy power
//! are maintained at state transitions, so a quiet tick is O(busy
//! nodes), not O(table) rescans).

use anor_core::aqa::{poisson_schedule, PowerTarget, RegulationSignal};
use anor_core::platform::PerformanceVariation;
use anor_core::sim::{SimConfig, SimPowerPolicy, TabularSim};
use anor_core::types::{Seconds, Watts};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

fn make_sim(nodes: u32, policy: SimPowerPolicy) -> TabularSim {
    let mut cfg = SimConfig::paper_1000(policy);
    cfg.total_nodes = nodes;
    let scale = (nodes as f64 / 40.0).round().max(1.0) as u32;
    cfg.catalog = anor_core::types::standard_catalog().scale_nodes(scale);
    cfg.types = cfg.catalog.long_running();
    let schedule = poisson_schedule(&cfg.catalog, &cfg.types, 0.75, nodes, Seconds(1800.0), 42);
    let target = PowerTarget {
        avg: Watts(nodes as f64 * 210.0),
        reserve: Watts(nodes as f64 * 25.0),
        signal: RegulationSignal::random_walk(Seconds(4.0), 0.35, Seconds(4000.0), 7),
    };
    let variation = PerformanceVariation::with_sigma(nodes as usize, 0.06, 3);
    TabularSim::new(cfg, target, &variation, schedule, None)
}

fn sim_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_step");
    for (label, policy) in [
        ("uniform", SimPowerPolicy::Uniform),
        ("even_slowdown", SimPowerPolicy::EvenSlowdown),
    ] {
        group.bench_function(format!("1000_nodes/{label}/single_step"), |b| {
            b.iter_batched(
                || {
                    let mut sim = make_sim(1000, policy);
                    // Warm to steady state so the step exercises running
                    // jobs, completions and re-caps, not an empty table.
                    for _ in 0..150 {
                        sim.step();
                    }
                    sim
                },
                |mut sim| {
                    sim.step();
                    sim.measured_power()
                },
                BatchSize::LargeInput,
            )
        });
    }
    // The capped-history ring: recording must not regress the tick.
    group.bench_function("1000_nodes/uniform/step_with_ring_history", |b| {
        b.iter_batched(
            || {
                let mut sim = make_sim(1000, SimPowerPolicy::Uniform);
                sim.record_history_capped(512);
                for _ in 0..150 {
                    sim.step();
                }
                sim
            },
            |mut sim| {
                for _ in 0..10 {
                    sim.step();
                }
                sim.history().len()
            },
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group!(benches, sim_step);
criterion_main!(benches);
