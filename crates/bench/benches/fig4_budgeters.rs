//! Criterion bench for the Fig. 4 substrate: assignment latency of the
//! even-power and even-slowdown budgeters as the number of concurrent
//! jobs grows (the cluster tier runs this on every control pass).

use anor_core::policy::{Budgeter, EvenPowerBudgeter, EvenSlowdownBudgeter, JobView};
use anor_core::types::{standard_catalog, JobId, Watts};
use criterion::{criterion_group, criterion_main, Criterion};

fn views(n: usize) -> Vec<JobView> {
    let catalog = standard_catalog();
    let specs: Vec<_> = catalog.iter().collect();
    (0..n)
        .map(|i| JobView::from_spec(JobId(i as u64), specs[i % specs.len()]))
        .collect()
}

fn budgeters(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4");
    for n in [8usize, 64, 512] {
        let jobs = views(n);
        let budget = Watts(210.0 * jobs.iter().map(|j| j.nodes as f64).sum::<f64>());
        group.bench_function(format!("even_power/{n}_jobs"), |b| {
            b.iter(|| EvenPowerBudgeter.assign(budget, std::hint::black_box(&jobs)))
        });
        group.bench_function(format!("even_slowdown/{n}_jobs"), |b| {
            b.iter(|| EvenSlowdownBudgeter::default().assign(budget, std::hint::black_box(&jobs)))
        });
    }
    group.finish();
}

criterion_group!(benches, budgeters);
criterion_main!(benches);
