//! Criterion bench for the Figs. 6–9 substrate: end-to-end emulated
//! cluster throughput — a short co-scheduled run including the GEOPM
//! runtimes, job endpoints, TCP daemon and budgeter.

use anor_core::cluster::{BudgetPolicy, EmulatedCluster, EmulatorConfig, JobSetup};
use anor_core::types::Watts;
use criterion::{criterion_group, criterion_main, Criterion};

fn hw_emulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("hw_emulation");
    group.sample_size(10);
    group.bench_function("is_pair_static_840w", |b| {
        b.iter(|| {
            // IS is the shortest type (~20 s virtual), keeping the bench
            // iteration bounded while covering the full stack.
            let cluster =
                EmulatedCluster::new(EmulatorConfig::paper(BudgetPolicy::EvenSlowdown, true));
            cluster
                .run_static(
                    &[JobSetup::known("is.D.32"), JobSetup::known("is.D.32")],
                    Watts(840.0),
                )
                .expect("run failed")
        })
    });
    group.finish();
}

criterion_group!(benches, hw_emulation);
criterion_main!(benches);
