//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * **retrain threshold** — cost of a modeler retrain pass as the
//!   threshold shrinks (more frequent refits);
//! * **model order** — fit cost of linear vs anchored vs full quadratic;
//! * **bisection tolerance** — even-slowdown assignment cost as the
//!   convergence tolerance tightens.

use anor_core::model::{fit_anchored, fit_linear, fit_quadratic, ModelerConfig, PowerModeler};
use anor_core::policy::{Budgeter, EvenSlowdownBudgeter, JobView};
use anor_core::types::{standard_catalog, CapRange, JobId, PowerCurve, Seconds, Watts};
use criterion::{criterion_group, criterion_main, Criterion};

fn observations(n: usize) -> Vec<(Watts, Seconds)> {
    let truth = PowerCurve::from_anchor(Seconds(2.4), 0.75, CapRange::paper_node());
    (0..n)
        .map(|i| {
            let p = 140.0 + (i % 8) as f64 * 20.0;
            (Watts(p), truth.time_at(Watts(p)))
        })
        .collect()
}

fn retrain_threshold(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_retrain_threshold");
    let truth = PowerCurve::from_anchor(Seconds(2.4), 0.75, CapRange::paper_node());
    for threshold in [5u64, 10, 20] {
        group.bench_function(format!("epochs_{threshold}"), |b| {
            b.iter(|| {
                let mut cfg = ModelerConfig::paper();
                cfg.retrain_epochs = threshold;
                let mut m = PowerModeler::with_default(cfg, truth);
                let mut t = 0.0;
                let mut count = 0;
                // Stream 60 epochs across two cap levels.
                for (cap, tau) in [(Watts(170.0), 3.0), (Watts(250.0), 2.5)] {
                    for _ in 0..30 {
                        t += tau;
                        count += 1;
                        m.observe(count, Seconds(t), cap);
                    }
                }
                m.curve()
            })
        });
    }
    group.finish();
}

fn model_order(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_model_order");
    let pts = observations(200);
    let range = CapRange::paper_node();
    group.bench_function("linear", |b| {
        b.iter(|| fit_linear(std::hint::black_box(&pts)).unwrap())
    });
    group.bench_function("anchored", |b| {
        b.iter(|| fit_anchored(std::hint::black_box(&pts), range).unwrap())
    });
    group.bench_function("quadratic", |b| {
        b.iter(|| fit_quadratic(std::hint::black_box(&pts)).unwrap())
    });
    group.finish();
}

fn bisection_tolerance(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_bisection_tol");
    let catalog = standard_catalog();
    let jobs: Vec<JobView> = catalog
        .iter()
        .map(|s| JobView::from_spec(JobId(s.id.0 as u64), s))
        .collect();
    for tol in [0.1f64, 0.5, 5.0] {
        group.bench_function(format!("tol_{tol}w"), |b| {
            let budgeter = EvenSlowdownBudgeter {
                tolerance: Watts(tol),
                max_iters: 64,
            };
            b.iter(|| budgeter.assign(Watts(2000.0), std::hint::black_box(&jobs)))
        });
    }
    group.finish();
}

criterion_group!(benches, retrain_threshold, model_order, bisection_tolerance);
criterion_main!(benches);
