//! Criterion bench for the Fig. 5 substrate: evaluating a full
//! misclassification quadrant (budget sweep × three budgeters).

use anor_core::experiments::fig5::{quadrant, Direction, UnknownSize};
use criterion::{criterion_group, criterion_main, Criterion};

fn misclassify(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5");
    group.bench_function("quadrant/underpredict_small", |b| {
        b.iter(|| quadrant(Direction::Underpredict, UnknownSize::Small))
    });
    group.bench_function("quadrant/overpredict_large", |b| {
        b.iter(|| quadrant(Direction::Overpredict, UnknownSize::Large))
    });
    group.finish();
}

criterion_group!(benches, misclassify);
criterion_main!(benches);
