//! Criterion bench for the model tier's quadratic power-performance
//! fit — the kernel behind every endpoint retrain (`T = A·P² + B·P + C`
//! over the epoch-window samples).

use anor_core::model::fit_quadratic;
use anor_core::types::{Seconds, Watts};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

/// Synthetic epoch samples on a known curve plus deterministic jitter,
/// spread over the platform cap range like a real retrain window.
fn samples(n: usize) -> Vec<(Watts, Seconds)> {
    (0..n)
        .map(|i| {
            let p = 140.0 + 140.0 * (i as f64 / (n - 1).max(1) as f64);
            let jitter = ((i * 2654435761) % 997) as f64 / 997.0 - 0.5;
            let t = 1.9e-5 * p * p - 1.4e-2 * p + 4.2 + 0.02 * jitter;
            (Watts(p), Seconds(t))
        })
        .collect()
}

fn fit(c: &mut Criterion) {
    let mut group = c.benchmark_group("fit_quadratic");
    for n in [8usize, 32, 128] {
        let pts = samples(n);
        group.bench_function(format!("{n}_samples"), |b| {
            b.iter(|| fit_quadratic(black_box(&pts)).expect("fit succeeds"))
        });
    }
    group.finish();
}

criterion_group!(benches, fit);
criterion_main!(benches);
