//! The discrete-event queue at the heart of the simulator.
//!
//! The engine advances tick by tick for API compatibility, but per-tick
//! work is driven by *events*: nothing in the cluster changes between
//! events, so an event-free tick costs O(1). Four event kinds exist:
//!
//! - [`Event::JobCompletion`]: every node of a running job reaches 100%
//!   progress. Scheduled from the closed-form progress law at job start
//!   and at every re-cap, stamped with the job's generation so a later
//!   rate change invalidates it (stale generations are discarded on pop).
//! - [`Event::JobArrival`]: the submission schedule's next entry comes
//!   due. The schedule itself is a sorted queue, so only the *next*
//!   arrival ever needs a heap entry; it is used by the fast-forward path
//!   to bound jumps.
//! - [`Event::RecapBoundary`]: the regulation signal's next
//!   piecewise-constant boundary, from
//!   `RegulationSignal::next_change_after`. Power-target changes
//!   re-anchor affected jobs' completion times; the per-tick target
//!   comparison is the authoritative detector (it is one float compare on
//!   a value the tracking stage computes anyway), and the heap entry
//!   exists to bound fast-forward jumps.
//! - [`Event::AdmissionRetry`]: a power-blocked queue head's forced-start
//!   wait will cross its threshold. Admission outcomes are otherwise a
//!   pure function of state that only events change, so this is the one
//!   wake-up the scheduler needs between events.
//!
//! Ordering is a strict total order on `(tick, kind rank, sequence)`:
//! the sequence number makes every key unique, so heap pops are
//! deterministic regardless of insertion history. History sampling is
//! *not* an event: a retained history row is O(1) appended inline each
//! tick when recording is on (and recording disables fast-forward).

use anor_types::JobId;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A typed simulator event (see the module docs for the taxonomy).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// All nodes of `job` reach 100% progress (valid only while the
    /// job's generation still equals `gen`).
    JobCompletion {
        /// The completing job.
        job: JobId,
        /// Generation the completion tick was computed under.
        gen: u32,
    },
    /// The next submission-schedule entry comes due.
    JobArrival,
    /// The regulation signal crosses a piecewise-constant boundary.
    RecapBoundary,
    /// Re-evaluate queue admission (a blocked job's forced-start wait
    /// crosses its threshold).
    AdmissionRetry,
}

impl Event {
    /// Rank within a tick (completions first, mirroring the legacy
    /// stage order: node update, then cluster view, then scheduling).
    fn rank(&self) -> u8 {
        match self {
            Event::JobCompletion { .. } => 0,
            Event::JobArrival => 1,
            Event::RecapBoundary => 2,
            Event::AdmissionRetry => 3,
        }
    }
}

/// One queued event with its full ordering key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct QueuedEvent {
    tick: u64,
    rank: u8,
    seq: u64,
    event: Event,
}

impl Ord for QueuedEvent {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest key.
        (other.tick, other.rank, other.seq).cmp(&(self.tick, self.rank, self.seq))
    }
}

impl PartialOrd for QueuedEvent {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A binary min-heap of [`Event`]s keyed by tick.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<QueuedEvent>,
    seq: u64,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Schedule `event` for `tick`.
    pub fn push(&mut self, tick: u64, event: Event) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(QueuedEvent {
            tick,
            rank: event.rank(),
            seq,
            event,
        });
    }

    /// The earliest scheduled tick, if any.
    pub fn next_tick(&self) -> Option<u64> {
        self.heap.peek().map(|e| e.tick)
    }

    /// Pop the earliest event if it is due at or before `tick`.
    pub fn pop_due(&mut self, tick: u64) -> Option<Event> {
        if self.heap.peek().is_some_and(|e| e.tick <= tick) {
            self.heap.pop().map(|e| e.event)
        } else {
            None
        }
    }

    /// Number of queued events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Is the queue empty?
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_tick_then_rank_then_sequence_order() {
        let mut q = EventQueue::new();
        q.push(5, Event::AdmissionRetry);
        q.push(
            3,
            Event::JobCompletion {
                job: JobId(1),
                gen: 0,
            },
        );
        q.push(3, Event::AdmissionRetry);
        q.push(
            3,
            Event::JobCompletion {
                job: JobId(2),
                gen: 0,
            },
        );
        assert_eq!(q.next_tick(), Some(3));
        // Tick 3: completions first (insertion order among equals), then
        // the retry; tick-5 events are not yet due.
        assert_eq!(
            q.pop_due(3),
            Some(Event::JobCompletion {
                job: JobId(1),
                gen: 0
            })
        );
        assert_eq!(
            q.pop_due(3),
            Some(Event::JobCompletion {
                job: JobId(2),
                gen: 0
            })
        );
        assert_eq!(q.pop_due(3), Some(Event::AdmissionRetry));
        assert_eq!(q.pop_due(3), None);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop_due(5), Some(Event::AdmissionRetry));
        assert!(q.is_empty());
    }

    #[test]
    fn overdue_events_still_pop() {
        let mut q = EventQueue::new();
        q.push(2, Event::JobArrival);
        assert_eq!(q.pop_due(10), Some(Event::JobArrival));
    }

    #[test]
    fn rank_orders_kinds_within_a_tick() {
        let mut q = EventQueue::new();
        q.push(1, Event::AdmissionRetry);
        q.push(1, Event::RecapBoundary);
        q.push(1, Event::JobArrival);
        q.push(
            1,
            Event::JobCompletion {
                job: JobId(0),
                gen: 3,
            },
        );
        let order: Vec<Event> = std::iter::from_fn(|| q.pop_due(1)).collect();
        assert_eq!(
            order,
            vec![
                Event::JobCompletion {
                    job: JobId(0),
                    gen: 3
                },
                Event::JobArrival,
                Event::RecapBoundary,
                Event::AdmissionRetry,
            ]
        );
    }
}
