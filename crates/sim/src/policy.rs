//! Power capping inside the simulated cluster tier.
//!
//! Given the instantaneous power target and the set of running jobs, pick
//! per-job node caps. Two policies from Section 4.4.3 plus the
//! QoS-feedback variant Section 6.4 discusses ("we are able to avoid
//! capping power on jobs that application feedback indicates are at risk
//! of QoS degradation").

use anor_policy::{Budgeter, EvenPowerBudgeter, EvenSlowdownBudgeter, JobView, UniformBudgeter};
use anor_types::Watts;

/// Which capping rule the simulated cluster tier applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimPowerPolicy {
    /// AQA's rule: caps applied uniformly across active nodes.
    Uniform,
    /// The performance-unaware even-power balancer.
    EvenPower,
    /// The performance-aware even-slowdown balancer.
    EvenSlowdown,
    /// Even-slowdown, but jobs flagged as at-risk of missing QoS are
    /// exempted from capping (they get their full useful power) before
    /// the remaining budget is balanced over the rest.
    EvenSlowdownQosAware,
}

impl SimPowerPolicy {
    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            SimPowerPolicy::Uniform => "uniform",
            SimPowerPolicy::EvenPower => "even-power",
            SimPowerPolicy::EvenSlowdown => "even-slowdown",
            SimPowerPolicy::EvenSlowdownQosAware => "even-slowdown+qos",
        }
    }

    /// Does this policy consume per-tick inputs (the at-risk
    /// projections, which drift with simulated time itself)? When true
    /// the engine re-runs the capping stage every tick instead of
    /// memoizing it between events.
    pub fn per_tick_recompute(&self) -> bool {
        matches!(self, SimPowerPolicy::EvenSlowdownQosAware)
    }

    /// Assign per-job node caps given the busy-node power budget.
    /// `at_risk[i]` marks jobs the feedback path flagged (ignored except
    /// by the QoS-aware variant). Returns caps in job order.
    pub fn assign(&self, budget: Watts, jobs: &[JobView], at_risk: &[bool]) -> Vec<Watts> {
        debug_assert_eq!(jobs.len(), at_risk.len());
        match self {
            SimPowerPolicy::Uniform => UniformBudgeter.assign(budget, jobs),
            SimPowerPolicy::EvenPower => EvenPowerBudgeter.assign(budget, jobs),
            SimPowerPolicy::EvenSlowdown => EvenSlowdownBudgeter::default().assign(budget, jobs),
            SimPowerPolicy::EvenSlowdownQosAware => {
                // Exempt at-risk jobs at full power, balance the rest.
                let mut caps = vec![Watts::ZERO; jobs.len()];
                let mut exempt_power = Watts::ZERO;
                let mut rest = Vec::new();
                let mut rest_idx = Vec::new();
                for (i, j) in jobs.iter().enumerate() {
                    if at_risk[i] {
                        caps[i] = j.p_max();
                        exempt_power += j.p_max() * j.nodes as f64;
                    } else {
                        rest.push(j.clone());
                        rest_idx.push(i);
                    }
                }
                let rest_budget = (budget - exempt_power).max(Watts::ZERO);
                let rest_caps = EvenSlowdownBudgeter::default().assign(rest_budget, &rest);
                for (slot, cap) in rest_idx.into_iter().zip(rest_caps) {
                    caps[slot] = cap;
                }
                caps
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anor_types::{standard_catalog, JobId};

    fn views(names: &[&str]) -> Vec<JobView> {
        let cat = standard_catalog();
        names
            .iter()
            .enumerate()
            .map(|(i, n)| JobView::from_spec(JobId(i as u64), cat.find(n).unwrap()))
            .collect()
    }

    #[test]
    fn names_are_distinct() {
        let names: Vec<&str> = [
            SimPowerPolicy::Uniform,
            SimPowerPolicy::EvenPower,
            SimPowerPolicy::EvenSlowdown,
            SimPowerPolicy::EvenSlowdownQosAware,
        ]
        .iter()
        .map(|p| p.name())
        .collect();
        let mut dedup = names.clone();
        dedup.dedup();
        assert_eq!(names.len(), dedup.len());
    }

    #[test]
    fn qos_aware_exempts_flagged_jobs() {
        let jobs = views(&["bt.D.81", "sp.D.81"]);
        let at_risk = [false, true];
        let budget = Watts(700.0);
        let caps = SimPowerPolicy::EvenSlowdownQosAware.assign(budget, &jobs, &at_risk);
        // SP (flagged) runs at its full useful power.
        assert_eq!(caps[1], jobs[1].p_max());
        // BT absorbs the squeeze: compare against the unexempt variant.
        let plain = SimPowerPolicy::EvenSlowdown.assign(budget, &jobs, &[false, false]);
        assert!(caps[0].value() <= plain[0].value() + 1e-9);
    }

    #[test]
    fn qos_aware_with_no_flags_matches_even_slowdown() {
        let jobs = views(&["bt.D.81", "ft.D.64", "cg.D.32"]);
        let flags = [false, false, false];
        let a = SimPowerPolicy::EvenSlowdownQosAware.assign(Watts(1200.0), &jobs, &flags);
        let b = SimPowerPolicy::EvenSlowdown.assign(Watts(1200.0), &jobs, &flags);
        for (x, y) in a.iter().zip(&b) {
            assert!((x.value() - y.value()).abs() < 1e-6);
        }
    }

    #[test]
    fn all_flagged_means_everyone_uncapped() {
        let jobs = views(&["bt.D.81", "sp.D.81"]);
        let caps = SimPowerPolicy::EvenSlowdownQosAware.assign(Watts(100.0), &jobs, &[true, true]);
        assert_eq!(caps[0], jobs[0].p_max());
        assert_eq!(caps[1], jobs[1].p_max());
    }

    #[test]
    fn uniform_policy_delegates() {
        let jobs = views(&["bt.D.81", "sp.D.81"]);
        let caps = SimPowerPolicy::Uniform.assign(Watts(840.0), &jobs, &[false, false]);
        assert_eq!(caps[0], caps[1]);
    }
}
