//! The simulator's node and job tables.
//!
//! Section 5.6: "The node table indicates whether a given node is idle,
//! or which job it is executing, and tracks the current power consumption
//! and current cap applied to each node. The job table keeps track of
//! timestamps for queue entry, job start, and job end, as well as the
//! type of job... The simulator also tracks the minimum and maximum power
//! and time of each job type, to simulate a simple linear
//! power-performance relationship."

use anor_types::{JobId, JobTypeId, JobTypeSpec, NodeId, QosDegradation, Seconds, Watts};

/// One row of the node table.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeRow {
    /// The executing job, or `None` when idle.
    pub job: Option<JobId>,
    /// Cap currently applied to the node.
    pub cap: Watts,
    /// Power the node consumed during the last tick.
    pub power: Watts,
    /// This node's performance-variation coefficient (> 1 = slower).
    pub perf_coeff: f64,
    /// Local progress of the node's share of its job, in `[0, 1]`.
    pub progress: f64,
    /// Cached progress per second under the current cap (0 when idle).
    /// Only changes at state transitions (job start, re-cap), so the
    /// per-tick integration is a single multiply-add.
    pub rate: f64,
}

impl NodeRow {
    /// A fresh idle node with the given coefficient.
    pub fn idle(perf_coeff: f64, tdp_cap: Watts) -> Self {
        NodeRow {
            job: None,
            cap: tdp_cap,
            power: Watts::ZERO,
            perf_coeff,
            progress: 0.0,
            rate: 0.0,
        }
    }

    /// Is the node free for scheduling?
    pub fn is_idle(&self) -> bool {
        self.job.is_none()
    }
}

/// One row of the job table.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRow {
    /// Stable identifier.
    pub id: JobId,
    /// Which queue / type the job belongs to.
    pub type_id: JobTypeId,
    /// Queue-entry timestamp.
    pub submit: Seconds,
    /// Start timestamp (None while queued).
    pub start: Option<Seconds>,
    /// End timestamp (None while queued or running).
    pub end: Option<Seconds>,
    /// Nodes allocated to the job (empty while queued).
    pub nodes: Vec<NodeId>,
}

impl JobRow {
    /// A freshly submitted job.
    pub fn queued(id: JobId, type_id: JobTypeId, submit: Seconds) -> Self {
        JobRow {
            id,
            type_id,
            submit,
            start: None,
            end: None,
            nodes: Vec::new(),
        }
    }

    /// Is the job still waiting in the queue?
    pub fn is_pending(&self) -> bool {
        self.start.is_none()
    }

    /// Is the job currently executing?
    pub fn is_running(&self) -> bool {
        self.start.is_some() && self.end.is_none()
    }

    /// Has the job completed?
    pub fn is_done(&self) -> bool {
        self.end.is_some()
    }

    /// QoS degradation of a completed job relative to its type's nominal
    /// uncapped execution time.
    pub fn qos(&self, spec: &JobTypeSpec) -> Option<QosDegradation> {
        self.end
            .map(|end| QosDegradation::from_timestamps(self.submit, end, spec.time_uncapped))
    }
}

/// Linear rate-of-progress model (Section 5.6): progress per second at a
/// given cap, interpolated between the type's fastest and slowest
/// precharacterized rates, divided by the node's performance coefficient.
pub fn progress_rate(spec: &JobTypeSpec, cap: Watts, perf_coeff: f64) -> f64 {
    let t_fast = spec.time_uncapped.value();
    let t_slow = t_fast * (1.0 + spec.sensitivity);
    let r_fast = 1.0 / t_fast;
    let r_slow = 1.0 / t_slow;
    let window =
        anor_types::CapRange::new(spec.cap_range.min, spec.effective_cap(spec.cap_range.max));
    let f = window.fraction(window.clamp(cap)).clamp(0.0, 1.0);
    (r_slow + (r_fast - r_slow) * f) / perf_coeff
}

/// Per-node power draw while running a job under a cap.
pub fn node_power(spec: &JobTypeSpec, cap: Watts) -> Watts {
    spec.draw_at(cap)
}

#[cfg(test)]
mod tests {
    use super::*;
    use anor_types::standard_catalog;

    #[test]
    fn node_row_lifecycle() {
        let mut n = NodeRow::idle(1.0, Watts(280.0));
        assert!(n.is_idle());
        n.job = Some(JobId(1));
        assert!(!n.is_idle());
    }

    #[test]
    fn job_row_state_machine() {
        let mut j = JobRow::queued(JobId(1), JobTypeId(0), Seconds(10.0));
        assert!(j.is_pending() && !j.is_running() && !j.is_done());
        j.start = Some(Seconds(20.0));
        assert!(!j.is_pending() && j.is_running() && !j.is_done());
        j.end = Some(Seconds(120.0));
        assert!(j.is_done() && !j.is_running());
    }

    #[test]
    fn qos_uses_submit_to_end() {
        let cat = standard_catalog();
        let spec = cat.find("mg").unwrap(); // 120 s uncapped
        let mut j = JobRow::queued(JobId(1), spec.id, Seconds(0.0));
        j.start = Some(Seconds(120.0));
        j.end = Some(Seconds(240.0));
        let q = j.qos(spec).unwrap();
        // Sojourn 240 s over a 120 s nominal -> Q = 1.
        assert!((q.degradation() - 1.0).abs() < 1e-12);
        // Pending job: no QoS yet.
        let j2 = JobRow::queued(JobId(2), spec.id, Seconds(0.0));
        assert!(j2.qos(spec).is_none());
    }

    #[test]
    fn progress_rate_linear_in_cap() {
        let cat = standard_catalog();
        let spec = cat.find("bt").unwrap(); // 600 s, sens 0.75
        let r_max = progress_rate(spec, Watts(272.0), 1.0);
        let r_min = progress_rate(spec, Watts(140.0), 1.0);
        assert!((r_max - 1.0 / 600.0).abs() < 1e-12);
        assert!((r_min - 1.0 / 1050.0).abs() < 1e-12);
        // Midpoint of the effective window is the mean rate.
        let mid = progress_rate(spec, Watts(206.0), 1.0);
        assert!((mid - 0.5 * (r_max + r_min)).abs() < 1e-12);
    }

    #[test]
    fn progress_rate_saturates_beyond_window() {
        let cat = standard_catalog();
        let spec = cat.find("sp").unwrap(); // max draw 230 W
        assert_eq!(
            progress_rate(spec, Watts(280.0), 1.0),
            progress_rate(spec, Watts(230.0), 1.0),
            "caps above the job's draw do not speed it up"
        );
        assert_eq!(
            progress_rate(spec, Watts(100.0), 1.0),
            progress_rate(spec, Watts(140.0), 1.0)
        );
    }

    #[test]
    fn perf_coeff_divides_rate() {
        let cat = standard_catalog();
        let spec = cat.find("lu").unwrap();
        let nominal = progress_rate(spec, Watts(268.0), 1.0);
        let slow = progress_rate(spec, Watts(268.0), 1.25);
        assert!((slow * 1.25 - nominal).abs() < 1e-15);
    }

    #[test]
    fn node_power_tracks_cap_until_draw() {
        let cat = standard_catalog();
        let spec = cat.find("is").unwrap(); // draws 225 W max
        assert_eq!(node_power(spec, Watts(280.0)), Watts(225.0));
        assert_eq!(node_power(spec, Watts(180.0)), Watts(180.0));
        assert_eq!(
            node_power(spec, Watts(100.0)),
            Watts(140.0),
            "platform floor"
        );
    }
}
