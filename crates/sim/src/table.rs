//! The simulator's node and job tables.
//!
//! Section 5.6: "The node table indicates whether a given node is idle,
//! or which job it is executing, and tracks the current power consumption
//! and current cap applied to each node. The job table keeps track of
//! timestamps for queue entry, job start, and job end, as well as the
//! type of job... The simulator also tracks the minimum and maximum power
//! and time of each job type, to simulate a simple linear
//! power-performance relationship."
//!
//! Since the event-engine rewrite the live tables are struct-of-arrays
//! ([`NodeTable`], [`JobTable`]): each attribute is its own dense column
//! so the event-time hot loops (re-anchoring a job's nodes at a re-cap
//! boundary, releasing them at completion) stream cache-linear memory
//! instead of striding over wide row structs. [`NodeRow`] and [`JobRow`]
//! remain the materialized row views every external consumer sees.
//!
//! Progress is *anchored*, not integrated: a node stores the progress it
//! had at the last state transition (job start or re-cap) plus the tick
//! that anchor was taken at, and [`progress_at`] evaluates the linear law
//! analytically for any later tick. That closed form is what lets the
//! engine schedule a completion *event* instead of walking every busy
//! node every simulated second.

use anor_types::{JobId, JobTypeId, JobTypeSpec, NodeId, QosDegradation, Seconds, Watts};

/// One row of the node table.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeRow {
    /// The executing job, or `None` when idle.
    pub job: Option<JobId>,
    /// Cap currently applied to the node.
    pub cap: Watts,
    /// Power the node consumed during the last tick.
    pub power: Watts,
    /// This node's performance-variation coefficient (> 1 = slower).
    pub perf_coeff: f64,
    /// Local progress of the node's share of its job, in `[0, 1]`.
    pub progress: f64,
    /// Cached progress per second under the current cap (0 when idle).
    /// Only changes at state transitions (job start, re-cap), so the
    /// per-tick integration is a single multiply-add.
    pub rate: f64,
}

impl NodeRow {
    /// A fresh idle node with the given coefficient.
    pub fn idle(perf_coeff: f64, tdp_cap: Watts) -> Self {
        NodeRow {
            job: None,
            cap: tdp_cap,
            power: Watts::ZERO,
            perf_coeff,
            progress: 0.0,
            rate: 0.0,
        }
    }

    /// Is the node free for scheduling?
    pub fn is_idle(&self) -> bool {
        self.job.is_none()
    }
}

/// One row of the job table.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRow {
    /// Stable identifier.
    pub id: JobId,
    /// Which queue / type the job belongs to.
    pub type_id: JobTypeId,
    /// Queue-entry timestamp.
    pub submit: Seconds,
    /// Start timestamp (None while queued).
    pub start: Option<Seconds>,
    /// End timestamp (None while queued or running).
    pub end: Option<Seconds>,
    /// Nodes allocated to the job (empty while queued).
    pub nodes: Vec<NodeId>,
}

impl JobRow {
    /// A freshly submitted job.
    pub fn queued(id: JobId, type_id: JobTypeId, submit: Seconds) -> Self {
        JobRow {
            id,
            type_id,
            submit,
            start: None,
            end: None,
            nodes: Vec::new(),
        }
    }

    /// Is the job still waiting in the queue?
    pub fn is_pending(&self) -> bool {
        self.start.is_none()
    }

    /// Is the job currently executing?
    pub fn is_running(&self) -> bool {
        self.start.is_some() && self.end.is_none()
    }

    /// Has the job completed?
    pub fn is_done(&self) -> bool {
        self.end.is_some()
    }

    /// QoS degradation of a completed job relative to its type's nominal
    /// uncapped execution time.
    pub fn qos(&self, spec: &JobTypeSpec) -> Option<QosDegradation> {
        self.end
            .map(|end| QosDegradation::from_timestamps(self.submit, end, spec.time_uncapped))
    }
}

/// Linear rate-of-progress model (Section 5.6): progress per second at a
/// given cap, interpolated between the type's fastest and slowest
/// precharacterized rates, divided by the node's performance coefficient.
pub fn progress_rate(spec: &JobTypeSpec, cap: Watts, perf_coeff: f64) -> f64 {
    let t_fast = spec.time_uncapped.value();
    let t_slow = t_fast * (1.0 + spec.sensitivity);
    let r_fast = 1.0 / t_fast;
    let r_slow = 1.0 / t_slow;
    let window =
        anor_types::CapRange::new(spec.cap_range.min, spec.effective_cap(spec.cap_range.max));
    let f = window.fraction(window.clamp(cap)).clamp(0.0, 1.0);
    (r_slow + (r_fast - r_slow) * f) / perf_coeff
}

/// Per-node power draw while running a job under a cap.
pub fn node_power(spec: &JobTypeSpec, cap: Watts) -> Watts {
    spec.draw_at(cap)
}

/// The shared progress law: a node anchored at `anchor_progress` with a
/// constant per-second `rate` reaches
/// `min(1, anchor_progress + rate·dt·ticks)` after `ticks` simulation
/// steps of length `dt`. Both the event engine and the equivalence-test
/// oracle evaluate exactly this closed form, so a completion tick
/// computed ahead of time agrees bit-for-bit with a tick-by-tick replay
/// that re-evaluates it each step.
#[inline]
pub fn progress_at(anchor_progress: f64, rate: f64, dt: f64, ticks: u64) -> f64 {
    if ticks == 0 {
        return anchor_progress;
    }
    (anchor_progress + rate * dt * ticks as f64).min(1.0)
}

/// The minimal number of ticks after the anchor at which [`progress_at`]
/// reaches 1.0, or `None` when it never does (zero, negative or
/// non-finite rate, or a crossing too far out to represent). The closed
/// form gives an estimate that is then walked to the exact boundary of
/// `progress_at` itself, so a completion event scheduled from this value
/// agrees bit-for-bit with a tick-by-tick evaluation of the same law.
pub fn crossing_ticks(anchor_progress: f64, rate: f64, dt: f64) -> Option<u64> {
    if anchor_progress >= 1.0 {
        return Some(0);
    }
    let per = rate * dt;
    let usable = per > 0.0 && per.is_finite(); // NaN/zero/negative: never
    if !usable {
        return None;
    }
    let est = ((1.0 - anchor_progress) / per).ceil();
    if !est.is_finite() || est < 0.0 || est >= u64::MAX as f64 {
        return None;
    }
    let mut k = est as u64;
    while k > 0 && progress_at(anchor_progress, rate, dt, k - 1) >= 1.0 {
        k -= 1;
    }
    while progress_at(anchor_progress, rate, dt, k) < 1.0 {
        k += 1;
    }
    Some(k)
}

/// Sentinel in the node table's job column for "idle".
const NO_JOB: u64 = u64::MAX;

/// Struct-of-arrays node table: one dense column per attribute plus an
/// idle-node bitset. All indexing is confined to this type; callers pass
/// [`NodeId`]s minted by the table itself.
#[derive(Debug, Clone)]
pub struct NodeTable {
    /// Executing job per node (`NO_JOB` = idle).
    job: Vec<u64>,
    /// Applied cap per node.
    cap: Vec<Watts>,
    /// Current draw per node (idle nodes hold the idle draw).
    power: Vec<Watts>,
    /// Performance-variation coefficient per node.
    perf_coeff: Vec<f64>,
    /// Progress at the node's last state transition.
    anchor_progress: Vec<f64>,
    /// Tick the anchor was taken at.
    anchor_tick: Vec<u64>,
    /// Progress per second under the current cap (0 when idle).
    rate: Vec<f64>,
    /// Conservative rate ceiling the outstanding completion check was
    /// scheduled against (0 when idle). The engine reschedules a job's
    /// check only when a re-cap pushes a node's actual rate above this
    /// estimate, so the column is a scheduling aid, not physics: it never
    /// enters progress/power arithmetic or the state hash.
    rate_est: Vec<f64>,
    /// Bitset of idle nodes (bit set = idle), scanned ascending so the
    /// "first idle nodes" assignment matches a linear row scan.
    idle_bits: Vec<u64>,
}

impl NodeTable {
    /// Build an all-idle table of `n` nodes with per-node coefficients
    /// from `coeff`, every cap at `tdp` and every draw at `idle_power`.
    pub fn build(n: u32, tdp: Watts, idle_power: Watts, coeff: impl Fn(NodeId) -> f64) -> Self {
        let n = n as usize;
        let words = n.div_ceil(64);
        let mut idle_bits = vec![u64::MAX; words];
        // Clear the tail bits beyond n so scans never mint ghost nodes.
        if !n.is_multiple_of(64) {
            if let Some(last) = idle_bits.last_mut() {
                *last = (1u64 << (n % 64)) - 1;
            }
        }
        NodeTable {
            job: vec![NO_JOB; n],
            cap: vec![tdp; n],
            power: vec![idle_power; n],
            perf_coeff: (0..n).map(|i| coeff(NodeId(i as u32))).collect(),
            anchor_progress: vec![0.0; n],
            anchor_tick: vec![0; n],
            rate: vec![0.0; n],
            rate_est: vec![0.0; n],
            idle_bits,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.job.len()
    }

    /// Is the table empty?
    pub fn is_empty(&self) -> bool {
        self.job.is_empty()
    }

    /// Is the node idle?
    pub fn is_idle(&self, n: NodeId) -> bool {
        self.job[n.index()] == NO_JOB
    }

    /// The node's current cap.
    pub fn cap(&self, n: NodeId) -> Watts {
        self.cap[n.index()]
    }

    /// The node's current draw.
    pub fn power(&self, n: NodeId) -> Watts {
        self.power[n.index()]
    }

    /// The node's performance coefficient.
    pub fn perf_coeff(&self, n: NodeId) -> f64 {
        self.perf_coeff[n.index()]
    }

    /// The conservative rate ceiling of the node's outstanding
    /// completion check (see the field docs).
    pub fn rate_est(&self, n: NodeId) -> f64 {
        self.rate_est[n.index()]
    }

    /// Record the rate ceiling a completion check was scheduled against.
    pub fn set_rate_est(&mut self, n: NodeId, v: f64) {
        self.rate_est[n.index()] = v;
    }

    /// Progress per second under the node's current cap.
    pub fn rate(&self, n: NodeId) -> f64 {
        self.rate[n.index()]
    }

    /// The node's anchor (progress at the last transition, and the tick
    /// it was taken at).
    pub fn anchor(&self, n: NodeId) -> (f64, u64) {
        (self.anchor_progress[n.index()], self.anchor_tick[n.index()])
    }

    /// The node's progress materialized at `tick` via [`progress_at`].
    pub fn progress_at_tick(&self, n: NodeId, tick: u64, dt: f64) -> f64 {
        let i = n.index();
        progress_at(
            self.anchor_progress[i],
            self.rate[i],
            dt,
            tick.saturating_sub(self.anchor_tick[i]),
        )
    }

    /// Collect the first `want` idle nodes in ascending id order into
    /// `out` (cleared first). Returns how many were found.
    pub fn collect_idle(&self, want: usize, out: &mut Vec<NodeId>) -> usize {
        out.clear();
        if want == 0 {
            return 0;
        }
        for (w, &word) in self.idle_bits.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let b = bits.trailing_zeros();
                out.push(NodeId((w * 64) as u32 + b));
                if out.len() == want {
                    return want;
                }
                bits &= bits - 1;
            }
        }
        out.len()
    }

    /// Start `job` on node `n` at `tick`: the anchor resets to zero
    /// progress and the node keeps its previous cap (the capping stage
    /// reassigns it later the same tick), so draw and rate are seeded
    /// from that stale cap by the caller.
    pub fn assign(&mut self, n: NodeId, job: JobId, power: Watts, rate: f64, tick: u64) {
        let i = n.index();
        self.job[i] = job.0;
        self.power[i] = power;
        self.rate[i] = rate;
        self.rate_est[i] = rate;
        self.anchor_progress[i] = 0.0;
        self.anchor_tick[i] = tick;
        self.idle_bits[i / 64] &= !(1u64 << (i % 64));
    }

    /// Re-cap node `n` at `tick`: the caller materializes the node's
    /// progress under the old rate into `anchor_progress` first, then the
    /// new cap/draw/rate take effect from the next tick — exactly the
    /// legacy ordering, where caps written in the policy stage of tick
    /// `t` first influence the node-update stage of tick `t+1`.
    pub fn recap(
        &mut self,
        n: NodeId,
        cap: Watts,
        power: Watts,
        rate: f64,
        anchor_progress: f64,
        tick: u64,
    ) {
        let i = n.index();
        self.cap[i] = cap;
        self.power[i] = power;
        self.rate[i] = rate;
        self.anchor_progress[i] = anchor_progress;
        self.anchor_tick[i] = tick;
    }

    /// Release node `n` at completion: idle again at `idle_power`, zero
    /// progress, zero rate. The cap is kept, as on real hardware.
    pub fn release(&mut self, n: NodeId, idle_power: Watts, tick: u64) {
        let i = n.index();
        self.job[i] = NO_JOB;
        self.power[i] = idle_power;
        self.rate[i] = 0.0;
        self.rate_est[i] = 0.0;
        self.anchor_progress[i] = 0.0;
        self.anchor_tick[i] = tick;
        self.idle_bits[i / 64] |= 1u64 << (i % 64);
    }

    /// Materialize the full table as rows, with progress evaluated at
    /// `tick`.
    pub fn rows(&self, tick: u64, dt: f64) -> Vec<NodeRow> {
        (0..self.len())
            .map(|i| {
                let n = NodeId(i as u32);
                NodeRow {
                    job: (self.job[i] != NO_JOB).then(|| JobId(self.job[i])),
                    cap: self.cap[i],
                    power: self.power[i],
                    perf_coeff: self.perf_coeff[i],
                    progress: self.progress_at_tick(n, tick, dt),
                    rate: self.rate[i],
                }
            })
            .collect()
    }
}

/// Sentinel timestamp for "not yet" in the job table's start/end columns.
const NO_TIME: f64 = f64::NAN;

/// Struct-of-arrays job table. Node allocations live in a shared
/// append-only arena (`node_ids`) addressed by per-job offset and length,
/// so completed jobs keep their allocation history without per-row Vecs.
#[derive(Debug, Clone, Default)]
pub struct JobTable {
    type_id: Vec<JobTypeId>,
    submit: Vec<Seconds>,
    start: Vec<f64>,
    end: Vec<f64>,
    node_off: Vec<usize>,
    node_len: Vec<u32>,
    /// Shared node-allocation arena.
    node_ids: Vec<NodeId>,
    /// Event generation: bumped whenever the job's rates change (start or
    /// re-cap), so stale completion events can be discarded on pop.
    gen: Vec<u32>,
    /// Tick at which the job's completion event fired (u64::MAX = none):
    /// the node-update stage completes exactly the jobs stamped with the
    /// current tick, in running order.
    due: Vec<u64>,
}

impl JobTable {
    /// An empty table.
    pub fn new() -> Self {
        JobTable::default()
    }

    /// Number of rows (queued, running and completed).
    pub fn len(&self) -> usize {
        self.type_id.len()
    }

    /// Is the table empty?
    pub fn is_empty(&self) -> bool {
        self.type_id.is_empty()
    }

    /// Append a freshly submitted job; returns its id (dense, minted by
    /// the table).
    pub fn push_queued(&mut self, type_id: JobTypeId, submit: Seconds) -> JobId {
        let id = JobId(self.type_id.len() as u64);
        self.type_id.push(type_id);
        self.submit.push(submit);
        self.start.push(NO_TIME);
        self.end.push(NO_TIME);
        self.node_off.push(self.node_ids.len());
        self.node_len.push(0);
        self.gen.push(0);
        self.due.push(u64::MAX);
        id
    }

    /// The job's type.
    pub fn type_id(&self, j: JobId) -> JobTypeId {
        self.type_id[j.0 as usize]
    }

    /// The job's queue-entry timestamp.
    pub fn submit(&self, j: JobId) -> Seconds {
        self.submit[j.0 as usize]
    }

    /// The job's start timestamp, if started.
    pub fn start(&self, j: JobId) -> Option<Seconds> {
        let v = self.start[j.0 as usize];
        (!v.is_nan()).then_some(Seconds(v))
    }

    /// The job's end timestamp, if completed.
    pub fn end(&self, j: JobId) -> Option<Seconds> {
        let v = self.end[j.0 as usize];
        (!v.is_nan()).then_some(Seconds(v))
    }

    /// Is the job started and not yet completed?
    pub fn is_running(&self, j: JobId) -> bool {
        !self.start[j.0 as usize].is_nan() && self.end[j.0 as usize].is_nan()
    }

    /// Record the job's start: timestamp plus its node allocation
    /// (appended to the shared arena).
    pub fn set_started(&mut self, j: JobId, at: Seconds, nodes: &[NodeId]) {
        let i = j.0 as usize;
        self.start[i] = at.value();
        self.node_off[i] = self.node_ids.len();
        self.node_len[i] = nodes.len() as u32;
        self.node_ids.extend_from_slice(nodes);
    }

    /// Record the job's completion timestamp.
    pub fn set_end(&mut self, j: JobId, at: Seconds) {
        self.end[j.0 as usize] = at.value();
    }

    /// The job's allocated nodes (empty while queued).
    pub fn nodes_of(&self, j: JobId) -> &[NodeId] {
        let i = j.0 as usize;
        let off = self.node_off[i];
        &self.node_ids[off..off + self.node_len[i] as usize]
    }

    /// How many nodes the job holds (0 while queued).
    pub fn node_count(&self, j: JobId) -> u32 {
        self.node_len[j.0 as usize]
    }

    /// The job's current event generation.
    pub fn gen(&self, j: JobId) -> u32 {
        self.gen[j.0 as usize]
    }

    /// Invalidate outstanding completion events for the job (rates
    /// changed); returns the new generation.
    pub fn bump_gen(&mut self, j: JobId) -> u32 {
        let g = &mut self.gen[j.0 as usize];
        *g = g.wrapping_add(1);
        *g
    }

    /// Stamp the job as due to complete at `tick`.
    pub fn mark_due(&mut self, j: JobId, tick: u64) {
        self.due[j.0 as usize] = tick;
    }

    /// Was the job stamped due at exactly `tick`?
    pub fn is_due(&self, j: JobId, tick: u64) -> bool {
        self.due[j.0 as usize] == tick
    }

    /// Materialize one row.
    pub fn row(&self, j: JobId) -> JobRow {
        JobRow {
            id: j,
            type_id: self.type_id(j),
            submit: self.submit(j),
            start: self.start(j),
            end: self.end(j),
            nodes: self.nodes_of(j).to_vec(),
        }
    }

    /// Materialize the full table as rows.
    pub fn rows(&self) -> Vec<JobRow> {
        (0..self.len() as u64).map(|i| self.row(JobId(i))).collect()
    }
}

/// FNV-1a over the materialized node and job tables: a cheap,
/// order-sensitive fingerprint of final simulator state. Two runs that
/// agree on every table bit agree on this hash; the perfsuite asserts it
/// is identical across re-cap shard worker counts and repeat runs.
pub fn state_hash(nodes: &[NodeRow], jobs: &[JobRow]) -> u64 {
    let mut h = Fnv1a::new();
    h.write_u64(nodes.len() as u64);
    for n in nodes {
        h.write_u64(n.job.map_or(u64::MAX, |j| j.0));
        h.write_f64(n.cap.value());
        h.write_f64(n.power.value());
        h.write_f64(n.perf_coeff);
        h.write_f64(n.progress);
        h.write_f64(n.rate);
    }
    h.write_u64(jobs.len() as u64);
    for j in jobs {
        h.write_u64(j.id.0);
        h.write_u64(j.type_id.index() as u64);
        h.write_f64(j.submit.value());
        h.write_u64(j.start.map_or(u64::MAX, |s| s.value().to_bits()));
        h.write_u64(j.end.map_or(u64::MAX, |e| e.value().to_bits()));
        h.write_u64(j.nodes.len() as u64);
        for n in &j.nodes {
            h.write_u64(n.index() as u64);
        }
    }
    h.finish()
}

/// Incremental 64-bit FNV-1a.
struct Fnv1a(u64);

impl Fnv1a {
    fn new() -> Self {
        Fnv1a(0xcbf29ce484222325)
    }

    fn write_u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100000001b3);
        }
    }

    fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anor_types::standard_catalog;

    #[test]
    fn node_row_lifecycle() {
        let mut n = NodeRow::idle(1.0, Watts(280.0));
        assert!(n.is_idle());
        n.job = Some(JobId(1));
        assert!(!n.is_idle());
    }

    #[test]
    fn job_row_state_machine() {
        let mut j = JobRow::queued(JobId(1), JobTypeId(0), Seconds(10.0));
        assert!(j.is_pending() && !j.is_running() && !j.is_done());
        j.start = Some(Seconds(20.0));
        assert!(!j.is_pending() && j.is_running() && !j.is_done());
        j.end = Some(Seconds(120.0));
        assert!(j.is_done() && !j.is_running());
    }

    #[test]
    fn qos_uses_submit_to_end() {
        let cat = standard_catalog();
        let spec = cat.find("mg").unwrap(); // 120 s uncapped
        let mut j = JobRow::queued(JobId(1), spec.id, Seconds(0.0));
        j.start = Some(Seconds(120.0));
        j.end = Some(Seconds(240.0));
        let q = j.qos(spec).unwrap();
        // Sojourn 240 s over a 120 s nominal -> Q = 1.
        assert!((q.degradation() - 1.0).abs() < 1e-12);
        // Pending job: no QoS yet.
        let j2 = JobRow::queued(JobId(2), spec.id, Seconds(0.0));
        assert!(j2.qos(spec).is_none());
    }

    #[test]
    fn progress_rate_linear_in_cap() {
        let cat = standard_catalog();
        let spec = cat.find("bt").unwrap(); // 600 s, sens 0.75
        let r_max = progress_rate(spec, Watts(272.0), 1.0);
        let r_min = progress_rate(spec, Watts(140.0), 1.0);
        assert!((r_max - 1.0 / 600.0).abs() < 1e-12);
        assert!((r_min - 1.0 / 1050.0).abs() < 1e-12);
        // Midpoint of the effective window is the mean rate.
        let mid = progress_rate(spec, Watts(206.0), 1.0);
        assert!((mid - 0.5 * (r_max + r_min)).abs() < 1e-12);
    }

    #[test]
    fn progress_rate_saturates_beyond_window() {
        let cat = standard_catalog();
        let spec = cat.find("sp").unwrap(); // max draw 230 W
        assert_eq!(
            progress_rate(spec, Watts(280.0), 1.0),
            progress_rate(spec, Watts(230.0), 1.0),
            "caps above the job's draw do not speed it up"
        );
        assert_eq!(
            progress_rate(spec, Watts(100.0), 1.0),
            progress_rate(spec, Watts(140.0), 1.0)
        );
    }

    #[test]
    fn perf_coeff_divides_rate() {
        let cat = standard_catalog();
        let spec = cat.find("lu").unwrap();
        let nominal = progress_rate(spec, Watts(268.0), 1.0);
        let slow = progress_rate(spec, Watts(268.0), 1.25);
        assert!((slow * 1.25 - nominal).abs() < 1e-15);
    }

    #[test]
    fn node_power_tracks_cap_until_draw() {
        let cat = standard_catalog();
        let spec = cat.find("is").unwrap(); // draws 225 W max
        assert_eq!(node_power(spec, Watts(280.0)), Watts(225.0));
        assert_eq!(node_power(spec, Watts(180.0)), Watts(180.0));
        assert_eq!(
            node_power(spec, Watts(100.0)),
            Watts(140.0),
            "platform floor"
        );
    }

    #[test]
    fn progress_at_matches_single_step_and_saturates() {
        let (p, r, dt) = (0.25, 0.001, 1.0);
        // One tick of the closed form is exactly one fused step.
        assert_eq!(progress_at(p, r, dt, 1), (p + r * dt * 1.0).min(1.0));
        // Zero ticks returns the anchor untouched.
        assert_eq!(progress_at(p, r, dt, 0), p);
        // Far future saturates at 1.
        assert_eq!(progress_at(p, r, dt, 10_000_000), 1.0);
        // Monotone in ticks.
        let mut prev = 0.0;
        for k in 0..2000 {
            let v = progress_at(p, r, dt, k);
            assert!(v >= prev);
            prev = v;
        }
    }

    #[test]
    fn crossing_ticks_is_the_exact_minimal_crossing() {
        // Sweep awkward float rates: the returned k must be the first
        // tick where the closed form reaches 1.0.
        for &(a, r, dt) in &[
            (0.0, 1.0 / 600.0, 1.0),
            (0.37, 1.0 / 1050.0, 1.0),
            (0.999999, 0.1, 1.0),
            (0.25, 0.003, 0.5),
            (0.0, 1.7, 1.0), // faster than one tick
        ] {
            let k = crossing_ticks(a, r, dt).unwrap();
            assert!(progress_at(a, r, dt, k) >= 1.0, "a={a} r={r}");
            if k > 0 {
                assert!(progress_at(a, r, dt, k - 1) < 1.0, "a={a} r={r}");
            }
        }
        // Already done: zero ticks.
        assert_eq!(crossing_ticks(1.0, 0.1, 1.0), Some(0));
        // Degenerate rates never cross.
        assert_eq!(crossing_ticks(0.5, 0.0, 1.0), None);
        assert_eq!(crossing_ticks(0.5, -0.1, 1.0), None);
        assert_eq!(crossing_ticks(0.5, f64::NAN, 1.0), None);
        assert_eq!(crossing_ticks(0.5, 1e-300, 1.0), None, "too far out");
    }

    #[test]
    fn node_table_assign_recap_release_roundtrip() {
        let mut t = NodeTable::build(130, Watts(280.0), Watts(90.0), |_| 1.0);
        assert_eq!(t.len(), 130);
        let mut picked = Vec::new();
        assert_eq!(t.collect_idle(3, &mut picked), 3);
        assert_eq!(picked, vec![NodeId(0), NodeId(1), NodeId(2)]);
        for &n in &picked {
            t.assign(n, JobId(7), Watts(200.0), 0.002, 5);
        }
        assert!(!t.is_idle(NodeId(0)));
        // The idle scan now starts at node 3.
        assert_eq!(t.collect_idle(1, &mut picked), 1);
        assert_eq!(picked, vec![NodeId(3)]);
        // Progress accrues from the anchor.
        let p = t.progress_at_tick(NodeId(0), 10, 1.0);
        assert!((p - 0.01).abs() < 1e-12);
        // Re-cap re-anchors: progress continues from the materialized
        // value under the new rate.
        t.recap(NodeId(0), Watts(150.0), Watts(150.0), 0.001, p, 10);
        let p2 = t.progress_at_tick(NodeId(0), 12, 1.0);
        assert!((p2 - (p + 0.002)).abs() < 1e-12);
        // Release: idle again, cap kept, zero progress.
        t.release(NodeId(0), Watts(90.0), 12);
        assert!(t.is_idle(NodeId(0)));
        assert_eq!(t.cap(NodeId(0)), Watts(150.0));
        assert_eq!(t.power(NodeId(0)), Watts(90.0));
        assert_eq!(t.progress_at_tick(NodeId(0), 99, 1.0), 0.0);
    }

    #[test]
    fn idle_bitset_tail_is_exact() {
        // 130 nodes = 2 full words + 2 tail bits; the scan must find
        // exactly 130 and never a ghost node.
        let t = NodeTable::build(130, Watts(280.0), Watts(90.0), |_| 1.0);
        let mut all = Vec::new();
        assert_eq!(t.collect_idle(usize::MAX, &mut all), 130);
        assert_eq!(all.len(), 130);
        assert_eq!(all.last(), Some(&NodeId(129)));
    }

    #[test]
    fn job_table_lifecycle_and_rows() {
        let mut t = JobTable::new();
        let a = t.push_queued(JobTypeId(0), Seconds(1.0));
        let b = t.push_queued(JobTypeId(1), Seconds(2.0));
        assert_eq!((a, b), (JobId(0), JobId(1)));
        assert!(!t.is_running(a));
        t.set_started(a, Seconds(3.0), &[NodeId(4), NodeId(5)]);
        assert!(t.is_running(a));
        assert_eq!(t.nodes_of(a), &[NodeId(4), NodeId(5)]);
        assert_eq!(t.node_count(a), 2);
        assert_eq!(t.node_count(b), 0);
        t.set_end(a, Seconds(10.0));
        assert!(!t.is_running(a));
        // Generations and due stamps drive event validity.
        assert_eq!(t.gen(a), 0);
        assert_eq!(t.bump_gen(a), 1);
        t.mark_due(a, 9);
        assert!(t.is_due(a, 9) && !t.is_due(a, 10));
        // Materialized rows match the legacy shape.
        let rows = t.rows();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].start, Some(Seconds(3.0)));
        assert_eq!(rows[0].end, Some(Seconds(10.0)));
        assert_eq!(rows[0].nodes, vec![NodeId(4), NodeId(5)]);
        assert_eq!(rows[1].start, None);
        assert!(rows[1].is_pending());
    }

    #[test]
    fn state_hash_is_stable_and_sensitive() {
        let nodes = vec![NodeRow::idle(1.0, Watts(280.0)); 4];
        let jobs = vec![JobRow::queued(JobId(0), JobTypeId(2), Seconds(5.0))];
        let h1 = state_hash(&nodes, &jobs);
        let h2 = state_hash(&nodes, &jobs);
        assert_eq!(h1, h2, "hash is a pure function of the tables");
        let mut jobs2 = jobs.clone();
        jobs2[0].start = Some(Seconds(6.0));
        assert_ne!(h1, state_hash(&nodes, &jobs2));
        let mut nodes2 = nodes.clone();
        nodes2[3].progress = 0.5;
        assert_ne!(h1, state_hash(&nodes2, &jobs));
    }
}
