//! The event-driven tabular simulation engine.
//!
//! Section 5.6's update order is followed exactly: "Each simulated
//! second, the simulator updates the state of the node table, then
//! updates the view of the cluster seen by the job scheduler and power
//! manager, then schedules jobs and caps power. The policy updates inputs
//! to the node table that will be processed in the node-update stage of
//! the next time step. Lastly, before starting the next iteration, we
//! append the current state of all tables to a file."
//!
//! Power is steered two ways, as the paper observes of AQA (Section 6.4):
//! primarily by *refraining from scheduling* jobs to idle nodes when
//! starting them would exceed the instantaneous target, and secondarily
//! by capping the nodes of running jobs. Jobs whose queue wait approaches
//! the QoS limit are started regardless of the target, so the power
//! objective cannot starve a job forever.
//!
//! # Event-driven stepping
//!
//! Nothing in the cluster changes between *events* — a completion, an
//! arrival, a power-target change, a forced-start threshold crossing —
//! so the engine does per-tick work only when one is due. Node progress
//! is *anchored* (see [`crate::table::progress_at`]): each node stores
//! the progress it had at its last state transition, and job completions
//! are scheduled ahead of time on a binary heap ([`EventQueue`]) from
//! the closed-form crossing of that law. The scheduling and capping
//! stages are pure functions of state that only events change, so they
//! are memoized between events; an event-free [`step`](TabularSim::step)
//! costs O(1) instead of O(nodes). [`run_to`](TabularSim::run_to)
//! additionally jumps over event-free tick stretches when no per-tick
//! observer (tracking, history, telemetry, tracer) is attached.

use crate::event::{Event, EventQueue};
use crate::history::HistoryRow;
use crate::policy::SimPowerPolicy;
use crate::table::{
    crossing_ticks, node_power, progress_rate, state_hash, JobRow, JobTable, NodeRow, NodeTable,
};
use anor_aqa::{JobSubmission, PendingView, PowerTarget, QueueScheduler, TrackingRecorder};
use anor_exec::ExecPool;
use anor_platform::PerformanceVariation;
use anor_policy::JobView;
use anor_telemetry::{CauseId, Gauge, Histogram, Telemetry, TraceStage, Tracer};
use anor_types::{
    Catalog, JobId, JobTypeId, Joules, NodeId, QosConstraint, QosDegradation, Seconds, Watts,
};
use std::collections::VecDeque;
use std::time::Instant;

/// Minimum busy-node population before the capping stage's staging pass
/// is fanned out across the shard pool: below this, scoped-thread
/// dispatch costs more than the work it parallelizes.
const RECAP_SHARD_MIN_NODES: usize = 4096;

/// Jobs per shard task in the staged capping pass. Chunk boundaries are
/// a function of the running list alone — never of the worker count —
/// so the staged results (and therefore the merged state) are
/// byte-identical at any parallelism.
const RECAP_SHARD_CHUNK: usize = 128;

/// Static configuration of a simulated cluster.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Cluster size (paper: 1000).
    pub total_nodes: u32,
    /// Average idle power per node.
    pub idle_power: Watts,
    /// Job-type catalog (scaled for the cluster size).
    pub catalog: Catalog,
    /// Types admitted to the queues.
    pub types: Vec<JobTypeId>,
    /// Simulation tick (paper: one second).
    pub tick: Seconds,
    /// Power-capping policy.
    pub policy: SimPowerPolicy,
    /// The QoS constraint all types share.
    pub qos: QosConstraint,
    /// Fraction of the QoS limit at which a job is considered at risk
    /// (for forced starts and the QoS-aware capping exemption).
    pub qos_risk_threshold: f64,
}

impl SimConfig {
    /// The paper's 1000-node scenario: the 25×-scaled catalog, 6
    /// long-running types, 1 s ticks, Q ≤ 5 at 90%.
    pub fn paper_1000(policy: SimPowerPolicy) -> Self {
        let catalog = anor_types::standard_catalog().scale_nodes(25);
        let types = catalog.long_running();
        SimConfig {
            total_nodes: 1000,
            idle_power: Watts(90.0),
            catalog,
            types,
            tick: Seconds(1.0),
            policy,
            qos: QosConstraint::default(),
            qos_risk_threshold: 0.8,
        }
    }
}

/// The aggregate result of a simulation run.
#[derive(Debug, Clone)]
pub struct SimOutcome {
    /// Completed jobs' QoS degradations, grouped per type id.
    pub qos_by_type: Vec<(JobTypeId, Vec<QosDegradation>)>,
    /// Jobs completed.
    pub completed: u32,
    /// Jobs still running or queued at the end.
    pub unfinished: u32,
    /// Completed jobs whose `type_id` is not in `cfg.types`: they have a
    /// QoS row but no `qos_by_type` slot to aggregate it into. Also
    /// counted into the `sim_qos_rows_dropped_total` telemetry counter.
    pub dropped: u32,
    /// 90th-percentile tracking error.
    pub tracking_p90: f64,
    /// Fraction of samples within the 30% error limit.
    pub tracking_within_30: f64,
    /// Total electrical energy the cluster consumed over the run
    /// (measured power integrated over every tick).
    pub energy: Joules,
}

/// Cached telemetry handles for the per-tick hot path.
#[derive(Debug, Clone)]
struct SimInstruments {
    tick: Histogram,
    jobs_rows: Gauge,
    pending_jobs: Gauge,
    running_jobs: Gauge,
    history_rows: Gauge,
    measured_watts: Gauge,
}

/// One node's staged re-cap, produced by the (possibly sharded) staging
/// pass and applied during the ordered merge.
struct NodeRecap {
    node: NodeId,
    power: Watts,
    /// `new power − old power`, computed at staging time so the merge
    /// replays the exact float operations of the serial loop.
    delta: Watts,
    rate: f64,
    /// Progress materialized under the *old* rate at the re-cap tick.
    anchor: f64,
}

/// One job's staged re-cap outcome (empty `nodes` = no change).
struct JobRecap {
    cap: Watts,
    cap_changed: bool,
    nodes: Vec<NodeRecap>,
}

/// The simulator.
///
/// The hot path is event-driven: idle/busy node counts, the per-type
/// busy-node usage table, the pending-queue views and the total
/// busy-node power draw are all maintained at state transitions (job
/// start, job completion, re-cap), node progress is evaluated lazily
/// from per-node anchors, and completions pop off a binary heap instead
/// of being detected by per-tick scans. The scheduling and capping
/// stages re-run only when an event or a power-target change invalidates
/// their memoized outcome, so a steady-state tick between events is
/// O(1) — not the 3–4 full node-table walks the naive loop needed, and
/// not even the O(busy nodes) integration pass of the incremental loop.
#[derive(Debug)]
pub struct TabularSim {
    cfg: SimConfig,
    target: PowerTarget,
    scheduler: QueueScheduler,
    nodes: NodeTable,
    jobs: JobTable,
    schedule: VecDeque<JobSubmission>,
    pending: Vec<JobId>,
    /// Scheduler views parallel to `pending` (same order, same length).
    pending_views: Vec<PendingView>,
    running: Vec<JobId>,
    /// Nodes with no job assigned. Invariant: equals a from-scratch
    /// recount of idle rows after every public call.
    idle_count: u32,
    /// Busy nodes per type (indexed by `JobTypeId::index()`). Invariant:
    /// equals a recount over running jobs after every public call.
    type_usage: Vec<u32>,
    /// Sum of node draw over busy nodes (idle nodes draw
    /// `cfg.idle_power` each, accounted separately via `idle_count`).
    busy_power: Watts,
    /// Platform-wide minimum cap (admission floor), cached from the
    /// catalog at construction.
    min_cap: Watts,
    time: Seconds,
    /// Tick counter: `time == tick × cfg.tick` up to float accumulation.
    /// All event scheduling is in tick space, never in float seconds.
    tick: u64,
    events: EventQueue,
    /// The target value observed last tick: a change is the authoritative
    /// re-cap trigger (the heap's `RecapBoundary` entries only bound
    /// fast-forward jumps).
    last_target: Option<Watts>,
    /// Re-run the scheduling stage this tick (an event changed its
    /// inputs).
    sched_dirty: bool,
    /// Re-run the capping stage this tick.
    caps_dirty: bool,
    /// Tick of the earliest outstanding `AdmissionRetry`, if any.
    retry_tick: Option<u64>,
    /// A `JobArrival` wake-up is on the heap for the schedule front.
    arrival_queued: bool,
    /// A `RecapBoundary` wake-up is on the heap for the signal's next
    /// piecewise-constant boundary.
    boundary_queued: bool,
    /// Measured power integrated over every elapsed tick.
    energy: Joules,
    /// Worker pool for the sharded re-cap staging pass (None = serial).
    shards: Option<ExecPool>,
    tracking: TrackingRecorder,
    history: VecDeque<HistoryRow>,
    history_cap: Option<usize>,
    record_history: bool,
    completed: u32,
    measured_power: Watts,
    tracking_frozen: bool,
    instruments: Option<SimInstruments>,
    telemetry: Option<Telemetry>,
    tracer: Option<Tracer>,
    cause: u64,
    observe_pending: bool,
    /// Differential-testing mode: run the legacy per-tick algorithm
    /// (completion scans, unconditional admission/capping recompute)
    /// instead of the event queue and memoization. See
    /// `set_tick_oracle`.
    tick_oracle: bool,
}

impl TabularSim {
    /// Build a simulator. `schedule` must be sorted by submission time.
    /// `weights` are the AQA queue weights (uniform when `None`),
    /// indexed like the catalog.
    pub fn new(
        cfg: SimConfig,
        target: PowerTarget,
        variation: &PerformanceVariation,
        schedule: Vec<JobSubmission>,
        weights: Option<Vec<f64>>,
    ) -> Self {
        assert!(cfg.total_nodes > 0, "cluster needs nodes");
        for &id in &cfg.types {
            assert!(
                cfg.catalog[id].nodes <= cfg.total_nodes,
                "{} needs more nodes than the cluster has",
                cfg.catalog[id].name
            );
        }
        let tdp = cfg
            .catalog
            .iter()
            .next()
            .map_or(Watts(280.0), |t| t.cap_range.max);
        let min_cap = cfg
            .catalog
            .iter()
            .next()
            .map_or(Watts(140.0), |t| t.cap_range.min);
        let nodes = NodeTable::build(cfg.total_nodes, tdp, cfg.idle_power, |i| variation.coeff(i));
        let scheduler = QueueScheduler::new(
            weights.unwrap_or_else(|| vec![1.0; cfg.catalog.len()]),
            cfg.total_nodes,
        );
        let reserve = target.reserve.max(Watts(1.0));
        TabularSim {
            scheduler,
            nodes,
            jobs: JobTable::new(),
            schedule: schedule.into(),
            pending: Vec::new(),
            pending_views: Vec::new(),
            running: Vec::new(),
            idle_count: cfg.total_nodes,
            type_usage: vec![0; cfg.catalog.len()],
            busy_power: Watts::ZERO,
            min_cap,
            time: Seconds::ZERO,
            tick: 0,
            events: EventQueue::new(),
            last_target: None,
            sched_dirty: false,
            caps_dirty: false,
            retry_tick: None,
            arrival_queued: false,
            boundary_queued: false,
            energy: Joules::ZERO,
            shards: None,
            tracking: TrackingRecorder::new(reserve),
            history: VecDeque::new(),
            history_cap: None,
            record_history: false,
            completed: 0,
            measured_power: Watts::ZERO,
            tracking_frozen: false,
            instruments: None,
            telemetry: None,
            tracer: None,
            cause: 0,
            observe_pending: false,
            tick_oracle: false,
            cfg,
            target,
        }
    }

    /// Report per-tick wall time (`sim_tick_seconds`), table sizes
    /// (`sim_jobs_rows`, `sim_pending_jobs`, `sim_running_jobs`,
    /// `sim_history_rows`) and measured power (`sim_measured_watts`)
    /// into `telemetry`. The tracking-error stream is attached too.
    pub fn attach_telemetry(&mut self, telemetry: &Telemetry) {
        self.instruments = Some(SimInstruments {
            tick: telemetry.histogram("sim_tick_seconds", &[]),
            jobs_rows: telemetry.gauge("sim_jobs_rows", &[]),
            pending_jobs: telemetry.gauge("sim_pending_jobs", &[]),
            running_jobs: telemetry.gauge("sim_running_jobs", &[]),
            history_rows: telemetry.gauge("sim_history_rows", &[]),
            measured_watts: telemetry.gauge("sim_measured_watts", &[]),
        });
        self.tracking.attach_telemetry(telemetry);
        self.telemetry = Some(telemetry.clone());
    }

    /// Record causal trace events into `tracer`: a `decision` each tick
    /// the capping stage changes at least one job's cap, an `msr_write`
    /// per re-capped job (the table write is the simulator's actuation),
    /// and a `sample_rx` for the first measured-power observation taken
    /// under the new caps. The tabular simulator has no wire, so its
    /// chains never contain `cap_tx`/`cap_rx` hops.
    pub fn attach_tracer(&mut self, tracer: &Tracer) {
        self.tracer = Some(tracer.clone());
    }

    /// Switch the engine into (or out of) *tick-oracle* mode: the
    /// legacy per-tick algorithm — completion scans over every running
    /// job and unconditional admission/capping recomputation each tick —
    /// with the event queue and memoization disabled. The two modes are
    /// required to produce bit-identical trajectories; property tests
    /// drive them in lockstep to prove it. Enable only on a fresh
    /// simulator (events scheduled before the switch would linger).
    #[doc(hidden)]
    pub fn set_tick_oracle(&mut self, on: bool) {
        self.tick_oracle = on;
    }

    /// Shard the capping stage's staging pass across `workers` threads
    /// (`0` = resolve from `ANOR_JOBS` / machine parallelism, `1` =
    /// serial). Staged chunks are a fixed function of the running list
    /// and results merge in submission order, so the simulation is
    /// byte-identical at any worker count; sharding only pays off on
    /// large clusters (≥ ~4k busy nodes).
    pub fn set_recap_shards(&mut self, workers: usize) {
        self.shards = match workers {
            1 => None,
            w => Some(ExecPool::new(w)),
        };
    }

    /// Enable per-tick history retention (off by default to keep long
    /// runs lean). Retention is unbounded; the buffer is pre-sized so
    /// steady-state appends don't reallocate.
    pub fn record_history(&mut self, on: bool) {
        self.record_history = on;
        if on && self.history.capacity() == 0 {
            self.history.reserve(4096);
        }
    }

    /// Enable history retention bounded to the most recent `cap` rows
    /// (a ring buffer: older rows are discarded as new ticks arrive).
    /// `history()` still yields rows in chronological order.
    ///
    /// `cap == 0` fully disables retention: recording stops, buffered
    /// rows are dropped and the buffer is deallocated, so large runs pay
    /// no per-tick history cost at all.
    pub fn record_history_capped(&mut self, cap: usize) {
        if cap == 0 {
            self.record_history = false;
            self.history_cap = None;
            self.history = VecDeque::new();
            return;
        }
        self.record_history = true;
        self.history_cap = Some(cap);
        self.history
            .reserve(cap.saturating_sub(self.history.capacity()));
        while self.history.len() > cap {
            self.history.pop_front();
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> Seconds {
        self.time
    }

    /// Total cluster power during the last tick.
    pub fn measured_power(&self) -> Watts {
        self.measured_power
    }

    /// Measured power integrated over every elapsed tick: the cluster's
    /// total energy consumption so far.
    pub fn energy(&self) -> Joules {
        self.energy
    }

    /// The tracking recorder (error statistics so far).
    pub fn tracking(&self) -> &TrackingRecorder {
        &self.tracking
    }

    /// Replace the power target mid-run (a facility tier re-allocating
    /// the shared envelope, or a new hourly bid taking effect). Tracking
    /// statistics continue against the new target with the original
    /// reserve normalization.
    pub fn set_target(&mut self, target: PowerTarget) {
        self.target = target;
        // Force both policy stages to observe the new target next tick,
        // and let the fast-forward planner re-queue a boundary wake-up
        // for the new signal (a stale queued boundary pops harmlessly).
        self.last_target = None;
        self.boundary_queued = false;
    }

    /// Discard tracking-error history collected so far (e.g. a warm-up
    /// window while the cluster fills; the paper's evaluation starts from
    /// a warm cluster).
    pub fn reset_tracking(&mut self) {
        self.tracking = TrackingRecorder::new(self.target.reserve.max(Watts(1.0)));
        if let Some(t) = &self.telemetry {
            self.tracking.attach_telemetry(t);
        }
    }

    /// Stop recording tracking errors from now on (e.g. during a drain
    /// tail after arrivals stop, when power necessarily decays away from
    /// the target).
    pub fn freeze_tracking(&mut self) {
        self.tracking_frozen = true;
    }

    /// Run with tracking judged only over `[warmup, horizon]`: the
    /// fill-up ramp is discarded and the drain tail is not recorded,
    /// matching how the paper evaluates an in-steady-state hour.
    pub fn run_with_warmup(&mut self, warmup: Seconds, horizon: Seconds, max_drain: Seconds) {
        while self.time.value() < warmup.value() {
            self.step();
        }
        self.reset_tracking();
        while self.time.value() < horizon.value() {
            self.step();
        }
        self.freeze_tracking();
        self.run(horizon, max_drain);
    }

    /// Retained history rows in chronological order (empty unless
    /// enabled). A `VecDeque` because capped retention drops from the
    /// front; it indexes and iterates like a slice.
    pub fn history(&self) -> &VecDeque<HistoryRow> {
        &self.history
    }

    /// All job rows (queued, running and completed), materialized from
    /// the struct-of-arrays table.
    pub fn jobs(&self) -> Vec<JobRow> {
        self.jobs.rows()
    }

    /// Node rows, materialized from the struct-of-arrays table with
    /// progress evaluated at the current tick.
    pub fn nodes(&self) -> Vec<NodeRow> {
        self.nodes.rows(self.tick, self.cfg.tick.value())
    }

    /// FNV-1a fingerprint of the current node and job tables (see
    /// [`crate::table::state_hash`]): a cheap whole-state identity for
    /// determinism checks across worker counts and repeat runs.
    pub fn state_hash(&self) -> u64 {
        state_hash(&self.nodes(), &self.jobs())
    }

    /// Incrementally-maintained count of idle nodes. Always equals
    /// `self.nodes().iter().filter(|n| n.is_idle()).count()`; the
    /// property tests assert this invariant under random schedules.
    pub fn idle_nodes(&self) -> u32 {
        self.idle_count
    }

    /// Incrementally-maintained busy-node count per type (indexed like
    /// the catalog). Always equals a recount over running jobs.
    pub fn type_usage(&self) -> &[u32] {
        &self.type_usage
    }

    /// The incrementally-maintained cluster power aggregate as of the
    /// latest table state (unlike [`measured_power`](Self::measured_power),
    /// which is the start-of-tick snapshot the tracking loop observes).
    /// Always equals the sum of node draw over the node table, modulo
    /// float rounding; the property tests assert this invariant.
    pub fn aggregate_power(&self) -> Watts {
        self.cfg.idle_power * self.idle_count as f64 + self.busy_power
    }

    /// Advance one tick: drain the events due at it, then run exactly
    /// the stages those events invalidated (all stages, in the legacy
    /// order, when anything is dirty; nearly none on a quiet tick).
    pub fn step(&mut self) {
        let tick_start = self.instruments.as_ref().map(|_| Instant::now());
        let dt = self.cfg.tick;
        self.time += dt;
        self.tick += 1;
        // --- Stage 1: node update. Idle nodes draw constant idle power
        // and a busy node's draw only changes when its cap does, so
        // measured power is an O(1) read of the maintained aggregates.
        let measured = self.cfg.idle_power * self.idle_count as f64 + self.busy_power;
        self.measured_power = measured;
        self.energy += measured * dt;
        if self.observe_pending {
            self.observe_pending = false;
            if let Some(t) = &self.tracer {
                t.record_full(
                    TraceStage::SampleRx,
                    CauseId(self.cause),
                    None,
                    Some(measured.value()),
                    None,
                );
            }
        }
        // Drain events due at this tick. Completions are validated
        // against the job's generation (a re-cap since scheduling makes
        // the event stale) and stamped due, then processed below in
        // running order — the same order the legacy per-tick scan used.
        let mut completions_due = false;
        if self.tick_oracle {
            // Oracle mode: the legacy per-tick completion scan instead
            // of the event queue (`running` is swapped out so the scan
            // can stamp jobs due without aliasing the list).
            let running = std::mem::take(&mut self.running);
            for &job_id in &running {
                if self.job_done_now(job_id) {
                    self.jobs.mark_due(job_id, self.tick);
                    completions_due = true;
                }
            }
            self.running = running;
        }
        while let Some(ev) = self.events.pop_due(self.tick) {
            match ev {
                Event::JobCompletion { job, gen } => {
                    if self.jobs.gen(job) == gen && self.jobs.is_running(job) {
                        if self.job_done_now(job) {
                            self.jobs.mark_due(job, self.tick);
                            completions_due = true;
                        } else {
                            // Checks are conservative-early (scheduled
                            // where the headroom rate estimate crosses
                            // 1.0): not done yet means re-arm from
                            // current progress. The sequence of checks
                            // is strictly increasing and lands on the
                            // exact completion tick.
                            self.schedule_completion(job);
                        }
                    }
                }
                Event::JobArrival => self.arrival_queued = false,
                Event::RecapBoundary => self.boundary_queued = false,
                Event::AdmissionRetry => {
                    self.retry_tick = None;
                    self.sched_dirty = true;
                }
            }
        }
        if completions_due {
            let running = std::mem::take(&mut self.running);
            let mut still_running = Vec::with_capacity(running.len());
            for &job_id in &running {
                if self.jobs.is_due(job_id, self.tick) {
                    self.jobs.set_end(job_id, self.time);
                    let type_id = self.jobs.type_id(job_id);
                    let n_nodes = self.jobs.node_count(job_id);
                    self.type_usage[type_id.index()] =
                        self.type_usage[type_id.index()].saturating_sub(n_nodes);
                    self.idle_count += n_nodes;
                    for &n in self.jobs.nodes_of(job_id) {
                        self.busy_power -= self.nodes.power(n);
                    }
                    for &n in self.jobs.nodes_of(job_id) {
                        self.nodes.release(n, self.cfg.idle_power, self.tick);
                    }
                    self.completed += 1;
                } else {
                    still_running.push(job_id);
                }
            }
            self.running = still_running;
            if self.running.is_empty() {
                // Re-anchor the float aggregate whenever the cluster
                // drains so incremental add/sub rounding can never
                // accumulate.
                self.busy_power = Watts::ZERO;
            }
            self.sched_dirty = true;
            self.caps_dirty = true;
        }
        // --- Stage 2: cluster view. A target-value change is the
        // authoritative re-cap trigger; the heap's RecapBoundary entries
        // only bound fast-forward jumps.
        let target_now = self.target.at(self.time);
        if !self.tracking_frozen {
            self.tracking.push(target_now, measured);
        }
        if self.last_target != Some(target_now) {
            self.last_target = Some(target_now);
            self.sched_dirty = true;
            self.caps_dirty = true;
        }
        // Admit arrivals (the scheduler view is maintained alongside the
        // queue so the policy stage never rebuilds it).
        while self
            .schedule
            .front()
            .is_some_and(|s| s.time.value() <= self.time.value())
        {
            let Some(s) = self.schedule.pop_front() else {
                break; // front() just matched, but never panic the tick
            };
            let id = self.jobs.push_queued(s.type_id, s.time);
            self.pending.push(id);
            self.pending_views.push(PendingView {
                type_id: s.type_id,
                nodes: self.cfg.catalog[s.type_id].nodes,
                submit: s.time,
            });
            self.sched_dirty = true;
        }
        // --- Stage 3: schedule jobs, then cap power (effective next
        // tick). Both are pure functions of state that only events
        // change, so they re-run only when an event invalidated their
        // memoized outcome — except the QoS-aware policy, whose at-risk
        // inputs drift with time itself.
        if self.tick_oracle {
            self.sched_dirty = true;
            self.caps_dirty = true;
        }
        if self.sched_dirty {
            self.sched_dirty = false;
            self.schedule_jobs(target_now);
        }
        if self.caps_dirty || self.cfg.policy.per_tick_recompute() {
            self.caps_dirty = false;
            self.cap_power(target_now);
        }
        // --- Stage 4: history append.
        if self.record_history {
            if let Some(cap) = self.history_cap {
                if self.history.len() >= cap {
                    self.history.pop_front();
                }
            }
            self.history.push_back(HistoryRow {
                time: self.time,
                target: target_now,
                measured,
                busy_nodes: self.cfg.total_nodes - self.idle_count,
                pending_jobs: self.pending.len() as u32,
                running_jobs: self.running.len() as u32,
                completed_jobs: self.completed,
            });
        }
        if let Some(i) = &self.instruments {
            i.jobs_rows.set(self.jobs.len() as f64);
            i.pending_jobs.set(self.pending.len() as f64);
            i.running_jobs.set(self.running.len() as f64);
            i.history_rows.set(self.history.len() as f64);
            i.measured_watts.set(measured.value());
            if let Some(start) = tick_start {
                i.tick.observe(start.elapsed().as_secs_f64());
            }
        }
    }

    /// The wall-clock of the next thing the engine knows will happen (a
    /// queued event, the next arrival, the signal's next boundary), no
    /// earlier than one tick from now. Advisory — wake-up estimates are
    /// deliberately conservative-early — and `None` on a fully quiescent
    /// simulator. Pass it to [`run_to`](Self::run_to) for event-paced
    /// stepping.
    pub fn next_event_time(&self) -> Option<Seconds> {
        let dtv = self.cfg.tick.value();
        let floor = self.time.value() + dtv;
        let mut next: Option<f64> = self
            .events
            .next_tick()
            .map(|k| self.time.value() + dtv * k.saturating_sub(self.tick) as f64);
        if let Some(s) = self.schedule.front() {
            let t = s.time.value().max(floor);
            next = Some(next.map_or(t, |n| n.min(t)));
        }
        if let Some(b) = self.target.signal.next_change_after(self.time) {
            let t = b.value().max(floor);
            next = Some(next.map_or(t, |n| n.min(t)));
        }
        next.map(Seconds)
    }

    /// Advance to `horizon`, jumping over event-free tick stretches when
    /// nothing observes individual ticks (no tracking, history,
    /// telemetry or tracer, and a policy without per-tick inputs).
    /// Exactly equivalent to `while now < horizon { step() }`: a jumped
    /// tick performs the identical float operations (measured-power
    /// snapshot, energy accumulation) a quiet `step()` would, and any
    /// tick an event *could* touch is stepped normally — arrival and
    /// target-boundary wake-ups are queued conservatively early to bound
    /// every jump.
    pub fn run_to(&mut self, horizon: Seconds) {
        while self.time.value() < horizon.value() {
            if !self.can_fast_forward() {
                self.step();
                continue;
            }
            self.queue_wakeups();
            let limit = self.events.next_tick();
            let dt = self.cfg.tick;
            let measured = self.cfg.idle_power * self.idle_count as f64 + self.busy_power;
            while limit.is_none_or(|k| self.tick + 1 < k) && self.time.value() < horizon.value() {
                self.time += dt;
                self.tick += 1;
                self.measured_power = measured;
                self.energy += measured * dt;
            }
            if self.time.value() < horizon.value() {
                self.step();
            }
        }
    }

    /// May ticks be jumped right now? Requires that no per-tick observer
    /// is attached and both policy stages are memoized-clean.
    fn can_fast_forward(&self) -> bool {
        self.tracking_frozen
            && !self.record_history
            && self.instruments.is_none()
            && self.tracer.is_none()
            && !self.observe_pending
            && !self.sched_dirty
            && !self.caps_dirty
            && !self.tick_oracle
            && !self.cfg.policy.per_tick_recompute()
    }

    /// Queue wake-ups bounding the next fast-forward jump: one for the
    /// schedule front, one for the regulation signal's next
    /// piecewise-constant boundary. Estimates are conservative-early
    /// (an early wake-up is a no-op step; a late one would change
    /// semantics), and each is queued at most once at a time.
    fn queue_wakeups(&mut self) {
        if !self.arrival_queued {
            if let Some(s) = self.schedule.front() {
                let k = self.tick_for_time(s.time);
                self.events.push(k, Event::JobArrival);
                self.arrival_queued = true;
            }
        }
        if !self.boundary_queued {
            if let Some(b) = self.target.signal.next_change_after(self.time) {
                let k = self.tick_for_time(b);
                self.events.push(k, Event::RecapBoundary);
                self.boundary_queued = true;
            }
        }
    }

    /// A tick at or before the one where simulated time first reaches
    /// `t`, never earlier than the next tick. Conservative-early by a
    /// full tick so float accumulation in `time` can never make a
    /// wake-up land *after* the moment it guards.
    fn tick_for_time(&self, t: Seconds) -> u64 {
        let dtv = self.cfg.tick.value();
        let ahead = t.value() - self.time.value();
        let measurable = ahead > 0.0 && dtv > 0.0; // NaN falls through to +1
        if !measurable {
            return self.tick + 1;
        }
        let steps = (ahead / dtv).floor() - 1.0;
        if steps >= 1.0 && steps.is_finite() {
            self.tick + steps as u64
        } else {
            self.tick + 1
        }
    }

    /// Are all of the job's nodes at full progress as of this tick?
    fn job_done_now(&self, job_id: JobId) -> bool {
        let dtv = self.cfg.tick.value();
        self.jobs
            .nodes_of(job_id)
            .iter()
            .all(|&n| self.nodes.progress_at_tick(n, self.tick, dtv) >= 1.0)
    }

    /// Headroom factor for completion-check scheduling: checks are
    /// scheduled as if each node ran this much faster than it currently
    /// does (clamped to the type's uncapped maximum). Larger values mean
    /// earlier, more frequent checks but fewer re-cap reschedules;
    /// smaller values the reverse. 2× halves the remaining work between
    /// consecutive checks, so a job of any length costs O(log ticks)
    /// checks while rate increases below 2× stay reschedule-free.
    const CHECK_RATE_HEADROOM: f64 = 2.0;

    /// Schedule the job's next completion *check*: the earliest tick at
    /// which every node could have crossed full progress running at a
    /// conservative rate ceiling — `CHECK_RATE_HEADROOM ×` its current
    /// rate, clamped to the uncapped maximum for its type and
    /// performance coefficient. The ceiling is recorded per node; as
    /// long as actual rates stay at or below it, the check can only land
    /// early (never after the true completion tick), so re-caps leave
    /// the queue untouched unless they push a node's rate above its
    /// recorded ceiling — then `apply_recap` reschedules and the
    /// generation stamp invalidates the superseded event. An early check
    /// simply finds the job unfinished and re-arms; the check sequence
    /// is strictly increasing and lands exactly on the completion tick.
    fn schedule_completion(&mut self, job_id: JobId) {
        if self.tick_oracle {
            return;
        }
        let spec = &self.cfg.catalog[self.jobs.type_id(job_id)];
        let dtv = self.cfg.tick.value();
        let mut due = self.tick + 1;
        self.jobs.bump_gen(job_id);
        for &n in self.jobs.nodes_of(job_id) {
            let rate_max = progress_rate(spec, spec.cap_range.max, self.nodes.perf_coeff(n));
            let rate_est = (self.nodes.rate(n) * Self::CHECK_RATE_HEADROOM).min(rate_max);
            self.nodes.set_rate_est(n, rate_est);
            let progress = self.nodes.progress_at_tick(n, self.tick, dtv);
            let Some(k) = crossing_ticks(progress, rate_est, dtv) else {
                return;
            };
            due = due.max(self.tick.saturating_add(k));
        }
        self.events.push(
            due,
            Event::JobCompletion {
                job: job_id,
                gen: self.jobs.gen(job_id),
            },
        );
    }

    /// Queue wait at which a pending job must start regardless of power.
    fn forced_start_wait(&self, type_id: JobTypeId) -> f64 {
        let spec = &self.cfg.catalog[type_id];
        self.cfg.qos_risk_threshold * self.cfg.qos.limit * spec.time_uncapped.value()
    }

    /// Wake the scheduling stage when the power-blocked queue head's
    /// forced-start wait will cross its threshold — the one admission
    /// input that changes with time alone. The estimate is
    /// conservative-early; a premature wake-up re-evaluates exactly and
    /// re-arms. Only the earliest outstanding retry is kept.
    fn queue_admission_retry(&mut self, job_id: JobId, type_id: JobTypeId) {
        if self.tick_oracle {
            return;
        }
        let cross = self.jobs.submit(job_id).value() + self.forced_start_wait(type_id);
        let k = self.tick_for_time(Seconds(cross));
        if self.retry_tick.is_none_or(|r| k < r) {
            self.events.push(k, Event::AdmissionRetry);
            self.retry_tick = Some(k);
        }
    }

    fn schedule_jobs(&mut self, target_now: Watts) {
        // Admission rule: a job may start if the cluster could still be
        // capped down to the current target afterwards — i.e. with every
        // busy node at the platform's minimum cap. Anything above that is
        // absorbed by the capping stage, so admission never blocks a
        // reachable target (the paper's "high degree of power sharing"),
        // while a genuinely low target defers scheduling (AQA's primary
        // power lever, Section 6.4). The idle count, per-type usage and
        // pending views are maintained incrementally, so one admission
        // attempt costs the scheduler's O(pending) selection — not a
        // rebuild of every table.
        let min_cap = self.min_cap;
        loop {
            let idle = self.idle_count;
            if idle == 0 || self.pending.is_empty() {
                return;
            }
            let Some(pick) = self
                .scheduler
                .select(&self.pending_views, &self.type_usage, idle)
            else {
                return;
            };
            let job_id = self.pending[pick];
            let type_id = self.jobs.type_id(job_id);
            let spec = &self.cfg.catalog[type_id];
            let busy_after = (self.cfg.total_nodes - self.idle_count) + spec.nodes;
            let idle_after = self.cfg.total_nodes - busy_after;
            let floor_after = min_cap * busy_after as f64 + self.cfg.idle_power * idle_after as f64;
            let wait = (self.time - self.jobs.submit(job_id)).value();
            let forced = wait >= self.forced_start_wait(type_id);
            if !forced && floor_after.value() > target_now.value() {
                // Refrain from scheduling (primary power lever). The
                // selection is time-independent, so only the forced-start
                // clock can change this outcome without an event: arm it.
                self.queue_admission_retry(job_id, type_id);
                return;
            }
            // Start the job on the first idle nodes. The node keeps its
            // previous cap until this tick's capping stage reassigns it,
            // so draw and progress rate are seeded from that cap.
            let mut assigned = Vec::with_capacity(spec.nodes as usize);
            let found = self.nodes.collect_idle(spec.nodes as usize, &mut assigned);
            debug_assert_eq!(found, spec.nodes as usize);
            let mut started_power = Watts::ZERO;
            for &n in &assigned {
                let power = node_power(spec, self.nodes.cap(n));
                let rate = progress_rate(spec, self.nodes.cap(n), self.nodes.perf_coeff(n));
                self.nodes.assign(n, job_id, power, rate, self.tick);
                started_power += power;
            }
            self.idle_count -= assigned.len() as u32;
            self.type_usage[type_id.index()] += assigned.len() as u32;
            self.busy_power += started_power;
            self.jobs.set_started(job_id, self.time, &assigned);
            self.pending.remove(pick);
            self.pending_views.remove(pick);
            self.running.push(job_id);
            self.schedule_completion(job_id);
            self.caps_dirty = true;
        }
    }

    /// Is a running job at risk of blowing its QoS limit if slowed
    /// further? Projected from nominal remaining time at full power.
    fn job_at_risk(&self, job_id: JobId) -> bool {
        let spec = &self.cfg.catalog[self.jobs.type_id(job_id)];
        let dtv = self.cfg.tick.value();
        let min_progress = self
            .jobs
            .nodes_of(job_id)
            .iter()
            .map(|&n| self.nodes.progress_at_tick(n, self.tick, dtv))
            .fold(1.0f64, f64::min);
        let remaining = (1.0 - min_progress) * spec.time_uncapped.value();
        let projected_sojourn = (self.time - self.jobs.submit(job_id)).value() + remaining;
        let q = projected_sojourn / spec.time_uncapped.value() - 1.0;
        q >= self.cfg.qos_risk_threshold * self.cfg.qos.limit
    }

    /// Stage one job's re-cap: pure reads only, so shard workers can run
    /// this concurrently over disjoint chunks. Deltas and re-anchored
    /// progress are computed here exactly as the serial loop would, and
    /// applied later in submission order.
    fn stage_recap(&self, job_id: JobId, cap: Watts) -> JobRecap {
        let spec = &self.cfg.catalog[self.jobs.type_id(job_id)];
        let dtv = self.cfg.tick.value();
        let was = self
            .jobs
            .nodes_of(job_id)
            .first()
            .map(|&n| self.nodes.cap(n));
        let mut staged = Vec::new();
        // Re-cap is the state transition that invalidates a node's
        // cached draw and progress rate (nodes of one job can carry
        // different stale caps right after a start).
        for &n in self.jobs.nodes_of(job_id) {
            if self.nodes.cap(n) != cap {
                let power = node_power(spec, cap);
                staged.push(NodeRecap {
                    node: n,
                    power,
                    delta: power - self.nodes.power(n),
                    rate: progress_rate(spec, cap, self.nodes.perf_coeff(n)),
                    anchor: self.nodes.progress_at_tick(n, self.tick, dtv),
                });
            }
        }
        JobRecap {
            cap,
            cap_changed: was != Some(cap),
            nodes: staged,
        }
    }

    /// Apply one staged re-cap: update the power aggregate by the
    /// per-node delta and re-anchor the node under its new rate. The
    /// job's outstanding completion check stays valid as long as every
    /// node's rate stays at or below the ceiling the check was scheduled
    /// against; a re-cap that crosses a ceiling reschedules (the common
    /// case — rates wandering below their ceilings — is heap-free).
    fn apply_recap(&mut self, job_id: JobId, recap: &JobRecap, changed: &mut Vec<(JobId, Watts)>) {
        if recap.cap_changed {
            changed.push((job_id, recap.cap));
        }
        let mut ceiling_crossed = false;
        for u in &recap.nodes {
            self.busy_power += u.delta;
            ceiling_crossed |= u.rate > self.nodes.rate_est(u.node);
            self.nodes
                .recap(u.node, recap.cap, u.power, u.rate, u.anchor, self.tick);
        }
        if ceiling_crossed {
            self.schedule_completion(job_id);
        }
    }

    /// The shard pool, when sharding the staging pass is worthwhile.
    fn recap_pool(&self, running: &[JobId]) -> Option<&ExecPool> {
        let busy = (self.cfg.total_nodes - self.idle_count) as usize;
        self.shards
            .as_ref()
            .filter(|p| p.jobs() > 1 && running.len() > 1 && busy >= RECAP_SHARD_MIN_NODES)
    }

    fn cap_power(&mut self, target_now: Watts) {
        let busy_budget =
            (target_now - self.cfg.idle_power * self.idle_count as f64).max(Watts::ZERO);
        if self.running.is_empty() {
            return;
        }
        let qos_aware = self.cfg.policy.per_tick_recompute();
        let mut job_views = Vec::with_capacity(self.running.len());
        let mut at_risk = Vec::with_capacity(self.running.len());
        for &job_id in &self.running {
            let spec = &self.cfg.catalog[self.jobs.type_id(job_id)];
            let mut view = JobView::from_spec(job_id, spec);
            view.nodes = self.jobs.node_count(job_id);
            job_views.push(view);
            // At-risk projection is only computed for the policy that
            // reads it; the others ignore the vector entirely.
            at_risk.push(qos_aware && self.job_at_risk(job_id));
        }
        let caps = self.cfg.policy.assign(busy_budget, &job_views, &at_risk);
        let running = std::mem::take(&mut self.running);
        // Stage (possibly sharded: pure reads over fixed chunks), then
        // merge in submission order — the merged float-operation
        // sequence is identical to the serial loop's at any worker
        // count.
        let recaps: Vec<JobRecap> = if let Some(pool) = self.recap_pool(&running) {
            let work: Vec<(JobId, Watts)> =
                running.iter().copied().zip(caps.iter().copied()).collect();
            let chunks: Vec<&[(JobId, Watts)]> = work.chunks(RECAP_SHARD_CHUNK).collect();
            pool.map(&chunks, |chunk| {
                chunk
                    .iter()
                    .map(|&(j, c)| self.stage_recap(j, c))
                    .collect::<Vec<JobRecap>>()
            })
            .into_iter()
            .flatten()
            .collect()
        } else {
            running
                .iter()
                .zip(&caps)
                .map(|(&j, &c)| self.stage_recap(j, c))
                .collect()
        };
        let mut changed: Vec<(JobId, Watts)> = Vec::new();
        for (&job_id, recap) in running.iter().zip(&recaps) {
            self.apply_recap(job_id, recap, &mut changed);
        }
        self.running = running;
        if changed.is_empty() {
            return;
        }
        if let Some(t) = self.tracer.clone() {
            let cause = t.next_cause();
            self.cause = cause.0;
            self.observe_pending = true;
            t.record_full(
                TraceStage::Decision,
                cause,
                None,
                Some(busy_budget.value()),
                Some(format!("{} cap(s) changed", changed.len())),
            );
            for (job_id, cap) in &changed {
                t.record_job(TraceStage::MsrWrite, cause, job_id.0, Some(cap.value()));
            }
        }
    }

    /// Run until `horizon`, then keep stepping (up to `max_drain` more)
    /// until every submitted job completes.
    pub fn run(&mut self, horizon: Seconds, max_drain: Seconds) {
        while self.time.value() < horizon.value() {
            self.step();
        }
        let drain_end = horizon + max_drain;
        while (self.completed as usize) < self.jobs.len() + self.schedule.len()
            && !self.schedule.is_empty()
        {
            // Arrivals beyond the horizon are still admitted so the
            // accounting stays consistent.
            if self.time.value() >= drain_end.value() {
                break;
            }
            self.step();
        }
        while self.completed as usize != self.jobs.len() && self.time.value() < drain_end.value() {
            self.step();
        }
    }

    /// Summarize the run.
    ///
    /// Each call increments `sim_qos_rows_dropped_total` by the number of
    /// completed rows whose type has no `cfg.types` slot (also reported
    /// in [`SimOutcome::dropped`]), when telemetry is attached.
    pub fn outcome(&self) -> SimOutcome {
        let mut qos_by_type: Vec<(JobTypeId, Vec<QosDegradation>)> =
            self.cfg.types.iter().map(|&id| (id, Vec::new())).collect();
        // Type-indexed slot lookup instead of a linear scan per row.
        let mut slot_of: Vec<Option<usize>> = vec![None; self.cfg.catalog.len()];
        for (slot, &id) in self.cfg.types.iter().enumerate() {
            if let Some(s) = slot_of.get_mut(id.index()) {
                *s = Some(slot);
            }
        }
        let mut unfinished = 0;
        let mut dropped: u32 = 0;
        for j in 0..self.jobs.len() as u64 {
            let id = JobId(j);
            let type_id = self.jobs.type_id(id);
            let qos = self.jobs.end(id).map(|end| {
                QosDegradation::from_timestamps(
                    self.jobs.submit(id),
                    end,
                    self.cfg.catalog[type_id].time_uncapped,
                )
            });
            match qos {
                Some(q) => {
                    let slot = slot_of.get(type_id.index()).copied().flatten();
                    match slot.and_then(|s| qos_by_type.get_mut(s)) {
                        Some((_, qs)) => qs.push(q),
                        None => dropped += 1,
                    }
                }
                None => unfinished += 1,
            }
        }
        if dropped > 0 {
            if let Some(t) = &self.telemetry {
                t.counter("sim_qos_rows_dropped_total", &[])
                    .add(dropped as u64);
            }
        }
        SimOutcome {
            qos_by_type,
            completed: self.completed,
            unfinished,
            dropped,
            tracking_p90: self.tracking.percentile_error(90.0),
            tracking_within_30: self.tracking.fraction_within(0.30),
            energy: self.energy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anor_aqa::{poisson_schedule, RegulationSignal};
    use anor_types::standard_catalog;

    /// A small 16-node cluster config for fast tests.
    fn small_cfg(policy: SimPowerPolicy) -> SimConfig {
        let catalog = standard_catalog();
        let types = catalog.long_running();
        SimConfig {
            total_nodes: 16,
            idle_power: Watts(90.0),
            catalog,
            types,
            tick: Seconds(1.0),
            policy,
            qos: QosConstraint::default(),
            qos_risk_threshold: 0.8,
        }
    }

    fn flat_target(watts: f64) -> PowerTarget {
        PowerTarget {
            avg: Watts(watts),
            reserve: Watts(watts * 0.25),
            signal: RegulationSignal::Constant(0.0),
        }
    }

    fn quick_schedule(
        cfg: &SimConfig,
        utilization: f64,
        horizon: f64,
        seed: u64,
    ) -> Vec<JobSubmission> {
        poisson_schedule(
            &cfg.catalog,
            &cfg.types,
            utilization,
            cfg.total_nodes,
            Seconds(horizon),
            seed,
        )
    }

    #[test]
    fn idle_cluster_draws_idle_power() {
        let cfg = small_cfg(SimPowerPolicy::Uniform);
        let mut sim = TabularSim::new(
            cfg,
            flat_target(4000.0),
            &PerformanceVariation::none(16),
            vec![],
            None,
        );
        sim.step();
        assert_eq!(sim.measured_power(), Watts(16.0 * 90.0));
        assert_eq!(sim.jobs().len(), 0);
    }

    #[test]
    fn jobs_get_scheduled_run_and_complete() {
        let cfg = small_cfg(SimPowerPolicy::Uniform);
        let sched = vec![
            JobSubmission {
                time: Seconds(0.0),
                type_id: cfg.catalog.find("mg").unwrap().id,
            },
            JobSubmission {
                time: Seconds(5.0),
                type_id: cfg.catalog.find("cg").unwrap().id,
            },
        ];
        let mut sim = TabularSim::new(
            cfg,
            flat_target(4500.0),
            &PerformanceVariation::none(16),
            sched,
            None,
        );
        sim.run(Seconds(600.0), Seconds(600.0));
        let out = sim.outcome();
        assert_eq!(out.completed, 2);
        assert_eq!(out.unfinished, 0);
        // Uncapped and unqueued: QoS degradation near zero.
        for (_, qs) in &out.qos_by_type {
            for q in qs {
                assert!(q.degradation() < 0.2, "Q = {}", q.degradation());
            }
        }
    }

    #[test]
    fn completion_time_matches_linear_model() {
        let cfg = small_cfg(SimPowerPolicy::Uniform);
        let mg = cfg.catalog.find("mg").unwrap().id;
        let sched = vec![JobSubmission {
            time: Seconds(0.0),
            type_id: mg,
        }];
        let mut sim = TabularSim::new(
            cfg,
            flat_target(4500.0),
            &PerformanceVariation::none(16),
            sched,
            None,
        );
        sim.run(Seconds(400.0), Seconds(0.0));
        let jobs = sim.jobs();
        let row = &jobs[0];
        assert!(row.is_done());
        // mg runs 120 s uncapped; allow tick quantization + start latency.
        let elapsed = (row.end.unwrap() - row.start.unwrap()).value();
        assert!((elapsed - 120.0).abs() <= 3.0, "elapsed {elapsed}");
    }

    #[test]
    fn tight_target_defers_scheduling() {
        let cfg = small_cfg(SimPowerPolicy::Uniform);
        let bt = cfg.catalog.find("bt").unwrap().id;
        let sched = vec![
            JobSubmission {
                time: Seconds(0.0),
                type_id: bt,
            },
            JobSubmission {
                time: Seconds(1.0),
                type_id: bt,
            },
            JobSubmission {
                time: Seconds(2.0),
                type_id: bt,
            },
        ];
        // Admission floor: idle 16×90 = 1440 W; each busy node adds at
        // least 50 W (140 W min cap vs 90 W idle). A 1600 W target admits
        // only one 2-node BT (a second would need 1440 + 4×50 = 1640 W).
        let mut sim = TabularSim::new(
            cfg,
            flat_target(1600.0),
            &PerformanceVariation::none(16),
            sched,
            None,
        );
        for _ in 0..30 {
            sim.step();
        }
        let running = sim.jobs().iter().filter(|j| j.is_running()).count();
        let pending = sim.jobs().iter().filter(|j| j.is_pending()).count();
        assert!(running >= 1, "at least one job runs");
        assert!(pending >= 1, "the power target must defer some jobs");
    }

    #[test]
    fn starved_jobs_eventually_force_start() {
        let mut cfg = small_cfg(SimPowerPolicy::Uniform);
        cfg.qos_risk_threshold = 0.01; // force-start almost immediately
        let mg = cfg.catalog.find("mg").unwrap().id;
        let sched = vec![JobSubmission {
            time: Seconds(0.0),
            type_id: mg,
        }];
        // Target below idle power: no job would ever be admissible.
        let mut sim = TabularSim::new(
            cfg,
            flat_target(1000.0),
            &PerformanceVariation::none(16),
            sched,
            None,
        );
        sim.run(Seconds(300.0), Seconds(300.0));
        assert_eq!(sim.outcome().completed, 1, "QoS forcing must admit the job");
    }

    #[test]
    fn performance_variation_degrades_qos() {
        let run = |sigma: f64, seed: u64| -> f64 {
            let cfg = small_cfg(SimPowerPolicy::Uniform);
            let sched = quick_schedule(&cfg, 0.75, 2400.0, seed);
            let variation = PerformanceVariation::with_sigma(16, sigma, seed ^ 0xfeed);
            let mut sim =
                TabularSim::new(cfg.clone(), flat_target(4200.0), &variation, sched, None);
            sim.run(Seconds(2400.0), Seconds(2400.0));
            let out = sim.outcome();
            let all: Vec<QosDegradation> = out
                .qos_by_type
                .iter()
                .flat_map(|(_, qs)| qs.iter().copied())
                .collect();
            cfg.qos.percentile_degradation(&all).unwrap_or(0.0)
        };
        // Average over a few seeds to tame scheduling noise.
        let q_none: f64 = (0..3).map(|s| run(0.0, s)).sum::<f64>() / 3.0;
        let q_heavy: f64 = (0..3).map(|s| run(0.25, s)).sum::<f64>() / 3.0;
        assert!(
            q_heavy > q_none,
            "variation must worsen QoS: {q_heavy} vs {q_none}"
        );
    }

    #[test]
    fn tracking_error_recorded_every_tick() {
        let cfg = small_cfg(SimPowerPolicy::Uniform);
        let mut sim = TabularSim::new(
            cfg,
            flat_target(2000.0),
            &PerformanceVariation::none(16),
            vec![],
            None,
        );
        for _ in 0..50 {
            sim.step();
        }
        assert_eq!(sim.tracking().len(), 50);
        // Idle cluster draws 1440 W vs the 2000 W target: error = 560/500.
        let e = sim.tracking().mean_error();
        assert!((e - 560.0 / 500.0).abs() < 1e-9, "error {e}");
    }

    #[test]
    fn history_recording_is_optional_and_complete() {
        let cfg = small_cfg(SimPowerPolicy::Uniform);
        let mut sim = TabularSim::new(
            cfg,
            flat_target(2000.0),
            &PerformanceVariation::none(16),
            vec![],
            None,
        );
        for _ in 0..5 {
            sim.step();
        }
        assert!(sim.history().is_empty());
        sim.record_history(true);
        for _ in 0..5 {
            sim.step();
        }
        assert_eq!(sim.history().len(), 5);
        assert_eq!(sim.history()[0].busy_nodes, 0);
    }

    #[test]
    fn multi_node_job_waits_for_slowest_node() {
        let cfg = small_cfg(SimPowerPolicy::Uniform);
        let ft = cfg.catalog.find("ft").unwrap().id; // 2 nodes, 180 s
        let sched = vec![JobSubmission {
            time: Seconds(0.0),
            type_id: ft,
        }];
        // Node 1 is 1.5x slower than node 0.
        let mut coeffs = PerformanceVariation::none(16);
        // Build a variation with one slow node via with_sigma replacement:
        // simplest is to construct nodes manually through the public API.
        let mut sim = TabularSim::new(cfg, flat_target(4500.0), &coeffs, sched.clone(), None);
        sim.run(Seconds(400.0), Seconds(0.0));
        let nominal = (sim.jobs()[0].end.unwrap() - sim.jobs()[0].start.unwrap()).value();
        // Now the same run with heavy variation: completion gated by the
        // slowest assigned node, so it takes at least as long.
        coeffs = PerformanceVariation::with_sigma(16, 0.3, 99);
        let worst = coeffs.iter().take(2).fold(1.0f64, f64::max);
        let mut sim2 = TabularSim::new(
            small_cfg(SimPowerPolicy::Uniform),
            flat_target(4500.0),
            &coeffs,
            sched,
            None,
        );
        sim2.run(Seconds(1000.0), Seconds(500.0));
        let varied = (sim2.jobs()[0].end.unwrap() - sim2.jobs()[0].start.unwrap()).value();
        assert!(
            varied + 2.0 >= nominal * worst.min(1.0),
            "varied {varied} vs nominal {nominal} (worst coeff {worst})"
        );
    }

    #[test]
    fn attached_telemetry_times_ticks_and_tracks_table_sizes() {
        let cfg = small_cfg(SimPowerPolicy::Uniform);
        let mg = cfg.catalog.find("mg").unwrap().id;
        let sched = vec![JobSubmission {
            time: Seconds(0.0),
            type_id: mg,
        }];
        let telemetry = Telemetry::new();
        let mut sim = TabularSim::new(
            cfg,
            flat_target(4500.0),
            &PerformanceVariation::none(16),
            sched,
            None,
        );
        sim.attach_telemetry(&telemetry);
        for _ in 0..20 {
            sim.step();
        }
        assert_eq!(telemetry.histogram("sim_tick_seconds", &[]).count(), 20);
        assert_eq!(telemetry.gauge("sim_jobs_rows", &[]).get(), 1.0);
        assert_eq!(telemetry.gauge("sim_running_jobs", &[]).get(), 1.0);
        // Tracking errors stream into the shared registry too.
        assert_eq!(telemetry.histogram("tracking_error", &[]).count(), 20);
        // reset_tracking keeps streaming into the same histogram.
        sim.reset_tracking();
        sim.step();
        assert_eq!(telemetry.histogram("tracking_error", &[]).count(), 21);
    }

    #[test]
    fn completed_rows_of_unlisted_types_are_counted_not_lost() {
        // A type present in the schedule but absent from cfg.types has
        // no qos_by_type slot; it must surface in `dropped`, not vanish.
        let mut cfg = small_cfg(SimPowerPolicy::Uniform);
        let mg = cfg.catalog.find("mg").unwrap().id;
        let cg = cfg.catalog.find("cg").unwrap().id;
        cfg.types = vec![cg]; // mg completes but has no slot
        let sched = vec![
            JobSubmission {
                time: Seconds(0.0),
                type_id: mg,
            },
            JobSubmission {
                time: Seconds(1.0),
                type_id: cg,
            },
        ];
        let telemetry = Telemetry::new();
        let mut sim = TabularSim::new(
            cfg,
            flat_target(4500.0),
            &PerformanceVariation::none(16),
            sched,
            None,
        );
        sim.attach_telemetry(&telemetry);
        sim.run(Seconds(600.0), Seconds(600.0));
        let out = sim.outcome();
        assert_eq!(out.completed, 2);
        assert_eq!(out.unfinished, 0);
        assert_eq!(out.dropped, 1, "the mg row must be counted as dropped");
        let counted: usize = out.qos_by_type.iter().map(|(_, v)| v.len()).sum();
        assert_eq!(counted, 1, "only the cg row aggregates");
        assert_eq!(
            telemetry.counter("sim_qos_rows_dropped_total", &[]).get(),
            1
        );
    }

    #[test]
    fn capped_history_is_a_chronological_ring() {
        let cfg = small_cfg(SimPowerPolicy::Uniform);
        let mut sim = TabularSim::new(
            cfg,
            flat_target(2000.0),
            &PerformanceVariation::none(16),
            vec![],
            None,
        );
        sim.record_history_capped(3);
        for _ in 0..10 {
            sim.step();
        }
        assert_eq!(sim.history().len(), 3);
        let times: Vec<f64> = sim.history().iter().map(|r| r.time.value()).collect();
        assert_eq!(times, vec![8.0, 9.0, 10.0], "most recent rows, in order");
    }

    #[test]
    fn zero_history_cap_disables_retention_entirely() {
        let cfg = small_cfg(SimPowerPolicy::Uniform);
        let mut sim = TabularSim::new(
            cfg,
            flat_target(2000.0),
            &PerformanceVariation::none(16),
            vec![],
            None,
        );
        sim.record_history_capped(2);
        for _ in 0..5 {
            sim.step();
        }
        assert_eq!(sim.history().len(), 2);
        // cap 0 turns recording off, drops the rows and frees the buffer.
        sim.record_history_capped(0);
        assert!(sim.history().is_empty());
        assert_eq!(sim.history().capacity(), 0, "no per-tick allocation");
        for _ in 0..5 {
            sim.step();
        }
        assert!(sim.history().is_empty());
        assert_eq!(sim.history().capacity(), 0);
    }

    #[test]
    fn incremental_counters_match_recounts_through_a_full_run() {
        let cfg = small_cfg(SimPowerPolicy::EvenSlowdown);
        let sched = quick_schedule(&cfg, 0.8, 600.0, 23);
        let mut sim = TabularSim::new(
            cfg.clone(),
            flat_target(3600.0),
            &PerformanceVariation::with_sigma(16, 0.1, 5),
            sched,
            None,
        );
        for _ in 0..800 {
            sim.step();
            let idle_recount = sim.nodes().iter().filter(|n| n.is_idle()).count() as u32;
            assert_eq!(sim.idle_nodes(), idle_recount);
            let mut usage = vec![0u32; cfg.catalog.len()];
            for job in sim.jobs().iter().filter(|j| j.is_running()) {
                usage[job.type_id.index()] += job.nodes.len() as u32;
            }
            assert_eq!(sim.type_usage(), &usage[..]);
        }
    }

    #[test]
    fn qos_aware_policy_runs_end_to_end() {
        let cfg = small_cfg(SimPowerPolicy::EvenSlowdownQosAware);
        let sched = quick_schedule(&cfg, 0.5, 1200.0, 17);
        let n = sched.len();
        let mut sim = TabularSim::new(
            cfg,
            flat_target(3800.0),
            &PerformanceVariation::with_sigma(16, 0.1, 3),
            sched,
            None,
        );
        sim.run(Seconds(1200.0), Seconds(2400.0));
        let out = sim.outcome();
        assert!(out.completed > 0);
        assert_eq!(out.completed as usize + out.unfinished as usize, n);
    }

    #[test]
    fn run_to_matches_stepping_exactly() {
        // run_to's fast-forward must be bit-identical to plain stepping:
        // same hash, same energy, same outcome — including across an
        // arrival, a trace-signal boundary and completions.
        let build = || {
            let cfg = small_cfg(SimPowerPolicy::EvenSlowdown);
            let sched = quick_schedule(&cfg, 0.6, 900.0, 41);
            let target = PowerTarget {
                avg: Watts(3600.0),
                reserve: Watts(900.0),
                signal: RegulationSignal::random_walk(Seconds(4.0), 0.35, Seconds(1800.0), 7),
            };
            let mut sim = TabularSim::new(
                cfg,
                target,
                &PerformanceVariation::with_sigma(16, 0.1, 9),
                sched,
                None,
            );
            sim.freeze_tracking(); // tracking observes ticks; disable it
            sim
        };
        let mut stepped = build();
        while stepped.now().value() < 1800.0 {
            stepped.step();
        }
        let mut jumped = build();
        jumped.run_to(Seconds(1800.0));
        assert_eq!(jumped.now(), stepped.now());
        assert_eq!(jumped.state_hash(), stepped.state_hash());
        assert_eq!(jumped.energy(), stepped.energy());
        assert_eq!(jumped.measured_power(), stepped.measured_power());
        assert_eq!(jumped.outcome().completed, stepped.outcome().completed);
    }

    #[test]
    fn recap_sharding_is_byte_identical_at_any_worker_count() {
        // Force the sharded staging path by dropping the busy-node
        // threshold condition out of reach is not possible from a test,
        // so use a cluster big enough to cross it: 8192 nodes.
        let catalog = standard_catalog().scale_nodes(8192 / 40);
        let types = catalog.long_running();
        let cfg = SimConfig {
            total_nodes: 8192,
            idle_power: Watts(90.0),
            catalog,
            types,
            tick: Seconds(1.0),
            policy: SimPowerPolicy::EvenSlowdown,
            qos: QosConstraint::default(),
            qos_risk_threshold: 0.8,
        };
        let sched = quick_schedule(&cfg, 0.7, 400.0, 11);
        let target = PowerTarget {
            avg: Watts(8192.0 * 200.0),
            reserve: Watts(8192.0 * 50.0),
            signal: RegulationSignal::random_walk(Seconds(4.0), 0.35, Seconds(800.0), 3),
        };
        let mut hashes = Vec::new();
        for workers in [1usize, 2, 4] {
            let mut sim = TabularSim::new(
                cfg.clone(),
                target.clone(),
                &PerformanceVariation::with_sigma(8192, 0.05, 13),
                sched.clone(),
                None,
            );
            sim.set_recap_shards(workers);
            for _ in 0..400 {
                sim.step();
            }
            hashes.push((workers, sim.state_hash(), sim.energy()));
        }
        assert_eq!(hashes[0].1, hashes[1].1, "1 vs 2 workers");
        assert_eq!(hashes[0].1, hashes[2].1, "1 vs 4 workers");
        assert_eq!(hashes[0].2, hashes[1].2, "energy 1 vs 2 workers");
    }

    #[test]
    fn energy_integrates_measured_power() {
        let cfg = small_cfg(SimPowerPolicy::Uniform);
        let mut sim = TabularSim::new(
            cfg,
            flat_target(2000.0),
            &PerformanceVariation::none(16),
            vec![],
            None,
        );
        for _ in 0..10 {
            sim.step();
        }
        // Idle cluster: 1440 W × 10 s.
        assert_eq!(sim.energy(), Joules(1440.0 * 10.0));
        assert_eq!(sim.outcome().energy, Joules(1440.0 * 10.0));
    }
}
