//! The per-second tabular simulation loop.
//!
//! Section 5.6's update order is followed exactly: "Each simulated
//! second, the simulator updates the state of the node table, then
//! updates the view of the cluster seen by the job scheduler and power
//! manager, then schedules jobs and caps power. The policy updates inputs
//! to the node table that will be processed in the node-update stage of
//! the next time step. Lastly, before starting the next iteration, we
//! append the current state of all tables to a file."
//!
//! Power is steered two ways, as the paper observes of AQA (Section 6.4):
//! primarily by *refraining from scheduling* jobs to idle nodes when
//! starting them would exceed the instantaneous target, and secondarily
//! by capping the nodes of running jobs. Jobs whose queue wait approaches
//! the QoS limit are started regardless of the target, so the power
//! objective cannot starve a job forever.

use crate::history::HistoryRow;
use crate::policy::SimPowerPolicy;
use crate::table::{node_power, progress_rate, JobRow, NodeRow};
use anor_aqa::{JobSubmission, PendingView, PowerTarget, QueueScheduler, TrackingRecorder};
use anor_platform::PerformanceVariation;
use anor_policy::JobView;
use anor_telemetry::{CauseId, Gauge, Histogram, Telemetry, TraceStage, Tracer};
use anor_types::{
    Catalog, JobId, JobTypeId, NodeId, QosConstraint, QosDegradation, Seconds, Watts,
};
use std::collections::VecDeque;
use std::time::Instant;

/// Static configuration of a simulated cluster.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Cluster size (paper: 1000).
    pub total_nodes: u32,
    /// Average idle power per node.
    pub idle_power: Watts,
    /// Job-type catalog (scaled for the cluster size).
    pub catalog: Catalog,
    /// Types admitted to the queues.
    pub types: Vec<JobTypeId>,
    /// Simulation tick (paper: one second).
    pub tick: Seconds,
    /// Power-capping policy.
    pub policy: SimPowerPolicy,
    /// The QoS constraint all types share.
    pub qos: QosConstraint,
    /// Fraction of the QoS limit at which a job is considered at risk
    /// (for forced starts and the QoS-aware capping exemption).
    pub qos_risk_threshold: f64,
}

impl SimConfig {
    /// The paper's 1000-node scenario: the 25×-scaled catalog, 6
    /// long-running types, 1 s ticks, Q ≤ 5 at 90%.
    pub fn paper_1000(policy: SimPowerPolicy) -> Self {
        let catalog = anor_types::standard_catalog().scale_nodes(25);
        let types = catalog.long_running();
        SimConfig {
            total_nodes: 1000,
            idle_power: Watts(90.0),
            catalog,
            types,
            tick: Seconds(1.0),
            policy,
            qos: QosConstraint::default(),
            qos_risk_threshold: 0.8,
        }
    }
}

/// The aggregate result of a simulation run.
#[derive(Debug, Clone)]
pub struct SimOutcome {
    /// Completed jobs' QoS degradations, grouped per type id.
    pub qos_by_type: Vec<(JobTypeId, Vec<QosDegradation>)>,
    /// Jobs completed.
    pub completed: u32,
    /// Jobs still running or queued at the end.
    pub unfinished: u32,
    /// Completed jobs whose `type_id` is not in `cfg.types`: they have a
    /// QoS row but no `qos_by_type` slot to aggregate it into. Also
    /// counted into the `sim_qos_rows_dropped_total` telemetry counter.
    pub dropped: u32,
    /// 90th-percentile tracking error.
    pub tracking_p90: f64,
    /// Fraction of samples within the 30% error limit.
    pub tracking_within_30: f64,
}

/// Cached telemetry handles for the per-tick hot path.
#[derive(Debug, Clone)]
struct SimInstruments {
    tick: Histogram,
    jobs_rows: Gauge,
    pending_jobs: Gauge,
    running_jobs: Gauge,
    history_rows: Gauge,
    measured_watts: Gauge,
}

/// The simulator.
///
/// The per-tick hot path is incremental: idle/busy node counts, the
/// per-type busy-node usage table, the pending-queue views and the total
/// busy-node power draw are all maintained at state transitions (job
/// start, job completion, re-cap) instead of being recomputed by
/// full-table rescans every tick. Each busy node also caches its
/// progress rate and power draw, which only change when its cap does, so
/// the steady-state tick cost is O(busy nodes) for progress integration
/// plus O(running + pending jobs) for the policy stages — not the
/// 3–4 full node-table walks the naive loop needed.
#[derive(Debug)]
pub struct TabularSim {
    cfg: SimConfig,
    target: PowerTarget,
    scheduler: QueueScheduler,
    nodes: Vec<NodeRow>,
    jobs: Vec<JobRow>,
    schedule: VecDeque<JobSubmission>,
    pending: Vec<JobId>,
    /// Scheduler views parallel to `pending` (same order, same length).
    pending_views: Vec<PendingView>,
    running: Vec<JobId>,
    /// Nodes with no job assigned. Invariant: equals a from-scratch
    /// recount of `nodes[i].is_idle()` after every public call.
    idle_count: u32,
    /// Busy nodes per type (indexed by `JobTypeId::index()`). Invariant:
    /// equals a recount over running jobs after every public call.
    type_usage: Vec<u32>,
    /// Sum of `node.power` over busy nodes (idle nodes draw
    /// `cfg.idle_power` each, accounted separately via `idle_count`).
    busy_power: Watts,
    /// Platform-wide minimum cap (admission floor), cached from the
    /// catalog at construction.
    min_cap: Watts,
    time: Seconds,
    tracking: TrackingRecorder,
    history: VecDeque<HistoryRow>,
    history_cap: Option<usize>,
    record_history: bool,
    completed: u32,
    measured_power: Watts,
    tracking_frozen: bool,
    instruments: Option<SimInstruments>,
    telemetry: Option<Telemetry>,
    tracer: Option<Tracer>,
    cause: u64,
    observe_pending: bool,
}

impl TabularSim {
    /// Build a simulator. `schedule` must be sorted by submission time.
    /// `weights` are the AQA queue weights (uniform when `None`),
    /// indexed like the catalog.
    pub fn new(
        cfg: SimConfig,
        target: PowerTarget,
        variation: &PerformanceVariation,
        schedule: Vec<JobSubmission>,
        weights: Option<Vec<f64>>,
    ) -> Self {
        assert!(cfg.total_nodes > 0, "cluster needs nodes");
        for &id in &cfg.types {
            assert!(
                cfg.catalog[id].nodes <= cfg.total_nodes,
                "{} needs more nodes than the cluster has",
                cfg.catalog[id].name
            );
        }
        let tdp = cfg
            .catalog
            .iter()
            .next()
            .map_or(Watts(280.0), |t| t.cap_range.max);
        let min_cap = cfg
            .catalog
            .iter()
            .next()
            .map_or(Watts(140.0), |t| t.cap_range.min);
        let nodes: Vec<NodeRow> = (0..cfg.total_nodes)
            .map(|i| {
                let mut n = NodeRow::idle(variation.coeff(NodeId(i)), tdp);
                n.power = cfg.idle_power;
                n
            })
            .collect();
        let scheduler = QueueScheduler::new(
            weights.unwrap_or_else(|| vec![1.0; cfg.catalog.len()]),
            cfg.total_nodes,
        );
        let reserve = target.reserve.max(Watts(1.0));
        TabularSim {
            scheduler,
            nodes,
            jobs: Vec::new(),
            schedule: schedule.into(),
            pending: Vec::new(),
            pending_views: Vec::new(),
            running: Vec::new(),
            idle_count: cfg.total_nodes,
            type_usage: vec![0; cfg.catalog.len()],
            busy_power: Watts::ZERO,
            min_cap,
            time: Seconds::ZERO,
            tracking: TrackingRecorder::new(reserve),
            history: VecDeque::new(),
            history_cap: None,
            record_history: false,
            completed: 0,
            measured_power: Watts::ZERO,
            tracking_frozen: false,
            instruments: None,
            telemetry: None,
            tracer: None,
            cause: 0,
            observe_pending: false,
            cfg,
            target,
        }
    }

    /// Report per-tick wall time (`sim_tick_seconds`), table sizes
    /// (`sim_jobs_rows`, `sim_pending_jobs`, `sim_running_jobs`,
    /// `sim_history_rows`) and measured power (`sim_measured_watts`)
    /// into `telemetry`. The tracking-error stream is attached too.
    pub fn attach_telemetry(&mut self, telemetry: &Telemetry) {
        self.instruments = Some(SimInstruments {
            tick: telemetry.histogram("sim_tick_seconds", &[]),
            jobs_rows: telemetry.gauge("sim_jobs_rows", &[]),
            pending_jobs: telemetry.gauge("sim_pending_jobs", &[]),
            running_jobs: telemetry.gauge("sim_running_jobs", &[]),
            history_rows: telemetry.gauge("sim_history_rows", &[]),
            measured_watts: telemetry.gauge("sim_measured_watts", &[]),
        });
        self.tracking.attach_telemetry(telemetry);
        self.telemetry = Some(telemetry.clone());
    }

    /// Record causal trace events into `tracer`: a `decision` each tick
    /// the capping stage changes at least one job's cap, an `msr_write`
    /// per re-capped job (the table write is the simulator's actuation),
    /// and a `sample_rx` for the first measured-power observation taken
    /// under the new caps. The tabular simulator has no wire, so its
    /// chains never contain `cap_tx`/`cap_rx` hops.
    pub fn attach_tracer(&mut self, tracer: &Tracer) {
        self.tracer = Some(tracer.clone());
    }

    /// Enable per-tick history retention (off by default to keep long
    /// runs lean). Retention is unbounded; the buffer is pre-sized so
    /// steady-state appends don't reallocate.
    pub fn record_history(&mut self, on: bool) {
        self.record_history = on;
        if on && self.history.capacity() == 0 {
            self.history.reserve(4096);
        }
    }

    /// Enable history retention bounded to the most recent `cap` rows
    /// (a ring buffer: older rows are discarded as new ticks arrive).
    /// `history()` still yields rows in chronological order.
    pub fn record_history_capped(&mut self, cap: usize) {
        let cap = cap.max(1);
        self.record_history = true;
        self.history_cap = Some(cap);
        self.history
            .reserve(cap.saturating_sub(self.history.capacity()));
        while self.history.len() > cap {
            self.history.pop_front();
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> Seconds {
        self.time
    }

    /// Total cluster power during the last tick.
    pub fn measured_power(&self) -> Watts {
        self.measured_power
    }

    /// The tracking recorder (error statistics so far).
    pub fn tracking(&self) -> &TrackingRecorder {
        &self.tracking
    }

    /// Replace the power target mid-run (a facility tier re-allocating
    /// the shared envelope, or a new hourly bid taking effect). Tracking
    /// statistics continue against the new target with the original
    /// reserve normalization.
    pub fn set_target(&mut self, target: PowerTarget) {
        self.target = target;
    }

    /// Discard tracking-error history collected so far (e.g. a warm-up
    /// window while the cluster fills; the paper's evaluation starts from
    /// a warm cluster).
    pub fn reset_tracking(&mut self) {
        self.tracking = TrackingRecorder::new(self.target.reserve.max(Watts(1.0)));
        if let Some(t) = &self.telemetry {
            self.tracking.attach_telemetry(t);
        }
    }

    /// Stop recording tracking errors from now on (e.g. during a drain
    /// tail after arrivals stop, when power necessarily decays away from
    /// the target).
    pub fn freeze_tracking(&mut self) {
        self.tracking_frozen = true;
    }

    /// Run with tracking judged only over `[warmup, horizon]`: the
    /// fill-up ramp is discarded and the drain tail is not recorded,
    /// matching how the paper evaluates an in-steady-state hour.
    pub fn run_with_warmup(&mut self, warmup: Seconds, horizon: Seconds, max_drain: Seconds) {
        while self.time.value() < warmup.value() {
            self.step();
        }
        self.reset_tracking();
        while self.time.value() < horizon.value() {
            self.step();
        }
        self.freeze_tracking();
        self.run(horizon, max_drain);
    }

    /// Retained history rows in chronological order (empty unless
    /// enabled). A `VecDeque` because capped retention drops from the
    /// front; it indexes and iterates like a slice.
    pub fn history(&self) -> &VecDeque<HistoryRow> {
        &self.history
    }

    /// All job rows (queued, running and completed).
    pub fn jobs(&self) -> &[JobRow] {
        &self.jobs
    }

    /// Node rows.
    pub fn nodes(&self) -> &[NodeRow] {
        &self.nodes
    }

    /// Incrementally-maintained count of idle nodes. Always equals
    /// `self.nodes().iter().filter(|n| n.is_idle()).count()`; the
    /// property tests assert this invariant under random schedules.
    pub fn idle_nodes(&self) -> u32 {
        self.idle_count
    }

    /// Incrementally-maintained busy-node count per type (indexed like
    /// the catalog). Always equals a recount over running jobs.
    pub fn type_usage(&self) -> &[u32] {
        &self.type_usage
    }

    /// The incrementally-maintained cluster power aggregate as of the
    /// latest table state (unlike [`measured_power`](Self::measured_power),
    /// which is the start-of-tick snapshot the tracking loop observes).
    /// Always equals the sum of `node.power` over the node table, modulo
    /// float rounding; the property tests assert this invariant.
    pub fn aggregate_power(&self) -> Watts {
        self.cfg.idle_power * self.idle_count as f64 + self.busy_power
    }

    /// Advance one tick.
    pub fn step(&mut self) {
        let tick_start = self.instruments.as_ref().map(|_| Instant::now());
        let dt = self.cfg.tick;
        self.time += dt;
        // --- Stage 1: node update (uses caps set during the previous
        // tick's policy stage). Idle nodes draw constant idle power and
        // a busy node's draw/rate only change when its cap does, so
        // measured power is an O(1) read of the maintained aggregates
        // and the table update is one fused progress-plus-completion
        // pass over the busy nodes only.
        let measured = self.cfg.idle_power * self.idle_count as f64 + self.busy_power;
        self.measured_power = measured;
        if self.observe_pending {
            self.observe_pending = false;
            if let Some(t) = &self.tracer {
                t.record_full(
                    TraceStage::SampleRx,
                    CauseId(self.cause),
                    None,
                    Some(measured.value()),
                    None,
                );
            }
        }
        // Progress integration + completion detection (every node of the
        // job at 100%), one pass over running jobs.
        let dtv = dt.value();
        let mut still_running = Vec::with_capacity(self.running.len());
        for &job_id in &self.running {
            let row = &self.jobs[job_id.0 as usize];
            let mut done = true;
            for n in &row.nodes {
                let node = &mut self.nodes[n.index()];
                node.progress = (node.progress + node.rate * dtv).min(1.0);
                if node.progress < 1.0 {
                    done = false;
                }
            }
            if done {
                let row = &mut self.jobs[job_id.0 as usize];
                row.end = Some(self.time);
                self.type_usage[row.type_id.index()] =
                    self.type_usage[row.type_id.index()].saturating_sub(row.nodes.len() as u32);
                self.idle_count += row.nodes.len() as u32;
                for n in &row.nodes {
                    let node = &mut self.nodes[n.index()];
                    self.busy_power -= node.power;
                    node.job = None;
                    node.progress = 0.0;
                    node.rate = 0.0;
                    node.power = self.cfg.idle_power;
                }
                self.completed += 1;
            } else {
                still_running.push(job_id);
            }
        }
        self.running = still_running;
        if self.running.is_empty() {
            // Re-anchor the float aggregate whenever the cluster drains
            // so incremental add/sub rounding can never accumulate.
            self.busy_power = Watts::ZERO;
        }
        // --- Stage 2: cluster view.
        let target_now = self.target.at(self.time);
        if !self.tracking_frozen {
            self.tracking.push(target_now, measured);
        }
        // Admit arrivals (the scheduler view is maintained alongside the
        // queue so the policy stage never rebuilds it).
        while self
            .schedule
            .front()
            .is_some_and(|s| s.time.value() <= self.time.value())
        {
            let Some(s) = self.schedule.pop_front() else {
                break; // front() just matched, but never panic the tick
            };
            let id = JobId(self.jobs.len() as u64);
            self.jobs.push(JobRow::queued(id, s.type_id, s.time));
            self.pending.push(id);
            self.pending_views.push(PendingView {
                type_id: s.type_id,
                nodes: self.cfg.catalog[s.type_id].nodes,
                submit: s.time,
            });
        }
        // --- Stage 3: schedule jobs, then cap power (effective next tick).
        self.schedule_jobs(target_now, measured);
        self.cap_power(target_now);
        // --- Stage 4: history append.
        if self.record_history {
            if let Some(cap) = self.history_cap {
                if self.history.len() >= cap {
                    self.history.pop_front();
                }
            }
            self.history.push_back(HistoryRow {
                time: self.time,
                target: target_now,
                measured,
                busy_nodes: self.cfg.total_nodes - self.idle_count,
                pending_jobs: self.pending.len() as u32,
                running_jobs: self.running.len() as u32,
                completed_jobs: self.completed,
            });
        }
        if let Some(i) = &self.instruments {
            i.jobs_rows.set(self.jobs.len() as f64);
            i.pending_jobs.set(self.pending.len() as f64);
            i.running_jobs.set(self.running.len() as f64);
            i.history_rows.set(self.history.len() as f64);
            i.measured_watts.set(measured.value());
            if let Some(start) = tick_start {
                i.tick.observe(start.elapsed().as_secs_f64());
            }
        }
    }

    /// Queue wait at which a pending job must start regardless of power.
    fn forced_start_wait(&self, type_id: JobTypeId) -> f64 {
        let spec = &self.cfg.catalog[type_id];
        self.cfg.qos_risk_threshold * self.cfg.qos.limit * spec.time_uncapped.value()
    }

    fn schedule_jobs(&mut self, target_now: Watts, _measured: Watts) {
        // Admission rule: a job may start if the cluster could still be
        // capped down to the current target afterwards — i.e. with every
        // busy node at the platform's minimum cap. Anything above that is
        // absorbed by the capping stage, so admission never blocks a
        // reachable target (the paper's "high degree of power sharing"),
        // while a genuinely low target defers scheduling (AQA's primary
        // power lever, Section 6.4). The idle count, per-type usage and
        // pending views are maintained incrementally, so one admission
        // attempt costs the scheduler's O(pending) selection — not a
        // rebuild of every table.
        let min_cap = self.min_cap;
        loop {
            let idle = self.idle_count;
            if idle == 0 || self.pending.is_empty() {
                return;
            }
            let Some(pick) = self
                .scheduler
                .select(&self.pending_views, &self.type_usage, idle)
            else {
                return;
            };
            let job_id = self.pending[pick];
            let row = &self.jobs[job_id.0 as usize];
            let spec = &self.cfg.catalog[row.type_id];
            let busy_after = (self.cfg.total_nodes - self.idle_count) + spec.nodes;
            let idle_after = self.cfg.total_nodes - busy_after;
            let floor_after = min_cap * busy_after as f64 + self.cfg.idle_power * idle_after as f64;
            let wait = (self.time - row.submit).value();
            let forced = wait >= self.forced_start_wait(row.type_id);
            if !forced && floor_after.value() > target_now.value() {
                return; // refrain from scheduling (primary power lever)
            }
            // Start the job on the first idle nodes. The node keeps its
            // previous cap until this tick's capping stage reassigns it,
            // so draw and progress rate are seeded from that cap.
            let mut assigned = Vec::with_capacity(spec.nodes as usize);
            let mut started_power = Watts::ZERO;
            let type_id = row.type_id;
            for (i, node) in self.nodes.iter_mut().enumerate() {
                if node.is_idle() {
                    node.job = Some(job_id);
                    node.progress = 0.0;
                    node.power = node_power(spec, node.cap);
                    node.rate = progress_rate(spec, node.cap, node.perf_coeff);
                    started_power += node.power;
                    assigned.push(NodeId(i as u32));
                    if assigned.len() == spec.nodes as usize {
                        break;
                    }
                }
            }
            debug_assert_eq!(assigned.len(), spec.nodes as usize);
            self.idle_count -= assigned.len() as u32;
            self.type_usage[type_id.index()] += assigned.len() as u32;
            self.busy_power += started_power;
            let row = &mut self.jobs[job_id.0 as usize];
            row.start = Some(self.time);
            row.nodes = assigned;
            self.pending.remove(pick);
            self.pending_views.remove(pick);
            self.running.push(job_id);
        }
    }

    /// Is a running job at risk of blowing its QoS limit if slowed
    /// further? Projected from nominal remaining time at full power.
    fn job_at_risk(&self, row: &JobRow) -> bool {
        let spec = &self.cfg.catalog[row.type_id];
        let min_progress = row
            .nodes
            .iter()
            .map(|n| self.nodes[n.index()].progress)
            .fold(1.0f64, f64::min);
        let remaining = (1.0 - min_progress) * spec.time_uncapped.value();
        let projected_sojourn = (self.time - row.submit).value() + remaining;
        let q = projected_sojourn / spec.time_uncapped.value() - 1.0;
        q >= self.cfg.qos_risk_threshold * self.cfg.qos.limit
    }

    fn cap_power(&mut self, target_now: Watts) {
        let busy_budget =
            (target_now - self.cfg.idle_power * self.idle_count as f64).max(Watts::ZERO);
        if self.running.is_empty() {
            return;
        }
        let mut job_views = Vec::with_capacity(self.running.len());
        let mut at_risk = Vec::with_capacity(self.running.len());
        for &job_id in &self.running {
            let row = &self.jobs[job_id.0 as usize];
            let spec = &self.cfg.catalog[row.type_id];
            let mut view = JobView::from_spec(job_id, spec);
            view.nodes = row.nodes.len() as u32;
            job_views.push(view);
            at_risk.push(self.job_at_risk(row));
        }
        let caps = self.cfg.policy.assign(busy_budget, &job_views, &at_risk);
        let mut changed: Vec<(JobId, Watts)> = Vec::new();
        for (&job_id, cap) in self.running.iter().zip(caps) {
            let row = &self.jobs[job_id.0 as usize];
            let spec = &self.cfg.catalog[row.type_id];
            let was = row.nodes.first().map(|n| self.nodes[n.index()].cap);
            if was != Some(cap) {
                changed.push((job_id, cap));
            }
            // Re-cap is the state transition that invalidates a node's
            // cached draw and progress rate; update the power aggregate
            // by the per-node delta (nodes of one job can carry
            // different stale caps right after a start).
            for n in &row.nodes {
                let node = &mut self.nodes[n.index()];
                if node.cap != cap {
                    let new_power = node_power(spec, cap);
                    self.busy_power += new_power - node.power;
                    node.power = new_power;
                    node.rate = progress_rate(spec, cap, node.perf_coeff);
                    node.cap = cap;
                }
            }
        }
        if changed.is_empty() {
            return;
        }
        if let Some(t) = self.tracer.clone() {
            let cause = t.next_cause();
            self.cause = cause.0;
            self.observe_pending = true;
            t.record_full(
                TraceStage::Decision,
                cause,
                None,
                Some(busy_budget.value()),
                Some(format!("{} cap(s) changed", changed.len())),
            );
            for (job_id, cap) in &changed {
                t.record_job(TraceStage::MsrWrite, cause, job_id.0, Some(cap.value()));
            }
        }
    }

    /// Run until `horizon`, then keep stepping (up to `max_drain` more)
    /// until every submitted job completes.
    pub fn run(&mut self, horizon: Seconds, max_drain: Seconds) {
        while self.time.value() < horizon.value() {
            self.step();
        }
        let drain_end = horizon + max_drain;
        while (self.completed as usize) < self.jobs.len() + self.schedule.len()
            && !self.schedule.is_empty()
        {
            // Arrivals beyond the horizon are still admitted so the
            // accounting stays consistent.
            if self.time.value() >= drain_end.value() {
                break;
            }
            self.step();
        }
        while self.completed as usize != self.jobs.len() && self.time.value() < drain_end.value() {
            self.step();
        }
    }

    /// Summarize the run.
    ///
    /// Each call increments `sim_qos_rows_dropped_total` by the number of
    /// completed rows whose type has no `cfg.types` slot (also reported
    /// in [`SimOutcome::dropped`]), when telemetry is attached.
    pub fn outcome(&self) -> SimOutcome {
        let mut qos_by_type: Vec<(JobTypeId, Vec<QosDegradation>)> =
            self.cfg.types.iter().map(|&id| (id, Vec::new())).collect();
        // Type-indexed slot lookup instead of a linear scan per row.
        let mut slot_of: Vec<Option<usize>> = vec![None; self.cfg.catalog.len()];
        for (slot, &id) in self.cfg.types.iter().enumerate() {
            if let Some(s) = slot_of.get_mut(id.index()) {
                *s = Some(slot);
            }
        }
        let mut unfinished = 0;
        let mut dropped: u32 = 0;
        for row in &self.jobs {
            match row.qos(&self.cfg.catalog[row.type_id]) {
                Some(q) => {
                    let slot = slot_of.get(row.type_id.index()).copied().flatten();
                    match slot.and_then(|s| qos_by_type.get_mut(s)) {
                        Some((_, qs)) => qs.push(q),
                        None => dropped += 1,
                    }
                }
                None => unfinished += 1,
            }
        }
        if dropped > 0 {
            if let Some(t) = &self.telemetry {
                t.counter("sim_qos_rows_dropped_total", &[])
                    .add(dropped as u64);
            }
        }
        SimOutcome {
            qos_by_type,
            completed: self.completed,
            unfinished,
            dropped,
            tracking_p90: self.tracking.percentile_error(90.0),
            tracking_within_30: self.tracking.fraction_within(0.30),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anor_aqa::{poisson_schedule, RegulationSignal};
    use anor_types::standard_catalog;

    /// A small 16-node cluster config for fast tests.
    fn small_cfg(policy: SimPowerPolicy) -> SimConfig {
        let catalog = standard_catalog();
        let types = catalog.long_running();
        SimConfig {
            total_nodes: 16,
            idle_power: Watts(90.0),
            catalog,
            types,
            tick: Seconds(1.0),
            policy,
            qos: QosConstraint::default(),
            qos_risk_threshold: 0.8,
        }
    }

    fn flat_target(watts: f64) -> PowerTarget {
        PowerTarget {
            avg: Watts(watts),
            reserve: Watts(watts * 0.25),
            signal: RegulationSignal::Constant(0.0),
        }
    }

    fn quick_schedule(
        cfg: &SimConfig,
        utilization: f64,
        horizon: f64,
        seed: u64,
    ) -> Vec<JobSubmission> {
        poisson_schedule(
            &cfg.catalog,
            &cfg.types,
            utilization,
            cfg.total_nodes,
            Seconds(horizon),
            seed,
        )
    }

    #[test]
    fn idle_cluster_draws_idle_power() {
        let cfg = small_cfg(SimPowerPolicy::Uniform);
        let mut sim = TabularSim::new(
            cfg,
            flat_target(4000.0),
            &PerformanceVariation::none(16),
            vec![],
            None,
        );
        sim.step();
        assert_eq!(sim.measured_power(), Watts(16.0 * 90.0));
        assert_eq!(sim.jobs().len(), 0);
    }

    #[test]
    fn jobs_get_scheduled_run_and_complete() {
        let cfg = small_cfg(SimPowerPolicy::Uniform);
        let sched = vec![
            JobSubmission {
                time: Seconds(0.0),
                type_id: cfg.catalog.find("mg").unwrap().id,
            },
            JobSubmission {
                time: Seconds(5.0),
                type_id: cfg.catalog.find("cg").unwrap().id,
            },
        ];
        let mut sim = TabularSim::new(
            cfg,
            flat_target(4500.0),
            &PerformanceVariation::none(16),
            sched,
            None,
        );
        sim.run(Seconds(600.0), Seconds(600.0));
        let out = sim.outcome();
        assert_eq!(out.completed, 2);
        assert_eq!(out.unfinished, 0);
        // Uncapped and unqueued: QoS degradation near zero.
        for (_, qs) in &out.qos_by_type {
            for q in qs {
                assert!(q.degradation() < 0.2, "Q = {}", q.degradation());
            }
        }
    }

    #[test]
    fn completion_time_matches_linear_model() {
        let cfg = small_cfg(SimPowerPolicy::Uniform);
        let mg = cfg.catalog.find("mg").unwrap().id;
        let sched = vec![JobSubmission {
            time: Seconds(0.0),
            type_id: mg,
        }];
        let mut sim = TabularSim::new(
            cfg,
            flat_target(4500.0),
            &PerformanceVariation::none(16),
            sched,
            None,
        );
        sim.run(Seconds(400.0), Seconds(0.0));
        let row = &sim.jobs()[0];
        assert!(row.is_done());
        // mg runs 120 s uncapped; allow tick quantization + start latency.
        let elapsed = (row.end.unwrap() - row.start.unwrap()).value();
        assert!((elapsed - 120.0).abs() <= 3.0, "elapsed {elapsed}");
    }

    #[test]
    fn tight_target_defers_scheduling() {
        let cfg = small_cfg(SimPowerPolicy::Uniform);
        let bt = cfg.catalog.find("bt").unwrap().id;
        let sched = vec![
            JobSubmission {
                time: Seconds(0.0),
                type_id: bt,
            },
            JobSubmission {
                time: Seconds(1.0),
                type_id: bt,
            },
            JobSubmission {
                time: Seconds(2.0),
                type_id: bt,
            },
        ];
        // Admission floor: idle 16×90 = 1440 W; each busy node adds at
        // least 50 W (140 W min cap vs 90 W idle). A 1600 W target admits
        // only one 2-node BT (a second would need 1440 + 4×50 = 1640 W).
        let mut sim = TabularSim::new(
            cfg,
            flat_target(1600.0),
            &PerformanceVariation::none(16),
            sched,
            None,
        );
        for _ in 0..30 {
            sim.step();
        }
        let running = sim.jobs().iter().filter(|j| j.is_running()).count();
        let pending = sim.jobs().iter().filter(|j| j.is_pending()).count();
        assert!(running >= 1, "at least one job runs");
        assert!(pending >= 1, "the power target must defer some jobs");
    }

    #[test]
    fn starved_jobs_eventually_force_start() {
        let mut cfg = small_cfg(SimPowerPolicy::Uniform);
        cfg.qos_risk_threshold = 0.01; // force-start almost immediately
        let mg = cfg.catalog.find("mg").unwrap().id;
        let sched = vec![JobSubmission {
            time: Seconds(0.0),
            type_id: mg,
        }];
        // Target below idle power: no job would ever be admissible.
        let mut sim = TabularSim::new(
            cfg,
            flat_target(1000.0),
            &PerformanceVariation::none(16),
            sched,
            None,
        );
        sim.run(Seconds(300.0), Seconds(300.0));
        assert_eq!(sim.outcome().completed, 1, "QoS forcing must admit the job");
    }

    #[test]
    fn performance_variation_degrades_qos() {
        let run = |sigma: f64, seed: u64| -> f64 {
            let cfg = small_cfg(SimPowerPolicy::Uniform);
            let sched = quick_schedule(&cfg, 0.75, 2400.0, seed);
            let variation = PerformanceVariation::with_sigma(16, sigma, seed ^ 0xfeed);
            let mut sim =
                TabularSim::new(cfg.clone(), flat_target(4200.0), &variation, sched, None);
            sim.run(Seconds(2400.0), Seconds(2400.0));
            let out = sim.outcome();
            let all: Vec<QosDegradation> = out
                .qos_by_type
                .iter()
                .flat_map(|(_, qs)| qs.iter().copied())
                .collect();
            cfg.qos.percentile_degradation(&all).unwrap_or(0.0)
        };
        // Average over a few seeds to tame scheduling noise.
        let q_none: f64 = (0..3).map(|s| run(0.0, s)).sum::<f64>() / 3.0;
        let q_heavy: f64 = (0..3).map(|s| run(0.25, s)).sum::<f64>() / 3.0;
        assert!(
            q_heavy > q_none,
            "variation must worsen QoS: {q_heavy} vs {q_none}"
        );
    }

    #[test]
    fn tracking_error_recorded_every_tick() {
        let cfg = small_cfg(SimPowerPolicy::Uniform);
        let mut sim = TabularSim::new(
            cfg,
            flat_target(2000.0),
            &PerformanceVariation::none(16),
            vec![],
            None,
        );
        for _ in 0..50 {
            sim.step();
        }
        assert_eq!(sim.tracking().len(), 50);
        // Idle cluster draws 1440 W vs the 2000 W target: error = 560/500.
        let e = sim.tracking().mean_error();
        assert!((e - 560.0 / 500.0).abs() < 1e-9, "error {e}");
    }

    #[test]
    fn history_recording_is_optional_and_complete() {
        let cfg = small_cfg(SimPowerPolicy::Uniform);
        let mut sim = TabularSim::new(
            cfg,
            flat_target(2000.0),
            &PerformanceVariation::none(16),
            vec![],
            None,
        );
        for _ in 0..5 {
            sim.step();
        }
        assert!(sim.history().is_empty());
        sim.record_history(true);
        for _ in 0..5 {
            sim.step();
        }
        assert_eq!(sim.history().len(), 5);
        assert_eq!(sim.history()[0].busy_nodes, 0);
    }

    #[test]
    fn multi_node_job_waits_for_slowest_node() {
        let cfg = small_cfg(SimPowerPolicy::Uniform);
        let ft = cfg.catalog.find("ft").unwrap().id; // 2 nodes, 180 s
        let sched = vec![JobSubmission {
            time: Seconds(0.0),
            type_id: ft,
        }];
        // Node 1 is 1.5x slower than node 0.
        let mut coeffs = PerformanceVariation::none(16);
        // Build a variation with one slow node via with_sigma replacement:
        // simplest is to construct nodes manually through the public API.
        let mut sim = TabularSim::new(cfg, flat_target(4500.0), &coeffs, sched.clone(), None);
        sim.run(Seconds(400.0), Seconds(0.0));
        let nominal = (sim.jobs()[0].end.unwrap() - sim.jobs()[0].start.unwrap()).value();
        // Now the same run with heavy variation: completion gated by the
        // slowest assigned node, so it takes at least as long.
        coeffs = PerformanceVariation::with_sigma(16, 0.3, 99);
        let worst = coeffs.iter().take(2).fold(1.0f64, f64::max);
        let mut sim2 = TabularSim::new(
            small_cfg(SimPowerPolicy::Uniform),
            flat_target(4500.0),
            &coeffs,
            sched,
            None,
        );
        sim2.run(Seconds(1000.0), Seconds(500.0));
        let varied = (sim2.jobs()[0].end.unwrap() - sim2.jobs()[0].start.unwrap()).value();
        assert!(
            varied + 2.0 >= nominal * worst.min(1.0),
            "varied {varied} vs nominal {nominal} (worst coeff {worst})"
        );
    }

    #[test]
    fn attached_telemetry_times_ticks_and_tracks_table_sizes() {
        let cfg = small_cfg(SimPowerPolicy::Uniform);
        let mg = cfg.catalog.find("mg").unwrap().id;
        let sched = vec![JobSubmission {
            time: Seconds(0.0),
            type_id: mg,
        }];
        let telemetry = Telemetry::new();
        let mut sim = TabularSim::new(
            cfg,
            flat_target(4500.0),
            &PerformanceVariation::none(16),
            sched,
            None,
        );
        sim.attach_telemetry(&telemetry);
        for _ in 0..20 {
            sim.step();
        }
        assert_eq!(telemetry.histogram("sim_tick_seconds", &[]).count(), 20);
        assert_eq!(telemetry.gauge("sim_jobs_rows", &[]).get(), 1.0);
        assert_eq!(telemetry.gauge("sim_running_jobs", &[]).get(), 1.0);
        // Tracking errors stream into the shared registry too.
        assert_eq!(telemetry.histogram("tracking_error", &[]).count(), 20);
        // reset_tracking keeps streaming into the same histogram.
        sim.reset_tracking();
        sim.step();
        assert_eq!(telemetry.histogram("tracking_error", &[]).count(), 21);
    }

    #[test]
    fn completed_rows_of_unlisted_types_are_counted_not_lost() {
        // A type present in the schedule but absent from cfg.types has
        // no qos_by_type slot; it must surface in `dropped`, not vanish.
        let mut cfg = small_cfg(SimPowerPolicy::Uniform);
        let mg = cfg.catalog.find("mg").unwrap().id;
        let cg = cfg.catalog.find("cg").unwrap().id;
        cfg.types = vec![cg]; // mg completes but has no slot
        let sched = vec![
            JobSubmission {
                time: Seconds(0.0),
                type_id: mg,
            },
            JobSubmission {
                time: Seconds(1.0),
                type_id: cg,
            },
        ];
        let telemetry = Telemetry::new();
        let mut sim = TabularSim::new(
            cfg,
            flat_target(4500.0),
            &PerformanceVariation::none(16),
            sched,
            None,
        );
        sim.attach_telemetry(&telemetry);
        sim.run(Seconds(600.0), Seconds(600.0));
        let out = sim.outcome();
        assert_eq!(out.completed, 2);
        assert_eq!(out.unfinished, 0);
        assert_eq!(out.dropped, 1, "the mg row must be counted as dropped");
        let counted: usize = out.qos_by_type.iter().map(|(_, v)| v.len()).sum();
        assert_eq!(counted, 1, "only the cg row aggregates");
        assert_eq!(
            telemetry.counter("sim_qos_rows_dropped_total", &[]).get(),
            1
        );
    }

    #[test]
    fn capped_history_is_a_chronological_ring() {
        let cfg = small_cfg(SimPowerPolicy::Uniform);
        let mut sim = TabularSim::new(
            cfg,
            flat_target(2000.0),
            &PerformanceVariation::none(16),
            vec![],
            None,
        );
        sim.record_history_capped(3);
        for _ in 0..10 {
            sim.step();
        }
        assert_eq!(sim.history().len(), 3);
        let times: Vec<f64> = sim.history().iter().map(|r| r.time.value()).collect();
        assert_eq!(times, vec![8.0, 9.0, 10.0], "most recent rows, in order");
    }

    #[test]
    fn incremental_counters_match_recounts_through_a_full_run() {
        let cfg = small_cfg(SimPowerPolicy::EvenSlowdown);
        let sched = quick_schedule(&cfg, 0.8, 600.0, 23);
        let mut sim = TabularSim::new(
            cfg.clone(),
            flat_target(3600.0),
            &PerformanceVariation::with_sigma(16, 0.1, 5),
            sched,
            None,
        );
        for _ in 0..800 {
            sim.step();
            let idle_recount = sim.nodes().iter().filter(|n| n.is_idle()).count() as u32;
            assert_eq!(sim.idle_nodes(), idle_recount);
            let mut usage = vec![0u32; cfg.catalog.len()];
            for job in sim.jobs().iter().filter(|j| j.is_running()) {
                usage[job.type_id.index()] += job.nodes.len() as u32;
            }
            assert_eq!(sim.type_usage(), &usage[..]);
        }
    }

    #[test]
    fn qos_aware_policy_runs_end_to_end() {
        let cfg = small_cfg(SimPowerPolicy::EvenSlowdownQosAware);
        let sched = quick_schedule(&cfg, 0.5, 1200.0, 17);
        let n = sched.len();
        let mut sim = TabularSim::new(
            cfg,
            flat_target(3800.0),
            &PerformanceVariation::with_sigma(16, 0.1, 3),
            sched,
            None,
        );
        sim.run(Seconds(1200.0), Seconds(2400.0));
        let out = sim.outcome();
        assert!(out.completed > 0);
        assert_eq!(out.completed as usize + out.unfinished as usize, n);
    }
}
