#![warn(missing_docs)]
//! # anor-sim
//!
//! The tabular cluster simulator of paper Section 5.6: "The simulator is
//! implemented as a collection of tables that store the current state of
//! nodes and jobs in the cluster... Each simulated second, the simulator
//! updates the state of the node table, then updates the view of the
//! cluster seen by the job scheduler and power manager, then schedules
//! jobs and caps power... Lastly, before starting the next iteration, we
//! append the current state of all tables to a file."
//!
//! It simulates a 1000-node cluster in demand-response scenarios with
//! per-node performance variation (Section 6.4 / Fig. 11):
//!
//! * [`table`] — the node table (idle/job, power, cap, progress) and job
//!   table (queue/start/end timestamps);
//! * [`policy`] — the power-capping side of the simulated cluster tier:
//!   uniform AQA capping or the even-slowdown balancer, with an optional
//!   QoS-feedback exemption;
//! * [`sim`] — the event-driven engine behind the per-second update
//!   loop: node update → cluster view → schedule + cap → history append,
//!   with each stage memoized between events;
//! * [`event`] — the typed discrete-event queue (completions, arrivals,
//!   re-cap boundaries, admission retries) that paces the engine;
//! * [`history`] — the end-of-tick table appender.

pub mod event;
pub mod history;
pub mod policy;
pub mod sim;
pub mod table;

pub use event::{Event, EventQueue};
pub use history::{dump_tables, write_history_csv, HistoryRow};
pub use policy::SimPowerPolicy;
pub use sim::{SimConfig, SimOutcome, TabularSim};
pub use table::{crossing_ticks, progress_at, state_hash, JobRow, JobTable, NodeRow, NodeTable};
