//! End-of-tick history recording.
//!
//! Section 5.6: "Lastly, before starting the next iteration, we append
//! the current state of all tables to a file." [`HistoryRow`] is one
//! appended record; [`write_history_csv`] serializes a run's rows.

use anor_types::{Seconds, Watts};
use std::io::Write;

/// A per-tick summary of the cluster tables.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistoryRow {
    /// Simulated time at the end of the tick.
    pub time: Seconds,
    /// The instantaneous power target.
    pub target: Watts,
    /// Measured total cluster power.
    pub measured: Watts,
    /// Nodes executing a job.
    pub busy_nodes: u32,
    /// Jobs waiting in the queue.
    pub pending_jobs: u32,
    /// Jobs currently executing.
    pub running_jobs: u32,
    /// Jobs completed so far.
    pub completed_jobs: u32,
}

/// Write rows as CSV with a header. Accepts any row iterator (slice,
/// `Vec`, or the simulator's ring-buffered `VecDeque` history).
pub fn write_history_csv<'a>(
    w: &mut impl Write,
    rows: impl IntoIterator<Item = &'a HistoryRow>,
) -> std::io::Result<()> {
    writeln!(
        w,
        "time_s,target_w,measured_w,busy_nodes,pending_jobs,running_jobs,completed_jobs"
    )?;
    for r in rows {
        writeln!(
            w,
            "{:.1},{:.1},{:.1},{},{},{},{}",
            r.time.value(),
            r.target.value(),
            r.measured.value(),
            r.busy_nodes,
            r.pending_jobs,
            r.running_jobs,
            r.completed_jobs
        )?;
    }
    Ok(())
}

/// Dump the *full* node and job tables (Section 5.6: "we append the
/// current state of all tables to a file"). One `NODE` line per node and
/// one `JOB` line per job, prefixed with the timestamp, so successive
/// dumps can be appended to a single file and grepped apart.
pub fn dump_tables(
    w: &mut impl Write,
    time: Seconds,
    nodes: &[crate::table::NodeRow],
    jobs: &[crate::table::JobRow],
) -> std::io::Result<()> {
    for (i, n) in nodes.iter().enumerate() {
        writeln!(
            w,
            "NODE {:.1} {} {} {:.1} {:.1} {:.4} {:.4}",
            time.value(),
            i,
            n.job.map_or(-1i64, |j| j.0 as i64),
            n.cap.value(),
            n.power.value(),
            n.perf_coeff,
            n.progress
        )?;
    }
    for j in jobs {
        writeln!(
            w,
            "JOB {:.1} {} {} {:.1} {} {} {}",
            time.value(),
            j.id.0,
            j.type_id.0,
            j.submit.value(),
            j.start
                .map_or("-".to_string(), |t| format!("{:.1}", t.value())),
            j.end
                .map_or("-".to_string(), |t| format!("{:.1}", t.value())),
            j.nodes.len()
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_has_header_and_rows() {
        let rows = vec![
            HistoryRow {
                time: Seconds(1.0),
                target: Watts(3000.0),
                measured: Watts(2950.5),
                busy_nodes: 12,
                pending_jobs: 3,
                running_jobs: 5,
                completed_jobs: 7,
            },
            HistoryRow {
                time: Seconds(2.0),
                target: Watts(3100.0),
                measured: Watts(3050.0),
                busy_nodes: 14,
                pending_jobs: 2,
                running_jobs: 6,
                completed_jobs: 7,
            },
        ];
        let mut buf = Vec::new();
        write_history_csv(&mut buf, &rows).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("time_s,target_w"));
        assert!(lines[1].starts_with("1.0,3000.0,2950.5,12,3,5,7"));
    }

    #[test]
    fn table_dump_covers_all_rows() {
        use crate::table::{JobRow, NodeRow};
        use anor_types::{JobId, JobTypeId, Watts};
        let mut nodes = vec![NodeRow::idle(1.0, Watts(280.0)); 3];
        nodes[0].job = Some(JobId(0));
        nodes[0].progress = 0.25;
        let mut job = JobRow::queued(JobId(0), JobTypeId(2), Seconds(1.0));
        job.start = Some(Seconds(2.0));
        job.nodes = vec![anor_types::NodeId(0)];
        let queued = JobRow::queued(JobId(1), JobTypeId(3), Seconds(4.0));
        let mut buf = Vec::new();
        dump_tables(&mut buf, Seconds(10.0), &nodes, &[job, queued]).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().filter(|l| l.starts_with("NODE")).count(), 3);
        assert_eq!(text.lines().filter(|l| l.starts_with("JOB")).count(), 2);
        assert!(text.contains("NODE 10.0 0 0 280.0"), "{text}");
        assert!(text.contains("JOB 10.0 0 2 1.0 2.0 - 1"), "{text}");
        assert!(text.contains("JOB 10.0 1 3 4.0 - - 0"), "{text}");
        // Idle nodes reference no job.
        assert!(text.contains("NODE 10.0 1 -1"), "{text}");
    }
}
