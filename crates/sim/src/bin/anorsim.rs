//! `anorsim` — the standalone tabular cluster simulator.
//!
//! Runs the Section 5.6 simulator from the command line: a cluster of
//! `--nodes` at `--utilization`, tracking a demand-response commitment
//! for `--horizon-secs`, with optional per-node performance variation.
//! Appends per-tick summary rows to `--history FILE` (CSV) and, with
//! `--tables FILE`, the full node/job table dumps the paper describes.
//!
//! ```text
//! anorsim --nodes 1000 --utilization 0.75 --variation-pct 15 \
//!         --horizon-secs 7200 --history run.csv --tables tables.txt
//! ```
//!
//! With `--telemetry <dir>`, per-tick timing and table-size metrics
//! stream to JSONL/Prometheus/summary artifacts in the directory. With
//! `--trace <dir>`, capping decisions and their first observed effect
//! stream to `<dir>/trace.jsonl` for `anor-trace`.
//!
//! Large clusters: `--recap-shards N` spreads the capping stage across
//! N threads (`0` = all cores; output is byte-identical at any count),
//! and `--history-cap K` bounds history to the last K rows (`0`
//! disables retention entirely).

use anor_aqa::{poisson_schedule, PowerTarget, RegulationSignal};
use anor_cluster::Args;
use anor_platform::PerformanceVariation;
use anor_sim::{dump_tables, write_history_csv, SimConfig, SimPowerPolicy, TabularSim};
use anor_telemetry::{Telemetry, Tracer};
use anor_types::{QosDegradation, Seconds, Watts};
use std::io::Write;

fn parse_policy(name: &str) -> Result<SimPowerPolicy, String> {
    match name {
        "uniform" => Ok(SimPowerPolicy::Uniform),
        "even-power" => Ok(SimPowerPolicy::EvenPower),
        "even-slowdown" => Ok(SimPowerPolicy::EvenSlowdown),
        "even-slowdown+qos" => Ok(SimPowerPolicy::EvenSlowdownQosAware),
        other => Err(format!("unknown policy `{other}`")),
    }
}

fn main() {
    if let Err(e) = run() {
        eprintln!("anorsim: {e}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let args = Args::from_env()?;
    let nodes: u32 = args.get_or("nodes", 1000)?;
    let utilization: f64 = args.get_or("utilization", 0.75)?;
    let horizon = Seconds(args.get_or("horizon-secs", 7200.0)?);
    let variation_pct: f64 = args.get_or("variation-pct", 0.0)?;
    let seed: u64 = args.get_or("seed", 11)?;
    let recap_shards: usize = args.get_or("recap-shards", 1)?;
    let policy = parse_policy(args.get("policy").unwrap_or("uniform"))?;
    // Scale job footprints with cluster size, like the paper's 25×.
    let scale = (nodes as f64 / 40.0).round().max(1.0) as u32;
    let catalog = anor_types::standard_catalog().scale_nodes(scale);
    let types = catalog.long_running();
    let cfg = SimConfig {
        total_nodes: nodes,
        idle_power: Watts(90.0),
        catalog,
        types,
        tick: Seconds(1.0),
        policy,
        qos: Default::default(),
        qos_risk_threshold: 0.8,
    };
    let mean_draw: f64 = cfg
        .types
        .iter()
        .map(|&id| cfg.catalog[id].max_draw.value())
        .sum::<f64>()
        / cfg.types.len() as f64;
    let avg = Watts(args.get_or(
        "avg-watts",
        0.88 * nodes as f64 * (utilization * mean_draw + (1.0 - utilization) * 90.0),
    )?);
    let reserve = Watts(args.get_or("reserve-watts", avg.value() * 0.12)?);
    let schedule = poisson_schedule(&cfg.catalog, &cfg.types, utilization, nodes, horizon, seed);
    let target = PowerTarget {
        avg,
        reserve,
        signal: RegulationSignal::random_walk(Seconds(4.0), 0.35, horizon * 3.0, seed ^ 0x51),
    };
    let variation =
        PerformanceVariation::with_level_percent(nodes as usize, variation_pct, seed ^ 0xfe);
    let telemetry = match args.get("telemetry") {
        Some(dir) => Telemetry::to_dir(dir)?,
        None => Telemetry::new(),
    };
    let tracer = match args.get("trace") {
        Some(dir) => Some(Tracer::to_dir(dir)?),
        None => None,
    };
    let mut sim = TabularSim::new(cfg.clone(), target, &variation, schedule, None);
    sim.attach_telemetry(&telemetry);
    if let Some(t) = &tracer {
        sim.attach_tracer(t);
    }
    sim.set_recap_shards(recap_shards);
    match args.get("history-cap") {
        Some(cap) => sim.record_history_capped(cap.parse::<usize>()?),
        None => sim.record_history(true),
    }

    let tables_path = args.get("tables").map(String::from);
    let mut tables_out: Option<std::io::BufWriter<std::fs::File>> = match &tables_path {
        Some(p) => Some(std::io::BufWriter::new(std::fs::File::create(p)?)),
        None => None,
    };
    let dump_every: u64 = args.get_or("tables-every", 60)?;

    eprintln!(
        "anorsim: {nodes} nodes, util {utilization}, policy {}, bid {avg:.0} ± {reserve:.0}",
        policy.name()
    );
    let warmup = horizon * 0.1;
    let mut tick: u64 = 0;
    let mut warm = false;
    while sim.now().value() < horizon.value() {
        sim.step();
        tick += 1;
        if !warm && sim.now().value() >= warmup.value() {
            sim.reset_tracking();
            warm = true;
        }
        if let Some(out) = tables_out.as_mut() {
            if tick.is_multiple_of(dump_every) {
                dump_tables(out, sim.now(), &sim.nodes(), &sim.jobs())?;
            }
        }
    }
    sim.freeze_tracking();
    // Drain.
    let drain_end = horizon * 3.0;
    while sim.outcome().unfinished > 0 && sim.now().value() < drain_end.value() {
        sim.step();
    }
    if let Some(mut out) = tables_out {
        out.flush()?;
    }
    if let Some(path) = args.get("history") {
        let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
        write_history_csv(&mut f, sim.history())?;
        f.flush()?;
    }

    // Summary to stdout.
    let out = sim.outcome();
    println!(
        "completed {} jobs, {} unfinished",
        out.completed, out.unfinished
    );
    println!(
        "tracking: p90 error {:.1}% of reserve, within-30% {:.1}%",
        out.tracking_p90 * 100.0,
        out.tracking_within_30 * 100.0
    );
    for (id, qs) in &out.qos_by_type {
        let p90 = cfg.qos.percentile_degradation(qs);
        println!(
            "qos[{}]: n={} p90={}",
            cfg.catalog[*id].name,
            qs.len(),
            p90.map_or("-".to_string(), |q| format!("{q:.2}")),
        );
    }
    let all: Vec<QosDegradation> = out
        .qos_by_type
        .iter()
        .flat_map(|(_, v)| v.iter().copied())
        .collect();
    println!(
        "qos[all]: p90={} (target Q <= {} at {:.0}%)",
        cfg.qos
            .percentile_degradation(&all)
            .map_or("-".to_string(), |q| format!("{q:.2}")),
        cfg.qos.limit,
        cfg.qos.probability * 100.0
    );
    if telemetry.dir().is_some() {
        let summary = telemetry.write_artifacts()?;
        println!("{summary}");
    }
    if let Some(t) = &tracer {
        t.flush()?;
        if let Some(dir) = t.dir() {
            println!(
                "anorsim: trace written to {}",
                dir.join("trace.jsonl").display()
            );
        }
    }
    Ok(())
}
