//! Process-level test of the `anorsim` CLI: runs a small simulation and
//! checks the summary, history CSV and table dumps it produces.

use std::process::Command;

#[test]
fn anorsim_produces_summary_history_and_tables() {
    let dir = std::env::temp_dir().join(format!("anorsim-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let history = dir.join("history.csv");
    let tables = dir.join("tables.txt");
    let out = Command::new(env!("CARGO_BIN_EXE_anorsim"))
        .args([
            "--nodes",
            "80",
            "--utilization",
            "0.6",
            "--horizon-secs",
            "900",
            "--variation-pct",
            "10",
            "--policy",
            "even-slowdown",
            "--history",
            history.to_str().unwrap(),
            "--tables",
            tables.to_str().unwrap(),
            "--tables-every",
            "300",
        ])
        .output()
        .expect("run anorsim");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("completed"), "{stdout}");
    assert!(stdout.contains("tracking:"), "{stdout}");
    assert!(stdout.contains("qos[all]"), "{stdout}");
    // History CSV: header + one row per tick over the whole run.
    let h = std::fs::read_to_string(&history).unwrap();
    assert!(
        h.lines().count() > 900,
        "history rows: {}",
        h.lines().count()
    );
    assert!(h.starts_with("time_s,target_w"));
    // Table dumps: 80 NODE lines per dump, 3 dumps within the horizon.
    let t = std::fs::read_to_string(&tables).unwrap();
    let node_lines = t.lines().filter(|l| l.starts_with("NODE")).count();
    assert_eq!(node_lines % 80, 0, "node lines {node_lines}");
    assert!(node_lines >= 240, "node lines {node_lines}");
    assert!(t.lines().any(|l| l.starts_with("JOB")));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn anorsim_rejects_bad_policy() {
    let out = Command::new(env!("CARGO_BIN_EXE_anorsim"))
        .args(["--nodes", "40", "--policy", "nonsense"])
        .output()
        .expect("run anorsim");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown policy"));
}
