//! Property tests for the simulator's incremental aggregates: the
//! idle-node count, per-type node-usage table and busy-power sum are
//! updated at state transitions (job start, completion, re-cap) instead
//! of rescanning the tables every tick, so they must stay equal to a
//! from-scratch recount after *any* scheduling/completion sequence.

use anor_aqa::{JobSubmission, PowerTarget, RegulationSignal};
use anor_platform::PerformanceVariation;
use anor_sim::{SimConfig, SimPowerPolicy, TabularSim};
use anor_types::{QosConstraint, Seconds, Watts};
use proptest::prelude::*;

const POLICIES: [SimPowerPolicy; 4] = [
    SimPowerPolicy::Uniform,
    SimPowerPolicy::EvenPower,
    SimPowerPolicy::EvenSlowdown,
    SimPowerPolicy::EvenSlowdownQosAware,
];

fn config(policy: SimPowerPolicy) -> SimConfig {
    let catalog = anor_types::standard_catalog();
    let types = catalog.long_running();
    SimConfig {
        total_nodes: 16,
        idle_power: Watts(90.0),
        catalog,
        types,
        tick: Seconds(1.0),
        policy,
        qos: QosConstraint::default(),
        qos_risk_threshold: 0.8,
    }
}

/// Check the incremental aggregates against recounts over the tables.
fn assert_aggregates_consistent(sim: &TabularSim, at: &str) {
    let idle_recount = sim.nodes().iter().filter(|n| n.is_idle()).count() as u32;
    assert_eq!(sim.idle_nodes(), idle_recount, "idle count diverged {at}");

    let mut usage = vec![0u32; sim.type_usage().len()];
    for job in sim.jobs().iter().filter(|j| j.is_running()) {
        let slot = usage
            .get_mut(job.type_id.index())
            .expect("type id within catalog");
        *slot += job.nodes.len() as u32;
    }
    assert_eq!(sim.type_usage(), &usage[..], "type usage diverged {at}");

    // The power aggregate must equal a from-scratch sum of per-node
    // powers. The busy sum is float add/sub at transitions, so allow
    // rounding noise but nothing structural.
    let recount: f64 = sim.nodes().iter().map(|n| n.power.value()).sum();
    let aggregate = sim.aggregate_power().value();
    assert!(
        (aggregate - recount).abs() <= 1e-6 * recount.max(1.0),
        "power aggregate diverged {at}: incremental {aggregate} vs recount {recount}"
    );
}

proptest! {
    /// After arbitrary submission sequences and step counts, under every
    /// power policy, the incremental aggregates match the tables.
    #[test]
    fn incremental_aggregates_match_recounts(
        policy_index in 0usize..4,
        arrivals in proptest::collection::vec((0u32..600, 0usize..6), 0..32),
        sigma in 0.0f64..0.3,
        target_w in 1600.0f64..4400.0,
        steps in 1usize..400,
        seed in 0u64..1000,
    ) {
        let cfg = config(POLICIES[policy_index]);
        let schedule: Vec<JobSubmission> = {
            let mut subs: Vec<JobSubmission> = arrivals
                .iter()
                .map(|&(t, ti)| JobSubmission {
                    time: Seconds(t as f64),
                    type_id: cfg.types[ti % cfg.types.len()],
                })
                .collect();
            subs.sort_by(|a, b| a.time.value().total_cmp(&b.time.value()));
            subs
        };
        let target = PowerTarget {
            avg: Watts(target_w),
            reserve: Watts(target_w * 0.2),
            signal: RegulationSignal::random_walk(
                Seconds(4.0),
                0.35,
                Seconds(4000.0),
                seed,
            ),
        };
        let variation = PerformanceVariation::with_sigma(16, sigma, seed ^ 0x5eed);
        let mut sim = TabularSim::new(cfg, target, &variation, schedule, None);
        for i in 0..steps {
            sim.step();
            // Checking every tick is O(steps × nodes); sample the early
            // ticks densely (transitions cluster there) and then every
            // 13th tick.
            if i < 32 || i % 13 == 0 {
                assert_aggregates_consistent(&sim, &format!("after tick {}", i + 1));
            }
        }
        assert_aggregates_consistent(&sim, "at the end of the run");
    }
}
