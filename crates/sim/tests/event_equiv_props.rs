//! Differential property tests for the event-driven engine: the event
//! queue plus dirty-flag memoization must be *bit-identical* to the
//! legacy per-tick algorithm (completion scans, unconditional
//! admission/capping recompute every tick), which survives inside the
//! engine as the tick-oracle mode. Random clusters up to 200 nodes run
//! both modes in lockstep under random arrival schedules and random
//! re-cap sequences (a wandering regulation signal plus a mid-run
//! target swap), comparing measured power bit-for-bit at every tick and
//! the full outcome, energy and state hash at the end.

use anor_aqa::{JobSubmission, PowerTarget, RegulationSignal};
use anor_platform::PerformanceVariation;
use anor_sim::{SimConfig, SimPowerPolicy, TabularSim};
use anor_types::{QosConstraint, Seconds, Watts};
use proptest::prelude::*;

const POLICIES: [SimPowerPolicy; 4] = [
    SimPowerPolicy::Uniform,
    SimPowerPolicy::EvenPower,
    SimPowerPolicy::EvenSlowdown,
    SimPowerPolicy::EvenSlowdownQosAware,
];

fn config(nodes: u32, policy: SimPowerPolicy) -> SimConfig {
    // Scale job footprints with cluster size so mid-size clusters still
    // fit several jobs, like the figure experiments do.
    let scale = (nodes as f64 / 40.0).round().max(1.0) as u32;
    let catalog = anor_types::standard_catalog().scale_nodes(scale);
    let types = catalog.long_running();
    SimConfig {
        total_nodes: nodes,
        idle_power: Watts(90.0),
        catalog,
        types,
        tick: Seconds(1.0),
        policy,
        qos: QosConstraint::default(),
        qos_risk_threshold: 0.8,
    }
}

#[allow(clippy::too_many_arguments)]
fn build_pair(
    nodes: u32,
    policy: SimPowerPolicy,
    arrivals: &[(u32, usize)],
    sigma: f64,
    avg_w: f64,
    walk_seed: u64,
) -> (TabularSim, TabularSim) {
    let cfg = config(nodes, policy);
    let mut schedule: Vec<JobSubmission> = arrivals
        .iter()
        .map(|&(t, ti)| JobSubmission {
            time: Seconds(t as f64),
            type_id: cfg.types[ti % cfg.types.len()],
        })
        .collect();
    schedule.sort_by(|a, b| a.time.value().total_cmp(&b.time.value()));
    let target = PowerTarget {
        avg: Watts(avg_w),
        reserve: Watts(avg_w * 0.2),
        signal: RegulationSignal::random_walk(Seconds(4.0), 0.35, Seconds(4000.0), walk_seed),
    };
    let variation = PerformanceVariation::with_sigma(nodes as usize, sigma, walk_seed ^ 0x5eed);
    let event = TabularSim::new(
        cfg.clone(),
        target.clone(),
        &variation,
        schedule.clone(),
        None,
    );
    let mut oracle = TabularSim::new(cfg, target, &variation, schedule, None);
    oracle.set_tick_oracle(true);
    (event, oracle)
}

/// Lockstep comparison: both engines step together and every observable
/// must agree exactly, every tick.
fn assert_lockstep(event: &mut TabularSim, oracle: &mut TabularSim, steps: usize, label: &str) {
    for i in 0..steps {
        event.step();
        oracle.step();
        assert_eq!(
            event.measured_power().value().to_bits(),
            oracle.measured_power().value().to_bits(),
            "{label}: measured power diverged at tick {}",
            i + 1
        );
        assert_eq!(
            event.idle_nodes(),
            oracle.idle_nodes(),
            "{label}: idle count diverged at tick {}",
            i + 1
        );
    }
}

proptest! {
    /// Event engine vs tick oracle over random schedules and re-cap
    /// sequences: identical per-tick power, identical final tables
    /// (state hash), identical energy and outcome.
    #[test]
    fn event_engine_matches_tick_oracle(
        policy_index in 0usize..4,
        nodes in 8u32..=200,
        arrivals in proptest::collection::vec((0u32..300, 0usize..6), 1..24),
        sigma in 0.0f64..0.3,
        avg_per_node in 120.0f64..320.0,
        steps in 50usize..360,
        walk_seed in 0u64..1000,
    ) {
        let policy = POLICIES[policy_index];
        let avg_w = avg_per_node * nodes as f64;
        let (mut event, mut oracle) =
            build_pair(nodes, policy, &arrivals, sigma, avg_w, walk_seed);
        assert_lockstep(&mut event, &mut oracle, steps, "lockstep");

        assert_eq!(event.state_hash(), oracle.state_hash(), "state hash diverged");
        assert_eq!(
            event.energy().value().to_bits(),
            oracle.energy().value().to_bits(),
            "energy diverged"
        );
        // The outcome carries QoS rows per type, tracking stats, and
        // completion counts; Debug formatting is exact for floats, so
        // string equality is full-strength.
        assert_eq!(
            format!("{:?}", event.outcome()),
            format!("{:?}", oracle.outcome()),
            "outcome diverged"
        );
    }

    /// A mid-run target swap (the dynamic power objective changing
    /// under the cluster) re-caps every running job at once; the event
    /// engine's outstanding completion checks must survive it exactly.
    #[test]
    fn target_swap_preserves_equivalence(
        policy_index in 0usize..4,
        nodes in 8u32..=200,
        arrivals in proptest::collection::vec((0u32..200, 0usize..6), 1..16),
        swap_at in 20usize..120,
        swap_scale in 0.5f64..1.5,
        steps_after in 30usize..200,
        walk_seed in 0u64..1000,
    ) {
        let policy = POLICIES[policy_index];
        let avg_w = 200.0 * nodes as f64;
        let (mut event, mut oracle) =
            build_pair(nodes, policy, &arrivals, 0.1, avg_w, walk_seed);
        assert_lockstep(&mut event, &mut oracle, swap_at, "pre-swap");

        let swapped = PowerTarget {
            avg: Watts(avg_w * swap_scale),
            reserve: Watts(avg_w * swap_scale * 0.25),
            signal: RegulationSignal::random_walk(
                Seconds(4.0),
                0.35,
                Seconds(4000.0),
                walk_seed ^ 0x5a4b,
            ),
        };
        event.set_target(swapped.clone());
        oracle.set_target(swapped);
        assert_lockstep(&mut event, &mut oracle, steps_after, "post-swap");

        assert_eq!(event.state_hash(), oracle.state_hash(), "state hash diverged");
        assert_eq!(
            format!("{:?}", event.outcome()),
            format!("{:?}", oracle.outcome()),
            "outcome diverged"
        );
    }
}
