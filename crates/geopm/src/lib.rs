#![warn(missing_docs)]
// Hot-path crates must not panic while a power cap is in force: clippy
// enforces what `anor-lint` checks structurally. Test code is exempt.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]
//! # anor-geopm
//!
//! A reimplementation of the subset of the GEOPM HPC runtime [Eastep et
//! al., ISC 2017] that the paper's ANOR implementation builds on
//! (Section 4): signals to monitor applications and hardware, controls
//! for the platform, periodic *agents*, a hierarchical communication tree
//! for multi-node jobs, and the *endpoint* interface through which a
//! job-tier process writes new objectives and reads summarized state.
//!
//! Module map:
//!
//! * [`platformio`] — the signal/control abstraction over a simulated
//!   node (`CPU_ENERGY` aggregated from package energy-status MSRs with
//!   wrap handling, `CPU_POWER`, `EPOCH_COUNT`, and the
//!   `CPU_POWER_LIMIT_CONTROL` control that maps to `PKG_POWER_LIMIT`);
//! * [`agent`] — the [`agent::Agent`] trait and the modified
//!   power-governor agent that enforces node power caps and reports epoch
//!   counts (Section 4.3);
//! * [`tree`] — the balanced agent communication tree that forwards caps
//!   from the root agent to all nodes of a job and aggregates samples
//!   back (epoch count = minimum across nodes, since an epoch completes
//!   only when *all* processes reach the marker);
//! * [`endpoint`] — the GEOPM endpoint interface: a shared-memory-style
//!   mailbox pair through which the job-tier power modeler exchanges
//!   policies and samples with the agent root;
//! * [`report`] — per-job GEOPM-style reports with the "Application
//!   Totals" section the paper uses to measure hardware-experiment
//!   performance (Section 5.4);
//! * [`runtime`] — [`runtime::JobRuntime`]: one job's complete job-tier
//!   stack (nodes + agents + tree + endpoint), stepped in discrete time.

pub mod agent;
pub mod endpoint;
pub mod platformio;
pub mod report;
pub mod runtime;
pub mod trace;
pub mod tree;

pub use agent::{Agent, AgentPolicy, AgentSample, MonitorAgent, PowerGovernorAgent};
pub use endpoint::{endpoint_pair, EndpointAgent, EndpointModeler};
pub use platformio::{Control, PlatformIo, Signal};
pub use report::JobReport;
pub use runtime::JobRuntime;
pub use trace::{parse_trace, TraceRow, TraceWriter};
pub use tree::AgentTree;
