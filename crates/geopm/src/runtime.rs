//! One job's complete job-tier runtime stack.
//!
//! [`JobRuntime`] bundles everything GEOPM attaches to one executing job:
//! a [`PlatformIo`] and power-governor [`Agent`] per node, the agent
//! communication [`AgentTree`], and the agent half of an endpoint. Each
//! discrete time step it:
//!
//! 1. pulls any *new* policy from the endpoint and broadcasts it down the
//!    tree (every agent enforces the node cap);
//! 2. advances every node's hardware and workload by `dt`;
//! 3. samples every agent, aggregates up the tree (min epochs, summed
//!    energy/power) and publishes the job-level sample to the endpoint.

use crate::agent::{Agent, AgentSample, PowerGovernorAgent};
use crate::endpoint::{endpoint_pair, EndpointAgent, EndpointModeler};
use crate::platformio::PlatformIo;
use crate::report::JobReport;
use crate::tree::AgentTree;
use anor_platform::{Node, Phase};
use anor_telemetry::{CauseId, Histogram, Telemetry, Timer, TraceStage, Tracer};
use anor_types::{AnorError, JobId, JobTypeSpec, Result, Seconds, Watts};

/// The job-tier runtime for a single (possibly multi-node) job.
#[derive(Debug)]
pub struct JobRuntime {
    job: JobId,
    spec: JobTypeSpec,
    ios: Vec<PlatformIo>,
    agents: Vec<PowerGovernorAgent>,
    tree: AgentTree,
    endpoint: EndpointAgent,
    last_policy_seq: u64,
    last_sample: AgentSample,
    elapsed: Seconds,
    done: bool,
    step_hist: Option<Histogram>,
    tracer: Option<Tracer>,
}

impl JobRuntime {
    /// Launch `spec` across `nodes` (the workload starts on every node)
    /// and return the runtime plus the modeler-side endpoint half.
    ///
    /// `seed` makes the run deterministic; each node derives its own
    /// workload stream from it.
    pub fn launch(
        job: JobId,
        spec: JobTypeSpec,
        mut nodes: Vec<Node>,
        seed: u64,
    ) -> Result<(JobRuntime, EndpointModeler)> {
        if nodes.is_empty() {
            return Err(AnorError::config(format!("{job}: needs at least one node")));
        }
        for (i, node) in nodes.iter_mut().enumerate() {
            node.launch(job, spec.clone(), seed ^ ((i as u64 + 1) << 32) ^ job.0)?;
        }
        Ok(Self::assemble(job, spec, nodes))
    }

    /// Launch a multi-phase job (Section 8): the same runtime stack, but
    /// the workload's power profile shifts between phases mid-run —
    /// exercising the modeler's drift detection end to end.
    pub fn launch_phased(
        job: JobId,
        spec: JobTypeSpec,
        phases: &[Phase],
        mut nodes: Vec<Node>,
        seed: u64,
    ) -> Result<(JobRuntime, EndpointModeler)> {
        if nodes.is_empty() {
            return Err(AnorError::config(format!("{job}: needs at least one node")));
        }
        for (i, node) in nodes.iter_mut().enumerate() {
            node.launch_phased(
                job,
                spec.clone(),
                phases,
                seed ^ ((i as u64 + 1) << 32) ^ job.0,
            )?;
        }
        Ok(Self::assemble(job, spec, nodes))
    }

    /// Wire launched nodes into the agent stack.
    fn assemble(job: JobId, spec: JobTypeSpec, nodes: Vec<Node>) -> (JobRuntime, EndpointModeler) {
        let ios: Vec<PlatformIo> = nodes.into_iter().map(PlatformIo::new).collect();
        let agents = ios.iter().map(|_| PowerGovernorAgent::new()).collect();
        let tree = AgentTree::balanced(ios.len());
        let (modeler, endpoint) = endpoint_pair();
        (
            JobRuntime {
                job,
                spec,
                ios,
                agents,
                tree,
                endpoint,
                last_policy_seq: 0,
                last_sample: AgentSample::default(),
                elapsed: Seconds::ZERO,
                done: false,
                step_hist: None,
                tracer: None,
            },
            modeler,
        )
    }

    /// Time every control-loop iteration ([`JobRuntime::step`]) into
    /// `runtime_step_seconds` on the given telemetry handle.
    pub fn attach_telemetry(&mut self, telemetry: &Telemetry) {
        self.step_hist = Some(telemetry.histogram("runtime_step_seconds", &[]));
    }

    /// Record an `msr_write` trace event each time a policy broadcast
    /// actually programs `PKG_POWER_LIMIT` on a node.
    pub fn attach_tracer(&mut self, tracer: &Tracer) {
        self.tracer = Some(tracer.clone());
    }

    /// The job id.
    pub fn job(&self) -> JobId {
        self.job
    }

    /// The job-type spec this runtime was launched with.
    pub fn spec(&self) -> &JobTypeSpec {
        &self.spec
    }

    /// Number of nodes the job occupies.
    pub fn node_count(&self) -> usize {
        self.ios.len()
    }

    /// Advance the whole job by `dt`. Returns true when the job has
    /// completed all its epochs on every node.
    pub fn step(&mut self, dt: Seconds) -> Result<bool> {
        if self.done {
            return Ok(true);
        }
        let _timer = self.step_hist.clone().map(Timer::start);
        // 1. Policy propagation (only on change, in tree broadcast order).
        if let Some((policy, seq)) = self.endpoint.read_policy() {
            if seq != self.last_policy_seq {
                for idx in self.tree.broadcast_order() {
                    let before = self.agents[idx].writes_issued();
                    self.agents[idx].adjust(&mut self.ios[idx], &policy)?;
                    if self.agents[idx].writes_issued() > before {
                        if let Some(t) = &self.tracer {
                            t.record_job(
                                TraceStage::MsrWrite,
                                CauseId(policy.cause),
                                self.job.0,
                                Some(policy.node_cap.value()),
                            );
                        }
                    }
                }
                self.last_policy_seq = seq;
            }
        }
        // 2. Hardware + workload time passes.
        let mut all_done = true;
        for io in &mut self.ios {
            let r = io.advance(dt);
            all_done &= r.job_done;
        }
        self.elapsed += dt;
        // 3. Sample aggregation up the tree.
        let samples: Vec<AgentSample> = self
            .agents
            .iter_mut()
            .zip(&self.ios)
            .map(|(a, io)| a.sample(io))
            .collect();
        let agg = AgentTree::aggregate(&samples);
        self.last_sample = agg;
        self.endpoint.write_sample(agg);
        self.done = all_done;
        Ok(self.done)
    }

    /// True once every node's workload finished.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Wall-clock this runtime has executed.
    pub fn elapsed(&self) -> Seconds {
        self.elapsed
    }

    /// Total CPU power the job drew during the last step.
    pub fn power(&self) -> Watts {
        self.last_sample.power
    }

    /// The most recent aggregated sample.
    pub fn last_sample(&self) -> AgentSample {
        self.last_sample
    }

    /// Produce the end-of-job GEOPM report.
    pub fn report(&self) -> JobReport {
        JobReport::from_final_sample(
            self.job,
            self.spec.name.clone(),
            "power_governor",
            self.ios.len() as u32,
            self.elapsed,
            &self.last_sample,
        )
    }

    /// Tear down, releasing the nodes back to the pool (the endpoint
    /// detaches, which the modeler observes).
    pub fn into_nodes(self) -> Vec<Node> {
        self.ios
            .into_iter()
            .map(|io| {
                let mut node = io.into_node();
                node.release();
                node
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::AgentPolicy;
    use anor_types::{standard_catalog, NodeId};

    fn nodes(n: u32) -> Vec<Node> {
        (0..n).map(|i| Node::paper(NodeId(i))).collect()
    }

    fn spec(name: &str) -> JobTypeSpec {
        standard_catalog().find(name).unwrap().clone()
    }

    #[test]
    fn multi_node_job_runs_to_completion() {
        let (mut rt, modeler) = JobRuntime::launch(JobId(1), spec("is.D.32"), nodes(2), 5).unwrap();
        assert_eq!(rt.node_count(), 2);
        let mut steps = 0;
        while !rt.step(Seconds(0.5)).unwrap() {
            steps += 1;
            assert!(steps < 500, "is.D.32 never finished");
        }
        assert!(rt.is_done());
        let (s, _) = modeler.read_sample().unwrap();
        assert_eq!(s.epoch_count, spec("is.D.32").epochs);
        // Elapsed should be near the uncapped time of ~20 s.
        let t = rt.elapsed().value();
        assert!((15.0..30.0).contains(&t), "elapsed {t}");
    }

    #[test]
    fn policy_from_endpoint_caps_all_nodes() {
        let (mut rt, modeler) = JobRuntime::launch(JobId(2), spec("bt.D.81"), nodes(2), 1).unwrap();
        modeler.write_policy(AgentPolicy::capped(Watts(180.0)));
        rt.step(Seconds(1.0)).unwrap();
        // Job draws 180 W per node -> 360 W total.
        let p = rt.power().value();
        assert!((p - 360.0).abs() < 0.5, "capped job power {p}");
        for io in &rt.ios {
            assert_eq!(io.node().power_cap(), Watts(180.0));
        }
    }

    #[test]
    fn repeated_same_policy_writes_once() {
        let (mut rt, modeler) = JobRuntime::launch(JobId(3), spec("bt.D.81"), nodes(2), 2).unwrap();
        modeler.write_policy(AgentPolicy::capped(Watts(200.0)));
        for _ in 0..5 {
            rt.step(Seconds(0.5)).unwrap();
        }
        // The policy sequence only advanced once, so each agent adjusted once.
        assert!(rt.agents.iter().all(|a| a.writes_issued() == 1));
        modeler.write_policy(AgentPolicy::capped(Watts(220.0)));
        rt.step(Seconds(0.5)).unwrap();
        assert!(rt.agents.iter().all(|a| a.writes_issued() == 2));
    }

    #[test]
    fn epoch_count_gated_by_slowest_node() {
        // One slow node (coeff 1.5 would need custom nodes) — emulate by
        // checking min-aggregation: with identical nodes counts match the
        // per-node count.
        let (mut rt, modeler) = JobRuntime::launch(JobId(4), spec("mg.D.32"), nodes(3), 3).unwrap();
        for _ in 0..20 {
            rt.step(Seconds(1.0)).unwrap();
        }
        let (s, _) = modeler.read_sample().unwrap();
        let min_local = rt
            .ios
            .iter()
            .map(|io| io.node().workload().unwrap().epochs_done())
            .min()
            .unwrap();
        assert_eq!(s.epoch_count, min_local);
    }

    #[test]
    fn capping_slows_job_down() {
        let run = |cap: Option<Watts>| -> f64 {
            let (mut rt, modeler) =
                JobRuntime::launch(JobId(5), spec("is.D.32"), nodes(1), 7).unwrap();
            if let Some(c) = cap {
                modeler.write_policy(AgentPolicy::capped(c));
            }
            while !rt.step(Seconds(0.1)).unwrap() {}
            rt.elapsed().value()
        };
        let t_free = run(None);
        let t_capped = run(Some(Watts(140.0)));
        assert!(t_capped > t_free, "{t_capped} vs {t_free}");
    }

    #[test]
    fn report_reflects_run() {
        let (mut rt, _m) = JobRuntime::launch(JobId(6), spec("is.D.32"), nodes(2), 9).unwrap();
        while !rt.step(Seconds(0.5)).unwrap() {}
        let rep = rt.report();
        assert_eq!(rep.nodes, 2);
        assert_eq!(rep.epoch_count, spec("is.D.32").epochs);
        assert!(rep.energy.value() > 0.0);
        assert!(rep.average_power().value() > 0.0);
    }

    #[test]
    fn teardown_releases_nodes_and_detaches() {
        let (mut rt, modeler) =
            JobRuntime::launch(JobId(7), spec("is.D.32"), nodes(2), 11).unwrap();
        rt.step(Seconds(1.0)).unwrap();
        assert!(modeler.agent_attached());
        let nodes = rt.into_nodes();
        assert_eq!(nodes.len(), 2);
        assert!(nodes.iter().all(|n| n.is_idle()));
        assert!(!modeler.agent_attached());
    }

    #[test]
    fn attached_telemetry_times_every_step() {
        let telemetry = Telemetry::new();
        let (mut rt, _m) = JobRuntime::launch(JobId(9), spec("is.D.32"), nodes(1), 17).unwrap();
        rt.attach_telemetry(&telemetry);
        for _ in 0..5 {
            rt.step(Seconds(0.5)).unwrap();
        }
        assert_eq!(telemetry.histogram("runtime_step_seconds", &[]).count(), 5);
    }

    #[test]
    fn step_after_done_is_inert() {
        let (mut rt, _m) = JobRuntime::launch(JobId(8), spec("is.D.32"), nodes(1), 13).unwrap();
        while !rt.step(Seconds(0.5)).unwrap() {}
        let e = rt.elapsed();
        assert!(rt.step(Seconds(5.0)).unwrap());
        assert_eq!(rt.elapsed(), e, "no time accrues after completion");
    }
}
