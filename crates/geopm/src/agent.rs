//! GEOPM agents.
//!
//! "GEOPM offers a software framework to define agents that periodically
//! read signals and write controls in response to those signals while a
//! job executes" (Section 4). The paper modified the stock
//! `power_governor` agent to also write the application epoch count to
//! the endpoint (Section 4.3); [`PowerGovernorAgent`] is that modified
//! agent.

use crate::platformio::{Control, PlatformIo, Signal};
use anor_types::{Joules, Result, Seconds, Watts};

/// The objective an agent receives from above (its policy): a node-level
/// CPU power cap.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AgentPolicy {
    /// CPU power cap to enforce on each node.
    pub node_cap: Watts,
    /// Causal-trace id of the budgeter decision this policy descends
    /// from (`0` = untraced).
    pub cause: u64,
}

impl AgentPolicy {
    /// Policy that leaves the node uncapped (cap at TDP).
    pub fn uncapped(tdp: Watts) -> Self {
        AgentPolicy {
            node_cap: tdp,
            cause: 0,
        }
    }

    /// An untraced cap policy.
    pub fn capped(node_cap: Watts) -> Self {
        AgentPolicy { node_cap, cause: 0 }
    }

    /// A cap policy carrying the decision that produced it.
    pub fn caused(node_cap: Watts, cause: u64) -> Self {
        AgentPolicy { node_cap, cause }
    }
}

/// The summarized state an agent sends up: the paper's modified
/// power_governor reports epoch count, energy, power and a timestamp
/// (timestamps were added to reconcile tiers sampling at different rates,
/// Section 7.2).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AgentSample {
    /// Application epochs completed (on this node, or min across nodes
    /// once aggregated by the tree).
    pub epoch_count: u64,
    /// Cumulative CPU energy (summed across nodes once aggregated).
    pub energy: Joules,
    /// Average CPU power over the last control interval (summed across
    /// nodes once aggregated).
    pub power: Watts,
    /// Average enforced cap over the interval (summed across nodes).
    pub cap: Watts,
    /// Node-local time of the observation.
    pub timestamp: Seconds,
    /// Causal-trace id of the cap in force when the sample was taken
    /// (`0` = no traced cap yet).
    pub cause: u64,
}

/// A periodic read-signals / write-controls loop bound to one node.
pub trait Agent {
    /// Enforce a new policy (called when the endpoint publishes one).
    fn adjust(&mut self, io: &mut PlatformIo, policy: &AgentPolicy) -> Result<()>;

    /// Summarize current state for the level above.
    fn sample(&mut self, io: &PlatformIo) -> AgentSample;

    /// Agent name, as it would appear in a GEOPM report header.
    fn name(&self) -> &'static str;
}

/// The modified `power_governor` agent: enforces a node power cap and
/// reports application epochs alongside energy/power telemetry.
#[derive(Debug, Default, Clone)]
pub struct PowerGovernorAgent {
    /// Last cap written, to avoid redundant MSR writes (real MSR writes
    /// are not free; GEOPM caches controls the same way).
    enforced: Option<Watts>,
    /// Cause of the cap currently in force. Updated on every policy,
    /// including elided redundant writes: a decision that re-issues the
    /// same cap still owns the samples taken under it.
    cause: u64,
    adjust_count: u64,
}

impl PowerGovernorAgent {
    /// Fresh agent with no cap enforced yet.
    pub fn new() -> Self {
        PowerGovernorAgent::default()
    }

    /// How many times `adjust` actually wrote the control.
    pub fn writes_issued(&self) -> u64 {
        self.adjust_count
    }

    /// Cause of the cap currently in force (`0` before the first traced
    /// policy).
    pub fn cause(&self) -> u64 {
        self.cause
    }
}

impl Agent for PowerGovernorAgent {
    fn adjust(&mut self, io: &mut PlatformIo, policy: &AgentPolicy) -> Result<()> {
        self.cause = policy.cause;
        if self.enforced == Some(policy.node_cap) {
            return Ok(());
        }
        io.write_control(Control::CpuPowerLimit, policy.node_cap.value())?;
        self.enforced = Some(policy.node_cap);
        self.adjust_count += 1;
        Ok(())
    }

    fn sample(&mut self, io: &PlatformIo) -> AgentSample {
        AgentSample {
            epoch_count: io.read_signal(Signal::EpochCount) as u64,
            energy: Joules(io.read_signal(Signal::CpuEnergy)),
            power: Watts(io.read_signal(Signal::CpuPower)),
            cap: Watts(io.read_signal(Signal::PowerCap)),
            timestamp: Seconds(io.read_signal(Signal::Time)),
            cause: self.cause,
        }
    }

    fn name(&self) -> &'static str {
        "power_governor"
    }
}

/// GEOPM's stock read-only agent: samples telemetry but never writes a
/// control (used for characterization runs and as the do-nothing
/// baseline — the "no power cap" rows of Figs. 6–8 are monitor-agent
/// runs).
#[derive(Debug, Default, Clone)]
pub struct MonitorAgent;

impl MonitorAgent {
    /// Fresh monitor agent.
    pub fn new() -> Self {
        MonitorAgent
    }
}

impl Agent for MonitorAgent {
    fn adjust(&mut self, _io: &mut PlatformIo, _policy: &AgentPolicy) -> Result<()> {
        // The monitor agent ignores policies entirely.
        Ok(())
    }

    fn sample(&mut self, io: &PlatformIo) -> AgentSample {
        AgentSample {
            epoch_count: io.read_signal(Signal::EpochCount) as u64,
            energy: Joules(io.read_signal(Signal::CpuEnergy)),
            power: Watts(io.read_signal(Signal::CpuPower)),
            cap: Watts(io.read_signal(Signal::PowerCap)),
            timestamp: Seconds(io.read_signal(Signal::Time)),
            cause: 0,
        }
    }

    fn name(&self) -> &'static str {
        "monitor"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anor_platform::Node;
    use anor_types::{standard_catalog, JobId, NodeId};

    fn io_with_job() -> PlatformIo {
        let mut node = Node::paper(NodeId(0));
        let spec = standard_catalog().find("lu.D.42").unwrap().clone();
        node.launch(JobId(1), spec, 9).unwrap();
        PlatformIo::new(node)
    }

    #[test]
    fn adjust_enforces_cap() {
        let mut io = io_with_job();
        let mut agent = PowerGovernorAgent::new();
        agent
            .adjust(&mut io, &AgentPolicy::capped(Watts(180.0)))
            .unwrap();
        assert_eq!(io.read_signal(Signal::PowerCap), 180.0);
        io.advance(Seconds(1.0));
        assert!(io.read_signal(Signal::CpuPower) <= 180.0 + 1e-9);
    }

    #[test]
    fn redundant_adjust_elided() {
        let mut io = io_with_job();
        let mut agent = PowerGovernorAgent::new();
        let p = AgentPolicy::capped(Watts(200.0));
        agent.adjust(&mut io, &p).unwrap();
        agent.adjust(&mut io, &p).unwrap();
        agent.adjust(&mut io, &p).unwrap();
        assert_eq!(agent.writes_issued(), 1);
        agent
            .adjust(&mut io, &AgentPolicy::capped(Watts(220.0)))
            .unwrap();
        assert_eq!(agent.writes_issued(), 2);
    }

    #[test]
    fn sample_reflects_signals() {
        let mut io = io_with_job();
        let mut agent = PowerGovernorAgent::new();
        agent
            .adjust(&mut io, &AgentPolicy::capped(Watts(250.0)))
            .unwrap();
        for _ in 0..10 {
            io.advance(Seconds(1.0));
        }
        let s = agent.sample(&io);
        assert!(s.energy.value() > 0.0);
        assert!(s.power.value() > 0.0);
        assert_eq!(s.cap, Watts(250.0));
        assert_eq!(s.timestamp, Seconds(10.0));
        assert_eq!(s.epoch_count, io.node().workload().unwrap().epochs_done());
    }

    #[test]
    fn uncapped_policy_is_tdp() {
        let p = AgentPolicy::uncapped(Watts(280.0));
        assert_eq!(p.node_cap, Watts(280.0));
    }

    #[test]
    fn agent_name_matches_geopm() {
        assert_eq!(PowerGovernorAgent::new().name(), "power_governor");
        assert_eq!(MonitorAgent::new().name(), "monitor");
    }

    #[test]
    fn monitor_agent_never_touches_controls() {
        let mut io = io_with_job();
        let before = io.read_signal(Signal::PowerCap);
        let mut agent = MonitorAgent::new();
        agent
            .adjust(&mut io, &AgentPolicy::capped(Watts(150.0)))
            .unwrap();
        assert_eq!(io.read_signal(Signal::PowerCap), before, "cap unchanged");
        // Sampling still works.
        io.advance(Seconds(2.0));
        let s = agent.sample(&io);
        assert!(s.energy.value() > 0.0);
        assert_eq!(s.timestamp, Seconds(2.0));
    }
}
