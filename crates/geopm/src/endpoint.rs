//! The GEOPM endpoint interface.
//!
//! "The root level of that agent hierarchy has a software interface,
//! called the GEOPM endpoint interface, that can be used to dynamically
//! write new objectives and read summarized state updates from agents"
//! (Section 4). The paper's job-tier power modeler talks to the agent
//! root through shared memory over this interface (Fig. 2).
//!
//! Here the "shared memory" is an `Arc<Mutex<_>>` mailbox: the modeler
//! half writes policies and reads samples; the agent half reads policies
//! and writes samples. Sequence numbers let each side detect *new* data
//! without consuming duplicates — exactly the asynchronous-sampling issue
//! Section 7.2 describes.

use crate::agent::{AgentPolicy, AgentSample};
use anor_telemetry::{Counter, Histogram, Telemetry};
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Instant;

/// Cached handles for the mailbox's round-trip series (attached via
/// [`EndpointModeler::attach_telemetry`]).
#[derive(Debug)]
struct Instruments {
    policy_writes: Counter,
    sample_writes: Counter,
    /// Wall-clock from a policy write to its first read by the agents.
    policy_roundtrip: Histogram,
    /// Wall-clock from a sample write to its first read by the modeler.
    sample_roundtrip: Histogram,
}

#[derive(Debug, Default)]
struct Shared {
    policy: Option<AgentPolicy>,
    policy_seq: u64,
    sample: Option<AgentSample>,
    sample_seq: u64,
    agent_attached: bool,
    policy_written: Option<Instant>,
    policy_seen_seq: u64,
    sample_written: Option<Instant>,
    sample_seen_seq: u64,
    instruments: Option<Instruments>,
}

/// The modeler-side half of an endpoint (writes objectives, reads state).
#[derive(Debug, Clone)]
pub struct EndpointModeler {
    shared: Arc<Mutex<Shared>>,
}

/// The agent-side half of an endpoint (reads objectives, writes state).
#[derive(Debug)]
pub struct EndpointAgent {
    shared: Arc<Mutex<Shared>>,
}

/// Create a connected modeler/agent endpoint pair.
pub fn endpoint_pair() -> (EndpointModeler, EndpointAgent) {
    let shared = Arc::new(Mutex::new(Shared {
        agent_attached: true,
        ..Shared::default()
    }));
    (
        EndpointModeler {
            shared: Arc::clone(&shared),
        },
        EndpointAgent { shared },
    )
}

impl EndpointModeler {
    /// Record this mailbox's policy/sample round-trips and write counts
    /// into `telemetry`. Both halves share the instruments.
    pub fn attach_telemetry(&self, telemetry: &Telemetry) {
        let instruments = Instruments {
            policy_writes: telemetry.counter("endpoint_policy_writes_total", &[]),
            sample_writes: telemetry.counter("endpoint_sample_writes_total", &[]),
            policy_roundtrip: telemetry.histogram("endpoint_policy_roundtrip_seconds", &[]),
            sample_roundtrip: telemetry.histogram("endpoint_sample_roundtrip_seconds", &[]),
        };
        self.shared.lock().instruments = Some(instruments);
    }

    /// Publish a new objective for the agent hierarchy.
    pub fn write_policy(&self, policy: AgentPolicy) {
        let mut s = self.shared.lock();
        s.policy = Some(policy);
        s.policy_seq += 1;
        s.policy_written = Some(Instant::now());
        if let Some(i) = &s.instruments {
            i.policy_writes.inc();
        }
    }

    /// Latest sample the agents published, with its sequence number
    /// (None before the first sample).
    pub fn read_sample(&self) -> Option<(AgentSample, u64)> {
        let mut s = self.shared.lock();
        if s.sample.is_some() && s.sample_seq != s.sample_seen_seq {
            s.sample_seen_seq = s.sample_seq;
            if let (Some(at), Some(i)) = (s.sample_written, &s.instruments) {
                i.sample_roundtrip.observe(at.elapsed().as_secs_f64());
            }
        }
        s.sample.map(|smp| (smp, s.sample_seq))
    }

    /// Sequence number of the most recent sample (0 = none yet). Lets the
    /// modeler poll cheaply for fresh data.
    pub fn sample_seq(&self) -> u64 {
        self.shared.lock().sample_seq
    }

    /// Is the agent half still attached? (False after the job tears
    /// down — the modeler uses this to generate its final report.)
    pub fn agent_attached(&self) -> bool {
        self.shared.lock().agent_attached
    }
}

impl EndpointAgent {
    /// Latest policy the modeler published, with its sequence number.
    pub fn read_policy(&self) -> Option<(AgentPolicy, u64)> {
        let mut s = self.shared.lock();
        if s.policy.is_some() && s.policy_seq != s.policy_seen_seq {
            s.policy_seen_seq = s.policy_seq;
            if let (Some(at), Some(i)) = (s.policy_written, &s.instruments) {
                i.policy_roundtrip.observe(at.elapsed().as_secs_f64());
            }
        }
        s.policy.map(|p| (p, s.policy_seq))
    }

    /// Publish a fresh aggregated sample.
    pub fn write_sample(&self, sample: AgentSample) {
        let mut s = self.shared.lock();
        s.sample = Some(sample);
        s.sample_seq += 1;
        s.sample_written = Some(Instant::now());
        if let Some(i) = &s.instruments {
            i.sample_writes.inc();
        }
    }
}

impl Drop for EndpointAgent {
    fn drop(&mut self) {
        self.shared.lock().agent_attached = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anor_types::{Joules, Seconds, Watts};

    fn sample(epochs: u64) -> AgentSample {
        AgentSample {
            epoch_count: epochs,
            energy: Joules(10.0),
            power: Watts(100.0),
            cap: Watts(120.0),
            timestamp: Seconds(1.0),
            cause: 0,
        }
    }

    #[test]
    fn starts_empty_and_attached() {
        let (modeler, agent) = endpoint_pair();
        assert!(modeler.read_sample().is_none());
        assert_eq!(modeler.sample_seq(), 0);
        assert!(agent.read_policy().is_none());
        assert!(modeler.agent_attached());
    }

    #[test]
    fn policy_flows_down() {
        let (modeler, agent) = endpoint_pair();
        modeler.write_policy(AgentPolicy::capped(Watts(180.0)));
        let (p, seq) = agent.read_policy().unwrap();
        assert_eq!(p.node_cap, Watts(180.0));
        assert_eq!(seq, 1);
        // Overwrite bumps the sequence.
        modeler.write_policy(AgentPolicy::capped(Watts(190.0)));
        let (p, seq) = agent.read_policy().unwrap();
        assert_eq!(p.node_cap, Watts(190.0));
        assert_eq!(seq, 2);
    }

    #[test]
    fn samples_flow_up_with_sequence() {
        let (modeler, agent) = endpoint_pair();
        agent.write_sample(sample(3));
        let (s, seq) = modeler.read_sample().unwrap();
        assert_eq!(s.epoch_count, 3);
        assert_eq!(seq, 1);
        agent.write_sample(sample(7));
        assert_eq!(modeler.sample_seq(), 2);
        let (s, _) = modeler.read_sample().unwrap();
        assert_eq!(s.epoch_count, 7);
    }

    #[test]
    fn reads_do_not_consume() {
        let (modeler, agent) = endpoint_pair();
        agent.write_sample(sample(1));
        assert!(modeler.read_sample().is_some());
        assert!(modeler.read_sample().is_some(), "sample persists");
        modeler.write_policy(AgentPolicy::capped(Watts(150.0)));
        assert!(agent.read_policy().is_some());
        assert!(agent.read_policy().is_some(), "policy persists");
    }

    #[test]
    fn attached_telemetry_times_roundtrips() {
        let telemetry = Telemetry::new();
        let (modeler, agent) = endpoint_pair();
        modeler.attach_telemetry(&telemetry);
        modeler.write_policy(AgentPolicy::capped(Watts(180.0)));
        agent.read_policy().unwrap();
        agent.read_policy().unwrap(); // duplicate read: not re-observed
        agent.write_sample(sample(1));
        modeler.read_sample().unwrap();
        assert_eq!(
            telemetry.counter("endpoint_policy_writes_total", &[]).get(),
            1
        );
        assert_eq!(
            telemetry.counter("endpoint_sample_writes_total", &[]).get(),
            1
        );
        assert_eq!(
            telemetry
                .histogram("endpoint_policy_roundtrip_seconds", &[])
                .count(),
            1,
            "one round-trip per new sequence number"
        );
        assert_eq!(
            telemetry
                .histogram("endpoint_sample_roundtrip_seconds", &[])
                .count(),
            1
        );
    }

    #[test]
    fn drop_detaches_agent() {
        let (modeler, agent) = endpoint_pair();
        assert!(modeler.agent_attached());
        drop(agent);
        assert!(!modeler.agent_attached());
    }

    #[test]
    fn concurrent_access_is_safe() {
        let (modeler, agent) = endpoint_pair();
        let writer = std::thread::spawn(move || {
            for i in 1..=1000u64 {
                agent.write_sample(sample(i));
            }
            drop(agent);
        });
        let mut last = 0;
        while modeler.agent_attached() || modeler.sample_seq() > last {
            if let Some((s, seq)) = modeler.read_sample() {
                if seq > last {
                    assert!(s.epoch_count >= last, "epochs regressed");
                    last = seq;
                }
            }
        }
        writer.join().unwrap();
        assert_eq!(modeler.sample_seq(), 1000);
    }
}
