//! The hierarchical agent communication tree.
//!
//! "Agents on multi-node jobs interact across nodes through a
//! hierarchical communication interface... When the endpoint sends a new
//! power cap to a job's GEOPM agent on one node, the agent forwards the
//! power cap over a communication tree to the rest of the agent
//! instances (one per node running the job)" (Sections 4, 4.3).
//!
//! Aggregation semantics follow the epoch definition of Section 5.1: "an
//! epoch count is incremented after all processes across all nodes
//! running the benchmark call this function" — so a job's epoch count is
//! the **minimum** across its nodes, while energy/power/cap **sum** and
//! the timestamp is the latest observation.

use crate::agent::AgentSample;

/// A balanced k-ary tree over a job's agent instances. Node `0` is the
/// root (the instance attached to the endpoint).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AgentTree {
    node_count: usize,
    fanout: usize,
}

impl AgentTree {
    /// GEOPM's default tree fanout.
    pub const DEFAULT_FANOUT: usize = 8;

    /// Build a tree over `node_count` agents with the given fanout.
    pub fn new(node_count: usize, fanout: usize) -> Self {
        assert!(node_count >= 1, "a job runs on at least one node");
        assert!(fanout >= 1, "fanout must be at least 1");
        AgentTree { node_count, fanout }
    }

    /// Tree with the default fanout.
    pub fn balanced(node_count: usize) -> Self {
        AgentTree::new(node_count, Self::DEFAULT_FANOUT)
    }

    /// Number of agents in the tree.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Parent index of an agent (None for the root).
    pub fn parent(&self, idx: usize) -> Option<usize> {
        assert!(idx < self.node_count, "index out of range");
        if idx == 0 {
            None
        } else {
            Some((idx - 1) / self.fanout)
        }
    }

    /// Child indices of an agent.
    pub fn children(&self, idx: usize) -> Vec<usize> {
        assert!(idx < self.node_count, "index out of range");
        let first = idx * self.fanout + 1;
        (first..(first + self.fanout).min(self.node_count)).collect()
    }

    /// Depth of the deepest agent (root = 0). Controls how many forwarding
    /// hops a policy update takes to reach every node.
    pub fn depth(&self) -> usize {
        let mut max_depth = 0;
        for mut i in 0..self.node_count {
            let mut d = 0;
            while let Some(p) = self.parent(i) {
                i = p;
                d += 1;
            }
            max_depth = max_depth.max(d);
        }
        max_depth
    }

    /// Total point-to-point messages needed to broadcast one policy from
    /// the root to all agents (= edges in the tree).
    pub fn broadcast_messages(&self) -> usize {
        self.node_count - 1
    }

    /// The order in which a breadth-first policy broadcast visits agents.
    pub fn broadcast_order(&self) -> Vec<usize> {
        let mut order = Vec::with_capacity(self.node_count);
        let mut queue = std::collections::VecDeque::from([0usize]);
        while let Some(i) = queue.pop_front() {
            order.push(i);
            queue.extend(self.children(i));
        }
        order
    }

    /// Aggregate per-node samples into the job-level sample the root
    /// reports through the endpoint.
    pub fn aggregate(samples: &[AgentSample]) -> AgentSample {
        assert!(!samples.is_empty(), "aggregate of zero samples");
        let mut out = AgentSample {
            epoch_count: u64::MAX,
            ..AgentSample::default()
        };
        for s in samples {
            out.epoch_count = out.epoch_count.min(s.epoch_count);
            out.energy += s.energy;
            out.power += s.power;
            out.cap += s.cap;
            out.timestamp = out.timestamp.max(s.timestamp);
            // Every node received the same policy broadcast; max() keeps
            // the traced cause over any untraced (zero) stragglers.
            out.cause = out.cause.max(s.cause);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anor_types::{Joules, Seconds, Watts};

    #[test]
    fn single_node_tree() {
        let t = AgentTree::balanced(1);
        assert_eq!(t.depth(), 0);
        assert_eq!(t.parent(0), None);
        assert!(t.children(0).is_empty());
        assert_eq!(t.broadcast_messages(), 0);
        assert_eq!(t.broadcast_order(), vec![0]);
    }

    #[test]
    fn binary_tree_structure() {
        let t = AgentTree::new(7, 2);
        assert_eq!(t.children(0), vec![1, 2]);
        assert_eq!(t.children(1), vec![3, 4]);
        assert_eq!(t.children(2), vec![5, 6]);
        assert_eq!(t.parent(6), Some(2));
        assert_eq!(t.parent(3), Some(1));
        assert_eq!(t.depth(), 2);
        assert_eq!(t.broadcast_messages(), 6);
    }

    #[test]
    fn broadcast_order_visits_everyone_once() {
        for n in [1, 2, 5, 16, 50] {
            let t = AgentTree::balanced(n);
            let mut order = t.broadcast_order();
            assert_eq!(order.len(), n);
            order.sort_unstable();
            assert!(order.iter().enumerate().all(|(i, &x)| i == x));
        }
    }

    #[test]
    fn parents_precede_children_in_broadcast() {
        let t = AgentTree::new(20, 3);
        let order = t.broadcast_order();
        let pos: Vec<usize> = {
            let mut p = vec![0; 20];
            for (rank, &i) in order.iter().enumerate() {
                p[i] = rank;
            }
            p
        };
        for i in 1..20 {
            let parent = t.parent(i).unwrap();
            assert!(
                pos[parent] < pos[i],
                "agent {i} broadcast before its parent {parent}"
            );
        }
    }

    #[test]
    fn default_fanout_keeps_trees_shallow() {
        // 200 nodes at fanout 8: depth <= 3.
        assert!(AgentTree::balanced(200).depth() <= 3);
        // Indices 1..=8 are all children of the root.
        assert_eq!(AgentTree::balanced(9).depth(), 1);
        assert_eq!(AgentTree::balanced(10).depth(), 2);
    }

    #[test]
    fn aggregation_semantics() {
        let samples = [
            AgentSample {
                epoch_count: 12,
                energy: Joules(100.0),
                power: Watts(200.0),
                cap: Watts(210.0),
                timestamp: Seconds(5.0),
                cause: 0,
            },
            AgentSample {
                epoch_count: 10, // the straggler defines job progress
                energy: Joules(90.0),
                power: Watts(190.0),
                cap: Watts(210.0),
                timestamp: Seconds(5.5),
                cause: 0,
            },
        ];
        let a = AgentTree::aggregate(&samples);
        assert_eq!(a.epoch_count, 10);
        assert_eq!(a.energy, Joules(190.0));
        assert_eq!(a.power, Watts(390.0));
        assert_eq!(a.cap, Watts(420.0));
        assert_eq!(a.timestamp, Seconds(5.5));
    }

    #[test]
    #[should_panic(expected = "zero samples")]
    fn aggregate_empty_panics() {
        AgentTree::aggregate(&[]);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn empty_tree_rejected() {
        AgentTree::balanced(0);
    }
}
