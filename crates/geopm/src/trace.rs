//! GEOPM-style trace files.
//!
//! Real GEOPM writes a per-node trace: one pipe-separated row per agent
//! control-loop iteration with the sampled signals. The paper's offline
//! characterization (Fig. 3) and the asynchronous-sample debugging of
//! Section 7.2 both lean on these traces. [`TraceWriter`] produces the
//! same shape from a [`crate::platformio::PlatformIo`], and
//! [`parse_trace`] reads it back for analysis.

use crate::platformio::{PlatformIo, Signal};
use anor_types::{AnorError, Result};
use std::io::{BufRead, Write};

/// The signal columns a trace records, in column order.
pub const TRACE_COLUMNS: [&str; 5] = [
    "TIME",
    "CPU_ENERGY",
    "CPU_POWER",
    "EPOCH_COUNT",
    "POWER_CAP",
];

/// One parsed trace row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceRow {
    /// Node-local time (s).
    pub time: f64,
    /// Cumulative CPU energy (J).
    pub energy: f64,
    /// Average power over the last interval (W).
    pub power: f64,
    /// Epochs completed.
    pub epoch_count: u64,
    /// Enforced node cap (W).
    pub power_cap: f64,
}

/// Streams sampled signals into a GEOPM-like pipe-separated trace.
#[derive(Debug)]
pub struct TraceWriter<W: Write> {
    out: W,
    rows: u64,
}

impl<W: Write> TraceWriter<W> {
    /// Start a trace, writing the header immediately.
    pub fn new(mut out: W, agent: &str) -> Result<Self> {
        writeln!(out, "# geopm_version: anor-geopm 0.1")?;
        writeln!(out, "# agent: {agent}")?;
        writeln!(out, "{}", TRACE_COLUMNS.join("|"))?;
        Ok(TraceWriter { out, rows: 0 })
    }

    /// Append one sample row from the platform's current signals.
    pub fn sample(&mut self, io: &PlatformIo) -> Result<()> {
        writeln!(
            self.out,
            "{:.3}|{:.6}|{:.3}|{}|{:.1}",
            io.read_signal(Signal::Time),
            io.read_signal(Signal::CpuEnergy),
            io.read_signal(Signal::CpuPower),
            io.read_signal(Signal::EpochCount) as u64,
            io.read_signal(Signal::PowerCap),
        )?;
        self.rows += 1;
        Ok(())
    }

    /// Rows written so far.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Flush and return the writer.
    pub fn finish(mut self) -> Result<W> {
        self.out.flush()?;
        Ok(self.out)
    }
}

/// Parse a trace produced by [`TraceWriter`].
pub fn parse_trace(r: impl BufRead) -> Result<Vec<TraceRow>> {
    let mut rows = Vec::new();
    let mut header_seen = false;
    for (lineno, line) in r.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if !header_seen {
            if line != TRACE_COLUMNS.join("|") {
                return Err(AnorError::schedule(format!(
                    "line {}: unexpected trace header `{line}`",
                    lineno + 1
                )));
            }
            header_seen = true;
            continue;
        }
        let fields: Vec<&str> = line.split('|').collect();
        if fields.len() != TRACE_COLUMNS.len() {
            return Err(AnorError::schedule(format!(
                "line {}: expected {} columns, found {}",
                lineno + 1,
                TRACE_COLUMNS.len(),
                fields.len()
            )));
        }
        let parse_f = |i: usize| -> Result<f64> {
            fields[i].parse().map_err(|_| {
                AnorError::schedule(format!(
                    "line {}: bad {} value `{}`",
                    lineno + 1,
                    TRACE_COLUMNS[i],
                    fields[i]
                ))
            })
        };
        rows.push(TraceRow {
            time: parse_f(0)?,
            energy: parse_f(1)?,
            power: parse_f(2)?,
            epoch_count: fields[3].parse().map_err(|_| {
                AnorError::schedule(format!("line {}: bad EPOCH_COUNT", lineno + 1))
            })?,
            power_cap: parse_f(4)?,
        });
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use anor_platform::Node;
    use anor_types::{standard_catalog, JobId, NodeId, Seconds};
    use std::io::BufReader;

    fn traced_run() -> Vec<u8> {
        let mut node = Node::paper(NodeId(0));
        let spec = standard_catalog().find("is.D.32").unwrap().clone();
        node.launch(JobId(1), spec, 3).unwrap();
        let mut io = PlatformIo::new(node);
        let mut tracer = TraceWriter::new(Vec::new(), "power_governor").unwrap();
        for _ in 0..25 {
            io.advance(Seconds(1.0));
            tracer.sample(&io).unwrap();
        }
        assert_eq!(tracer.rows(), 25);
        tracer.finish().unwrap()
    }

    #[test]
    fn trace_round_trips() {
        let raw = traced_run();
        let rows = parse_trace(BufReader::new(&raw[..])).unwrap();
        assert_eq!(rows.len(), 25);
        // Time advances monotonically; energy is cumulative.
        assert!(rows.windows(2).all(|w| w[1].time > w[0].time));
        assert!(rows.windows(2).all(|w| w[1].energy >= w[0].energy));
        // Epochs advance (IS runs ~2 epochs/s uncapped).
        assert!(rows.last().unwrap().epoch_count > 10);
        // Power stays within the physical envelope.
        assert!(rows.iter().all(|r| r.power >= 0.0 && r.power <= 281.0));
        assert!(rows.iter().all(|r| r.power_cap == 280.0));
    }

    #[test]
    fn header_and_comments_required() {
        let raw =
            b"#comment\nTIME|CPU_ENERGY|CPU_POWER|EPOCH_COUNT|POWER_CAP\n1.0|2.0|3.0|4|280.0\n";
        let rows = parse_trace(BufReader::new(&raw[..])).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].epoch_count, 4);
    }

    #[test]
    fn malformed_traces_rejected() {
        // Wrong header.
        assert!(parse_trace(BufReader::new(&b"TIME|WRONG\n"[..])).is_err());
        // Wrong column count.
        let bad = b"TIME|CPU_ENERGY|CPU_POWER|EPOCH_COUNT|POWER_CAP\n1.0|2.0\n";
        assert!(parse_trace(BufReader::new(&bad[..])).is_err());
        // Non-numeric field.
        let bad = b"TIME|CPU_ENERGY|CPU_POWER|EPOCH_COUNT|POWER_CAP\nx|2.0|3.0|4|280.0\n";
        assert!(parse_trace(BufReader::new(&bad[..])).is_err());
    }

    #[test]
    fn header_only_trace_parses_to_no_rows() {
        let raw = b"# geopm_version: anor-geopm 0.1\n# agent: power_governor\nTIME|CPU_ENERGY|CPU_POWER|EPOCH_COUNT|POWER_CAP\n";
        let rows = parse_trace(BufReader::new(&raw[..])).unwrap();
        assert!(rows.is_empty());
        // So does a completely empty input (no header to object to).
        assert!(parse_trace(BufReader::new(&b""[..])).unwrap().is_empty());
    }

    #[test]
    fn truncated_row_mid_file_names_the_line() {
        // A valid row followed by a truncated one: the error must carry
        // the 1-based line number of the bad row, and earlier rows must
        // not leak out.
        let raw =
            b"TIME|CPU_ENERGY|CPU_POWER|EPOCH_COUNT|POWER_CAP\n1.0|2.0|3.0|4|280.0\n2.0|4.0|3.0\n";
        let err = parse_trace(BufReader::new(&raw[..])).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("line 3"), "got: {msg}");
        assert!(msg.contains("expected 5 columns, found 3"), "got: {msg}");
    }

    #[test]
    fn non_numeric_column_names_column_and_line() {
        let raw = b"TIME|CPU_ENERGY|CPU_POWER|EPOCH_COUNT|POWER_CAP\n1.0|oops|3.0|4|280.0\n";
        let msg = parse_trace(BufReader::new(&raw[..]))
            .unwrap_err()
            .to_string();
        assert!(
            msg.contains("CPU_ENERGY") && msg.contains("line 2"),
            "got: {msg}"
        );
        // A float in the integer EPOCH_COUNT column is also rejected.
        let raw = b"TIME|CPU_ENERGY|CPU_POWER|EPOCH_COUNT|POWER_CAP\n1.0|2.0|3.0|4.5|280.0\n";
        let msg = parse_trace(BufReader::new(&raw[..]))
            .unwrap_err()
            .to_string();
        assert!(msg.contains("EPOCH_COUNT"), "got: {msg}");
    }

    #[test]
    fn rows_after_writer_roundtrip_match_rewritten_values() {
        // Serialize, parse, re-serialize by hand: the parsed values must
        // reproduce the original text at the writer's precision.
        let raw = traced_run();
        let text = String::from_utf8(raw.clone()).unwrap();
        let rows = parse_trace(BufReader::new(&raw[..])).unwrap();
        let data_lines: Vec<&str> = text
            .lines()
            .filter(|l| !l.starts_with('#') && !l.starts_with("TIME"))
            .collect();
        assert_eq!(data_lines.len(), rows.len());
        for (line, row) in data_lines.iter().zip(&rows) {
            let rewritten = format!(
                "{:.3}|{:.6}|{:.3}|{}|{:.1}",
                row.time, row.energy, row.power, row.epoch_count, row.power_cap
            );
            assert_eq!(*line, rewritten);
        }
    }

    #[test]
    fn trace_feeds_epoch_detection_shapes() {
        // The power column of a trace is exactly what automatic epoch
        // detection consumes; verify the integration shape (values, not
        // the detector itself, which lives in anor-model).
        let raw = traced_run();
        let rows = parse_trace(BufReader::new(&raw[..])).unwrap();
        let powers: Vec<f64> = rows.iter().map(|r| r.power).collect();
        assert_eq!(powers.len(), 25);
        assert!(powers.iter().any(|&p| p > 100.0), "workload power visible");
    }
}
