//! GEOPM-style job reports.
//!
//! The paper measures hardware-experiment performance from "the
//! Application Totals section of GEOPM reports that are generated for
//! each job" (Section 5.4). [`JobReport`] captures that section and
//! renders it in a GEOPM-like layout.

use crate::agent::AgentSample;
use anor_types::{JobId, Joules, Seconds, Watts};

/// The per-job summary produced when a job's runtime tears down.
#[derive(Debug, Clone, PartialEq)]
pub struct JobReport {
    /// Which job this report describes.
    pub job: JobId,
    /// Job-type name the job ran as.
    pub type_name: String,
    /// Agent that managed the job.
    pub agent: String,
    /// Number of compute nodes.
    pub nodes: u32,
    /// Application runtime (the "Application Totals" runtime row).
    pub runtime: Seconds,
    /// Total CPU package energy across all nodes.
    pub energy: Joules,
    /// Application epochs completed.
    pub epoch_count: u64,
}

impl JobReport {
    /// Assemble a report from the final aggregated sample.
    pub fn from_final_sample(
        job: JobId,
        type_name: impl Into<String>,
        agent: impl Into<String>,
        nodes: u32,
        runtime: Seconds,
        final_sample: &AgentSample,
    ) -> Self {
        JobReport {
            job,
            type_name: type_name.into(),
            agent: agent.into(),
            nodes,
            runtime,
            energy: final_sample.energy,
            epoch_count: final_sample.epoch_count,
        }
    }

    /// Mean power over the application's runtime.
    pub fn average_power(&self) -> Watts {
        if self.runtime.value() <= 0.0 {
            Watts::ZERO
        } else {
            self.energy / self.runtime
        }
    }

    /// Render in a GEOPM-report-like text layout.
    pub fn render(&self) -> String {
        format!(
            "##### geopm #####\n\
             Agent: {}\n\
             Job: {} ({})\n\
             Hosts: {}\n\
             Application Totals:\n\
             \x20   runtime (s): {:.3}\n\
             \x20   package-energy (J): {:.3}\n\
             \x20   power (W): {:.3}\n\
             \x20   epoch-count: {}\n",
            self.agent,
            self.job,
            self.type_name,
            self.nodes,
            self.runtime.value(),
            self.energy.value(),
            self.average_power().value(),
            self.epoch_count,
        )
    }
}

impl JobReport {
    /// Parse a report rendered by [`JobReport::render`] (post-run
    /// analysis tooling reads these files back).
    pub fn parse(text: &str) -> anor_types::Result<JobReport> {
        use anor_types::AnorError;
        let mut agent = None;
        let mut job = None;
        let mut type_name = None;
        let mut nodes = None;
        let mut runtime = None;
        let mut energy = None;
        let mut epoch_count = None;
        for line in text.lines() {
            let line = line.trim();
            if let Some(v) = line.strip_prefix("Agent: ") {
                agent = Some(v.to_string());
            } else if let Some(v) = line.strip_prefix("Job: ") {
                // "job-3 (bt.D.81)"
                let mut parts = v.splitn(2, ' ');
                let id = parts
                    .next()
                    .and_then(|p| p.strip_prefix("job-"))
                    .and_then(|p| p.parse::<u64>().ok())
                    .ok_or_else(|| AnorError::schedule(format!("bad Job line `{v}`")))?;
                job = Some(JobId(id));
                type_name = parts
                    .next()
                    .map(|p| p.trim_matches(|c| c == '(' || c == ')').to_string());
            } else if let Some(v) = line.strip_prefix("Hosts: ") {
                nodes = v.parse::<u32>().ok();
            } else if let Some(v) = line.strip_prefix("runtime (s): ") {
                runtime = v.parse::<f64>().ok();
            } else if let Some(v) = line.strip_prefix("package-energy (J): ") {
                energy = v.parse::<f64>().ok();
            } else if let Some(v) = line.strip_prefix("epoch-count: ") {
                epoch_count = v.parse::<u64>().ok();
            }
        }
        match (agent, job, type_name, nodes, runtime, energy, epoch_count) {
            (Some(agent), Some(job), Some(type_name), Some(nodes), Some(rt), Some(e), Some(ec)) => {
                Ok(JobReport {
                    job,
                    type_name,
                    agent,
                    nodes,
                    runtime: Seconds(rt),
                    energy: Joules(e),
                    epoch_count: ec,
                })
            }
            _ => Err(AnorError::schedule("incomplete GEOPM report")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> JobReport {
        let s = AgentSample {
            epoch_count: 250,
            energy: Joules(120_000.0),
            power: Watts(0.0),
            cap: Watts(0.0),
            timestamp: Seconds(600.0),
            cause: 0,
        };
        JobReport::from_final_sample(JobId(3), "bt.D.81", "power_governor", 2, Seconds(600.0), &s)
    }

    #[test]
    fn average_power_is_energy_over_runtime() {
        let r = report();
        assert!((r.average_power().value() - 200.0).abs() < 1e-9);
    }

    #[test]
    fn zero_runtime_average_power_is_zero() {
        let mut r = report();
        r.runtime = Seconds(0.0);
        assert_eq!(r.average_power(), Watts::ZERO);
    }

    #[test]
    fn report_round_trips_through_text() {
        let r = report();
        let parsed = JobReport::parse(&r.render()).unwrap();
        assert_eq!(parsed.job, r.job);
        assert_eq!(parsed.type_name, r.type_name);
        assert_eq!(parsed.agent, r.agent);
        assert_eq!(parsed.nodes, r.nodes);
        assert_eq!(parsed.epoch_count, r.epoch_count);
        assert!((parsed.runtime.value() - r.runtime.value()).abs() < 1e-3);
        assert!((parsed.energy.value() - r.energy.value()).abs() < 1e-3);
    }

    #[test]
    fn parse_rejects_incomplete_reports() {
        assert!(JobReport::parse("##### geopm #####\nAgent: monitor\n").is_err());
        assert!(JobReport::parse("").is_err());
        assert!(JobReport::parse("Job: nonsense (x)\n").is_err());
    }

    #[test]
    fn render_contains_application_totals() {
        let text = report().render();
        assert!(text.contains("Application Totals"));
        assert!(text.contains("runtime (s): 600.000"));
        assert!(text.contains("epoch-count: 250"));
        assert!(text.contains("Agent: power_governor"));
        assert!(text.contains("bt.D.81"));
    }
}
