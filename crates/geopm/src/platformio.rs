//! PlatformIO: GEOPM's signal/control abstraction over the hardware.
//!
//! GEOPM "provides signals to monitor applications (e.g., a count of
//! times a region of code was entered) and hardware (e.g., power and
//! energy), and provides controls for the hardware platform (e.g., CPU
//! power caps)" (Section 4). The paper's deployment reads `CPU_ENERGY`
//! (aggregated from `PKG_ENERGY_STATUS` MSRs) and writes
//! `CPU_POWER_LIMIT_CONTROL` (mapping to `PKG_POWER_LIMIT`), Section 5.4.
//!
//! This module reproduces that layer over a simulated
//! [`anor_platform::Node`]. Energy is derived *only* from the wrapping
//! 32-bit MSR counters, exercising the same unwrap arithmetic a real
//! GEOPM build performs.

use anor_platform::msr::energy_delta;
use anor_platform::{Node, NodeStepReport};
use anor_types::{AnorError, Joules, Result, Seconds, Watts};

/// Signals PlatformIO can read. A deliberately small allowlist, like
/// GEOPM's signal registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Signal {
    /// Total CPU package energy consumed (joules), unwrapped from the
    /// `PKG_ENERGY_STATUS` counters.
    CpuEnergy,
    /// Average CPU power over the most recent sample interval (watts).
    CpuPower,
    /// Application epochs completed on this node (count).
    EpochCount,
    /// The currently enforced node power cap (watts).
    PowerCap,
    /// Node-local monotonic time (seconds).
    Time,
    /// Total software MSR writes accepted across the node's packages
    /// (count) — lets the tracing layer reconcile `msr_write` events
    /// against what the registers actually saw.
    MsrWrites,
}

/// Controls PlatformIO can write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Control {
    /// Node CPU power limit (watts), distributed across packages; GEOPM's
    /// `CPU_POWER_LIMIT_CONTROL`.
    CpuPowerLimit,
}

/// The per-node signal/control interface.
#[derive(Debug, Clone)]
pub struct PlatformIo {
    node: Node,
    prev_counters: Vec<u64>,
    energy_unwrapped: Joules,
    epoch_count: u64,
    last_power: Watts,
    last_report: Option<NodeStepReport>,
}

impl PlatformIo {
    /// Wrap a node. The node may already have a job launched.
    pub fn new(node: Node) -> Self {
        let prev_counters = node.energy_counters();
        PlatformIo {
            node,
            prev_counters,
            energy_unwrapped: Joules::ZERO,
            epoch_count: 0,
            last_power: Watts::ZERO,
            last_report: None,
        }
    }

    /// Advance simulated time by `dt`: the node hardware and workload
    /// progress, and all derived signals are refreshed from the MSRs.
    pub fn advance(&mut self, dt: Seconds) -> NodeStepReport {
        let report = self.node.step(dt);
        // Unwrap energy strictly from the 32-bit counters, as GEOPM must.
        let counters = self.node.energy_counters();
        let mut delta = Joules::ZERO;
        for (prev, curr) in self.prev_counters.iter().zip(&counters) {
            delta += energy_delta(*prev, *curr);
        }
        self.prev_counters = counters;
        self.energy_unwrapped += delta;
        self.last_power = if dt.value() > 0.0 {
            delta / dt
        } else {
            Watts::ZERO
        };
        self.epoch_count += report.epochs_crossed;
        self.last_report = Some(report);
        report
    }

    /// Read a signal's current value.
    pub fn read_signal(&self, signal: Signal) -> f64 {
        match signal {
            Signal::CpuEnergy => self.energy_unwrapped.value(),
            Signal::CpuPower => self.last_power.value(),
            Signal::EpochCount => self.epoch_count as f64,
            Signal::PowerCap => self.node.power_cap().value(),
            Signal::Time => self.node.now().value(),
            Signal::MsrWrites => self
                .node
                .packages()
                .iter()
                .map(|p| p.msr_writes() as f64)
                .sum(),
        }
    }

    /// Write a control. Returns an error for out-of-domain values
    /// (non-finite or negative watts).
    pub fn write_control(&mut self, control: Control, value: f64) -> Result<()> {
        match control {
            Control::CpuPowerLimit => {
                if !value.is_finite() || value < 0.0 {
                    return Err(AnorError::platform(format!("invalid power limit {value}")));
                }
                self.node.set_power_cap(Watts(value))
            }
        }
    }

    /// The most recent step report (None before the first `advance`).
    pub fn last_report(&self) -> Option<NodeStepReport> {
        self.last_report
    }

    /// Borrow the underlying node.
    pub fn node(&self) -> &Node {
        &self.node
    }

    /// Mutably borrow the underlying node (e.g. to launch a job).
    pub fn node_mut(&mut self) -> &mut Node {
        &mut self.node
    }

    /// Take the node back out of the abstraction.
    pub fn into_node(self) -> Node {
        self.node
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anor_types::{standard_catalog, JobId, NodeId};

    fn busy_io(name: &str) -> PlatformIo {
        let mut node = Node::paper(NodeId(0));
        let spec = standard_catalog().find(name).unwrap().clone();
        node.launch(JobId(1), spec, 42).unwrap();
        PlatformIo::new(node)
    }

    #[test]
    fn signals_start_at_zero() {
        let io = PlatformIo::new(Node::paper(NodeId(0)));
        assert_eq!(io.read_signal(Signal::CpuEnergy), 0.0);
        assert_eq!(io.read_signal(Signal::CpuPower), 0.0);
        assert_eq!(io.read_signal(Signal::EpochCount), 0.0);
        assert_eq!(io.read_signal(Signal::Time), 0.0);
        assert_eq!(io.read_signal(Signal::PowerCap), 280.0);
        assert!(io.last_report().is_none());
    }

    #[test]
    fn energy_and_power_derive_from_msrs() {
        let mut io = PlatformIo::new(Node::paper(NodeId(0)));
        io.advance(Seconds(10.0));
        // Idle node: 90 W for 10 s = 900 J (quantized by MSR units).
        let e = io.read_signal(Signal::CpuEnergy);
        assert!((e - 900.0).abs() < 0.01, "energy {e}");
        let p = io.read_signal(Signal::CpuPower);
        assert!((p - 90.0).abs() < 0.01, "power {p}");
        assert_eq!(io.read_signal(Signal::Time), 10.0);
    }

    #[test]
    fn power_limit_control_reaches_hardware() {
        let mut io = busy_io("bt.D.81");
        assert_eq!(io.read_signal(Signal::MsrWrites), 0.0);
        io.write_control(Control::CpuPowerLimit, 200.0).unwrap();
        assert_eq!(io.read_signal(Signal::PowerCap), 200.0);
        // One cap write lands on each of the node's two packages.
        assert_eq!(io.read_signal(Signal::MsrWrites), 2.0);
        io.advance(Seconds(1.0));
        let p = io.read_signal(Signal::CpuPower);
        assert!((p - 200.0).abs() < 0.01, "capped power {p}");
    }

    #[test]
    fn invalid_control_values_rejected() {
        let mut io = PlatformIo::new(Node::paper(NodeId(0)));
        assert!(io.write_control(Control::CpuPowerLimit, f64::NAN).is_err());
        assert!(io
            .write_control(Control::CpuPowerLimit, f64::INFINITY)
            .is_err());
        assert!(io.write_control(Control::CpuPowerLimit, -1.0).is_err());
    }

    #[test]
    fn epoch_count_accumulates() {
        let mut io = busy_io("is.D.32");
        let mut by_signal = 0.0;
        for _ in 0..40 {
            io.advance(Seconds(0.5));
            by_signal = io.read_signal(Signal::EpochCount);
        }
        assert!(by_signal > 0.0, "no epochs observed");
        // Signal must equal the node workload's own count.
        assert_eq!(
            by_signal as u64,
            io.node().workload().unwrap().epochs_done()
        );
    }

    #[test]
    fn zero_dt_advance_is_safe() {
        let mut io = busy_io("is.D.32");
        let r = io.advance(Seconds(0.0));
        assert_eq!(r.epochs_crossed, 0);
        assert_eq!(io.read_signal(Signal::CpuPower), 0.0);
    }
}
