//! Deterministic flight recording: an append-only, length-prefixed
//! binary event log capturing everything the budgeter saw and did.
//!
//! Post-hoc artifacts (`events.jsonl`, postmortems) describe a run;
//! a *recording* reproduces one: every inbound wire frame, connection
//! transition, lease event, pump trigger and emitted cap decision is
//! appended with a monotonic timestamp, so `anor-replay` can feed the
//! same bytes through the real decode/budget/lease code paths and
//! recompute every decision bit-for-bit.
//!
//! ## File format (version 1)
//!
//! ```text
//! header  := magic "ANORREC\0" | u32 version | u64 seed
//!            | u64 config_digest | u32 segment
//!            | str build_version | str git_hash | str config | str role
//! str     := u16 len | len bytes of UTF-8
//! record  := u32 len | u8 tag | u64 ts_nanos | payload
//! ```
//!
//! All integers are big-endian. `ts_nanos` is monotonic time since the
//! recorder was created (never wall clock: replay must not depend on
//! it). Unknown tags are skipped on read, so a newer writer degrades to
//! partial replay rather than a parse error; a bumped `version` field
//! signals an incompatible layout and readers must refuse it.
//!
//! ## Writer discipline
//!
//! [`FlightRecorder::record`] never blocks the control loop: the sink
//! mutex is only ever `try_lock`ed and a contended or failed append is
//! *dropped and counted* ([`FlightRecorder::dropped`]), mirroring the
//! JSONL sink's drop accounting. Files are size-rotated like the JSONL
//! sink; each rotation segment restarts with a fresh header whose
//! `segment` index increments, and replay refuses to `--verify` a
//! recording whose first available segment is not 0 (state before the
//! rotation horizon is unrecoverable).

use parking_lot::Mutex;
use std::fs::File;
use std::io::{BufWriter, Read as _, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// First eight bytes of every recording segment.
pub const RECORDING_MAGIC: [u8; 8] = *b"ANORREC\0";

/// Current recording format version. Bump on incompatible layout change;
/// readers refuse versions they do not know.
pub const RECORDING_VERSION: u32 = 1;

/// Upper bound on a single record's encoded length: anything larger is a
/// corrupt or hostile file (wire frames themselves are capped at 64 KiB).
pub const MAX_RECORD_LEN: usize = 1 << 20;

/// Default rotation threshold for recording files (matches the JSONL
/// sink's 64 MiB).
pub const DEFAULT_RECORDING_ROTATE_BYTES: u64 = crate::sink::DEFAULT_ROTATE_BYTES;

/// Build identity baked into binaries, the `anor_build_info` gauge, the
/// `/status` snapshot, and every recording header — so an artifact is
/// always attributable to the binary that produced it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BuildInfo {
    /// Crate version (`CARGO_PKG_VERSION`).
    pub version: String,
    /// Short git commit hash: `ANOR_GIT_HASH` at compile time when set,
    /// else a best-effort read of `.git/HEAD` at first use, else
    /// `"unknown"`.
    pub git_hash: String,
}

impl BuildInfo {
    /// The process-wide build identity (computed once, then cached).
    pub fn current() -> &'static BuildInfo {
        static INFO: OnceLock<BuildInfo> = OnceLock::new();
        INFO.get_or_init(|| BuildInfo {
            version: env!("CARGO_PKG_VERSION").to_string(),
            git_hash: detect_git_hash(),
        })
    }
}

/// Best-effort git hash: prefer the compile-time override, else walk up
/// from the working directory looking for a `.git` checkout.
fn detect_git_hash() -> String {
    if let Some(h) = option_env!("ANOR_GIT_HASH") {
        return short_hash(h);
    }
    let Ok(cwd) = std::env::current_dir() else {
        return "unknown".to_string();
    };
    for dir in cwd.ancestors() {
        let head = dir.join(".git").join("HEAD");
        let Ok(content) = std::fs::read_to_string(&head) else {
            continue;
        };
        let content = content.trim();
        if let Some(reference) = content.strip_prefix("ref: ") {
            if let Ok(hash) = std::fs::read_to_string(dir.join(".git").join(reference.trim())) {
                return short_hash(hash.trim());
            }
            return "unknown".to_string();
        }
        return short_hash(content);
    }
    "unknown".to_string()
}

fn short_hash(h: &str) -> String {
    let h = h.trim();
    if h.is_empty() || !h.chars().all(|c| c.is_ascii_hexdigit()) {
        return "unknown".to_string();
    }
    h.chars().take(12).collect()
}

/// FNV-1a digest of a canonical configuration description. Stored in the
/// header so replay can refuse a recording whose config string was
/// tampered with or mis-transcribed.
pub fn config_digest(config: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in config.as_bytes() {
        hash ^= u64::from(*b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Caller-supplied identity for a new recording: what produced it and
/// under which seed/configuration. Build info is attached automatically.
#[derive(Debug, Clone)]
pub struct RecordingMeta {
    /// Determinism seed of the run being recorded.
    pub seed: u64,
    /// Canonical configuration description (digested into the header;
    /// replay parses it to reconstruct the budgeter).
    pub config: String,
    /// Producing role: `"budgeter"` recordings replay and verify;
    /// `"endpoint"` recordings are inspect-only.
    pub role: String,
}

/// Parsed recording header (one per rotation segment).
#[derive(Debug, Clone, PartialEq)]
pub struct RecordingHeader {
    /// Format version (see [`RECORDING_VERSION`]).
    pub version: u32,
    /// Determinism seed of the recorded run.
    pub seed: u64,
    /// FNV-1a digest of `config` as written.
    pub config_digest: u64,
    /// Rotation segment index; 0 is the genesis segment.
    pub segment: u32,
    /// Producing binary's crate version.
    pub build_version: String,
    /// Producing binary's git hash (or `"unknown"`).
    pub git_hash: String,
    /// Canonical configuration description.
    pub config: String,
    /// Producing role (`"budgeter"` / `"endpoint"`).
    pub role: String,
}

/// One recorded control-plane event. `FrameIn` and `DecisionTx` carry
/// raw wire bytes (the frame *body*, without the length prefix) so
/// replay exercises the real codec and verification is byte-exact.
#[derive(Debug, Clone, PartialEq)]
pub enum RecEvent {
    /// A control pass began (`pump` is 1-based, `budget` in watts).
    PumpStart {
        /// Pump sequence number.
        pump: u64,
        /// Busy budget handed to the pass, in watts.
        budget: f64,
    },
    /// An inbound wire frame was ingested on connection `conn`.
    FrameIn {
        /// Connection slot index.
        conn: u32,
        /// Raw frame body (tag + payload, no length prefix).
        body: Vec<u8>,
    },
    /// A connection was accepted into slot `conn`.
    ConnOpen {
        /// Connection slot index.
        conn: u32,
    },
    /// A connection's slot was closed (peer EOF or post-quarantine).
    ConnClosed {
        /// Connection slot index.
        conn: u32,
    },
    /// A connection was quarantined (protocol error / malformed frame).
    ConnQuarantined {
        /// Connection slot index.
        conn: u32,
    },
    /// An outbound decision frame was emitted on connection `conn`.
    DecisionTx {
        /// Connection slot index.
        conn: u32,
        /// Raw frame body as handed to the transport.
        frame: Vec<u8>,
    },
    /// A job's power lease expired and its watts were reclaimed.
    LeaseExpired {
        /// Job id.
        job: u64,
        /// Watts reclaimed into the pool.
        watts: f64,
    },
    /// A resumed job's reclaimed watts were restored.
    LeaseRestored {
        /// Job id.
        job: u64,
        /// Watts restored to the job.
        watts: f64,
    },
    /// A decision cause id was minted for this pass's re-issued caps.
    /// Recorded even when tracing is off (`cause` 0) so the replay-side
    /// cause feed stays aligned with the decision stream.
    CauseMinted {
        /// The minted cause id (0 = none).
        cause: u64,
    },
}

impl RecEvent {
    fn tag(&self) -> u8 {
        match self {
            RecEvent::PumpStart { .. } => 1,
            RecEvent::FrameIn { .. } => 2,
            RecEvent::ConnOpen { .. } => 3,
            RecEvent::ConnClosed { .. } => 4,
            RecEvent::ConnQuarantined { .. } => 5,
            RecEvent::DecisionTx { .. } => 6,
            RecEvent::LeaseExpired { .. } => 7,
            RecEvent::LeaseRestored { .. } => 8,
            RecEvent::CauseMinted { .. } => 9,
        }
    }

    fn encode_payload(&self, out: &mut Vec<u8>) {
        match self {
            RecEvent::PumpStart { pump, budget } => {
                out.extend_from_slice(&pump.to_be_bytes());
                out.extend_from_slice(&budget.to_bits().to_be_bytes());
            }
            RecEvent::FrameIn { conn, body } => {
                out.extend_from_slice(&conn.to_be_bytes());
                out.extend_from_slice(body);
            }
            RecEvent::ConnOpen { conn }
            | RecEvent::ConnClosed { conn }
            | RecEvent::ConnQuarantined { conn } => {
                out.extend_from_slice(&conn.to_be_bytes());
            }
            RecEvent::DecisionTx { conn, frame } => {
                out.extend_from_slice(&conn.to_be_bytes());
                out.extend_from_slice(frame);
            }
            RecEvent::LeaseExpired { job, watts } | RecEvent::LeaseRestored { job, watts } => {
                out.extend_from_slice(&job.to_be_bytes());
                out.extend_from_slice(&watts.to_bits().to_be_bytes());
            }
            RecEvent::CauseMinted { cause } => {
                out.extend_from_slice(&cause.to_be_bytes());
            }
        }
    }

    /// Decode a payload for `tag`; `None` for an unknown tag (skipped by
    /// readers) or a malformed payload.
    fn decode(tag: u8, payload: &[u8]) -> Option<RecEvent> {
        let mut cur = Cur::new(payload);
        let ev = match tag {
            1 => RecEvent::PumpStart {
                pump: cur.u64()?,
                budget: f64::from_bits(cur.u64()?),
            },
            2 => RecEvent::FrameIn {
                conn: cur.u32()?,
                body: cur.rest().to_vec(),
            },
            3 => RecEvent::ConnOpen { conn: cur.u32()? },
            4 => RecEvent::ConnClosed { conn: cur.u32()? },
            5 => RecEvent::ConnQuarantined { conn: cur.u32()? },
            6 => RecEvent::DecisionTx {
                conn: cur.u32()?,
                frame: cur.rest().to_vec(),
            },
            7 => RecEvent::LeaseExpired {
                job: cur.u64()?,
                watts: f64::from_bits(cur.u64()?),
            },
            8 => RecEvent::LeaseRestored {
                job: cur.u64()?,
                watts: f64::from_bits(cur.u64()?),
            },
            9 => RecEvent::CauseMinted { cause: cur.u64()? },
            _ => return None,
        };
        Some(ev)
    }
}

/// A decoded record: monotonic timestamp plus event.
#[derive(Debug, Clone, PartialEq)]
pub struct RecordedEvent {
    /// Nanoseconds since the recorder was created.
    pub ts_nanos: u64,
    /// The event.
    pub event: RecEvent,
}

/// A fully parsed recording segment.
#[derive(Debug, Clone)]
pub struct Recording {
    /// The segment header.
    pub header: RecordingHeader,
    /// Every decoded record, in append order.
    pub events: Vec<RecordedEvent>,
    /// Records carrying a tag this reader does not know (skipped).
    pub unknown_skipped: u64,
}

// ---- writer ---------------------------------------------------------

#[derive(Debug)]
struct BinWriter {
    writer: BufWriter<File>,
    path: PathBuf,
    bytes: u64,
    max_bytes: u64,
    segment: u32,
    meta: RecordingMeta,
}

fn push_str(out: &mut Vec<u8>, s: &str) {
    let bytes = s.as_bytes();
    let len = bytes.len().min(usize::from(u16::MAX));
    out.extend_from_slice(&(len as u16).to_be_bytes());
    out.extend_from_slice(bytes.get(..len).unwrap_or_default());
}

fn encode_header(meta: &RecordingMeta, segment: u32) -> Vec<u8> {
    let info = BuildInfo::current();
    let mut out = Vec::with_capacity(128);
    out.extend_from_slice(&RECORDING_MAGIC);
    out.extend_from_slice(&RECORDING_VERSION.to_be_bytes());
    out.extend_from_slice(&meta.seed.to_be_bytes());
    out.extend_from_slice(&config_digest(&meta.config).to_be_bytes());
    out.extend_from_slice(&segment.to_be_bytes());
    push_str(&mut out, &info.version);
    push_str(&mut out, &info.git_hash);
    push_str(&mut out, &meta.config);
    push_str(&mut out, &meta.role);
    out
}

impl BinWriter {
    fn create(path: &Path, meta: RecordingMeta, max_bytes: u64) -> std::io::Result<Self> {
        let file = File::create(path)?;
        let mut w = BinWriter {
            writer: BufWriter::new(file),
            path: path.to_path_buf(),
            bytes: 0,
            max_bytes: max_bytes.max(1),
            segment: 0,
            meta,
        };
        w.write_header()?;
        Ok(w)
    }

    fn write_header(&mut self) -> std::io::Result<()> {
        let header = encode_header(&self.meta, self.segment);
        self.writer.write_all(&header)?;
        self.bytes += header.len() as u64;
        Ok(())
    }

    fn rotated_path(&self, n: usize) -> PathBuf {
        let mut s = self.path.as_os_str().to_os_string();
        s.push(format!(".{n}"));
        PathBuf::from(s)
    }

    /// Same chain-shift discipline as the JSONL sink: flush, rename
    /// `.N` → `.N+1` (dropping the oldest beyond [`crate::ROTATE_KEEP`]),
    /// then start a fresh segment with an incremented header.
    fn rotate(&mut self) -> std::io::Result<()> {
        self.writer.flush()?;
        let _ = std::fs::remove_file(self.rotated_path(crate::sink::ROTATE_KEEP));
        for n in (1..crate::sink::ROTATE_KEEP).rev() {
            let _ = std::fs::rename(self.rotated_path(n), self.rotated_path(n + 1));
        }
        std::fs::rename(&self.path, self.rotated_path(1))?;
        self.writer = BufWriter::new(File::create(&self.path)?);
        self.bytes = 0;
        self.segment = self.segment.saturating_add(1);
        self.write_header()
    }

    fn write_record(&mut self, ts_nanos: u64, event: &RecEvent) -> std::io::Result<()> {
        let mut body = Vec::with_capacity(32);
        body.push(event.tag());
        body.extend_from_slice(&ts_nanos.to_be_bytes());
        event.encode_payload(&mut body);
        let total = 4 + body.len() as u64;
        if self.bytes + total > self.max_bytes && self.bytes > 0 {
            // A failed rotation must not cost the in-flight record: keep
            // appending to the oversized active segment instead.
            let _ = self.rotate();
        }
        self.writer.write_all(&(body.len() as u32).to_be_bytes())?;
        self.writer.write_all(&body)?;
        self.bytes += total;
        Ok(())
    }
}

#[derive(Debug)]
struct RecorderInner {
    recsink: Mutex<BinWriter>,
    written: AtomicU64,
    dropped: AtomicU64,
    start: Instant,
    path: PathBuf,
}

/// Shared handle to an active flight recording. Cloning is an `Arc`
/// bump; [`FlightRecorder::record`] never blocks (see module docs).
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    inner: Arc<RecorderInner>,
}

impl FlightRecorder {
    /// Create a recording at `path` with the default rotation threshold.
    pub fn create(path: impl AsRef<Path>, meta: RecordingMeta) -> std::io::Result<Self> {
        FlightRecorder::create_with_rotation(path, meta, DEFAULT_RECORDING_ROTATE_BYTES)
    }

    /// Create a recording that rotates once the active segment would
    /// exceed `max_bytes`.
    pub fn create_with_rotation(
        path: impl AsRef<Path>,
        meta: RecordingMeta,
        max_bytes: u64,
    ) -> std::io::Result<Self> {
        let path = path.as_ref();
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let writer = BinWriter::create(path, meta, max_bytes)?;
        Ok(FlightRecorder {
            inner: Arc::new(RecorderInner {
                recsink: Mutex::new(writer),
                written: AtomicU64::new(0),
                dropped: AtomicU64::new(0),
                start: Instant::now(),
                path: path.to_path_buf(),
            }),
        })
    }

    /// Append one event, stamped with monotonic time. Never blocks: a
    /// contended sink or failed write drops the record and counts it.
    pub fn record(&self, event: &RecEvent) {
        let ts = self.inner.start.elapsed().as_nanos() as u64;
        let Some(mut recsink) = self.inner.recsink.try_lock() else {
            self.inner.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        };
        let ok = recsink.write_record(ts, event).is_ok();
        drop(recsink);
        if ok {
            self.inner.written.fetch_add(1, Ordering::Relaxed);
        } else {
            self.inner.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Flush buffered records to disk.
    pub fn flush(&self) -> std::io::Result<()> {
        self.inner.recsink.lock().writer.flush()
    }

    /// Records appended successfully.
    pub fn written(&self) -> u64 {
        self.inner.written.load(Ordering::Relaxed)
    }

    /// Records dropped (sink contention or I/O failure).
    pub fn dropped(&self) -> u64 {
        self.inner.dropped.load(Ordering::Relaxed)
    }

    /// The active segment's path.
    pub fn path(&self) -> &Path {
        &self.inner.path
    }
}

impl Drop for RecorderInner {
    /// Buffered records must reach disk even when the owner exits on an
    /// error path without flushing.
    fn drop(&mut self) {
        let _ = self.recsink.lock().writer.flush();
    }
}

// ---- reader ---------------------------------------------------------

struct Cur<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cur<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cur { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let s = self.buf.get(self.pos..end)?;
        self.pos = end;
        Some(s)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).and_then(|s| s.first().copied())
    }

    fn u16(&mut self) -> Option<u16> {
        self.take(2)
            .and_then(|s| s.try_into().ok())
            .map(u16::from_be_bytes)
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .and_then(|s| s.try_into().ok())
            .map(u32::from_be_bytes)
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .and_then(|s| s.try_into().ok())
            .map(u64::from_be_bytes)
    }

    fn str(&mut self) -> Option<String> {
        let len = usize::from(self.u16()?);
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).ok()
    }

    fn rest(&mut self) -> &'a [u8] {
        let s = self.buf.get(self.pos..).unwrap_or_default();
        self.pos = self.buf.len();
        s
    }

    fn at_end(&self) -> bool {
        self.pos >= self.buf.len()
    }
}

fn bad(msg: impl Into<String>) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg.into())
}

fn parse_header(cur: &mut Cur<'_>) -> std::io::Result<RecordingHeader> {
    let magic = cur.take(8).ok_or_else(|| bad("truncated magic"))?;
    if magic != RECORDING_MAGIC {
        return Err(bad("not an ANOR recording (bad magic)"));
    }
    let version = cur.u32().ok_or_else(|| bad("truncated version"))?;
    if version != RECORDING_VERSION {
        return Err(bad(format!(
            "unsupported recording version {version} (this reader understands {RECORDING_VERSION})"
        )));
    }
    let seed = cur.u64().ok_or_else(|| bad("truncated seed"))?;
    let config_digest = cur.u64().ok_or_else(|| bad("truncated config digest"))?;
    let segment = cur.u32().ok_or_else(|| bad("truncated segment index"))?;
    let build_version = cur.str().ok_or_else(|| bad("truncated build version"))?;
    let git_hash = cur.str().ok_or_else(|| bad("truncated git hash"))?;
    let config = cur.str().ok_or_else(|| bad("truncated config string"))?;
    let role = cur.str().ok_or_else(|| bad("truncated role string"))?;
    Ok(RecordingHeader {
        version,
        seed,
        config_digest,
        segment,
        build_version,
        git_hash,
        config,
        role,
    })
}

/// Read and decode one recording segment. Unknown event tags are counted
/// and skipped; a truncated trailing record (the writer died mid-append)
/// ends the stream without an error, matching the crash-tolerant intent
/// of a flight recorder.
pub fn read_recording(path: impl AsRef<Path>) -> std::io::Result<Recording> {
    let mut buf = Vec::new();
    File::open(path.as_ref())?.read_to_end(&mut buf)?;
    let mut cur = Cur::new(&buf);
    let header = parse_header(&mut cur)?;
    if header.config_digest != config_digest(&header.config) {
        return Err(bad("config digest mismatch: recording header is corrupt"));
    }
    let mut events = Vec::new();
    let mut unknown_skipped = 0u64;
    while !cur.at_end() {
        let Some(len) = cur.u32() else {
            break; // truncated length prefix: writer died mid-append
        };
        let len = len as usize;
        if !(9..=MAX_RECORD_LEN).contains(&len) {
            return Err(bad(format!("record length {len} out of bounds")));
        }
        let Some(body) = cur.take(len) else {
            break; // truncated body
        };
        let mut rcur = Cur::new(body);
        let (Some(tag), Some(ts_nanos)) = (rcur.u8(), rcur.u64()) else {
            break;
        };
        match RecEvent::decode(tag, rcur.rest()) {
            Some(event) => events.push(RecordedEvent { ts_nanos, event }),
            None => unknown_skipped += 1,
        }
    }
    Ok(Recording {
        header,
        events,
        unknown_skipped,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta() -> RecordingMeta {
        RecordingMeta {
            seed: 42,
            config: "policy=uniform feedback=false".to_string(),
            role: "budgeter".to_string(),
        }
    }

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("anor-rec-{}-{name}", std::process::id()))
    }

    #[test]
    fn round_trips_every_event_kind() {
        let path = tmp("roundtrip.rec");
        let rec = FlightRecorder::create(&path, meta()).unwrap();
        let events = vec![
            RecEvent::PumpStart {
                pump: 1,
                budget: 840.0,
            },
            RecEvent::ConnOpen { conn: 0 },
            RecEvent::FrameIn {
                conn: 0,
                body: vec![1, 2, 3, 4],
            },
            RecEvent::CauseMinted { cause: 7 },
            RecEvent::DecisionTx {
                conn: 0,
                frame: vec![4, 0, 0],
            },
            RecEvent::LeaseExpired {
                job: 9,
                watts: 210.0,
            },
            RecEvent::LeaseRestored {
                job: 9,
                watts: 210.0,
            },
            RecEvent::ConnQuarantined { conn: 1 },
            RecEvent::ConnClosed { conn: 1 },
        ];
        for e in &events {
            rec.record(e);
        }
        rec.flush().unwrap();
        assert_eq!(rec.written(), events.len() as u64);
        assert_eq!(rec.dropped(), 0);

        let loaded = read_recording(&path).unwrap();
        assert_eq!(loaded.header.version, RECORDING_VERSION);
        assert_eq!(loaded.header.seed, 42);
        assert_eq!(loaded.header.role, "budgeter");
        assert_eq!(loaded.header.segment, 0);
        assert_eq!(loaded.header.build_version, env!("CARGO_PKG_VERSION"));
        assert_eq!(
            loaded.header.config_digest,
            config_digest(&loaded.header.config)
        );
        let got: Vec<RecEvent> = loaded.events.iter().map(|r| r.event.clone()).collect();
        assert_eq!(got, events);
        // Timestamps are monotone non-decreasing.
        let ts: Vec<u64> = loaded.events.iter().map(|r| r.ts_nanos).collect();
        assert!(ts.windows(2).all(|w| w[0] <= w[1]), "{ts:?}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn rotation_starts_a_fresh_segment_with_incremented_header() {
        let path = tmp("rotate.rec");
        let rec = FlightRecorder::create_with_rotation(&path, meta(), 256).unwrap();
        for i in 0..200u64 {
            rec.record(&RecEvent::CauseMinted { cause: i });
        }
        rec.flush().unwrap();
        let active = read_recording(&path).unwrap();
        assert!(
            active.header.segment > 0,
            "active segment must have rotated"
        );
        let mut shifted = path.as_os_str().to_os_string();
        shifted.push(".1");
        let prev = read_recording(PathBuf::from(shifted)).unwrap();
        assert_eq!(prev.header.segment + 1, active.header.segment);
        assert_eq!(prev.header.seed, active.header.seed);
        let _ = std::fs::remove_file(&path);
        for n in 1..=crate::sink::ROTATE_KEEP {
            let mut p = path.as_os_str().to_os_string();
            p.push(format!(".{n}"));
            let _ = std::fs::remove_file(PathBuf::from(p));
        }
    }

    #[test]
    fn rejects_foreign_and_corrupt_files() {
        let path = tmp("garbage.rec");
        std::fs::write(&path, b"definitely not a recording").unwrap();
        let err = read_recording(&path).unwrap_err();
        assert!(err.to_string().contains("bad magic"), "{err}");
        // A version from the future is refused, not misparsed.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&RECORDING_MAGIC);
        bytes.extend_from_slice(&(RECORDING_VERSION + 1).to_be_bytes());
        std::fs::write(&path, &bytes).unwrap();
        let err = read_recording(&path).unwrap_err();
        assert!(err.to_string().contains("unsupported"), "{err}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncated_tail_record_is_tolerated() {
        let path = tmp("truncated.rec");
        let rec = FlightRecorder::create(&path, meta()).unwrap();
        rec.record(&RecEvent::PumpStart {
            pump: 1,
            budget: 100.0,
        });
        rec.record(&RecEvent::CauseMinted { cause: 3 });
        rec.flush().unwrap();
        drop(rec);
        // Chop mid-record: the reader keeps everything before the tear.
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 5]).unwrap();
        let loaded = read_recording(&path).unwrap();
        assert_eq!(loaded.events.len(), 1);
        assert!(matches!(
            loaded.events[0].event,
            RecEvent::PumpStart { pump: 1, .. }
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn build_info_is_stable_and_digest_is_fnv() {
        let a = BuildInfo::current();
        let b = BuildInfo::current();
        assert_eq!(a, b);
        assert!(!a.version.is_empty());
        assert!(!a.git_hash.is_empty());
        // FNV-1a reference vector.
        assert_eq!(config_digest(""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(config_digest("a"), config_digest("b"));
    }
}
